//! The metric-key registry.
//!
//! Every key passed to a [`crate::Metrics`] method is declared here —
//! emit sites reference these constants (enforced by the workspace's L7
//! lint), so a metric cannot be silently split by a typo or orphaned by a
//! rename: the registry, the emit sites and the golden fixtures move
//! together or the lint fails.
//!
//! Dynamic key families (per-rail, per-load, per-queue) get a helper
//! function — the one blessed home for `format!`-built keys — plus a
//! `*_PATTERN` constant (with `*` wildcards) that documents the family
//! and anchors the golden-fixture drift check.
//!
//! Events need no registry: [`crate::EventKind`] is a typed enum.

// --- MCU duty cycle ------------------------------------------------------

/// Nanoseconds the MCU spent in its active mode.
pub const MCU_ACTIVE_NS: &str = "mcu.active_ns";
/// Nanoseconds the MCU spent in low-power mode.
pub const MCU_LPM_NS: &str = "mcu.lpm_ns";

// --- Node lifecycle ------------------------------------------------------

/// Sensor-driven node wakeups.
pub const NODE_WAKES: &str = "node.wakes";
/// Supply-collapse events observed by the node.
pub const NODE_BROWNOUTS: &str = "node.brownouts";
/// Injected chaos faults the node absorbed.
pub const NODE_FAULTS: &str = "node.faults";

// --- Board peripherals ---------------------------------------------------

/// Sensor trigger count on the integrated board.
pub const BOARD_SENSOR_FIRES: &str = "board.sensor.fires";
/// Load-switch operations served from the switch's settling cache.
pub const BOARD_SWITCH_OP_CACHE_HITS: &str = "board.switch.op_cache_hits";
/// Load-switch operations that missed the settling cache.
pub const BOARD_SWITCH_OP_CACHE_MISSES: &str = "board.switch.op_cache_misses";
/// Packets sent by the board radio.
pub const BOARD_RADIO_PACKETS: &str = "board.radio.packets";
/// Payload bytes sent by the board radio.
pub const BOARD_RADIO_BYTES: &str = "board.radio.bytes";
/// Packets relayed by the board's wakeup-radio receive path.
pub const BOARD_RADIO_RELAYS: &str = "board.radio.relays";
/// Energy spent relaying, in microjoules.
pub const BOARD_RADIO_RELAY_ENERGY_UJ: &str = "board.radio.relay_energy_uj";
/// Brownouts recorded by the board's storage element.
pub const BOARD_STORAGE_BROWNOUTS: &str = "board.storage.brownouts";
/// Final state of charge of the board's storage element.
pub const BOARD_STORAGE_SOC: &str = "board.storage.soc";
/// Energy harvested into storage, in microjoules.
pub const BOARD_STORAGE_HARVESTED_UJ: &str = "board.storage.harvested_uj";

// --- Radio transmitter ---------------------------------------------------

/// Packets transmitted.
pub const RADIO_TX_PACKETS: &str = "radio.tx.packets";
/// Bits transmitted.
pub const RADIO_TX_BITS: &str = "radio.tx.bits";
/// Transmit energy, in microjoules.
pub const RADIO_TX_ENERGY_UJ: &str = "radio.tx.energy_uj";
/// Per-packet airtime histogram, in microseconds.
pub const RADIO_TX_AIRTIME_US: &str = "radio.tx.airtime_us";

// --- Power ledger --------------------------------------------------------

/// Total energy drawn across all rails, in microjoules.
pub const POWER_TOTAL_UJ: &str = "power.total.uj";
/// Per-rail energy family: `power.rail.<rail>.uj`.
pub const POWER_RAIL_UJ_PATTERN: &str = "power.rail.*.uj";
/// Per-load energy family: `power.load.<rail>.<load>.uj`.
pub const POWER_LOAD_UJ_PATTERN: &str = "power.load.*.uj";

/// The accumulated energy key for one rail (family
/// [`POWER_RAIL_UJ_PATTERN`]).
pub fn power_rail_uj(rail: &str) -> String {
    format!("power.rail.{rail}.uj")
}

/// The accumulated energy key for one load on a rail (family
/// [`POWER_LOAD_UJ_PATTERN`]).
pub fn power_load_uj(rail: &str, load: &str) -> String {
    format!("power.load.{rail}.{load}.uj")
}

// --- Event-queue statistics ----------------------------------------------

/// Queue push-count family: `<queue>.pushed`.
pub const QUEUE_PUSHED_PATTERN: &str = "*.pushed";
/// Queue pop-count family: `<queue>.popped`.
pub const QUEUE_POPPED_PATTERN: &str = "*.popped";
/// Queue high-water-mark family: `<queue>.max_depth`.
pub const QUEUE_MAX_DEPTH_PATTERN: &str = "*.max_depth";

/// The push-count key for one queue (family [`QUEUE_PUSHED_PATTERN`]).
pub fn queue_pushed(prefix: &str) -> String {
    format!("{prefix}.pushed")
}

/// The pop-count key for one queue (family [`QUEUE_POPPED_PATTERN`]).
pub fn queue_popped(prefix: &str) -> String {
    format!("{prefix}.popped")
}

/// The high-water-mark key for one queue (family
/// [`QUEUE_MAX_DEPTH_PATTERN`]).
pub fn queue_max_depth(prefix: &str) -> String {
    format!("{prefix}.max_depth")
}

// --- Fleet engine --------------------------------------------------------

/// Worker threads used by the fleet scheduler.
pub const FLEET_SCHED_WORKERS: &str = "fleet.sched.workers";
/// Work chunks the fleet scheduler produced.
pub const FLEET_SCHED_CHUNKS: &str = "fleet.sched.chunks";
/// Nodes per scheduler chunk.
pub const FLEET_SCHED_CHUNK_SIZE: &str = "fleet.sched.chunk_size";
/// Chunks stolen across scheduler workers.
pub const FLEET_SCHED_STEALS: &str = "fleet.sched.steals";
/// Received-power histogram at the fleet collector, in dBm.
pub const FLEET_RX_DBM: &str = "fleet.rx_dbm";
/// Transmissions offered to the shared channel.
pub const FLEET_OFFERED: &str = "fleet.offered";
/// Transmissions lost to collisions.
pub const FLEET_COLLIDED: &str = "fleet.collided";
/// Transmissions lost to the channel model.
pub const FLEET_CHANNEL_LOSSES: &str = "fleet.channel_losses";
/// Transmissions delivered to the collector.
pub const FLEET_DELIVERED: &str = "fleet.delivered";
/// Nodes whose chaos faults left them dead at merge time.
pub const FLEET_FAULTED_NODES: &str = "fleet.faulted_nodes";
/// Mean offered load (Erlang) over the run.
pub const FLEET_OFFERED_LOAD: &str = "fleet.offered_load";

// --- Mesh engine ---------------------------------------------------------

/// Receptions lost because the listener saw overlapping frames.
pub const MESH_RX_COLLIDED: &str = "mesh.rx.collided";
/// Receptions missed because the listener was transmitting.
pub const MESH_RX_HALF_DUPLEX: &str = "mesh.rx.half_duplex";
/// Frames detected by a listening node.
pub const MESH_RX_DETECTED: &str = "mesh.rx.detected";
/// Frames discarded as already-seen duplicates.
pub const MESH_RX_DUPLICATES: &str = "mesh.rx.duplicates";
/// Relays suppressed by the hop limit.
pub const MESH_RELAY_HOP_LIMITED: &str = "mesh.relay.hop_limited";
/// Relay transmissions injected into the schedule.
pub const MESH_RELAY_INJECTED: &str = "mesh.relay.injected";
/// Relay transmissions that made it on air.
pub const MESH_RELAY_ON_AIR: &str = "mesh.relay.on_air";
/// Relay transmissions dropped before airtime.
pub const MESH_RELAY_DROPPED: &str = "mesh.relay.dropped";
/// Noise-triggered wakeups across the mesh.
pub const MESH_FALSE_WAKES: &str = "mesh.false_wakes";
/// Received-power histogram at the sink, in dBm.
pub const MESH_SINK_RX_DBM: &str = "mesh.sink.rx_dbm";
/// Hop-count histogram of delivered packets.
pub const MESH_DELIVERED_HOPS: &str = "mesh.delivered_hops";
/// Transmissions offered to the mesh channel.
pub const MESH_OFFERED: &str = "mesh.offered";
/// Transmissions lost to collisions at the sink.
pub const MESH_COLLIDED: &str = "mesh.collided";
/// Transmissions lost to the channel model at the sink.
pub const MESH_CHANNEL_LOSSES: &str = "mesh.channel_losses";
/// Transmissions delivered to the sink.
pub const MESH_DELIVERED: &str = "mesh.delivered";
/// Distinct origin packets offered at least once.
pub const MESH_UNIQUE_OFFERED: &str = "mesh.unique.offered";
/// Distinct origin packets delivered at least once.
pub const MESH_UNIQUE_DELIVERED: &str = "mesh.unique.delivered";
/// Nodes whose chaos faults left them dead at merge time.
pub const MESH_FAULTED_NODES: &str = "mesh.faulted_nodes";
/// Mean offered load (Erlang) over the run.
pub const MESH_OFFERED_LOAD: &str = "mesh.offered_load";

// --- Scenario campaigns --------------------------------------------------

/// Seeds folded into the campaign.
pub const CAMPAIGN_SEEDS: &str = "campaign.seeds";
/// Total nodes simulated across all seeds.
pub const CAMPAIGN_NODES_TOTAL: &str = "campaign.nodes_total";
/// Nodes that browned out at least once, across all seeds.
pub const CAMPAIGN_BROWNED_OUT_NODES: &str = "campaign.browned_out_nodes";
/// Final alive fraction of the pooled survival curve.
pub const CAMPAIGN_FINAL_ALIVE_FRACTION: &str = "campaign.final_alive_fraction";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_agree_with_their_patterns() {
        assert_eq!(power_rail_uj("VBAT"), "power.rail.VBAT.uj");
        assert_eq!(power_load_uj("VBAT", "mcu"), "power.load.VBAT.mcu.uj");
        assert_eq!(queue_pushed("sim.queue"), "sim.queue.pushed");
        assert_eq!(queue_popped("sim.queue"), "sim.queue.popped");
        assert_eq!(queue_max_depth("sim.queue"), "sim.queue.max_depth");
    }
}
