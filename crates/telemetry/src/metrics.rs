//! The metrics registry: named counters, gauges and histograms with a
//! deterministic merge.
//!
//! Metric values are plain data. A fleet shard accumulates into its own
//! [`Metrics`] and shards are merged **in node order** with
//! [`Metrics::merge_from`]; because merging is a fixed-order fold, the
//! merged floating-point sums are bit-identical no matter how phase 1 was
//! scheduled across threads.

use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};

/// Bucket upper bounds used when a histogram is observed before being
/// registered: half-decade steps spanning sub-µs to minutes when values are
/// in µs, or nW to watts when values are in µW.
pub const DEFAULT_BOUNDS: [f64; 12] = [
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
];

/// A fixed-bucket histogram with exact counts and guarded aggregates.
///
/// * `NaN` observations are counted separately ([`Histogram::nan_count`])
///   and never touch the buckets, sum, min or max.
/// * Non-finite observations (`±inf`) land in the terminal buckets but are
///   excluded from the running sum/min/max, so aggregates stay finite.
/// * `0` and negative values fall into the first bucket whose upper bound
///   contains them (bounds are inclusive upper limits).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket at the end.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    finite_count: u64,
    nan_count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram over ascending inclusive upper `bounds`. An
    /// implicit overflow bucket catches values above the last bound.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-ascending, or contains a non-finite
    /// bound.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            finite_count: 0,
            nan_count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation (see the type docs for the NaN/∞ rules).
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            self.nan_count += 1;
            return;
        }
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.finite_count += 1;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// The inclusive upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations recorded (excluding NaNs).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// NaN observations rejected by the guard.
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.min <= self.max).then_some(self.min)
    }

    /// Largest finite observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.min <= self.max).then_some(self.max)
    }

    /// Mean of the finite observations, or `None` before the first.
    pub fn mean(&self) -> Option<f64> {
        // Non-finite observations inflate `count` but not `sum`; mean is
        // over the finite population.
        (self.finite_count > 0).then(|| self.sum / self.finite_count as f64)
    }

    /// Adds another histogram's observations into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms of different
    /// shapes silently would corrupt every percentile read from them.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.finite_count += other.finite_count;
        self.nan_count += other.nan_count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bounds".into(), self.bounds.to_json()),
            ("counts".into(), self.counts.to_json()),
            ("count".into(), self.count.to_json()),
            ("finite_count".into(), self.finite_count.to_json()),
            ("nan_count".into(), self.nan_count.to_json()),
            ("sum".into(), self.sum.to_json()),
            ("min".into(), self.min().to_json()),
            ("max".into(), self.max().to_json()),
        ])
    }
}

impl FromJson for Histogram {
    /// Rebuilds a histogram from its [`ToJson`] form, bit-exactly: every
    /// field round-trips (`units::json` preserves `f64` bits), and the
    /// `min`/`max` sentinels for an empty histogram are restored from the
    /// serialized `null`s — the checkpoint/resume contract.
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let bounds: Vec<f64> = FromJson::from_json(field(value, "bounds")?)?;
        if bounds.is_empty() || !bounds.iter().all(|b| b.is_finite()) {
            return Err(JsonError::new("histogram bounds must be finite, non-empty"));
        }
        if !bounds.windows(2).all(|w| matches!(w, [a, b] if a < b)) {
            return Err(JsonError::new("histogram bounds must ascend"));
        }
        let counts: Vec<u64> = FromJson::from_json(field(value, "counts")?)?;
        if counts.len() != bounds.len() + 1 {
            return Err(JsonError::new(
                "histogram needs one count per bound plus the overflow bucket",
            ));
        }
        let min: Option<f64> = FromJson::from_json(field(value, "min")?)?;
        let max: Option<f64> = FromJson::from_json(field(value, "max")?)?;
        Ok(Self {
            bounds,
            counts,
            sum: FromJson::from_json(field(value, "sum")?)?,
            count: FromJson::from_json(field(value, "count")?)?,
            finite_count: FromJson::from_json(field(value, "finite_count")?)?,
            nan_count: FromJson::from_json(field(value, "nan_count")?)?,
            min: min.unwrap_or(f64::INFINITY),
            max: max.unwrap_or(f64::NEG_INFINITY),
        })
    }
}

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic integer count (packets, wakes, events).
    Counter(u64),
    /// Accumulating float (per-rail µJ, seconds of residency). Gauges merge
    /// by **addition**, so a fleet-merged gauge is the sum over nodes.
    Gauge(f64),
    /// Distribution of observations.
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

impl ToJson for Metric {
    fn to_json(&self) -> Json {
        match self {
            Self::Counter(v) => v.to_json(),
            Self::Gauge(v) => v.to_json(),
            Self::Histogram(h) => h.to_json(),
        }
    }
}

impl FromJson for Metric {
    /// The wire form is self-describing: counters serialize as JSON
    /// integers, gauges always carry a decimal marker (`units::json` keeps
    /// the two token families distinct), and histograms are objects.
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::UInt(v) => Ok(Self::Counter(*v)),
            Json::Num(v) => Ok(Self::Gauge(*v)),
            Json::Obj(_) => Ok(Self::Histogram(FromJson::from_json(value)?)),
            _ => Err(JsonError::new("expected a counter, gauge or histogram")),
        }
    }
}

/// Insertion-ordered registry of named metrics.
///
/// Names are dotted paths (`"radio.tx.packets"`, `"power.rail.VBAT.uj"`).
/// Lookup is linear — registries hold tens of entries and the hot-path
/// operations are integer adds, so a hash map would cost more than it
/// saves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: Vec<(String, Metric)>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter `name` by `by`, registering it at zero first
    /// if needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.entry(name, || Metric::Counter(0)) {
            Metric::Counter(v) => *v += by,
            other => panic!("{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Adds `by` to the gauge `name`, registering it at zero first if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn add(&mut self, name: &str, by: f64) {
        match self.entry(name, || Metric::Gauge(0.0)) {
            Metric::Gauge(v) => *v += by,
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Records `value` into the histogram `name`, registering it over
    /// [`DEFAULT_BOUNDS`] first if needed. Use
    /// [`register_histogram`](Self::register_histogram) for custom buckets.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn observe(&mut self, name: &str, value: f64) {
        match self.entry(name, || Metric::Histogram(Histogram::new(&DEFAULT_BOUNDS))) {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Registers (or re-shapes, if empty) a histogram with explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-histogram metric, or bounds are
    /// invalid (see [`Histogram::new`]).
    pub fn register_histogram(&mut self, name: &str, bounds: &[f64]) {
        match self.entry(name, || Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(_) => {}
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// The counter's current value (zero if unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge's current value (zero if unregistered).
    pub fn gauge(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(Metric::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Iterates `(name, metric)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds another registry into this one: counters and gauges add,
    /// histograms merge bucket-wise, and names unknown to `self` are
    /// appended in `other`'s order.
    ///
    /// Merging shard registries **in node order** yields bit-identical
    /// results regardless of which thread produced each shard — the
    /// parallel engine's determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if a name is registered with different kinds (or histogram
    /// bounds) on the two sides.
    pub fn merge_from(&mut self, other: &Metrics) {
        for (name, theirs) in &other.entries {
            match self.entries.iter_mut().find(|(n, _)| n == name) {
                None => self.entries.push((name.clone(), theirs.clone())),
                Some((_, mine)) => match (mine, theirs) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (Metric::Gauge(a), Metric::Gauge(b)) => *a += b,
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge_from(b),
                    (mine, theirs) => panic!(
                        "metric {name} is a {} on one side and a {} on the other",
                        mine.kind(),
                        theirs.kind()
                    ),
                },
            }
        }
    }

    fn entry(&mut self, name: &str, default: impl FnOnce() -> Metric) -> &mut Metric {
        let i = match self.entries.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.entries.push((name.to_string(), default()));
                self.entries.len() - 1
            }
        };
        &mut self.entries[i].1
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(n, m)| (n.clone(), m.to_json()))
                .collect(),
        )
    }
}

impl FromJson for Metrics {
    /// Rebuilds a registry from its [`ToJson`] object, preserving the
    /// insertion order the deterministic merge depends on.
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let Json::Obj(entries) = value else {
            return Err(JsonError::new("expected a metrics object"));
        };
        let mut out = Self::new();
        for (name, raw) in entries {
            if out.get(name).is_some() {
                return Err(JsonError::new(format!("duplicate metric {name:?}")));
            }
            out.entries.push((name.clone(), FromJson::from_json(raw)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("a", 1);
        m.inc("a", 2);
        m.inc("b", 5);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("b"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_accumulate_floats() {
        let mut m = Metrics::new();
        m.add("e", 1.5);
        m.add("e", 2.25);
        assert_eq!(m.gauge("e"), 3.75);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_confusion_panics() {
        let mut m = Metrics::new();
        m.inc("x", 1);
        m.add("x", 1.0);
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.1, 10.0, 99.0, 101.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1, 1]); // 1.0 and 10.0 land inclusive
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(101.0));
    }

    #[test]
    fn histogram_zero_goes_in_first_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.0);
        h.observe(-3.0); // negative values also clamp into the first bucket
        assert_eq!(h.counts(), &[2, 0, 0]);
        assert_eq!(h.min(), Some(-3.0));
    }

    #[test]
    fn histogram_nan_guard() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(0.5);
        h.observe(f64::NAN);
        assert_eq!(h.nan_count(), 2);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0.5);
        assert!(h.mean().unwrap().is_finite());
    }

    #[test]
    fn histogram_max_and_infinities_stay_finite() {
        let mut h = Histogram::new(&[1.0, 1e300]);
        h.observe(f64::MAX); // above the last bound: overflow bucket
        h.observe(f64::INFINITY); // counted, excluded from aggregates
        h.observe(f64::NEG_INFINITY); // first bucket, excluded likewise
        h.observe(2.0);
        assert_eq!(h.counts(), &[1, 1, 2]);
        assert_eq!(h.count(), 4);
        assert!(h.sum().is_finite());
        assert_eq!(h.min(), Some(2.0)); // f64::MAX is finite and tracked
        assert_eq!(h.max(), Some(f64::MAX));
        assert!(h.mean().unwrap().is_finite());
    }

    #[test]
    fn empty_histogram_has_no_aggregates() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    #[should_panic(expected = "must ascend")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merging_mismatched_histograms_panics() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge_from(&b);
    }

    #[test]
    fn merge_is_a_fixed_order_fold() {
        let shard = |seed: u64| {
            let mut m = Metrics::new();
            m.inc("packets", seed);
            m.add("energy_uj", seed as f64 * 0.1);
            m.observe("airtime", seed as f64);
            m
        };
        let mut left = Metrics::new();
        for s in [1, 2, 3] {
            left.merge_from(&shard(s));
        }
        let mut right = Metrics::new();
        for s in [1, 2, 3] {
            right.merge_from(&shard(s));
        }
        assert_eq!(left, right);
        assert_eq!(left.counter("packets"), 6);
        assert_eq!(
            left.gauge("energy_uj").to_bits(),
            right.gauge("energy_uj").to_bits()
        );
        assert_eq!(left.histogram("airtime").unwrap().count(), 3);
    }

    #[test]
    fn merge_appends_unknown_names_in_order() {
        let mut a = Metrics::new();
        a.inc("x", 1);
        let mut b = Metrics::new();
        b.inc("y", 2);
        b.inc("z", 3);
        a.merge_from(&b);
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["x", "y", "z"]);
    }

    #[test]
    fn metrics_round_trip_through_json_bit_exactly() {
        let mut m = Metrics::new();
        m.inc("fleet.offered", 7);
        m.add("power.total.uj", 12.5 + 0.1); // a non-terminating binary sum
        m.observe("airtime_us", 1040.0);
        m.observe("airtime_us", f64::NAN);
        m.observe("airtime_us", f64::INFINITY);
        m.register_histogram("empty.hist", &[1.0, 2.0]);
        let text = m.to_json().to_string();
        let back = Metrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        // Bit-exact: the gauge sum, the histogram aggregates and the empty
        // histogram's min/max sentinels all survive the text round trip.
        assert_eq!(m, back);
        assert_eq!(
            m.gauge("power.total.uj").to_bits(),
            back.gauge("power.total.uj").to_bits()
        );
        let (a, b) = (
            m.histogram("airtime_us").unwrap(),
            back.histogram("airtime_us").unwrap(),
        );
        assert_eq!(a.mean().unwrap().to_bits(), b.mean().unwrap().to_bits());
        assert_eq!(b.nan_count(), 1);
        // Registration order (the merge law's fold order) is preserved.
        let names: Vec<&str> = back.iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "fleet.offered",
                "power.total.uj",
                "airtime_us",
                "empty.hist"
            ]
        );
    }

    #[test]
    fn metric_from_json_rejects_foreign_shapes() {
        assert!(Metric::from_json(&Json::Str("x".into())).is_err());
        assert!(Metric::from_json(&Json::Int(-3)).is_err());
        assert!(Metrics::from_json(&Json::Arr(Vec::new())).is_err());
        // A histogram missing its overflow bucket is structurally invalid.
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        let mut json = h.to_json();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "counts" {
                    *v = Json::Arr(vec![Json::UInt(1)]);
                }
            }
        }
        assert!(Histogram::from_json(&json).is_err());
    }

    #[test]
    fn metrics_serialize_to_json_object() {
        let mut m = Metrics::new();
        m.inc("fleet.offered", 7);
        m.add("power.total.uj", 12.5);
        m.observe("airtime_us", 1040.0);
        let json = m.to_json();
        assert_eq!(json.get("fleet.offered").and_then(Json::as_u64), Some(7));
        assert!(json
            .get("airtime_us")
            .and_then(|h| h.get("counts"))
            .is_some());
        // The document parses back as JSON text (the JSONL contract).
        assert!(Json::parse(&json.to_string()).is_ok());
    }
}
