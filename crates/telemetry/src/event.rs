//! Structured telemetry events: the JSON-lines vocabulary of the workspace.

use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};

/// Sentinel meaning "not attributed to any one node" (fleet-level events).
pub const NO_NODE: u32 = u32::MAX;

/// What happened. Every variant is a fact a simulation hot path can state
/// in O(1); interpretation (rates, ratios, figures) happens offline.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A sensor wake (one sample cycle) fired.
    Wake {
        /// Running wake count on this node, 1-based.
        index: u64,
    },
    /// A packet left the antenna.
    Tx {
        /// Frame length in bytes.
        bytes: u32,
        /// On-air time in microseconds.
        airtime_us: f64,
        /// RF-rail energy in microjoules.
        energy_uj: f64,
    },
    /// A relay node's wakeup receiver detected and decoded a frame from a
    /// neighbor (the mesh RX path).
    Rx {
        /// Fleet index of the transmitting node.
        from: u32,
        /// Hop count of the received copy (0 = heard the originator).
        hops: u32,
        /// Receive level at the detector in dBm.
        level_dbm: f64,
    },
    /// A relay node scheduled a rebroadcast of a received frame.
    Relay {
        /// Fleet index of the packet's originating node.
        origin: u32,
        /// Hop count of the rebroadcast copy (1 = first relay).
        hops: u32,
    },
    /// The wakeup receiver asserted a wake with no frame on the air
    /// (noise-triggered, at the detector's `false_rate`).
    FalseWake,
    /// The supply supervisor pulled the rails (battery too depleted).
    BrownOut,
    /// The cell recovered past the restart threshold; firmware cold-booted.
    Recovered,
    /// Verdict for one offered packet after collision/capture/channel.
    PacketFate {
        /// `"delivered"`, `"collided"` or `"channel_loss"`.
        fate: &'static str,
    },
    /// The node latched a fault and stopped simulating.
    Fault {
        /// `"illegal_instruction"`, `"stuck"` or `"power_chain"`.
        what: &'static str,
    },
    /// An engine phase (e.g. `"simulate"`, `"merge"`) began.
    PhaseStart {
        /// Phase name.
        phase: String,
    },
    /// An engine phase completed.
    PhaseEnd {
        /// Phase name.
        phase: String,
    },
}

impl EventKind {
    /// The kind's wire tag (the `"kind"` field of the JSON line).
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Wake { .. } => "wake",
            Self::Tx { .. } => "tx",
            Self::Rx { .. } => "rx",
            Self::Relay { .. } => "relay",
            Self::FalseWake => "false_wake",
            Self::BrownOut => "brown_out",
            Self::Recovered => "recovered",
            Self::PacketFate { .. } => "packet_fate",
            Self::Fault { .. } => "fault",
            Self::PhaseStart { .. } => "phase_start",
            Self::PhaseEnd { .. } => "phase_end",
        }
    }
}

/// One telemetry event: a timestamped, node-attributed [`EventKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time in integer nanoseconds.
    pub t_ns: u64,
    /// Fleet index of the emitting node, or [`NO_NODE`] for engine-level
    /// events.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an engine-level (nodeless) event.
    pub fn engine(t_ns: u64, kind: EventKind) -> Self {
        Self {
            t_ns,
            node: NO_NODE,
            kind,
        }
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let mut obj = vec![
            ("t_ns".into(), self.t_ns.to_json()),
            ("kind".into(), Json::Str(self.kind.tag().into())),
        ];
        if self.node != NO_NODE {
            obj.insert(1, ("node".into(), self.node.to_json()));
        }
        match &self.kind {
            EventKind::Wake { index } => obj.push(("index".into(), index.to_json())),
            EventKind::Tx {
                bytes,
                airtime_us,
                energy_uj,
            } => {
                obj.push(("bytes".into(), bytes.to_json()));
                obj.push(("airtime_us".into(), airtime_us.to_json()));
                obj.push(("energy_uj".into(), energy_uj.to_json()));
            }
            EventKind::Rx {
                from,
                hops,
                level_dbm,
            } => {
                obj.push(("from".into(), from.to_json()));
                obj.push(("hops".into(), hops.to_json()));
                obj.push(("level_dbm".into(), level_dbm.to_json()));
            }
            EventKind::Relay { origin, hops } => {
                obj.push(("origin".into(), origin.to_json()));
                obj.push(("hops".into(), hops.to_json()));
            }
            EventKind::FalseWake | EventKind::BrownOut | EventKind::Recovered => {}
            EventKind::PacketFate { fate } => {
                obj.push(("fate".into(), Json::Str((*fate).into())));
            }
            EventKind::Fault { what } => {
                obj.push(("what".into(), Json::Str((*what).into())));
            }
            EventKind::PhaseStart { phase } | EventKind::PhaseEnd { phase } => {
                obj.push(("phase".into(), phase.to_json()));
            }
        }
        Json::Obj(obj)
    }
}

impl FromJson for Event {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let t_ns = u64::from_json(field(value, "t_ns")?)?;
        let node = match value.get("node") {
            Some(n) => u32::from_json(n)?,
            None => NO_NODE,
        };
        let tag = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::new("event missing kind"))?;
        let kind = match tag {
            "wake" => EventKind::Wake {
                index: u64::from_json(field(value, "index")?)?,
            },
            "tx" => EventKind::Tx {
                bytes: u32::from_json(field(value, "bytes")?)?,
                airtime_us: f64::from_json(field(value, "airtime_us")?)?,
                energy_uj: f64::from_json(field(value, "energy_uj")?)?,
            },
            "rx" => EventKind::Rx {
                from: u32::from_json(field(value, "from")?)?,
                hops: u32::from_json(field(value, "hops")?)?,
                level_dbm: f64::from_json(field(value, "level_dbm")?)?,
            },
            "relay" => EventKind::Relay {
                origin: u32::from_json(field(value, "origin")?)?,
                hops: u32::from_json(field(value, "hops")?)?,
            },
            "false_wake" => EventKind::FalseWake,
            "brown_out" => EventKind::BrownOut,
            "recovered" => EventKind::Recovered,
            "packet_fate" => {
                let fate = match field(value, "fate")?.as_str() {
                    Some("delivered") => "delivered",
                    Some("collided") => "collided",
                    Some("channel_loss") => "channel_loss",
                    _ => return Err(JsonError::new("unknown packet fate")),
                };
                EventKind::PacketFate { fate }
            }
            "fault" => {
                let what = match field(value, "what")?.as_str() {
                    Some("illegal_instruction") => "illegal_instruction",
                    Some("stuck") => "stuck",
                    Some("power_chain") => "power_chain",
                    _ => return Err(JsonError::new("unknown fault kind")),
                };
                EventKind::Fault { what }
            }
            "phase_start" => EventKind::PhaseStart {
                phase: String::from_json(field(value, "phase")?)?,
            },
            "phase_end" => EventKind::PhaseEnd {
                phase: String::from_json(field(value, "phase")?)?,
            },
            other => return Err(JsonError::new(format!("unknown event kind {other:?}"))),
        };
        Ok(Self { t_ns, node, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event {
                t_ns: 6_000_000_000,
                node: 3,
                kind: EventKind::Wake { index: 1 },
            },
            Event {
                t_ns: 6_014_000_000,
                node: 3,
                kind: EventKind::Tx {
                    bytes: 11,
                    airtime_us: 1040.0,
                    energy_uj: 1.5,
                },
            },
            Event::engine(
                0,
                EventKind::PhaseStart {
                    phase: "simulate".into(),
                },
            ),
            Event {
                t_ns: 7,
                node: 0,
                kind: EventKind::PacketFate { fate: "collided" },
            },
            Event {
                t_ns: 8,
                node: 1,
                kind: EventKind::BrownOut,
            },
            Event {
                t_ns: 10,
                node: 4,
                kind: EventKind::Rx {
                    from: 3,
                    hops: 1,
                    level_dbm: -61.5,
                },
            },
            Event {
                t_ns: 11,
                node: 4,
                kind: EventKind::Relay { origin: 3, hops: 2 },
            },
            Event {
                t_ns: 12,
                node: 5,
                kind: EventKind::FalseWake,
            },
            Event {
                t_ns: 9,
                node: 2,
                kind: EventKind::Fault {
                    what: "illegal_instruction",
                },
            },
        ];
        for event in events {
            let json = event.to_json();
            let back = Event::from_json(&json).expect("round trip");
            assert_eq!(back, event);
            // And through text, the JSONL path.
            let reparsed = Json::parse(&json.to_string()).expect("parses");
            assert_eq!(Event::from_json(&reparsed).expect("round trip"), event);
        }
    }

    #[test]
    fn engine_events_omit_the_node_field() {
        let e = Event::engine(
            0,
            EventKind::PhaseEnd {
                phase: "merge".into(),
            },
        );
        let text = e.to_json().to_string();
        assert!(!text.contains("\"node\""), "{text}");
    }

    #[test]
    fn unknown_kind_rejected() {
        let json = Json::parse(r#"{"t_ns": 0, "kind": "warp"}"#).unwrap();
        assert!(Event::from_json(&json).is_err());
    }
}
