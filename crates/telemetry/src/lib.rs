//! Workspace-wide instrumentation: counters, event logs and per-rail
//! energy export behind one small public API.
//!
//! The paper's headline claims (the 6 µW average, the Fig. 6 power
//! profile, the 46 % PA efficiency) are *measured time-series*, so the
//! simulator's observability layer is first-class rather than ad-hoc
//! printlns. Three pieces:
//!
//! * [`Recorder`] — the event-sink trait. [`NullRecorder`] is the
//!   zero-overhead default, [`JsonlRecorder`] writes a structured
//!   JSON-lines log, and `Vec<Event>` collects in memory for tests.
//! * [`Metrics`] — an insertion-ordered registry of named counters,
//!   gauges and [`Histogram`]s with a deterministic, fixed-order merge.
//! * [`TelemetryBuffer`] — the per-shard accumulator. Each fleet node
//!   records into its own buffer on whatever thread simulates it; buffers
//!   merge **in node order**, so serial and threaded runs produce
//!   bit-identical event streams and metric totals.
//!
//! # Examples
//!
//! ```
//! use picocube_telemetry::{Event, EventKind, Metrics, Recorder, TelemetryBuffer};
//!
//! let mut shard = TelemetryBuffer::with_events(true);
//! shard.metrics.inc("radio.tx.packets", 1);
//! shard.record(6_000_000_000, EventKind::Wake { index: 1 });
//! shard.attribute_to(3); // fleet assigns the node index
//!
//! let mut fleet = TelemetryBuffer::with_events(true);
//! fleet.absorb(shard);
//! assert_eq!(fleet.metrics.counter("radio.tx.packets"), 1);
//! assert_eq!(fleet.events()[0].node, 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
pub mod keys;
mod metrics;
mod recorder;

pub use event::{Event, EventKind, NO_NODE};
pub use metrics::{Histogram, Metric, Metrics, DEFAULT_BOUNDS};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder};

/// Per-shard telemetry accumulator: a [`Metrics`] registry plus an
/// optional event buffer. Plain data and `Send`, so fleet worker threads
/// can hand finished buffers back for ordered merging.
#[derive(Debug, Clone, Default)]
pub struct TelemetryBuffer {
    /// The shard's metric registry.
    pub metrics: Metrics,
    events: Vec<Event>,
    events_enabled: bool,
}

// The parallel engine moves buffers across threads; keep the guarantee
// explicit so a non-Send field shows up here.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TelemetryBuffer>();
    assert_send::<Event>();
    assert_send::<Metrics>();
};

impl TelemetryBuffer {
    /// Creates a buffer with event recording disabled (metrics only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with event recording on or off.
    pub fn with_events(enabled: bool) -> Self {
        Self {
            events_enabled: enabled,
            ..Self::default()
        }
    }

    /// Whether [`record`](Self::record) keeps events. Metric updates are
    /// always kept.
    pub fn events_enabled(&self) -> bool {
        self.events_enabled
    }

    /// Turns event buffering on or off (existing events are kept).
    pub fn set_events_enabled(&mut self, enabled: bool) {
        self.events_enabled = enabled;
    }

    /// Buffers an event at `t_ns`, unattributed ([`NO_NODE`]) until
    /// [`attribute_to`](Self::attribute_to) assigns an owner. A no-op when
    /// events are disabled.
    pub fn record(&mut self, t_ns: u64, kind: EventKind) {
        if self.events_enabled {
            self.events.push(Event::engine(t_ns, kind));
        }
    }

    /// Buffers an event already attributed to `node` (the merge phase
    /// knows packet owners directly). A no-op when events are disabled.
    pub fn record_for(&mut self, node: u32, t_ns: u64, kind: EventKind) {
        if self.events_enabled {
            self.events.push(Event { t_ns, node, kind });
        }
    }

    /// The buffered events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Stamps every unattributed event with `node`. The node model does
    /// not know its fleet index; the fleet assigns it after phase 1.
    pub fn attribute_to(&mut self, node: u32) {
        for event in &mut self.events {
            if event.node == NO_NODE {
                event.node = node;
            }
        }
    }

    /// Folds another buffer into this one: metrics merge (counters and
    /// gauges add, histograms merge bucket-wise) and events append.
    /// Absorbing shards in node order is the determinism contract.
    pub fn absorb(&mut self, other: TelemetryBuffer) {
        self.metrics.merge_from(&other.metrics);
        self.events.extend(other.events);
    }

    /// Stable-sorts buffered events by `(t_ns, node)`. Within one node the
    /// recording order (already time-ordered) is preserved, so the result
    /// is a canonical interleaving independent of merge order.
    pub fn sort_events(&mut self) {
        self.events.sort_by_key(|e| (e.t_ns, e.node));
    }

    /// Drains the buffered events into `recorder` (buffer keeps metrics).
    pub fn drain_events_into(&mut self, recorder: &mut dyn Recorder) {
        for event in self.events.drain(..) {
            recorder.record(&event);
        }
    }
}

/// Renders a fixed-width summary table of a metric registry, one line per
/// metric in registration order — the `exp_*` binaries' report format.
pub fn summary_table(metrics: &Metrics) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let width = metrics
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0)
        .max(6);
    for (name, metric) in metrics.iter() {
        let _ = match metric {
            Metric::Counter(v) => writeln!(out, "  {name:<width$} {v:>14}"),
            Metric::Gauge(v) => writeln!(out, "  {name:<width$} {v:>14.3}"),
            Metric::Histogram(h) => {
                let mean = h
                    .mean()
                    .map_or_else(|| "-".to_string(), |m| format!("{m:.3}"));
                let max = h
                    .max()
                    .map_or_else(|| "-".to_string(), |m| format!("{m:.3}"));
                writeln!(
                    out,
                    "  {name:<width$} {:>14} observations  mean {mean}  max {max}",
                    h.count()
                )
            }
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_drops_events_but_keeps_metrics() {
        let mut b = TelemetryBuffer::new();
        b.record(5, EventKind::BrownOut);
        b.metrics.inc("node.brownouts", 1);
        assert!(b.events().is_empty());
        assert_eq!(b.metrics.counter("node.brownouts"), 1);
    }

    #[test]
    fn attribution_only_touches_unowned_events() {
        let mut b = TelemetryBuffer::with_events(true);
        b.record(1, EventKind::Wake { index: 1 });
        b.attribute_to(7);
        b.record(2, EventKind::Wake { index: 2 });
        b.attribute_to(9);
        assert_eq!(b.events()[0].node, 7);
        assert_eq!(b.events()[1].node, 9);
    }

    #[test]
    fn absorb_in_node_order_is_deterministic() {
        let shard = |node: u32, t: u64| {
            let mut b = TelemetryBuffer::with_events(true);
            b.record(t, EventKind::Wake { index: 1 });
            b.metrics.add("power.total.uj", f64::from(node) * 0.3);
            b.attribute_to(node);
            b
        };
        let fold = || {
            let mut all = TelemetryBuffer::with_events(true);
            for node in 0..4 {
                all.absorb(shard(node, 10 - u64::from(node)));
            }
            all.sort_events();
            all
        };
        let (a, b) = (fold(), fold());
        assert_eq!(a.events(), b.events());
        assert_eq!(
            a.metrics.gauge("power.total.uj").to_bits(),
            b.metrics.gauge("power.total.uj").to_bits()
        );
        // Sorted canonically: ascending time, ties broken by node.
        let times: Vec<u64> = a.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(times, [7, 8, 9, 10]);
    }

    #[test]
    fn summary_table_lists_every_metric() {
        let mut m = Metrics::new();
        m.inc("fleet.offered", 42);
        m.add("power.total.uj", 1.25);
        m.observe("radio.tx.airtime_us", 1040.0);
        let table = summary_table(&m);
        assert!(table.contains("fleet.offered"));
        assert!(table.contains("42"));
        assert!(table.contains("power.total.uj"));
        assert!(table.contains("observations"));
    }
}
