//! Event sinks: where the telemetry stream goes.

use crate::event::Event;
use picocube_units::json::ToJson;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A consumer of telemetry [`Event`]s.
///
/// Hot paths check [`wants_events`](Recorder::wants_events) before paying
/// for event construction; a disabled recorder (the [`NullRecorder`]
/// default) therefore costs one branch per potential event and nothing
/// else. Metric counters are maintained unconditionally — they are integer
/// adds and every engine report is built from them.
pub trait Recorder {
    /// Whether this sink wants events at all. Instrumented code may skip
    /// building events when this returns `false`.
    fn wants_events(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Flushes any buffered output (a no-op for in-memory sinks).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying sink.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The zero-overhead default: discards everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn wants_events(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &Event) {}
}

/// In-memory sink: a plain `Vec<Event>` collects the stream. The
/// determinism tests diff two of these.
impl Recorder for Vec<Event> {
    fn record(&mut self, event: &Event) {
        self.push(event.clone());
    }
}

/// Structured JSON-lines sink: one event per line, written through the
/// workspace's own `units::json` serializer (no external crates).
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlRecorder<BufWriter<File>> {
    /// Creates (truncating) a JSONL log file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any error from [`File::create`].
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlRecorder<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        Self {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first write error encountered, if any. `record` cannot return
    /// errors through the trait, so failures are latched here and surfaced
    /// by [`flush`](Recorder::flush).
    pub fn last_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the latched write error or any flush error.
    pub fn finish(mut self) -> io::Result<W> {
        Recorder::flush(&mut self)?;
        Ok(self.out)
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json().to_string();
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use picocube_units::json::{FromJson, Json};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                t_ns: 1,
                node: 0,
                kind: EventKind::Wake { index: 1 },
            },
            Event::engine(
                2,
                EventKind::PhaseStart {
                    phase: "merge".into(),
                },
            ),
        ]
    }

    #[test]
    fn null_recorder_wants_nothing() {
        let mut r = NullRecorder;
        assert!(!r.wants_events());
        r.record(&sample_events()[0]); // and drops what it is given
        assert!(r.flush().is_ok());
    }

    #[test]
    fn vec_recorder_collects() {
        let mut sink: Vec<Event> = Vec::new();
        for e in &sample_events() {
            sink.record(e);
        }
        assert_eq!(sink, sample_events());
    }

    #[test]
    fn jsonl_lines_parse_back_to_events() {
        let mut rec = JsonlRecorder::new(Vec::<u8>::new());
        for e in &sample_events() {
            rec.record(e);
        }
        assert_eq!(rec.lines(), 2);
        let bytes = rec.finish().expect("no io errors");
        let text = String::from_utf8(bytes).expect("utf8");
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| Event::from_json(&Json::parse(l).expect("line parses")).expect("event"))
            .collect();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn write_errors_latch_and_surface_on_flush() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut rec = JsonlRecorder::new(Broken);
        rec.record(&sample_events()[0]);
        assert!(rec.last_error().is_some());
        rec.record(&sample_events()[1]); // no panic, still latched
        assert_eq!(rec.lines(), 0);
        assert!(Recorder::flush(&mut rec).is_err());
    }
}
