//! Shared command-line parsing for the `exp_*` experiment binaries.
//!
//! Every fleet-flavoured experiment historically carried its own copy of
//! the `--nodes/--threads/--duration/--telemetry/--mesh` parser; this
//! module is the one shared implementation. Parsing is `Result`-based — binaries call
//! [`CommonArgs::parse_or_exit`] which prints the error plus a usage line
//! and exits with status 2, the conventional "bad invocation" code,
//! instead of panicking with a backtrace at the user.
//!
//! ```
//! use picocube_bench::cli::CommonArgs;
//!
//! let args = CommonArgs::parse(["--nodes", "4,16", "--threads", "3"].into_iter().map(String::from))
//!     .unwrap();
//! assert_eq!(args.nodes, vec![4, 16]);
//! ```

use picocube_node::Parallelism;
use std::fmt;

/// The flags shared by the fleet/mesh experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Fleet sizes from `--nodes N[,N...]`; empty when the flag was
    /// omitted (binaries substitute their own default sweep).
    pub nodes: Vec<usize>,
    /// Engine parallelism from `--threads T` (`T == 1` means serial, `0`
    /// is rejected; results are bit-identical either way).
    pub parallelism: Parallelism,
    /// Simulated span in seconds from `--duration S`; `None` when omitted
    /// (binaries substitute their own default). Big-fleet streaming smokes
    /// shorten this so a 100k–1M-node run finishes in CI time.
    pub duration_s: Option<u64>,
    /// JSONL event-log path from `--telemetry PATH`.
    pub telemetry: Option<String>,
    /// Whether `--mesh` selected the wakeup-RX relay-mesh engine.
    pub mesh: bool,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            nodes: Vec::new(),
            parallelism: Parallelism::Serial,
            duration_s: None,
            telemetry: None,
            mesh: false,
        }
    }
}

/// A malformed command line, reported as `error: <Display>` next to the
/// binary's usage string.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// A flag that takes a value was last on the command line.
    MissingValue(&'static str),
    /// A flag's value failed to parse; carries the flag and the offending
    /// token.
    InvalidValue(&'static str, String),
    /// A count flag parsed but was zero — a fleet of zero nodes or an
    /// engine with zero threads is never what the caller meant, so the
    /// parser names the flag instead of silently "rounding up".
    ZeroValue(&'static str),
    /// A token no experiment binary understands.
    UnknownArg(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::InvalidValue(flag, got) => write!(f, "{flag}: invalid value {got:?}"),
            CliError::ZeroValue(flag) => write!(f, "{flag}: must be at least 1"),
            CliError::UnknownArg(arg) => write!(f, "unknown argument {arg:?}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CommonArgs {
    /// Parses an argument iterator (without the program name).
    ///
    /// Accepts `--nodes N[,N...]` (positive integers), `--threads T`,
    /// `--duration S`, `--telemetry PATH` and `--mesh`, in any order;
    /// later occurrences override earlier ones.
    pub fn parse<I: Iterator<Item = String>>(mut argv: I) -> Result<Self, CliError> {
        let mut args = CommonArgs::default();
        while let Some(arg) = argv.next() {
            match arg.as_str() {
                "--nodes" => {
                    let list = argv.next().ok_or(CliError::MissingValue("--nodes"))?;
                    let nodes: Result<Vec<usize>, _> =
                        list.split(',').map(|n| n.trim().parse::<usize>()).collect();
                    args.nodes = match nodes {
                        Ok(nodes) if nodes.contains(&0) => {
                            return Err(CliError::ZeroValue("--nodes"))
                        }
                        Ok(nodes) if !nodes.is_empty() => nodes,
                        _ => return Err(CliError::InvalidValue("--nodes", list)),
                    };
                }
                "--threads" => {
                    let value = argv.next().ok_or(CliError::MissingValue("--threads"))?;
                    let t: usize = value
                        .trim()
                        .parse()
                        .map_err(|_| CliError::InvalidValue("--threads", value))?;
                    args.parallelism = match t {
                        0 => return Err(CliError::ZeroValue("--threads")),
                        1 => Parallelism::Serial,
                        t => Parallelism::Threads(t),
                    };
                }
                "--duration" => {
                    let value = argv.next().ok_or(CliError::MissingValue("--duration"))?;
                    let s: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| CliError::InvalidValue("--duration", value))?;
                    if s == 0 {
                        return Err(CliError::ZeroValue("--duration"));
                    }
                    args.duration_s = Some(s);
                }
                "--telemetry" => {
                    args.telemetry =
                        Some(argv.next().ok_or(CliError::MissingValue("--telemetry"))?);
                }
                "--mesh" => args.mesh = true,
                other => return Err(CliError::UnknownArg(other.to_string())),
            }
        }
        Ok(args)
    }

    /// Parses the process command line, printing the error and `usage`
    /// to stderr and exiting with status 2 on a malformed invocation.
    pub fn parse_or_exit(usage: &str) -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, CliError> {
        CommonArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, CommonArgs::default());
        assert_eq!(args.parallelism, Parallelism::Serial);
    }

    #[test]
    fn parses_every_flag() {
        let args = parse(&[
            "--nodes",
            "4, 16,64",
            "--threads",
            "3",
            "--telemetry",
            "out.jsonl",
            "--mesh",
        ])
        .unwrap();
        assert_eq!(args.nodes, vec![4, 16, 64]);
        assert_eq!(args.parallelism, Parallelism::Threads(3));
        assert_eq!(args.telemetry.as_deref(), Some("out.jsonl"));
        assert!(args.mesh);
    }

    #[test]
    fn one_thread_stays_serial() {
        let args = parse(&["--threads", "1"]).unwrap();
        assert_eq!(args.parallelism, Parallelism::Serial);
    }

    #[test]
    fn parses_duration() {
        let args = parse(&["--duration", "6"]).unwrap();
        assert_eq!(args.duration_s, Some(6));
        assert_eq!(parse(&[]).unwrap().duration_s, None);
    }

    #[test]
    fn zero_counts_are_rejected_by_flag_name() {
        assert_eq!(
            parse(&["--nodes", "0"]),
            Err(CliError::ZeroValue("--nodes"))
        );
        assert_eq!(
            parse(&["--nodes", "4,0,16"]),
            Err(CliError::ZeroValue("--nodes"))
        );
        assert_eq!(
            parse(&["--threads", "0"]),
            Err(CliError::ZeroValue("--threads"))
        );
        assert_eq!(
            parse(&["--duration", "0"]),
            Err(CliError::ZeroValue("--duration"))
        );
        assert_eq!(
            CliError::ZeroValue("--threads").to_string(),
            "--threads: must be at least 1"
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(parse(&["--nodes"]), Err(CliError::MissingValue("--nodes")));
        assert_eq!(
            parse(&["--nodes", "4,x"]),
            Err(CliError::InvalidValue("--nodes", "4,x".into()))
        );
        assert_eq!(
            parse(&["--threads", "many"]),
            Err(CliError::InvalidValue("--threads", "many".into()))
        );
        assert_eq!(
            parse(&["--bogus"]),
            Err(CliError::UnknownArg("--bogus".into()))
        );
    }
}
