//! E14 (extension) — §7.1: "large-ratio conversions are possible through
//! topologies in \[13\]. In addition, variable-ratio inverters can … also
//! efficiently rectify a varying waveform from an energy scavenger."
//! Ablation: fixed-gear vs gear-bank conversion across a scavenger swing.

use picocube_bench::{banner, bar};
use picocube_power::sc::ScConverter;
use picocube_power::sc_ratio::{
    dickson_step_up, series_parallel_step_up, series_parallel_step_up_stressed,
    VariableRatioConverter,
};
use picocube_units::{Amps, Farads, Ohms, Volts};

fn main() {
    banner(
        "E14 / §7.1 (extension)",
        "large- and variable-ratio SC conversion",
        "gear-bank rectification holds efficiency across a scavenger's voltage swing",
    );

    // Large ratios: efficiency vs conversion ratio at a fixed load.
    println!("\nlarge-ratio step-up from the 1.2 V cell (200 µA load):\n");
    println!("{:>8} {:>9} {:>8}", "ratio", "vout", "η");
    for n in 2..=6 {
        let conv = ScConverter::new(
            series_parallel_step_up(n, Farads::from_nano(4.0), Ohms::new(3.0)).unwrap(),
            Amps::from_micro(1.0),
        )
        .unwrap();
        match conv.convert_optimal(Volts::new(1.2), Amps::from_micro(200.0)) {
            Ok(op) => println!(
                "{:>7}x {:>8.2}V {:>7.1}% {}",
                n,
                op.vout.value(),
                op.efficiency() * 100.0,
                bar(op.efficiency(), 1.0, 25)
            ),
            Err(e) => println!("{:>7}x      ({e})", n),
        }
    }
    println!("\nthe trend the Seeman–Sanders framework predicts: conduction charge");
    println!("multipliers grow with ratio, so each extra stage costs a few points.");

    // Variable-ratio rectification across a swing.
    println!("\ncharging the 1.25 V cell from a swinging scavenger voltage, 1 mA:\n");
    println!(
        "{:>8} {:>22} {:>14} {:>14}",
        "v_in", "bank gear", "bank η", "fixed 1:2 η"
    );
    let bank = VariableRatioConverter::scavenger_bank().unwrap();
    let fixed = ScConverter::new(
        series_parallel_step_up(2, Farads::from_nano(4.0), Ohms::new(3.0)).unwrap(),
        Amps::from_micro(1.0),
    )
    .unwrap();
    let target = Volts::new(1.25);
    let load = Amps::from_milli(1.0);
    let mut bank_sum = 0.0;
    let mut fixed_sum = 0.0;
    let mut count = 0.0;
    for vin_v in [0.7, 0.9, 1.1, 1.4, 1.8, 2.4, 3.2, 4.0] {
        let vin = Volts::new(vin_v);
        let (gear_name, bank_eff) = match bank.best_gear(vin, target) {
            Some(g) => (
                g.topology().name().to_string(),
                bank.convert(vin, target, load)
                    .map(|c| c.efficiency())
                    .unwrap_or(0.0),
            ),
            None => ("(none)".to_string(), 0.0),
        };
        let fixed_eff = fixed
            .regulate(vin, target, load)
            .map(|c| c.efficiency())
            .unwrap_or(0.0);
        bank_sum += bank_eff;
        fixed_sum += fixed_eff;
        count += 1.0;
        println!(
            "{:>7.1}V {:>22} {:>13.1}% {:>13.1}%",
            vin_v,
            gear_name,
            bank_eff * 100.0,
            fixed_eff * 100.0
        );
    }
    println!(
        "\nswing-average efficiency: bank {:.1} % vs fixed doubler {:.1} %",
        bank_sum / count * 100.0,
        fixed_sum / count * 100.0
    );
    println!("the fixed gear must burn every volt of ratio mismatch as conduction");
    println!("drop; the bank shifts to the nearest ratio and keeps the loss small —");
    println!("the §7.1 argument for variable-ratio scavenger rectification.");

    // Topology choice, in reference [13]'s figures of merit.
    println!("\nSeeman–Sanders figures of merit (lower is better) per 1:n ratio:\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "ratio", "SP SSL", "Dickson SSL", "SP FSL", "Dickson FSL"
    );
    for n in [2u32, 3, 4, 5] {
        let sp =
            series_parallel_step_up_stressed(n, Farads::from_nano(4.0), Ohms::new(3.0)).unwrap();
        let d = dickson_step_up(n, Farads::from_nano(4.0), Ohms::new(3.0)).unwrap();
        println!(
            "{:>5}x {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            n,
            sp.ssl_figure_of_merit(),
            d.ssl_figure_of_merit(),
            sp.fsl_figure_of_merit(),
            d.fsl_figure_of_merit()
        );
    }
    println!("\nseries-parallel is the capacitor-friendly choice (SSL), Dickson the");
    println!("switch-friendly one (FSL) — the menu behind §7.1's \"library of");
    println!("parameterizable management cores\".");
}
