//! E12 — §1/§4.4/§7.2: energy-neutral operation. "One of the main goals of
//! the project was to eliminate the need for long-term energy storage" —
//! battery trajectories under realistic harvest schedules, plus sizing for
//! the §7.2 printed thin-film storage.

use picocube_bench::{banner, bar};
use picocube_harvest::DriveCycle;
use picocube_node::{HarvesterKind, NodeConfig, PicoCube};
use picocube_radio::packet::Checksum;
use picocube_sim::SimDuration;
use picocube_units::{Joules, Watts};

fn soc_run(name: &str, harvester: HarvesterKind, cycle: DriveCycle, minutes: u64, soc0: f64) {
    let config = NodeConfig {
        harvester,
        drive_cycle: cycle,
        initial_soc: soc0,
        ..NodeConfig::default()
    };
    let mut node = PicoCube::tpms(config).expect("node builds");
    node.run_for(SimDuration::from_secs(minutes * 60));
    let report = node.report();
    let net = report.harvested.value() - report.consumed.value();
    println!(
        "{:<26} harvest {:>10.1} µJ  consumed {:>8.1} µJ  net {:>+9.1} µJ  SoC {:>6.3} % -> {:>6.3} %",
        name,
        report.harvested.micro(),
        report.consumed.micro(),
        net * 1e6,
        soc0 * 100.0,
        report.final_soc * 100.0,
    );
    let _ = Checksum::Xor;
}

fn main() {
    banner(
        "E12 / §1+§4.4+§7.2",
        "energy-neutral operation and storage sizing",
        "eliminate long-term energy storage: harvest ≥ consumption over each duty cycle",
    );

    println!("\n30-minute battery trajectories (TPMS node, 15 mAh NiMH, from 50 %):\n");
    soc_run(
        "highway driving",
        HarvesterKind::Automotive,
        DriveCycle::highway(),
        30,
        0.5,
    );
    soc_run(
        "urban stop-and-go",
        HarvesterKind::Automotive,
        DriveCycle::urban(),
        30,
        0.5,
    );
    soc_run(
        "parked (no harvest)",
        HarvesterKind::None,
        DriveCycle::parked(),
        30,
        0.5,
    );
    soc_run(
        "office solar cladding",
        HarvesterKind::Solar(picocube_harvest::Irradiance::office()),
        DriveCycle::parked(),
        30,
        0.5,
    );
    soc_run(
        "bench shaker",
        HarvesterKind::Shaker,
        DriveCycle::parked(),
        30,
        0.5,
    );

    // Ride-through: how long does the buffer last with zero harvest?
    println!("\nride-through on stored energy alone (no harvest):\n");
    let sleep_floor = Watts::from_micro(3.0);
    let duty_6s = Watts::from_micro(6.5);
    for (name, capacity) in [
        (
            "15 mAh NiMH (as built)",
            Joules::from_milliamp_hours(15.0, picocube_units::Volts::new(1.2)),
        ),
        ("0.1 F supercap @ 2.5 V", Joules::new(0.3125)),
        ("printed film, 1 cm², 100 µm (§7.2)", Joules::new(2.0)),
    ] {
        let t_active = capacity / duty_6s;
        let t_sleep = capacity / sleep_floor;
        println!(
            "  {:<36} {:>8.1} days sampling, {:>8.1} days sleeping  {}",
            name,
            t_active.days(),
            t_sleep.days(),
            bar(t_active.days(), 120.0, 20)
        );
    }

    // §7.2 sizing: dispenser-printed films, 30–100 µm, designed to fit.
    println!("\n§7.2 printed-storage sizing (zinc-based chemistry, ~2 J per cm²·100 µm):\n");
    println!(
        "{:>12} {:>14} {:>18}",
        "film [µm]", "J per cm²", "days of sampling"
    );
    for film_um in [30.0, 50.0, 100.0] {
        let j_per_cm2 = 2.0 * film_um / 100.0;
        let days = Joules::new(j_per_cm2) / duty_6s;
        println!(
            "{:>12.0} {:>14.2} {:>18.1}",
            film_um,
            j_per_cm2,
            days.days()
        );
    }
    println!("\nconclusion (matches §1): the buffer only needs to cover harvester");
    println!("*outages* — days, not decades — so even printed thick-film storage");
    println!("suffices once a scavenger is present. Batteries-for-life are not");
    println!("required; that is the PicoCube's premise.");
}
