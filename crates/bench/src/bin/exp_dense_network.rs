//! E13 (extension) — §1: "very dense collaborative networks". The Cube is
//! transmit-only, so its MAC is pure unslotted ALOHA; this experiment maps
//! packet delivery vs deployment density, with the capture effect.
//!
//! Usage: `exp_dense_network [--nodes N[,N...]] [--threads T] [--duration S] [--telemetry PATH] [--mesh]`
//!
//! `--nodes` overrides the default density sweep with specific fleet
//! sizes; `--threads` runs phase 1 of the fleet engine on T worker
//! threads (results are bit-identical to the serial path); `--duration`
//! shortens the simulated span from the default 120 s — the streaming
//! smoke for 100k–1M-node fleets, whose peak RSS the run reports;
//! `--telemetry` streams every fleet run's structured event log to PATH
//! as JSON lines and prints the merged metric registry. Telemetry is
//! deterministic: the same seed produces byte-identical logs serial or
//! threaded.
//!
//! `--mesh` switches the experiment to the wakeup-RX relay mesh
//! (DESIGN.md §12): nodes on a line stretched past the sink's direct
//! reach, flooding each other's packets over the §7.3 wakeup receiver.
//! Reports unique-packet delivery, the hop histogram and the relay energy
//! bill instead of the transmit-only ALOHA table.

use picocube_bench::cli::CommonArgs;
use picocube_bench::{banner, bar};
use picocube_node::{run_fleet_with, run_mesh_with, FleetConfig, MeshConfig, Parallelism};
use picocube_sim::SimDuration;
use picocube_telemetry::{summary_table, JsonlRecorder, Metrics, NullRecorder, Recorder};

const USAGE: &str =
    "exp_dense_network [--nodes N[,N...]] [--threads T] [--duration S] [--telemetry PATH] [--mesh]";

fn parse_args() -> CommonArgs {
    let mut args = CommonArgs::parse_or_exit(USAGE);
    if args.nodes.is_empty() {
        // The mesh engine couples every node through windowed sync, so its
        // default sweep stays smaller than the embarrassingly parallel
        // transmit-only one.
        args.nodes = if args.mesh {
            vec![2, 4, 8, 12, 16]
        } else {
            vec![1, 4, 16, 64, 128, 256]
        };
    }
    args
}

/// The `--mesh` experiment: a line of relaying nodes at 2.5 m spacing —
/// far enough that the tail of the line is outside the sink's direct
/// decode range and delivers only through the flooding fabric.
fn run_mesh_sweep(args: &CommonArgs) {
    banner(
        "E13 / §7.3 (extension)",
        "wakeup-RX relay mesh: multi-hop delivery vs fleet size",
        "the §7.3 wakeup receiver turns transmit-only Cubes into a flooding mesh",
    );
    if let Parallelism::Threads(t) = args.parallelism {
        println!("\nmesh engine on {t} worker threads (bit-identical to serial)");
    }

    let mut jsonl = args.telemetry.as_deref().map(|path| {
        JsonlRecorder::create(path).unwrap_or_else(|e| panic!("--telemetry {path}: {e}"))
    });
    let mut merged = Metrics::new();

    let duration_s = args.duration_s.unwrap_or(60);
    println!("\n{duration_s} s deployments, 2.5 m spacing, sink 2 m off the head of the line:\n");
    println!(
        "{:>6} {:>8} {:>10} {:>7} {:>8} {:>8} {:>8} {:>12}  by hops",
        "nodes", "unique", "delivered", "ratio", "relays", "rx", "dupes", "relay-uJ"
    );
    for &nodes in &args.nodes {
        let config = MeshConfig {
            nodes,
            duration: SimDuration::from_secs(duration_s),
            spacing_m: 2.5,
            seed: 42,
            parallelism: args.parallelism,
            ..MeshConfig::default()
        };
        let (out, metrics) = match jsonl.as_mut() {
            Some(recorder) => run_mesh_with(&config, recorder),
            None => run_mesh_with(&config, &mut NullRecorder),
        }
        .expect("valid mesh configuration");
        let relay_uj = metrics.gauge("board.radio.relay_energy_uj");
        merged.merge_from(&metrics);
        let ratio = if out.unique_offered == 0 {
            0.0
        } else {
            out.unique_delivered as f64 / out.unique_offered as f64
        };
        let hops: Vec<String> = out
            .delivered_by_hop
            .iter()
            .enumerate()
            .map(|(h, n)| format!("{h}:{n}"))
            .collect();
        println!(
            "{:>6} {:>8} {:>10} {:>6.1}% {:>8} {:>8} {:>8} {:>12.1}  [{}]",
            nodes,
            out.unique_offered,
            out.unique_delivered,
            ratio * 100.0,
            out.relays,
            out.receptions,
            out.duplicates,
            relay_uj,
            hops.join(" ")
        );
    }

    println!("\nhop column h:n = n copies decoded at the sink after h relays;");
    println!("h = 0 is the originator's own transmission. Past ~8 nodes the");
    println!("line outruns the sink's direct range and delivery rides on the");
    println!("h >= 2 buckets — the relay fabric, not the ALOHA channel, sets");
    println!("the delivery floor, at the relay-uJ energy price shown.");

    if let Some(mut recorder) = jsonl {
        recorder.flush().expect("flush telemetry log");
        println!(
            "\nwrote {} telemetry events to {}",
            recorder.lines(),
            args.telemetry.as_deref().unwrap_or("?")
        );
    }
    if args.telemetry.is_some() {
        println!("\nmerged metrics across the sweep:");
        print!("{}", summary_table(&merged));
    }
}

fn main() {
    let args = parse_args();
    if args.mesh {
        run_mesh_sweep(&args);
        return;
    }
    run_fleet_sweep(&args);
    if let Some(hwm) = picocube_bench::rss::max_rss_bytes() {
        // The streaming engine's O(workers) claim, as a number: peak RSS
        // stays flat no matter how many nodes the sweep above streamed.
        println!(
            "\npeak RSS: {} (streaming engine, O(workers) live state)",
            picocube_bench::rss::fmt_bytes(hwm)
        );
    }
}

fn run_fleet_sweep(args: &CommonArgs) {
    banner(
        "E13 / §1 (extension)",
        "dense deployments: ALOHA delivery vs fleet size",
        "nodes \"in very dense collaborative networks\" must share one channel blind",
    );
    if let Parallelism::Threads(t) = args.parallelism {
        println!("\nfleet phase 1 on {t} worker threads (bit-identical to serial)");
    }

    let mut jsonl = args.telemetry.as_deref().map(|path| {
        JsonlRecorder::create(path).unwrap_or_else(|e| panic!("--telemetry {path}: {e}"))
    });
    let mut merged = Metrics::new();
    let mut run = |config: &FleetConfig| {
        let (out, metrics) = match jsonl.as_mut() {
            Some(recorder) => run_fleet_with(config, recorder),
            None => run_fleet_with(config, &mut NullRecorder),
        };
        merged.merge_from(&metrics);
        out
    };

    let duration_s = args.duration_s.unwrap_or(120);
    println!("\n{duration_s} s deployments, 6 s sample period, ~1 ms airtime per packet:\n");
    println!(
        "{:>7} {:>9} {:>10} {:>10} {:>10} {:>9}",
        "nodes", "offered", "collided", "chan-lost", "delivered", "ratio"
    );
    for &nodes in &args.nodes {
        let config = FleetConfig::builder()
            .nodes(nodes)
            .duration(SimDuration::from_secs(duration_s))
            .seed(42)
            .parallelism(args.parallelism)
            .build()
            .expect("valid sweep configuration");
        let out = run(&config);
        println!(
            "{:>7} {:>9} {:>10} {:>10} {:>10} {:>8.1}% {}",
            nodes,
            out.offered,
            out.collided,
            out.channel_losses,
            out.delivered,
            out.delivery_ratio() * 100.0,
            bar(out.delivery_ratio(), 1.0, 20)
        );
    }

    println!("\nALOHA context: with G the normalized offered load, pure ALOHA");
    println!("delivers exp(−2G). At 256 nodes G ≈ 256 × 1 ms / 6 s ≈ 4.3 %, so");
    println!("~92 % delivery is expected — blind transmission scales remarkably");
    println!("far at this duty cycle, which is why the Cube can skip a receiver.");

    // Worst case: clock-locked nodes.
    let locked_config = FleetConfig::builder()
        .nodes(32)
        .duration(SimDuration::from_secs(duration_s))
        .distance_range(1.0, 1.05)
        .seed(43)
        .parallelism(args.parallelism)
        .build()
        .expect("valid locked configuration");
    let locked = run(&locked_config);
    println!(
        "\nequal-power fleet at one table (no capture possible): {:.1} % delivery",
        locked.delivery_ratio() * 100.0
    );
    println!("the ±500 ppm timer tolerance is what keeps phase-locked nodes from");
    println!("colliding forever: drift walks simultaneous transmitters apart.");

    if let Some(mut recorder) = jsonl {
        recorder.flush().expect("flush telemetry log");
        println!(
            "\nwrote {} telemetry events to {}",
            recorder.lines(),
            args.telemetry.as_deref().unwrap_or("?")
        );
    }
    if args.telemetry.is_some() {
        println!("\nmerged metrics across the sweep:");
        print!("{}", summary_table(&merged));
    }
}
