//! E13 (extension) — §1: "very dense collaborative networks". The Cube is
//! transmit-only, so its MAC is pure unslotted ALOHA; this experiment maps
//! packet delivery vs deployment density, with the capture effect.

use picocube_bench::{banner, bar};
use picocube_node::{run_fleet, FleetConfig};
use picocube_sim::SimDuration;

fn main() {
    banner(
        "E13 / §1 (extension)",
        "dense deployments: ALOHA delivery vs fleet size",
        "nodes \"in very dense collaborative networks\" must share one channel blind",
    );

    println!("\n2-minute deployments, 6 s sample period, ~1 ms airtime per packet:\n");
    println!(
        "{:>7} {:>9} {:>10} {:>10} {:>10} {:>9}",
        "nodes", "offered", "collided", "chan-lost", "delivered", "ratio"
    );
    for nodes in [1, 4, 16, 64, 128, 256] {
        let out = run_fleet(&FleetConfig {
            nodes,
            duration: SimDuration::from_secs(120),
            seed: 42,
            ..FleetConfig::default()
        });
        println!(
            "{:>7} {:>9} {:>10} {:>10} {:>10} {:>8.1}% {}",
            nodes,
            out.offered,
            out.collided,
            out.channel_losses,
            out.delivered,
            out.delivery_ratio() * 100.0,
            bar(out.delivery_ratio(), 1.0, 20)
        );
    }

    println!("\nALOHA context: with G the normalized offered load, pure ALOHA");
    println!("delivers exp(−2G). At 256 nodes G ≈ 256 × 1 ms / 6 s ≈ 4.3 %, so");
    println!("~92 % delivery is expected — blind transmission scales remarkably");
    println!("far at this duty cycle, which is why the Cube can skip a receiver.");

    // Worst case: clock-locked nodes.
    let locked = run_fleet(&FleetConfig {
        nodes: 32,
        duration: SimDuration::from_secs(120),
        distance_range: (1.0, 1.05),
        seed: 43,
        ..FleetConfig::default()
    });
    println!(
        "\nequal-power fleet at one table (no capture possible): {:.1} % delivery",
        locked.delivery_ratio() * 100.0
    );
    println!("the ±500 ppm timer tolerance is what keeps phase-locked nodes from");
    println!("colliding forever: drift walks simultaneous transmitters apart.");
}
