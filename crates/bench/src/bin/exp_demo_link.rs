//! E4 — §6 / Figs 7–8: the retreat demo link. "Range is about 1 meter
//! depending on orientation of the antenna."

use picocube_bench::{banner, bar};
use picocube_node::{DemoStation, HarvesterKind, NodeConfig, PicoCube};
use picocube_radio::packet::{encode, Checksum};
use picocube_radio::{Channel, Link, PatchAntenna, SuperRegenReceiver};
use picocube_sensors::MotionScenario;
use picocube_sim::{SimDuration, SimRng};
use picocube_units::{Db, Dbm, Hertz, Meters};

fn demo_link(orientation_db: f64) -> Link {
    Link {
        tx_power: Dbm::new(0.8),
        tx_gain: PatchAntenna::as_built().gain_dbi(Hertz::new(1.863e9)),
        rx_gain: Db::new(0.0),
        orientation_loss: Db::new(orientation_db),
        channel: Channel::demo_room(),
    }
}

fn main() {
    banner(
        "E4 / Figs 7–8",
        "motion demo: end-to-end link",
        "decoded X,Y,Z on the laptop; range ≈ 1 m depending on antenna orientation",
    );

    // Packet success vs distance, for a favourable and an unlucky
    // orientation of the patch.
    let rx = SuperRegenReceiver::bwrc_issc05();
    let frame = encode(0x42, &[0, 0, 0, 0, 0, 0], Checksum::Xor);
    let bits = frame.len() * 8;
    println!(
        "\nreceiver: {} µW superregen, sensitivity {:.0} dBm (reference [12])",
        rx.rx_power().micro(),
        rx.sensitivity().value()
    );
    println!("\npacket success vs range (500 trials/point, demo room):\n");
    println!(
        "{:>8} {:>12} {:>12}",
        "range", "best orient.", "worst orient."
    );
    let mut rng = SimRng::seed_from(4);
    for d in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let mut rates = Vec::new();
        for orient in [2.0, 22.0] {
            let link = demo_link(orient);
            let ok = (0..500)
                .filter(|_| link.try_packet(Meters::new(d), bits, &mut rng))
                .count();
            rates.push(ok as f64 / 500.0);
        }
        println!(
            "{:>7.2}m {:>11.1}% {:>11.1}%  {}",
            d,
            rates[0] * 100.0,
            rates[1] * 100.0,
            bar(rates[1], 1.0, 20)
        );
    }
    let best = demo_link(2.0);
    let worst = demo_link(22.0);
    println!(
        "\n50 %-success range: best orientation {:.1}, worst {:.1}",
        best.half_success_range(bits),
        worst.half_success_range(bits)
    );
    println!("paper: \"about 1 meter depending on orientation\" — the worst-case");
    println!("orientation (patch null toward the receiver) sets the quoted range.");

    // The actual demo: run the node + station end to end.
    println!("\nend-to-end session (90 s on the demo table at 1 m):");
    let config = NodeConfig {
        harvester: HarvesterKind::Bicycle,
        ..NodeConfig::default()
    };
    let mut node =
        PicoCube::motion(config, MotionScenario::retreat_table(2007)).expect("node builds");
    node.run_for(SimDuration::from_secs(90));
    let mut station = DemoStation::demo_table(2007);
    let packets = node.packets();
    let decoded = station.offer_all(&packets);
    println!("  transmitted: {} packets", packets.len());
    println!("  decoded    : {decoded} ({} lost)", station.lost());
    println!(
        "  received at 1 m: {:.1} dBm  (paper: about −60 dBm)",
        demo_link(2.0).budget(Meters::new(1.0)).received.value()
    );
    if let Some(s) = station.samples().first() {
        println!(
            "  first plotted sample: X={:+.2} g  Y={:+.2} g  Z={:+.2} g",
            s.x.value(),
            s.y.value(),
            s.z.value()
        );
    }

    // Independent physical-layer check: the bit-level envelope demodulator
    // (timing recovery + slicer + sync) agrees with the closed-form model.
    let mut rng = picocube_sim::SimRng::seed_from(99);
    let wf_ok = (0..40)
        .filter(|_| {
            rx.receive_waveform(
                &demo_link(2.0),
                Meters::new(1.0),
                &frame,
                picocube_units::Hertz::from_kilo(100.0),
                Checksum::Xor,
                &mut rng,
            )
            .is_ok()
        })
        .count();
    println!("  waveform-path (bit-level demod) at 1 m: {wf_ok}/40 decode");
}
