//! `scenario_run` — executes a declarative JSON scenario spec.
//!
//! Usage: `scenario_run SPEC.json [--threads T] [--telemetry PATH]`
//!
//! Reads the [`Scenario`] spec from SPEC.json, lowers it onto the fleet
//! (or mesh) engine via `run_scenario_with`, and prints the
//! `ScenarioOutcome` — run summaries, merged metrics, and the survival
//! curve for Monte Carlo campaigns — as one JSON object on stdout, so the
//! output pipes straight into `jq`/plot scripts. Human-oriented chatter
//! goes to stderr.
//!
//! `--threads T` runs node simulation on T worker threads (bit-identical
//! to serial); `--telemetry PATH` streams every run's structured event
//! log to PATH as JSON lines.
//!
//! Exit status: 0 on success, 1 on a scenario error (parse, validation,
//! lowering or build), 2 on a malformed command line.

use picocube_bench::cli::CommonArgs;
use picocube_node::{run_scenario_with, Scenario};
use picocube_telemetry::{JsonlRecorder, NullRecorder, Recorder};
use picocube_units::json::ToJson;

const USAGE: &str = "scenario_run SPEC.json [--threads T] [--telemetry PATH]";

fn bail(message: impl std::fmt::Display, code: i32) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: {USAGE}");
    std::process::exit(code);
}

fn main() {
    // The leading positional SPEC.json is ours; the remaining flags are
    // the shared experiment set.
    let mut argv = std::env::args().skip(1).peekable();
    let spec_path = match argv.peek() {
        Some(arg) if !arg.starts_with("--") => argv.next().unwrap_or_default(),
        _ => bail("expected a scenario spec path as the first argument", 2),
    };
    let args = match CommonArgs::parse(argv) {
        Ok(args) if args.nodes.is_empty() && !args.mesh => args,
        Ok(_) => bail(
            "--nodes/--mesh are spec fields, not flags, for scenario_run",
            2,
        ),
        Err(e) => bail(e, 2),
    };

    let text = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| bail(format_args!("{spec_path}: {e}"), 1));
    let spec = Scenario::parse(&text).unwrap_or_else(|e| bail(format_args!("{spec_path}: {e}"), 1));

    eprintln!(
        "scenario {:?}: {} node(s), {} s{}{}{}",
        spec.name,
        spec.nodes,
        spec.duration_s,
        if spec.mesh.is_some() { ", mesh" } else { "" },
        if spec.chaos.is_some() {
            ", chaos plan"
        } else {
            ""
        },
        match &spec.campaign {
            Some(c) => format!(", campaign of {} seed(s)", c.seeds),
            None => String::new(),
        }
    );

    let mut jsonl = args.telemetry.as_deref().map(|path| {
        JsonlRecorder::create(path)
            .unwrap_or_else(|e| bail(format_args!("--telemetry {path}: {e}"), 1))
    });
    let outcome = match jsonl.as_mut() {
        Some(recorder) => run_scenario_with(&spec, args.parallelism, recorder),
        None => run_scenario_with(&spec, args.parallelism, &mut NullRecorder),
    }
    .unwrap_or_else(|e| bail(e, 1));

    if let Some(mut recorder) = jsonl {
        if let Err(e) = recorder.flush() {
            bail(format_args!("flushing telemetry log: {e}"), 1);
        }
        eprintln!(
            "wrote {} telemetry events to {}",
            recorder.lines(),
            args.telemetry.as_deref().unwrap_or("?")
        );
    }

    println!("{}", outcome.to_json());
}
