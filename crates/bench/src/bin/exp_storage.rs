//! E5 — §4.4: the storage-technology trade. "220 J/g for a NiMH battery
//! vs. 10 J/g for a super capacitor or 2 J/g for a typical capacitor";
//! NiMH's flat 1.2 V plateau; capacitors' burst advantage; C/10 trickle.

use picocube_bench::banner;
use picocube_storage::{technology_table, NimhCell, StorageElement};
use picocube_units::{Amps, Joules, Seconds};

fn main() {
    banner(
        "E5 / §4.4",
        "harvested-energy storage technologies",
        "NiMH 220 J/g vs supercap 10 J/g vs capacitor 2 J/g; flat plateau; C/10 trickle",
    );

    let budget = Joules::from_milliamp_hours(15.0, picocube_units::Volts::new(1.2));
    println!("\nsized for the Cube's 15 mAh (64.8 J) buffer:\n");
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>9} {:>9} {:>11}",
        "technology", "J/g", "mass", "V(full)", "V(half-E)", "swing", "burst"
    );
    for row in technology_table(budget) {
        println!(
            "{:<16} {:>10.0} {:>9.2}g {:>8.2}V {:>8.2}V {:>8.1}% {:>10.3}A",
            row.technology,
            row.energy_density.value(),
            row.mass_for_budget.value(),
            row.voltage_full.value(),
            row.voltage_half.value(),
            row.voltage_swing * 100.0,
            row.burst_current.value(),
        );
    }

    // The plateau, explicitly.
    let mut cell = NimhCell::picocube();
    println!("\nNiMH open-circuit voltage vs state of charge:\n");
    for soc in [1.0, 0.9, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05, 0.02] {
        cell.set_state_of_charge(soc);
        let v = cell.open_circuit_voltage();
        println!(
            "  SoC {:>4.0} %  {:>5.2} V  {}",
            soc * 100.0,
            v.value(),
            picocube_bench::bar(v.value(), 1.45, 40)
        );
    }
    println!(
        "  plateau fraction (within ±5 % of 1.2 V): {:.0} %",
        cell.plateau_fraction() * 100.0
    );

    // Trickle tolerance.
    let mut cell = NimhCell::picocube();
    cell.set_state_of_charge(1.0);
    for _ in 0..(90 * 24) {
        cell.step(cell.trickle_limit(), Seconds::HOUR);
    }
    println!("\nthree months of continuous C/10 trickle on a full cell:");
    println!(
        "  damaged: {}   (paper: \"indefinite period … without damage\")",
        cell.is_damaged()
    );

    let mut abused = NimhCell::picocube();
    abused.set_state_of_charge(1.0);
    abused.step(Amps::from_milli(15.0), Seconds::MINUTE); // 1C overcharge
    println!(
        "  1C into a full cell: damaged = {} (the failure C/10 avoids)",
        abused.is_damaged()
    );
}
