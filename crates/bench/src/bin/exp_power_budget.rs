//! E8 — §4.3/§6/§7.1: the power-management budget. "Since at least one
//! supply is always on, the contribution that management makes to the
//! total system power can be dominant" — and the COTS-vs-integrated-IC
//! ablation.

use picocube_bench::{banner, bar, fmt_power};
use picocube_node::{NodeConfig, PicoCube, PowerChainKind};
use picocube_power::converter_ic::PowerInterfaceIc;
use picocube_power::cots::CotsPowerChain;
use picocube_sim::SimDuration;
use picocube_units::{Amps, Celsius, Volts};

fn run(kind: PowerChainKind) -> picocube_node::NodeReport {
    let mut node = PicoCube::tpms(NodeConfig {
        power_chain: kind,
        ..NodeConfig::default()
    })
    .expect("node builds");
    node.run_for(SimDuration::from_secs(120));
    node.report()
}

fn main() {
    banner(
        "E8 / §4.3+§7.1",
        "power-management budget: COTS chain vs integrated IC",
        "management quiescent dominates the 6 µW; IC leakage ≈ 6.5 µA",
    );

    for (name, kind) in [
        ("COTS chain (as built)", PowerChainKind::Cots),
        ("power interface IC (§7.1)", PowerChainKind::IntegratedIc),
    ] {
        let report = run(kind);
        println!("\n{name}: average {}\n", fmt_power(report.average_power));
        let total = report.consumed.value();
        for (load, e) in &report.power.rails[0].loads {
            println!(
                "  {:<28} {:>9.2} µJ  {:>5.1}%  {}",
                load,
                e.micro(),
                e.value() / total * 100.0,
                bar(e.value(), total, 24)
            );
        }
    }

    // Standing (sleep) floors, analytically.
    let cots = CotsPowerChain::paper();
    let ic = PowerInterfaceIc::paper();
    let vbat = Volts::new(1.2);
    let cots_floor = cots.sleep_budget(Amps::from_micro(1.0)).power(vbat);
    let ic_floor = ic.standby_power(Celsius::new(25.0), vbat);
    println!("\nsleep floors (battery side):");
    println!(
        "  COTS chain + 1 µA of always-on VDD load : {}",
        fmt_power(cots_floor)
    );
    println!(
        "  integrated IC standby ({:.1} µA)          : {}",
        ic.standby_current(Celsius::new(25.0), vbat).micro(),
        fmt_power(ic_floor)
    );
    println!("\nthe §7.1 note holds: the IC's leakage (\"partially attributable to");
    println!("the pad ring\") puts its floor above the COTS chain's, even though its");
    println!("conversion efficiency is better — the architecture wins only once the");
    println!("pad-ring leakage is engineered out (the paper's envisioned IP cores).");

    // What would happen WITHOUT power gating: the §4.3 motivation.
    let ungated_ldo = vbat * Amps::from_micro(120.0);
    println!("\nablation — remove the radio-rail gating:");
    println!(
        "  LT3020 ground current left on: {} standing",
        fmt_power(ungated_ldo)
    );
    println!(
        "  that alone is {:.0}× the whole node's 6 µW average",
        ungated_ldo.micro() / 6.0
    );
}
