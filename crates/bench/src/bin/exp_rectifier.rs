//! E3 — §7.1: "The synchronous rectifier achieves 96 % of the efficiency
//! of an ideal rectifier at 450 µW input." Sweeps efficiency vs input
//! power against the diode-bridge baselines.

use picocube_bench::{banner, bar};
use picocube_power::rectifier::{DiodeBridge, IdealRectifier, Rectifier, SynchronousRectifier};
use picocube_units::{Volts, Watts};

fn main() {
    banner(
        "E3 / §7.1",
        "synchronous rectifier vs diode bridges",
        "96 % of ideal at 450 µW input",
    );

    let vbat = Volts::new(1.2);
    let sync = SynchronousRectifier::paper();
    let schottky = DiodeBridge::schottky();
    let silicon = DiodeBridge::silicon();

    println!("\nefficiency vs harvester input power (into a 1.2 V cell):\n");
    println!(
        "{:>10} {:>8} {:>10} {:>9} {:>7}",
        "P_in", "sync", "schottky", "silicon", "ideal"
    );
    for uw in [
        20.0, 50.0, 100.0, 200.0, 300.0, 450.0, 700.0, 1_000.0, 2_000.0, 5_000.0,
    ] {
        let pin = Watts::from_micro(uw);
        let e = |r: &dyn Rectifier| r.efficiency(pin, vbat).unwrap() * 100.0;
        let es = e(&sync);
        println!(
            "{:>8.0}µW {:>7.1}% {:>9.1}% {:>8.1}% {:>6.0}%  {}",
            uw,
            es,
            e(&schottky),
            e(&silicon),
            e(&IdealRectifier),
            bar(es, 100.0, 25),
        );
    }

    let at_450 = sync
        .efficiency_vs_ideal(Watts::from_micro(450.0), vbat)
        .unwrap();
    let peak_in = sync.peak_efficiency_input(vbat);
    println!("\nmeasured:");
    println!(
        "  at 450 µW: {:.1} % of ideal   (paper: 96 %)",
        at_450 * 100.0
    );
    println!("  peak-efficiency input: {:.0} µW", peak_in.micro());
    println!(
        "  Schottky bridge ceiling: {:.1} % (the 2·Vf tax against 1.2 V)",
        schottky.efficiency(Watts::from_micro(450.0), vbat).unwrap() * 100.0
    );
    println!("\nshape: control power dominates at low input, I²R at high input —");
    println!("the bell centers on the shaker's operating regime by design.");
}
