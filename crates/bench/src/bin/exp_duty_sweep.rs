//! E15 (extension) — the design-space law behind Fig. 6 and the §4.3
//! architecture argument: average power = sleep floor + E_cycle / T. The
//! sweep shows where the PicoCube's ultra-low floor pays off, and how the
//! COTS chain and the §7.1 IC trade places as the duty cycle rises.

use picocube_bench::{banner, bar, fmt_power};
use picocube_node::{NodeConfig, PicoCube, PowerChainKind};
use picocube_sim::SimDuration;

fn average_at(period_s: f64, chain: PowerChainKind) -> picocube_units::Watts {
    let config = NodeConfig {
        sample_period_s: Some(period_s),
        power_chain: chain,
        ..NodeConfig::default()
    };
    let mut node = PicoCube::tpms(config).expect("node builds");
    // Cover at least 10 cycles (or 60 s, whichever is longer).
    let span = (period_s * 10.0).max(60.0).ceil() as u64;
    node.run_for(SimDuration::from_secs(span));
    node.report().average_power
}

fn main() {
    banner(
        "E15 (extension)",
        "average power vs sample period (full-node sweep)",
        "P_avg = sleep floor + E_cycle/T: the floor is what the architecture buys",
    );

    println!("\n{:>10} {:>14} {:>14}", "period", "COTS chain", "§7.1 IC");
    let mut rows = Vec::new();
    for period in [1.0, 2.0, 6.0, 15.0, 60.0, 300.0] {
        let cots = average_at(period, PowerChainKind::Cots);
        let ic = average_at(period, PowerChainKind::IntegratedIc);
        rows.push((period, cots, ic));
        println!(
            "{:>9.0}s {:>14} {:>14}  {}",
            period,
            fmt_power(cots),
            fmt_power(ic),
            bar(cots.micro(), 30.0, 24)
        );
    }

    // Fit the duty-cycle law to the COTS sweep: P(T) = floor + E/T.
    let (t1, p1, _) = rows[0];
    let (t2, p2, _) = rows[rows.len() - 1];
    let e_cycle = (p1.value() - p2.value()) / (1.0 / t1 - 1.0 / t2);
    let floor = p2.value() - e_cycle / t2;
    println!(
        "\nfitted law (COTS): P(T) ≈ {:.2} µW + {:.1} µJ / T",
        floor * 1e6,
        e_cycle * 1e6
    );
    println!(
        "  at the paper's 6 s: {:.2} µW (measured {:.2} µW)",
        (floor + e_cycle / 6.0) * 1e6,
        rows[2].1.micro()
    );

    println!("\nreadings:");
    println!("  * at short periods the active energy dominates and the IC's");
    println!("    constant leakage offset shrinks in relative terms (1.4× at");
    println!("    1 s vs 4× at 300 s) — its better converters would win if the");
    println!("    pad-ring leakage were engineered out (§7.1's own caveat);");
    println!("  * above ~1 min both flatten onto their sleep floors;");
    println!("  * the paper's 6 s sits right at the knee: the sleep floor is");
    println!("    half the budget — exactly the regime the architecture (gated");
    println!("    rails, snooze-mode pump, sub-µW MCU sleep) was designed for.");
}
