//! E6 — §4.6: transmitter operating points. "46 % efficiency @ 1.2 mW
//! transmit power, 650 mV supply"; "1.35 mW at data rates up to 330 kbps";
//! "transmitted signal strength is about −60 dBm at 1 meter".

use picocube_bench::{banner, fmt_power};
use picocube_radio::packet::{encode, Checksum};
use picocube_radio::{Channel, Fbar, Link, OokTransmitter, PatchAntenna};
use picocube_units::{Db, Dbm, Hertz, Meters};

fn main() {
    banner(
        "E6 / §4.6",
        "FBAR OOK transmitter operating points",
        "0.8 dBm out, 46 % efficient, 1.35 mW at 50 % OOK, ≤330 kbps, −60 dBm at 1 m",
    );

    let fbar = Fbar::picocube();
    println!("\nFBAR resonator:");
    println!(
        "  series resonance : {:.3} GHz   (paper: 1.863 GHz channel)",
        fbar.series_resonance().value() / 1e9
    );
    println!(
        "  Q                : {:.0}        (paper: Q > 1000)",
        fbar.q_factor()
    );
    println!(
        "  oscillator start : {:.2} µs — what makes per-bit carrier gating possible",
        fbar.startup_time().value() * 1e6
    );
    println!(
        "  max OOK rate     : {:.0} kbps  (paper: up to 330 kbps)",
        fbar.max_ook_rate().kilo()
    );

    let tx = OokTransmitter::picocube();
    println!("\ntransmitter:");
    println!(
        "  output           : {:.2}  ({:.2} mW)",
        tx.output_dbm(),
        tx.output_power().milli()
    );
    println!(
        "  overall η        : {:.1} %   (paper: 46 %)",
        tx.overall_efficiency() * 100.0
    );
    println!(
        "  DC @ 50 % OOK    : {}   (paper: 1.35 mW)",
        fmt_power(tx.dc_power(0.5))
    );
    println!(
        "  RF-rail current  : {:.2} mA while keyed on (0.65 V supply)",
        tx.supply_current_on().milli()
    );

    println!("\nenergy per bit vs data rate (50 % OOK):\n");
    println!("{:>10} {:>12} {:>14}", "rate", "E/bit", "104-bit packet");
    for kbps in [10.0, 33.0, 100.0, 200.0, 330.0] {
        let mut tx = OokTransmitter::picocube();
        tx.set_data_rate(Hertz::from_kilo(kbps));
        let t = tx.transmit(&encode(0x42, &[0x55; 8], Checksum::Xor));
        println!(
            "{:>7.0}kbps {:>10.2}nJ {:>12.2}µJ",
            kbps,
            t.energy_per_bit().nano(),
            t.energy.micro()
        );
    }

    // Received power vs distance with the as-built antenna.
    let link = Link {
        tx_power: tx.output_dbm(),
        tx_gain: PatchAntenna::as_built().gain_dbi(Hertz::new(1.863e9)),
        rx_gain: Db::new(0.0),
        orientation_loss: Db::new(2.0),
        channel: Channel::free_space(),
    };
    println!("\nreceived power vs range (free space, average orientation):\n");
    for d in [0.5, 1.0, 2.0, 4.0] {
        let b = link.budget(Meters::new(d));
        println!("  {:>5.1} m: {:>7.1} dBm", d, b.received.value());
    }
    println!(
        "\nmeasured at 1 m: {:.1} dBm   (paper: about −60 dBm)",
        link.budget(Meters::new(1.0)).received.value()
    );
    let _ = Dbm::new(0.0);
}
