//! E9 — §2: node-class comparison. "The size and power consumption of the
//! motes … was still too large to be considered for true ubiquitous
//! deployment."

use picocube_bench::{banner, fmt_power};
use picocube_node::{node_class_table, NodeConfig, PicoCube};
use picocube_sim::SimDuration;
use picocube_units::{CubicMillimeters, Seconds};

fn main() {
    banner(
        "E9 / §2",
        "node classes on the TPMS workload (sample every 6 s)",
        "motes are orders of magnitude larger and hungrier than the PicoCube",
    );

    // Measure the PicoCube (don't just quote it).
    let mut node = PicoCube::tpms(NodeConfig::default()).expect("node builds");
    node.run_for(SimDuration::from_secs(120));
    let cube_avg = node.report().average_power;

    let rows = node_class_table(cube_avg, CubicMillimeters::new(1_450.0), Seconds::new(6.0));
    println!(
        "\n{:<28} {:>12} {:>12} {:>14} {:>12}",
        "node", "avg power", "volume", "battery life", "harvestable?"
    );
    for row in &rows {
        let life = row.lifetime;
        let life_str = if life.days() > 365.0 {
            format!("{:.1} years", life.days() / 365.0)
        } else {
            format!("{:.0} days", life.days())
        };
        println!(
            "{:<28} {:>12} {:>9.0} cm³ {:>14} {:>12}",
            row.name,
            fmt_power(row.average_power),
            row.volume.value() / 1_000.0,
            life_str,
            if row.harvestable { "yes" } else { "no" }
        );
    }

    let cube = rows.last().unwrap();
    let mote = &rows[1];
    println!("\nmeasured ratios (mote / PicoCube):");
    println!(
        "  power  : {:.0}×",
        mote.average_power.value() / cube.average_power.value()
    );
    println!(
        "  volume : {:.0}×",
        mote.volume.value() / cube.volume.value()
    );
    println!(
        "\nthe deployment argument: the mote's battery dies in {:.1} years; the\n\
         PicoCube's buffer rides through outages and the harvester does the rest —\n\
         \"the sensors must live at least as long as the application … decades\".",
        mote.lifetime.days() / 365.0
    );
}
