//! E7 — §4.6: the patch-antenna design story. The design wanted εr > 10 at
//! 70 mil; lamination failed; the as-built single 50 mil layer
//! "compromised efficiency".

use picocube_bench::{banner, bar};
use picocube_radio::PatchAntenna;
use picocube_units::{Hertz, Millimeters};

fn main() {
    banner(
        "E7 / §4.6",
        "patch antenna: substrate thickness / permittivity trade",
        "needed εr > 10 at 70 mil; as-built 50 mil compromised efficiency",
    );
    let f = Hertz::new(1.863e9);

    println!("\nradiation efficiency vs substrate thickness (εr = 10.2, 7 mm patch):\n");
    println!("{:>10} {:>10} {:>10}", "thickness", "η", "gain");
    for mils in [20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 100.0] {
        let a = PatchAntenna::new(10.2, Millimeters::from_mils(mils), Millimeters::new(7.0));
        let eff = a.efficiency(f);
        let mark = match mils as u32 {
            50 => "  <- as built",
            70 => "  <- design target",
            _ => "",
        };
        println!(
            "{:>8.0}mil {:>9.3}% {:>8.1}dBi {}{}",
            mils,
            eff * 100.0,
            a.gain_dbi(f).value(),
            bar(eff, 0.01, 25),
            mark
        );
    }

    println!("\nradiation efficiency vs permittivity (50 mil, 7 mm patch):\n");
    for er in [2.2, 4.0, 6.0, 10.2, 16.0] {
        let a = PatchAntenna::new(er, Millimeters::from_mils(50.0), Millimeters::new(7.0));
        println!(
            "  εr = {:>4.1}: η = {:>6.3} %  gain {:>6.1} dBi {}",
            er,
            a.efficiency(f) * 100.0,
            a.gain_dbi(f).value(),
            bar(a.efficiency(f), 0.005, 25)
        );
    }

    let built = PatchAntenna::as_built();
    let target = PatchAntenna::design_target();
    let penalty = target.gain_dbi(f) - built.gain_dbi(f);
    println!("\nmeasured:");
    println!("  as-built gain    : {:.1} dBi", built.gain_dbi(f).value());
    println!("  design-target    : {:.1} dBi", target.gain_dbi(f).value());
    println!(
        "  fabrication cost : {:.1} dB of link budget lost to the debonded 70 mil stack",
        penalty.value()
    );
    println!("  (that 1.5 dB is ~16 % of range — consistent with the ~1 m demo range)");
}
