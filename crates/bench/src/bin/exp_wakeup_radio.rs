//! E11 — §7.3: the wakeup-radio extension. "An extremely low-power
//! receiver that listens full-time for a wake-up signal, then starts a
//! more complex (and more power hungry) receiver."

use picocube_bench::{banner, fmt_power};
use picocube_radio::{SuperRegenReceiver, WakeupReceiver};
use picocube_units::{Hertz, Seconds, Watts};

fn main() {
    banner(
        "E11 / §7.3",
        "wakeup radio vs duty-cycled listening",
        "always-on ~50 µW detector removes the latency/power polling trade",
    );

    let wakeup = WakeupReceiver::bwrc();
    let main_rx = SuperRegenReceiver::bwrc_issc05();
    let poll_on = Seconds::new(5e-3); // one superregen poll window

    println!("\naverage receive-path power vs required worst-case latency:\n");
    println!(
        "{:>12} {:>16} {:>16} {:>8}",
        "latency", "duty-cycled RX", "wakeup radio", "winner"
    );
    for latency_s in [0.001, 0.005, 0.01, 0.04, 0.1, 0.5, 1.0, 5.0, 30.0] {
        let duty = WakeupReceiver::duty_cycled_equivalent(
            Seconds::new(latency_s),
            main_rx.rx_power(),
            poll_on,
        );
        // Event traffic is negligible here; the standing costs compare.
        let wk = wakeup.average_power(Hertz::new(0.001), main_rx.rx_power(), poll_on);
        println!(
            "{:>11.3}s {:>16} {:>16} {:>8}",
            latency_s,
            fmt_power(duty),
            fmt_power(wk),
            if duty > wk { "wakeup" } else { "duty" }
        );
    }
    let crossover = wakeup.crossover_latency(main_rx.rx_power(), poll_on);
    println!(
        "\ncrossover latency: {:.0} ms — tighter requirements favor the wakeup radio",
        crossover.value() * 1e3
    );

    println!("\naverage power vs event rate (wakeup radio, real wakes included):\n");
    for per_hour in [0.1, 1.0, 10.0, 60.0, 600.0] {
        let p = wakeup.average_power(Hertz::new(per_hour / 3600.0), main_rx.rx_power(), poll_on);
        println!("  {:>6.1} events/h: {}", per_hour, fmt_power(p));
    }

    println!("\ncontext against the node: the Cube transmits blind (no receiver at");
    println!(
        "all) for 6 µW. Adding downlink the polling way costs ≥ {} even at",
        fmt_power(WakeupReceiver::duty_cycled_equivalent(
            Seconds::new(1.0),
            main_rx.rx_power(),
            poll_on
        ))
    );
    println!(
        "1 s latency; the wakeup radio holds the addition to ~{} — still",
        fmt_power(wakeup.listen_power())
    );
    println!(
        "{}× the whole node, which is why §7.3 calls it ongoing work.",
        (wakeup.listen_power().value() / Watts::from_micro(6.0).value()).round()
    );
}
