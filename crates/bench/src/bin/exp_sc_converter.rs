//! E2 — §7.1 / Figs 9–10: switched-capacitor converter efficiency.
//! "The converters exceed 84 % efficiency"; regulation "efficiently over
//! large load ranges by varying the switching frequency".

use picocube_bench::{banner, bar};
use picocube_power::sc::ScConverter;
use picocube_units::{Amps, Hertz, Volts};

fn main() {
    banner(
        "E2 / Fig. 10",
        "SC converter efficiency (1:2 and 3:2)",
        "converters exceed 84 % efficiency; frequency modulation covers wide load ranges",
    );
    let vbat = Volts::new(1.2);

    for (name, conv, loads_ua) in [
        (
            "1:2 doubler (MCU/sensor rail)",
            ScConverter::paper_1to2(),
            vec![1.0, 3.0, 10.0, 30.0, 100.0, 200.0, 300.0, 500.0, 1_000.0],
        ),
        (
            "3:2 step-down (radio rail)",
            ScConverter::paper_3to2_down(),
            vec![10.0, 30.0, 100.0, 300.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0],
        ),
    ] {
        println!("\n{name} — efficiency vs load (optimal f_sw per point):\n");
        println!("{:>10} {:>10} {:>10} {:>8}", "load", "f_sw", "vout", "η");
        let mut peak = 0.0f64;
        for ua in &loads_ua {
            let iout = Amps::from_micro(*ua);
            let f = conv.best_frequency(vbat, iout).expect("solvable");
            let op = conv.convert(vbat, iout, f).expect("solvable");
            peak = peak.max(op.efficiency());
            println!(
                "{:>8.0}µA {:>8.0}kHz {:>9.3}V {:>7.1}% {}",
                ua,
                f.kilo(),
                op.vout.value(),
                op.efficiency() * 100.0,
                bar(op.efficiency(), 1.0, 30)
            );
        }
        println!("  peak efficiency: {:.1} %  (paper: > 84 %)", peak * 100.0);

        // Efficiency vs frequency at the nominal load: the SSL/FSL trade.
        let nominal = Amps::from_micro(*loads_ua.last().unwrap() / 4.0);
        let f_opt = conv.best_frequency(vbat, nominal).unwrap();
        println!(
            "\n  efficiency vs f_sw at {:.0} µA (SSL left, gate/parasitic right):",
            nominal.micro()
        );
        for mult in [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0, 20.0] {
            let f = Hertz::new(f_opt.value() * mult);
            match conv.convert(vbat, nominal, f) {
                Ok(op) => println!(
                    "  {:>9.0} kHz {:>7.1}% {}",
                    f.kilo(),
                    op.efficiency() * 100.0,
                    bar(op.efficiency(), 1.0, 30)
                ),
                Err(_) => println!("  {:>9.0} kHz   (output collapses)", f.kilo()),
            }
        }
    }

    // Regulation sweep: hold 2.1 V over a decade of load by f modulation.
    println!("\nregulated 1:2 at vout = 2.1 V (frequency-hysteretic control):\n");
    let conv = ScConverter::paper_1to2();
    println!("{:>10} {:>10} {:>8}", "load", "vout", "η");
    for ua in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let op = conv
            .regulate(vbat, Volts::new(2.1), Amps::from_micro(ua))
            .expect("regulates");
        println!(
            "{:>8.0}µA {:>9.3}V {:>7.1}%",
            ua,
            op.vout.value(),
            op.efficiency() * 100.0
        );
    }
}
