//! E1 — Fig. 6: power profile during one "on" cycle, and the §6 headline:
//! "Average Cube power consumption using the TPMS sensor is 6 µW,
//! dominated by quiescent losses from the power management circuitry."
//!
//! Usage: `exp_fig6_power_profile [--telemetry PATH]`
//!
//! `--telemetry` writes the node's structured event log (wakes, radio
//! bursts, any brownouts) to PATH as JSON lines and prints the metric
//! registry, including the per-rail energy export the breakdown below is
//! read from.

use picocube_bench::cli::CommonArgs;
use picocube_bench::{banner, bar, fmt_power};
use picocube_node::{NodeConfig, PicoCube};
use picocube_sim::{SimDuration, SimTime};
use picocube_telemetry::{summary_table, JsonlRecorder, Recorder};

const USAGE: &str = "exp_fig6_power_profile [--telemetry PATH]";

fn parse_telemetry_arg() -> Option<String> {
    let args = CommonArgs::parse_or_exit(USAGE);
    if !args.nodes.is_empty() || args.mesh {
        eprintln!("error: this single-node experiment takes no --nodes/--mesh");
        eprintln!("usage: {USAGE}");
        std::process::exit(2);
    }
    args.telemetry
}

fn main() {
    let telemetry_path = parse_telemetry_arg();
    banner(
        "E1 / Fig. 6",
        "power profile during an \"on\" cycle",
        "6 µW average; ~14 ms active burst every 6 s; quiescent-dominated",
    );

    let mut node = PicoCube::tpms(NodeConfig::default()).expect("node builds");
    node.set_event_recording(telemetry_path.is_some());
    node.run_for(SimDuration::from_secs(60));
    let report = node.report();
    let trace = node.power_trace();

    // Zoom on the burst at the first 6 s wake, Fig. 6 style.
    println!("\npower profile around the 6 s wake (zero-order hold, 0.5 ms grid):\n");
    let t0 = SimTime::from_millis(5_998);
    let peak = report.peak_power.value();
    println!("{:>9}  {:>12}  profile (log-ish bar)", "t [ms]", "power");
    for i in 0..40 {
        let t = t0 + picocube_sim::SimDuration::from_micros(500 * i);
        let p = trace.power_at(t).unwrap_or(picocube_units::Watts::ZERO);
        // Log-compress so both the µW floor and the mW burst are visible.
        let log_frac = if p.value() > 0.0 {
            ((p.value() / 1e-6).log10() / (peak / 1e-6).log10()).max(0.0)
        } else {
            0.0
        };
        println!(
            "{:>9.1}  {:>12}  {}",
            (t.as_seconds().value() - 6.0) * 1e3,
            fmt_power(p),
            bar(log_frac, 1.0, 40)
        );
    }

    // Burst geometry.
    let burst: Vec<_> = trace
        .as_scalar()
        .samples()
        .iter()
        .filter(|(t, p)| *t >= t0 && *t <= SimTime::from_millis(6_040) && *p > 50e-6)
        .map(|&(t, _)| t)
        .collect();
    let width_ms = if burst.len() >= 2 {
        burst
            .last()
            .unwrap()
            .duration_since(burst[0])
            .as_seconds()
            .value()
            * 1e3
    } else {
        0.0
    };

    println!("\nmeasured:");
    println!(
        "  average power        : {}   (paper: 6 µW)",
        fmt_power(report.average_power)
    );
    println!(
        "  sleep floor          : {}",
        fmt_power(trace.power_at(SimTime::from_secs(3)).unwrap())
    );
    println!("  burst width          : {width_ms:.1} ms   (paper: ~14 ms)");
    println!("  burst peak           : {}", fmt_power(report.peak_power));
    println!("  cycles in 60 s       : {}", report.wakes);
    println!("\nper-load energy breakdown over 60 s:");
    for (name, e) in &report.power.rails[0].loads {
        println!("  {:<28} {:>10.2} µJ", name, e.micro());
    }

    // Plot-ready artifacts.
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let profile = dir.join("fig6_power_profile.csv");
        if std::fs::write(&profile, trace.as_scalar().to_csv()).is_ok() {
            println!("\nwrote {} ({} samples)", profile.display(), trace.len());
        }
        let soc = dir.join("fig6_battery_soc.csv");
        if std::fs::write(&soc, node.soc_trace().to_csv()).is_ok() {
            println!("wrote {}", soc.display());
        }
    }

    if let Some(path) = telemetry_path {
        let mut telemetry = node.drain_telemetry();
        let mut recorder =
            JsonlRecorder::create(&path).unwrap_or_else(|e| panic!("--telemetry {path}: {e}"));
        telemetry.drain_events_into(&mut recorder);
        recorder.flush().expect("flush telemetry log");
        println!("\nwrote {} telemetry events to {path}", recorder.lines());
        println!("\nmetric registry:");
        print!("{}", summary_table(&telemetry.metrics));
    }
}
