//! E10 — §4.1–4.2 / Figs 3–5: packaging feasibility. 18 pads/side
//! elastomer bus, 7.2 × 7.2 mm placement, tube-and-ring stack in ~1 cm³,
//! and the §5 note that more bus signals need smaller pads.

use picocube_bench::banner;
use picocube_node::{PackagingError, StackDesign};
use picocube_units::Millimeters;

fn main() {
    banner(
        "E10 / §4.1–4.2",
        "interconnect and packaging design rules",
        "18 pads/side, 0.1 mm elastomer pitch, 7.2×7.2 mm placement, 1 cm³ class",
    );

    let design = StackDesign::picocube();
    match design.check() {
        Ok(report) => {
            println!("\nas-built design: PASS\n");
            println!("  stack height     : {:.2}", report.stack_height);
            println!(
                "  outer envelope   : {:.1} × {:.1} × {:.2} mm",
                report.outer_edge.value(),
                report.outer_edge.value(),
                report.outer_height.value()
            );
            println!(
                "  volume           : {:.0} mm³ ({:.2} cm³ incl. case)",
                report.volume.value(),
                report.volume.value() / 1000.0
            );
            println!(
                "  placement area   : {:.2} mm² per board (paper: 7.2 × 7.2 = 51.84)",
                report.placement_area.value()
            );
            println!(
                "  bus signals      : {} ({} pads/side × 4)",
                report.bus_signals, design.bus.pads_per_side
            );
            println!(
                "  wires per pad    : {} (redundant contact, §4.1)",
                report.wires_per_pad
            );
            println!("  node mass        : {:.1} — the \"mechanical mass\" problem is the harvester's, not the node's (§1)", report.mass);
        }
        Err(e) => println!("\nas-built design FAILS: {e}"),
    }

    // §5: growing the bus. How many signals fit as pads shrink?
    println!("\nbus-growth headroom (pad width swept at 0.08 mm gaps):\n");
    println!(
        "{:>12} {:>10} {:>9} {:>12}",
        "pads/side", "pad width", "signals", "feasible?"
    );
    for (pads, width) in [
        (18u32, 0.45),
        (22, 0.36),
        (24, 0.30),
        (28, 0.26),
        (32, 0.22),
        (40, 0.16),
        (48, 0.12),
    ] {
        let mut d = StackDesign::picocube();
        d.bus.pads_per_side = pads;
        d.bus.pad_width = Millimeters::new(width);
        let verdict = match d.check() {
            Ok(_) => "yes".to_string(),
            Err(PackagingError::PadRowTooLong { .. }) => "no: row too long".to_string(),
            Err(PackagingError::TooFewWiresPerPad { wires }) => {
                format!("no: {wires} wire/pad")
            }
            Err(e) => format!("no: {e}"),
        };
        println!(
            "{:>12} {:>8.2}mm {:>9} {:>16}",
            pads,
            width,
            pads * 4,
            verdict
        );
    }
    println!("\nthe §5 prediction quantified: beyond ~32 pads/side the 0.1 mm wire");
    println!("pitch stops giving redundant contact — \"smaller pads with tighter");
    println!("tolerances\" is a hard wall, motivating the stacked-die future work.");

    // Failure modes the rules catch.
    println!("\nnegative checks:");
    let mut tall = StackDesign::picocube();
    tall.boards[2].component_height = Millimeters::new(3.0);
    println!(
        "  3.0 mm part on the sensor board: {:?}",
        tall.check().unwrap_err()
    );
    let mut six = StackDesign::picocube();
    six.boards.push(picocube_node::BoardSpec::standard(
        "extra",
        Millimeters::new(1.0),
    ));
    println!("  six-board stack: {:?}", six.check().unwrap_err());
}
