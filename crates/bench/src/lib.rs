//! Experiment harness for the PicoCube reproduction.
//!
//! One binary per paper figure/result (see `DESIGN.md` §3 and
//! `EXPERIMENTS.md` for the index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `exp_fig6_power_profile` | Fig. 6 power profile + the 6 µW average (E1) |
//! | `exp_sc_converter` | §7.1 / Fig. 10 SC converter efficiencies (E2) |
//! | `exp_rectifier` | §7.1 synchronous-rectifier efficiency (E3) |
//! | `exp_demo_link` | §6 / Figs 7–8 demo link (E4) |
//! | `exp_storage` | §4.4 storage-technology table (E5) |
//! | `exp_radio` | §4.6 transmitter operating points (E6) |
//! | `exp_antenna` | §4.6 patch-antenna design story (E7) |
//! | `exp_power_budget` | §4.3/§6 power-management breakdown (E8) |
//! | `exp_mote_baseline` | §2 node-class comparison (E9) |
//! | `exp_packaging` | §4.1–4.2 packaging feasibility (E10) |
//! | `exp_wakeup_radio` | §7.3 wakeup-radio extension (E11) |
//! | `exp_energy_neutral` | §4.4/§7.2 energy-neutral operation (E12) |
//!
//! Each binary prints a `paper:` line with the published value and a
//! `measured:` table produced by running the models, so paper-vs-measured
//! comparisons (recorded in `EXPERIMENTS.md`) are regenerable with
//! `cargo run --release -p picocube-bench --bin exp_…`.
//!
//! The `scenario_run` binary executes a declarative JSON scenario spec
//! (DESIGN.md §13) instead of a hard-coded experiment, and the shared
//! `--nodes/--threads/--duration/--telemetry/--mesh` flag parsing for all
//! of the above lives in [`cli`].

pub mod cli;
pub mod rss;
pub mod timing;

/// Prints the standard experiment header.
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

/// Prints a named series as an aligned two-column table.
pub fn series(header: (&str, &str), rows: &[(String, String)]) {
    println!("{:<28} {:>18}", header.0, header.1);
    for (a, b) in rows {
        println!("{a:<28} {b:>18}");
    }
}

/// Formats a watts value with an adaptive µW/mW unit.
pub fn fmt_power(w: picocube_units::Watts) -> String {
    if w.value() >= 1e-3 {
        format!("{:.3} mW", w.milli())
    } else {
        format!("{:.2} µW", w.micro())
    }
}

/// A fixed-width bar for terminal "plots".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn power_formatting() {
        assert_eq!(fmt_power(picocube_units::Watts::from_micro(6.0)), "6.00 µW");
        assert_eq!(
            fmt_power(picocube_units::Watts::from_milli(1.35)),
            "1.350 mW"
        );
    }
}
