//! Peak-memory instrumentation for the streaming-engine benches.
//!
//! The streaming fleet engine's claim is O(workers) live state; the bench
//! reports back it up with the process's resident-set high-water mark so
//! "flat memory at a million nodes" is a number in `BENCH_fleet.json`, not
//! an assertion in prose.

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
///
/// The high-water mark is monotonic for the process lifetime: sample it
/// after each run and the largest fleet dominates the reading.
pub fn max_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:    123456 kB`.
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// Formats a byte count as an adaptive MiB/GiB figure for table output.
pub fn fmt_bytes(bytes: u64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let mib = bytes as f64 / MIB;
    if mib >= 1024.0 {
        format!("{:.2} GiB", mib / 1024.0)
    } else {
        format!("{mib:.1} MiB")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t    2048 kB\nVmRSS:\t 1024 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tbench\n"), None);
    }

    #[test]
    fn reads_own_high_water_mark_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            let hwm = max_rss_bytes().expect("procfs present but VmHWM missing");
            assert!(hwm > 0);
        }
    }

    #[test]
    fn formats_bytes_adaptively() {
        assert_eq!(fmt_bytes(50 * 1024 * 1024), "50.0 MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }
}
