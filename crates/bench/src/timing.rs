//! Minimal wall-clock micro-benchmark support for the `harness = false`
//! bench binaries (the offline build carries no benchmarking crate).
//!
//! Methodology: each case runs `SAMPLES` timed samples of `iters`
//! iterations after a warmup pass; a sample's cost is its total divided by
//! `iters`. The minimum sample is the headline number (least scheduler
//! noise), the mean is reported alongside for context.

use std::hint::black_box;
use std::time::Instant;

/// Number of timed samples per case.
const SAMPLES: u32 = 5;

/// One timed case's summary.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Iterations per sample.
    pub iters: u32,
    /// Best (minimum) per-iteration time across samples, nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration time across samples, nanoseconds.
    pub mean_ns: f64,
}

impl Measurement {
    /// Best per-iteration time in seconds.
    pub fn min_secs(&self) -> f64 {
        self.min_ns * 1e-9
    }
}

/// Formats a nanosecond figure with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns * 1e-9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns * 1e-6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns * 1e-3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times `iters` iterations of `f` per sample, printing and returning the
/// summary. The closure's result is passed through [`black_box`] so the
/// optimizer cannot delete the work.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Measurement {
    assert!(iters > 0, "bench needs at least one iteration");
    // Warmup: one untimed sample (caches, branch predictors, allocators).
    for _ in 0..iters {
        black_box(f());
    }
    let mut sample_ns = [0.0f64; SAMPLES as usize];
    for slot in &mut sample_ns {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        *slot = start.elapsed().as_nanos() as f64 / f64::from(iters);
    }
    let min_ns = sample_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_ns = sample_ns.iter().sum::<f64>() / f64::from(SAMPLES);
    let m = Measurement {
        iters,
        min_ns,
        mean_ns,
    };
    println!(
        "{name:<40} {:>12} (mean {:>12}, {iters} iters x {SAMPLES} samples)",
        fmt_ns(m.min_ns),
        fmt_ns(m.mean_ns),
    );
    m
}

/// Times a single execution of `f` (for long-running cases where repeated
/// sampling is impractical), returning the elapsed seconds and the result.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = black_box(f());
    (start.elapsed().as_secs_f64(), out)
}

/// Times `reps` executions of `f`, returning the minimum elapsed seconds
/// (the sample least disturbed by scheduler noise) and the result of the
/// final execution.
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps > 0, "time_best needs at least one repetition");
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let (secs, value) = time_once(&mut f);
        best = best.min(secs);
        out = Some(value);
    }
    // picocube-lint: allow(L2) loop above ran at least once, so `out` is always Some
    (best, out.expect("reps > 0"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_times() {
        let m = bench("spin", 100, || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.min_ns > 0.0);
        assert!(m.mean_ns >= m.min_ns);
    }

    #[test]
    fn time_once_returns_result() {
        let (secs, value) = time_once(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.500 µs");
        assert_eq!(fmt_ns(3.2e6), "3.200 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }
}
