//! Scaling benchmark for the two-phase fleet engine: serial vs threaded
//! phase-1 execution at increasing fleet sizes, with a bit-identity check
//! between the two paths at every size.
//!
//! Emits `BENCH_fleet.json` in the working directory. Run with
//! `cargo bench -p picocube-bench --bench fleet_scaling`, optionally with
//! `-- --telemetry PATH` to stream the threaded runs' event logs to PATH
//! as JSON lines and print the merged metric registry; the identity check
//! then also covers the serial-vs-threaded metric totals.

use picocube_bench::timing::time_once;
use picocube_node::{run_fleet, run_fleet_with, FleetConfig, Parallelism};
use picocube_sim::SimDuration;
use picocube_telemetry::{summary_table, JsonlRecorder, Metrics, NullRecorder, Recorder};
use picocube_units::json::{Json, ToJson};

const DURATION_S: u64 = 30;
const SEED: u64 = 42;

struct Row {
    nodes: usize,
    threads: usize,
    serial_s: f64,
    threaded_s: f64,
    speedup: f64,
    identical: bool,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("nodes".into(), self.nodes.to_json()),
            ("threads".into(), self.threads.to_json()),
            ("serial_s".into(), self.serial_s.to_json()),
            ("threaded_s".into(), self.threaded_s.to_json()),
            ("speedup".into(), self.speedup.to_json()),
            ("identical".into(), self.identical.to_json()),
        ])
    }
}

fn parse_telemetry_arg() -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--telemetry" {
            return Some(argv.next().expect("--telemetry needs a file path"));
        }
    }
    None
}

fn main() {
    let telemetry_path = parse_telemetry_arg();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("fleet scaling: {DURATION_S} s simulated, seed {SEED}, {threads} hardware threads");
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>10}",
        "nodes", "serial", "threaded", "speedup", "identical"
    );

    let mut jsonl = telemetry_path.as_deref().map(|path| {
        JsonlRecorder::create(path).unwrap_or_else(|e| panic!("--telemetry {path}: {e}"))
    });
    let mut merged = Metrics::new();
    let mut rows = Vec::new();
    for nodes in [16usize, 64, 256] {
        let config = |parallelism| {
            FleetConfig::builder()
                .nodes(nodes)
                .duration(SimDuration::from_secs(DURATION_S))
                .seed(SEED)
                .parallelism(parallelism)
                .build()
                .expect("valid bench configuration")
        };
        let (serial_s, threaded_s, identical) = if let Some(recorder) = jsonl.as_mut() {
            // Instrumented path: telemetry identity checked alongside the
            // outcome (counters must match bit-for-bit).
            let (serial_s, (serial_out, serial_metrics)) =
                time_once(|| run_fleet_with(&config(Parallelism::Serial), &mut NullRecorder));
            let (threaded_s, (threaded_out, threaded_metrics)) =
                time_once(|| run_fleet_with(&config(Parallelism::Threads(threads)), recorder));
            let identical = serial_out == threaded_out
                && serial_metrics.to_json().to_string() == threaded_metrics.to_json().to_string();
            merged.merge_from(&threaded_metrics);
            (serial_s, threaded_s, identical)
        } else {
            let (serial_s, serial_out) = time_once(|| run_fleet(&config(Parallelism::Serial)));
            let (threaded_s, threaded_out) =
                time_once(|| run_fleet(&config(Parallelism::Threads(threads))));
            (serial_s, threaded_s, serial_out == threaded_out)
        };
        let speedup = serial_s / threaded_s;
        println!(
            "{nodes:>6} {serial_s:>11.3}s {threaded_s:>11.3}s {speedup:>7.2}x {identical:>10}",
        );
        assert!(
            identical,
            "serial and threaded outcomes diverged at {nodes} nodes"
        );
        rows.push(Row {
            nodes,
            threads,
            serial_s,
            threaded_s,
            speedup,
            identical,
        });
    }

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("fleet_scaling".into())),
        ("simulated_duration_s".into(), (DURATION_S as f64).to_json()),
        ("seed".into(), SEED.to_json()),
        ("hardware_threads".into(), threads.to_json()),
        (
            "results".into(),
            Json::Arr(rows.iter().map(Row::to_json).collect()),
        ),
    ]);
    // Cargo runs benches with the package as working directory; anchor the
    // report at the workspace root instead.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(out, report.to_string() + "\n").expect("write BENCH_fleet.json");
    println!("wrote {out}");

    if let Some(mut recorder) = jsonl {
        recorder.flush().expect("flush telemetry log");
        println!(
            "wrote {} telemetry events to {}",
            recorder.lines(),
            telemetry_path.as_deref().unwrap_or("?")
        );
        println!("\nmerged metrics across the threaded runs:");
        print!("{}", summary_table(&merged));
    }
}
