//! Scaling benchmark for the work-stealing fleet engine: serial vs a sweep
//! of thread counts at increasing fleet sizes, with a bit-identity check
//! between serial and every threaded run, plus the streaming ladder —
//! 1k/100k/1M-node runs at a short simulated span whose nodes/sec and
//! peak-RSS rows quantify the engine's O(workers) live state.
//!
//! Emits `BENCH_fleet.json` in the workspace root. Run with
//! `cargo bench -p picocube-bench --bench fleet_scaling`. Flags:
//!
//! - `--short`: CI smoke mode — smaller fleets, shorter simulated time,
//!   writes `BENCH_fleet_smoke.json` instead so the committed full report
//!   is never clobbered by a quick run.
//! - `--telemetry PATH`: stream the widest threaded run's event logs to
//!   PATH as JSON lines and print the merged metric registry; the identity
//!   check then also covers serial-vs-threaded metric totals (it always
//!   covers the full registries regardless).
//!
//! Honesty rules baked into the report:
//!
//! - The serial reference is the best of `reps` runs (least scheduler
//!   noise); every run of a config produces bit-identical outcomes, so
//!   repetition only tightens the timing.
//! - `speedup` is always the measured `serial / threaded` ratio — on a
//!   single-hardware-thread machine it will honestly sit at or below 1.0
//!   (every worker serializes), and the report's `hardware_threads` field
//!   says how to read it.
//! - With ≥ 4 hardware threads, a threaded run slower than serial is an
//!   engine regression, not an artifact: the bench exits nonzero so CI
//!   fails. Machines that cannot demonstrate parallelism skip the gate.
//! - The pre-overhaul 256-node serial time is embedded as `baseline` so
//!   the before/after comparison travels with the numbers.

use picocube_bench::rss::{fmt_bytes, max_rss_bytes};
use picocube_bench::timing::{time_best, time_once};
use picocube_node::{run_fleet_with_stats, FleetConfig, Parallelism};
use picocube_sim::SimDuration;
use picocube_telemetry::{summary_table, JsonlRecorder, Metrics, NullRecorder, Recorder};
use picocube_units::json::{Json, ToJson};

const SEED: u64 = 42;

/// 256-node serial wall time recorded by this bench immediately before the
/// hot-path overhaul (cached event horizon, operating-point memo cache,
/// draw-signature gating, assembler fast paths), kept for the before/after
/// comparison in the emitted report.
const PRE_OVERHAUL_SERIAL_256_S: f64 = 0.169428406;

/// 256-node serial wall time recorded immediately before the pre-decoded
/// translation cache + batched sleep integration layer (DESIGN.md §16),
/// kept alongside the pre-overhaul time so each layer's contribution to
/// the before/after comparison travels with the report.
const PRE_TRANSLATION_SERIAL_256_S: f64 = 0.088132198;

struct ThreadRow {
    threads: usize,
    threaded_s: f64,
    nodes_per_s: f64,
    /// Measured `serial / threaded` ratio, always recorded. Read it
    /// against the report's `hardware_threads`: a single-thread machine
    /// honestly shows ≤ 1.0 because every worker serializes.
    speedup: f64,
    steals: u64,
    identical: bool,
}

impl ThreadRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threads".into(), self.threads.to_json()),
            ("threaded_s".into(), self.threaded_s.to_json()),
            ("nodes_per_s".into(), self.nodes_per_s.to_json()),
            ("speedup".into(), self.speedup.to_json()),
            ("steals".into(), self.steals.to_json()),
            ("identical".into(), self.identical.to_json()),
        ])
    }
}

struct SizeRow {
    nodes: usize,
    serial_s: f64,
    serial_nodes_per_s: f64,
    sweep: Vec<ThreadRow>,
}

impl SizeRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("nodes".into(), self.nodes.to_json()),
            ("serial_s".into(), self.serial_s.to_json()),
            (
                "serial_nodes_per_s".into(),
                self.serial_nodes_per_s.to_json(),
            ),
            (
                "sweep".into(),
                Json::Arr(self.sweep.iter().map(ThreadRow::to_json).collect()),
            ),
        ])
    }
}

/// One rung of the streaming ladder: a short-duration run at a fleet size
/// the materialize-then-merge engine could not hold in memory, with the
/// process's peak RSS sampled after the run. The high-water mark is
/// monotonic, so each row reports the largest fleet streamed *so far* —
/// run the rungs smallest-first and the flat curve is the O(workers)
/// memory claim.
struct LadderRow {
    nodes: usize,
    threads: usize,
    wall_s: f64,
    nodes_per_s: f64,
    max_rss_bytes: Option<u64>,
}

impl LadderRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("nodes".into(), self.nodes.to_json()),
            ("threads".into(), self.threads.to_json()),
            ("wall_s".into(), self.wall_s.to_json()),
            ("nodes_per_s".into(), self.nodes_per_s.to_json()),
            (
                "max_rss_bytes".into(),
                self.max_rss_bytes.map_or(Json::Null, |b| b.to_json()),
            ),
        ])
    }
}

struct Args {
    short: bool,
    telemetry: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        short: false,
        telemetry: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--short" => args.short = true,
            "--telemetry" => {
                args.telemetry = Some(argv.next().expect("--telemetry needs a file path"));
            }
            _ => {}
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // `None` when the OS cannot say (cgroup restrictions, exotic
    // platforms) — that is *not* evidence of a single-threaded machine,
    // so only a known count of 1 suppresses the speedup column.
    let hardware_threads: Option<usize> =
        std::thread::available_parallelism().ok().map(|n| n.get());
    let (sizes, duration_s, reps, sweep): (&[usize], u64, u32, &[usize]) = if args.short {
        (&[16, 64], 5, 2, &[2, 4])
    } else {
        (&[16, 64, 256], 30, 3, &[1, 2, 4, 8])
    };

    let threads_shown = hardware_threads.map_or("unknown".to_string(), |n| n.to_string());
    println!(
        "fleet scaling: {duration_s} s simulated, seed {SEED}, \
         {threads_shown} hardware threads, serial = best of {reps}"
    );
    if hardware_threads == Some(1) {
        eprintln!(
            "WARNING: single hardware thread — every worker serializes; \
             speedups are recorded as measured but demonstrate overhead, \
             not scaling, and the regression gate is disarmed"
        );
    }
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "nodes", "threads", "serial", "threaded", "speedup", "steals", "identical"
    );

    let mut jsonl = args.telemetry.as_deref().map(|path| {
        JsonlRecorder::create(path).unwrap_or_else(|e| panic!("--telemetry {path}: {e}"))
    });
    let mut merged = Metrics::new();
    let mut sched_registry = Metrics::new();
    let mut all_identical = true;
    let mut rows = Vec::new();
    for &nodes in sizes {
        let config = |parallelism| {
            FleetConfig::builder()
                .nodes(nodes)
                .duration(SimDuration::from_secs(duration_s))
                .seed(SEED)
                .parallelism(parallelism)
                .build()
                .expect("valid bench configuration")
        };
        let (serial_s, (serial_out, serial_metrics, serial_stats)) = time_best(reps, || {
            run_fleet_with_stats(&config(Parallelism::Serial), &mut NullRecorder)
        });
        let serial_json = serial_metrics.to_json().to_string();
        serial_stats.export_metrics(&mut sched_registry);

        let mut sweep_rows = Vec::new();
        for (i, &threads) in sweep.iter().enumerate() {
            let widest = i + 1 == sweep.len();
            let run = |recorder: &mut dyn Recorder| {
                run_fleet_with_stats(&config(Parallelism::Threads(threads)), recorder)
            };
            let (threaded_s, (out, metrics, stats)) = match jsonl.as_mut() {
                // Stream events for the widest sweep entry only; one
                // instrumented run per fleet size keeps the log readable.
                Some(recorder) if widest => time_once(|| run(recorder)),
                _ => time_once(|| run(&mut NullRecorder)),
            };
            let identical = out == serial_out && metrics.to_json().to_string() == serial_json;
            all_identical &= identical;
            if widest {
                merged.merge_from(&metrics);
            }
            stats.export_metrics(&mut sched_registry);
            let speedup = serial_s / threaded_s;
            let shown = format!("{speedup:.2}x");
            println!(
                "{nodes:>6} {threads:>8} {serial_s:>11.3}s {threaded_s:>11.3}s {shown:>8} \
                 {:>8} {identical:>10}",
                stats.steals(),
            );
            sweep_rows.push(ThreadRow {
                threads,
                threaded_s,
                nodes_per_s: nodes as f64 / threaded_s,
                speedup,
                steals: stats.steals(),
                identical,
            });
        }
        rows.push(SizeRow {
            nodes,
            serial_s,
            serial_nodes_per_s: nodes as f64 / serial_s,
            sweep: sweep_rows,
        });
    }

    // The streaming ladder: million-node scale at a short simulated span.
    // One TPMS report cycle (6 s) is enough simulated time for every node
    // to wake, sample and transmit, so nodes/sec here measures the
    // engine's streaming throughput, not the firmware's duty cycle.
    let ladder_sizes: &[usize] = if args.short {
        &[1_000, 100_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };
    let ladder_threads = hardware_threads.unwrap_or(4).clamp(2, 16);
    let ladder_duration_s = 6u64;
    println!("\nstreaming ladder: {ladder_duration_s} s simulated, {ladder_threads} threads");
    println!(
        "{:>9} {:>10} {:>13} {:>12}",
        "nodes", "wall", "nodes/sec", "peak RSS"
    );
    let mut ladder = Vec::new();
    for &nodes in ladder_sizes {
        let config = FleetConfig::builder()
            .nodes(nodes)
            .duration(SimDuration::from_secs(ladder_duration_s))
            .seed(SEED)
            .parallelism(Parallelism::Threads(ladder_threads))
            .build()
            .expect("valid ladder configuration");
        let (wall_s, _) = time_once(|| run_fleet_with_stats(&config, &mut NullRecorder));
        let hwm = max_rss_bytes();
        println!(
            "{nodes:>9} {wall_s:>9.2}s {:>13.0} {:>12}",
            nodes as f64 / wall_s,
            hwm.map_or("n/a".to_string(), fmt_bytes),
        );
        ladder.push(LadderRow {
            nodes,
            threads: ladder_threads,
            wall_s,
            nodes_per_s: nodes as f64 / wall_s,
            max_rss_bytes: hwm,
        });
    }

    let baseline = rows
        .iter()
        .find(|r| r.nodes == 256)
        .map(|r| {
            Json::Obj(vec![
                (
                    "pre_overhaul_serial_256_s".into(),
                    PRE_OVERHAUL_SERIAL_256_S.to_json(),
                ),
                (
                    "pre_translation_serial_256_s".into(),
                    PRE_TRANSLATION_SERIAL_256_S.to_json(),
                ),
                (
                    "serial_improvement".into(),
                    (PRE_OVERHAUL_SERIAL_256_S / r.serial_s).to_json(),
                ),
                (
                    "translation_improvement".into(),
                    (PRE_TRANSLATION_SERIAL_256_S / r.serial_s).to_json(),
                ),
            ])
        })
        .unwrap_or(Json::Null);

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("fleet_scaling".into())),
        ("simulated_duration_s".into(), (duration_s as f64).to_json()),
        ("seed".into(), SEED.to_json()),
        (
            "hardware_threads".into(),
            hardware_threads.map_or(Json::Null, |n| n.to_json()),
        ),
        ("serial_reps".into(), reps.to_json()),
        ("baseline".into(), baseline),
        (
            "results".into(),
            Json::Arr(rows.iter().map(SizeRow::to_json).collect()),
        ),
        (
            "ladder".into(),
            Json::Obj(vec![
                (
                    "simulated_duration_s".into(),
                    (ladder_duration_s as f64).to_json(),
                ),
                (
                    "rows".into(),
                    Json::Arr(ladder.iter().map(LadderRow::to_json).collect()),
                ),
            ]),
        ),
    ]);
    // Cargo runs benches with the package as working directory; anchor the
    // report at the workspace root. Short mode writes a separate file so a
    // quick smoke run never clobbers the committed full report.
    let out = if args.short {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json")
    };
    std::fs::write(out, report.to_string() + "\n").expect("write fleet bench report");
    println!("wrote {out}");

    println!("\nscheduler stats across all runs:");
    print!("{}", summary_table(&sched_registry));

    if let Some(mut recorder) = jsonl {
        recorder.flush().expect("flush telemetry log");
        println!(
            "wrote {} telemetry events to {}",
            recorder.lines(),
            args.telemetry.as_deref().unwrap_or("?")
        );
        println!("\nmerged metrics from the widest threaded runs:");
        print!("{}", summary_table(&merged));
    }

    assert!(
        all_identical,
        "serial and threaded outcomes diverged (see `identical` column)"
    );

    // Regression gate: with real parallelism on hand, a multi-worker run
    // slower than serial means the engine lost its scaling, so CI should
    // fail. Only rows that the machine can actually parallelize are held
    // to it (2..=hardware threads); oversubscribed rows measure scheduler
    // overhead by design, and 1-thread machines cannot arm the gate.
    if let Some(hw) = hardware_threads.filter(|&hw| hw >= 4) {
        for row in &rows {
            for t in &row.sweep {
                assert!(
                    t.threads < 2 || t.threads > hw || t.speedup >= 1.0,
                    "threaded regression: {} nodes on {} threads ran {:.2}x serial \
                     with {hw} hardware threads available",
                    row.nodes,
                    t.threads,
                    t.speedup,
                );
            }
        }
    }
}
