//! Micro-benchmarks for the simulation substrate itself, so performance
//! regressions in the kernel, MCU emulator, converter solver and channel
//! are visible. Run with `cargo bench -p picocube-bench --bench simulation`.

use picocube_bench::timing::bench;
use picocube_mcu::{asm, Mcu, StepResult};
use picocube_node::{NodeConfig, PicoCube};
use picocube_power::sc::ScConverter;
use picocube_radio::{Channel, Link, PatchAntenna};
use picocube_sim::{EventQueue, SimDuration, SimRng, SimTime};
use picocube_units::{Amps, Db, Dbm, Hertz, Volts};

fn bench_event_queue() {
    bench("kernel/event_queue_push_pop_10k", 50, || {
        let mut q = EventQueue::<u32>::new();
        for i in 0..10_000u64 {
            q.push(SimTime::from_nanos(i * 37 % 50_000), i as u32);
        }
        while q.pop().is_some() {}
        q.len()
    });
}

fn bench_mcu() {
    let image = asm::assemble(
        r#"
        .org 0xF000
start:  mov #0x0A00, sp
loop:   mov #0xFFFF, r4
inner:  dec r4
        jnz inner
        jmp loop
        .vector reset, start
        "#,
    )
    .expect("bench program assembles");

    let mut mcu = Mcu::new();
    mcu.load(&image);
    bench("mcu/emulator_100k_instructions", 10, || {
        mcu.reset();
        for _ in 0..100_000 {
            match mcu.step() {
                StepResult::Ran { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        mcu.cycles()
    });
}

fn bench_sc_solver() {
    let conv = ScConverter::paper_1to2();
    bench("power/sc_convert_fixed_frequency", 10_000, || {
        conv.convert(
            Volts::new(1.2),
            Amps::from_micro(200.0),
            Hertz::from_kilo(800.0),
        )
        .unwrap()
    });
    bench("power/sc_optimal_frequency_search", 1_000, || {
        conv.convert_optimal(Volts::new(1.2), Amps::from_micro(200.0))
            .unwrap()
    });
    bench("power/sc_regulate_bisection", 1_000, || {
        conv.regulate(Volts::new(1.2), Volts::new(2.1), Amps::from_micro(200.0))
            .unwrap()
    });
}

fn bench_channel() {
    let link = Link {
        tx_power: Dbm::new(0.8),
        tx_gain: PatchAntenna::as_built().gain_dbi(Hertz::new(1.863e9)),
        rx_gain: Db::new(0.0),
        orientation_loss: Db::new(2.0),
        channel: Channel::demo_room(),
    };
    let mut rng = SimRng::seed_from(1);
    bench("radio/link_packet_trial_104_bits", 5_000, || {
        link.try_packet(picocube_units::Meters::new(4.0), 104, &mut rng)
    });
}

fn bench_full_node() {
    bench("node/tpms_node_60_simulated_seconds", 3, || {
        let mut node = PicoCube::tpms(NodeConfig::default()).unwrap();
        node.run_for(SimDuration::from_secs(60));
        node.report().wakes
    });
}

fn main() {
    bench_event_queue();
    bench_mcu();
    bench_sc_solver();
    bench_channel();
    bench_full_node();
}
