//! Criterion micro-benchmarks for the simulation substrate itself, so
//! performance regressions in the kernel, MCU emulator, converter solver
//! and channel are visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use picocube_mcu::{asm, Mcu, StepResult};
use picocube_node::{NodeConfig, PicoCube};
use picocube_power::sc::ScConverter;
use picocube_radio::{Channel, Link, PatchAntenna};
use picocube_sim::{EventQueue, SimDuration, SimRng, SimTime};
use picocube_units::{Amps, Db, Dbm, Hertz, Volts};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.push(SimTime::from_nanos(i * 37 % 50_000), i as u32);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_mcu(c: &mut Criterion) {
    let image = asm::assemble(
        r#"
        .org 0xF000
start:  mov #0x0A00, sp
loop:   mov #0xFFFF, r4
inner:  dec r4
        jnz inner
        jmp loop
        .vector reset, start
        "#,
    )
    .expect("bench program assembles");

    let mut group = c.benchmark_group("mcu");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("emulator_100k_instructions", |b| {
        let mut mcu = Mcu::new();
        mcu.load(&image);
        b.iter(|| {
            mcu.reset();
            for _ in 0..100_000 {
                match mcu.step() {
                    StepResult::Ran { .. } => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
            mcu.cycles()
        });
    });
    group.finish();
}

fn bench_sc_solver(c: &mut Criterion) {
    let conv = ScConverter::paper_1to2();
    let mut group = c.benchmark_group("power");
    group.bench_function("sc_convert_fixed_frequency", |b| {
        b.iter(|| {
            conv.convert(Volts::new(1.2), Amps::from_micro(200.0), Hertz::from_kilo(800.0))
                .unwrap()
        });
    });
    group.bench_function("sc_optimal_frequency_search", |b| {
        b.iter(|| conv.convert_optimal(Volts::new(1.2), Amps::from_micro(200.0)).unwrap());
    });
    group.bench_function("sc_regulate_bisection", |b| {
        b.iter(|| {
            conv.regulate(Volts::new(1.2), Volts::new(2.1), Amps::from_micro(200.0)).unwrap()
        });
    });
    group.finish();
}

fn bench_channel(c: &mut Criterion) {
    let link = Link {
        tx_power: Dbm::new(0.8),
        tx_gain: PatchAntenna::as_built().gain_dbi(Hertz::new(1.863e9)),
        rx_gain: Db::new(0.0),
        orientation_loss: Db::new(2.0),
        channel: Channel::demo_room(),
    };
    let mut group = c.benchmark_group("radio");
    group.bench_function("link_packet_trial_104_bits", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| link.try_packet(4.0, 104, &mut rng));
    });
    group.finish();
}

fn bench_full_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("node");
    group.sample_size(10);
    group.bench_function("tpms_node_60_simulated_seconds", |b| {
        b.iter_batched(
            || PicoCube::tpms(NodeConfig::default()).unwrap(),
            |mut node| {
                node.run_for(SimDuration::from_secs(60));
                node.report().wakes
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_mcu,
    bench_sc_solver,
    bench_channel,
    bench_full_node
);
criterion_main!(benches);
