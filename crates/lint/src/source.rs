//! Structural scan of one source file: items, blocks, and panic sites.
//!
//! Builds on the token stream from [`crate::lexer`]: a single forward walk
//! tracks the block-nesting context (function bodies, `#[cfg(test)]`
//! modules, test functions), collects function signatures and module-level
//! constants with their attached doc comments, and records every
//! panic-capable site. The lint passes in [`crate::lints`] then run over
//! this model without re-reading the source.

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// A scanned function signature.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is `pub` (unrestricted).
    pub is_pub: bool,
    /// Whether the function sits in test code (`#[test]` fn or
    /// `#[cfg(test)]` module) or is itself nested inside another body.
    pub in_test: bool,
    /// Tokens of the parameter list, parentheses excluded.
    pub params: Vec<Token>,
    /// Tokens of the return type (empty when the function returns `()`).
    pub ret: Vec<Token>,
}

/// A scanned module- or impl-level `const` item.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// Constant name.
    pub name: String,
    /// 1-based line of the `const` keyword.
    pub line: u32,
    /// Whether the constant sits in test code.
    pub in_test: bool,
    /// Tokens of the declared type.
    pub ty: Vec<Token>,
    /// Concatenated doc-comment text attached to the item.
    pub doc: String,
}

/// The kind of a panic-capable site (lint L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `panic!(…)`.
    Panic,
    /// `unreachable!(…)`.
    Unreachable,
    /// `todo!(…)` or `unimplemented!(…)`.
    Todo,
    /// Bracket indexing of an expression (`xs[i]`).
    Index,
}

impl SiteKind {
    /// Stable lowercase name, used in reports and the allowlist file.
    pub fn name(self) -> &'static str {
        match self {
            Self::Unwrap => "unwrap",
            Self::Expect => "expect",
            Self::Panic => "panic",
            Self::Unreachable => "unreachable",
            Self::Todo => "todo",
            Self::Index => "index",
        }
    }

    /// Parses a [`SiteKind::name`] back; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "unwrap" => Self::Unwrap,
            "expect" => Self::Expect,
            "panic" => Self::Panic,
            "unreachable" => Self::Unreachable,
            "todo" => Self::Todo,
            "index" => Self::Index,
            _ => None?,
        })
    }
}

/// One panic-capable site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What kind of site.
    pub kind: SiteKind,
    /// 1-based source line.
    pub line: u32,
    /// Whether the site is in test code.
    pub in_test: bool,
}

/// One identifier occurrence outside test code (for lint L3).
#[derive(Debug, Clone)]
pub struct IdentUse {
    /// The identifier text.
    pub ident: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether the use is in test code.
    pub in_test: bool,
}

/// The scanned model of one source file.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Function signatures in source order.
    pub fns: Vec<FnSig>,
    /// Module- and impl-level constants in source order.
    pub consts: Vec<ConstItem>,
    /// Panic-capable sites in source order.
    pub sites: Vec<PanicSite>,
    /// Every identifier occurrence (outside attributes) with test context.
    pub idents: Vec<IdentUse>,
    /// Comment side tables from the lexer.
    pub lexed: Lexed,
}

impl ScannedFile {
    /// Whether a `picocube-lint: allow(name)` marker covers `line` (the
    /// marker may sit on the line itself or on the line directly above).
    pub fn allows(&self, name: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.lexed
                .allow_markers
                .get(l)
                .is_some_and(|names| names.iter().any(|n| n == name))
        })
    }

    /// Doc text attached to an item starting at `line`: the contiguous run
    /// of doc-comment lines ending directly above it (attribute lines in
    /// between are tolerated by scanning a few lines further up).
    pub fn doc_above(&self, line: u32) -> String {
        let mut doc = String::new();
        let mut l = line.saturating_sub(1);
        let mut gap = 0u32;
        while l > 0 && gap <= 3 {
            if let Some(text) = self.lexed.doc_lines.get(&l) {
                doc.insert_str(0, text);
                gap = 0;
            } else {
                gap += 1;
            }
            l -= 1;
        }
        doc
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    /// A function body (tests or not).
    FnBody,
    /// A `#[cfg(test)]` module.
    TestMod,
    /// Anything else: plain module, impl, trait, match arm, etc.
    Other,
}

/// Scans `src` into a [`ScannedFile`].
pub fn scan(src: &str) -> ScannedFile {
    let lexed = lex(src);
    let mut out = ScannedFile::default();
    let toks = std::mem::take(&mut {
        // Tokens are moved out for the walk; the side tables stay.
        let mut l = lexed;
        let t = std::mem::take(&mut l.tokens);
        out.lexed = l;
        t
    });

    let mut stack: Vec<BlockKind> = Vec::new();
    // Block kind to assign to specific upcoming `{` token indices.
    let mut planned: std::collections::BTreeMap<usize, BlockKind> =
        std::collections::BTreeMap::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut pending_pub = false;

    let in_fn = |stack: &[BlockKind]| stack.contains(&BlockKind::FnBody);
    let in_test = |stack: &[BlockKind]| stack.contains(&BlockKind::TestMod);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokenKind::Punct if t.is_punct('#') => {
                // Attribute: `#[…]` or `#![…]`. Collect its text and skip
                // its tokens entirely so nothing inside is linted.
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_punct('!') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('[') {
                    let mut depth = 0i32;
                    let mut text = String::new();
                    while j < toks.len() {
                        if toks[j].is_punct('[') {
                            depth += 1;
                            if depth == 1 {
                                j += 1;
                                continue;
                            }
                        } else if toks[j].is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        text.push_str(&toks[j].text);
                        j += 1;
                    }
                    pending_attrs.push(text);
                    i = j;
                    continue;
                }
                i += 1;
            }
            TokenKind::Punct if t.is_punct('{') => {
                let kind = planned.remove(&i).unwrap_or(BlockKind::Other);
                stack.push(kind);
                pending_attrs.clear();
                pending_pub = false;
                i += 1;
            }
            TokenKind::Punct if t.is_punct('}') => {
                stack.pop();
                i += 1;
            }
            TokenKind::Ident if t.text == "pub" => {
                // `pub(crate)`/`pub(super)` are not public API.
                pending_pub = !toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                i += 1;
            }
            TokenKind::Ident if t.text == "mod" => {
                let test_attr = pending_attrs.iter().any(|a| a.contains("cfg(test"));
                if let (Some(_name), Some(brace)) = (
                    toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident),
                    toks.get(i + 2),
                ) {
                    if brace.is_punct('{') {
                        planned.insert(
                            i + 2,
                            if test_attr {
                                BlockKind::TestMod
                            } else {
                                BlockKind::Other
                            },
                        );
                    }
                }
                pending_attrs.clear();
                pending_pub = false;
                i += 1;
            }
            TokenKind::Ident if t.text == "fn" => {
                // An item `fn` is followed by its name; `fn(…)` pointer
                // types are not.
                let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                    i += 1;
                    continue;
                };
                let is_test_fn = pending_attrs
                    .iter()
                    .any(|a| a == "test" || a.contains("::test") || a.starts_with("should_panic"));
                let sig_test = in_test(&stack) || is_test_fn || in_fn(&stack);
                let (params, ret, body_open) = parse_signature(&toks, i + 2);
                if let Some(open) = body_open {
                    planned.insert(open, BlockKind::FnBody);
                }
                out.fns.push(FnSig {
                    name: name_tok.text.clone(),
                    line: t.line,
                    is_pub: pending_pub,
                    in_test: sig_test,
                    params,
                    ret,
                });
                pending_attrs.clear();
                pending_pub = false;
                // Continue the walk from the token after `fn` so the body
                // (and any nested items) are scanned normally.
                i += 1;
            }
            TokenKind::Ident if t.text == "const" && !in_fn(&stack) => {
                // Module- or impl-level constant; skip `const fn`, the
                // `*const` pointer sigil and `const _` anchors.
                let prev_is_star = i > 0 && toks[i - 1].is_punct('*');
                let name = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident);
                match name {
                    Some(n) if !prev_is_star && n.text != "fn" && n.text != "_" => {
                        let mut ty = Vec::new();
                        let mut j = i + 2;
                        if toks.get(j).is_some_and(|c| c.is_punct(':')) {
                            j += 1;
                            let mut depth = 0i32;
                            while let Some(tok) = toks.get(j) {
                                if tok.is_punct('=') && depth == 0 {
                                    break;
                                }
                                match tok.text.as_str() {
                                    "<" | "(" | "[" => depth += 1,
                                    ">" | ")" | "]" => depth -= 1,
                                    _ => {}
                                }
                                ty.push(tok.clone());
                                j += 1;
                            }
                        }
                        out.consts.push(ConstItem {
                            name: n.text.clone(),
                            line: t.line,
                            in_test: in_test(&stack),
                            ty,
                            doc: String::new(), // filled below from doc_lines
                        });
                    }
                    _ => {}
                }
                pending_attrs.clear();
                pending_pub = false;
                i += 1;
            }
            TokenKind::Ident => {
                let test_ctx = in_test(&stack);
                out.idents.push(IdentUse {
                    ident: t.text.clone(),
                    line: t.line,
                    in_test: test_ctx,
                });
                // Panic-capable method calls and macros.
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let next = toks.get(i + 1);
                let dotted = prev.is_some_and(|p| p.is_punct('.'));
                let called = next.is_some_and(|n| n.is_punct('('));
                let banged = next.is_some_and(|n| n.is_punct('!'));
                let kind = match t.text.as_str() {
                    "unwrap" if dotted && called => Some(SiteKind::Unwrap),
                    "expect" if dotted && called => Some(SiteKind::Expect),
                    "panic" if banged => Some(SiteKind::Panic),
                    "unreachable" if banged => Some(SiteKind::Unreachable),
                    "todo" | "unimplemented" if banged => Some(SiteKind::Todo),
                    _ => None,
                };
                if let Some(kind) = kind {
                    out.sites.push(PanicSite {
                        kind,
                        line: t.line,
                        in_test: test_ctx,
                    });
                }
                i += 1;
            }
            TokenKind::Punct if t.is_punct('[') => {
                // Expression indexing: `xs[i]`, `f()[i]`, `xs[i][j]` — the
                // opening bracket directly follows an identifier, a closing
                // parenthesis or a closing bracket. Type syntax (`[u8; 4]`),
                // array literals (`= [...]`) and macro brackets (`vec![`)
                // all follow other tokens. Only flagged inside fn bodies.
                if in_fn(&stack) {
                    if let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) {
                        let indexes = prev.kind == TokenKind::Ident
                            && !matches!(
                                prev.text.as_str(),
                                // `let [a, b] = …` opens a slice pattern,
                                // never an index expression.
                                "return" | "in" | "else" | "match" | "break" | "as" | "let"
                            )
                            || prev.is_punct(')')
                            || prev.is_punct(']');
                        if indexes {
                            out.sites.push(PanicSite {
                                kind: SiteKind::Index,
                                line: t.line,
                                in_test: in_test(&stack),
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    // Attach doc comments to constants now that all lines are known.
    let docs: Vec<String> = out.consts.iter().map(|c| out.doc_above(c.line)).collect();
    for (c, d) in out.consts.iter_mut().zip(docs) {
        c.doc = d;
    }
    out
}

/// Parses a function signature starting at the token after the name.
/// Returns `(param tokens, return tokens, body-open token index)`.
fn parse_signature(toks: &[Token], mut i: usize) -> (Vec<Token>, Vec<Token>, Option<usize>) {
    // Skip generics.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Parameter list.
    let mut params = Vec::new();
    if toks.get(i).is_some_and(|t| t.is_punct('(')) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            if t.is_punct('(') {
                depth += 1;
                if depth == 1 {
                    i += 1;
                    continue;
                }
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            params.push(t.clone());
            i += 1;
        }
    }
    // Return type, up to the body, a `;`, or a `where` clause.
    let mut ret = Vec::new();
    if toks.get(i).is_some_and(|t| t.is_punct('-'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('>'))
    {
        i += 2;
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            if depth == 0 && (t.is_punct('{') || t.is_punct(';') || t.is_ident("where")) {
                break;
            }
            match t.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                _ => {}
            }
            ret.push(t.clone());
            i += 1;
        }
    }
    // Find the body brace (skipping a where clause).
    let mut depth = 0i32;
    while let Some(t) = toks.get(i) {
        if t.is_punct(';') && depth == 0 {
            return (params, ret, None);
        }
        if t.is_punct('{') && depth >= 0 {
            return (params, ret, Some(i));
        }
        match t.text.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    (params, ret, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_pub_fn_signature() {
        let s = scan("pub fn path_loss(&self, distance_m: f64) -> Db { Db::ZERO }\n");
        assert_eq!(s.fns.len(), 1);
        let f = &s.fns[0];
        assert!(f.is_pub && !f.in_test);
        assert_eq!(f.name, "path_loss");
        assert!(f.params.iter().any(|t| t.is_ident("f64")));
        assert!(f.ret.iter().any(|t| t.is_ident("Db")));
    }

    #[test]
    fn test_module_code_is_marked() {
        let src =
            "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let s = scan(src);
        let flags: Vec<bool> = s.sites.iter().map(|site| site.in_test).collect();
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn indexing_detected_only_for_expressions() {
        let src = "fn f(xs: &[u32], i: usize) -> u32 {\n    let a: [u8; 2] = [0, 1];\n    let v = vec![1];\n    let [lo, hi] = [xs[i], 1];\n    if let [only] = *xs { return only; }\n    lo + hi + u32::from(a[0]) + v[0]\n}\n";
        let s = scan(src);
        let idx = s
            .sites
            .iter()
            .filter(|site| site.kind == SiteKind::Index)
            .count();
        assert_eq!(
            idx, 3,
            "xs[i], a[0], v[0] — slice patterns are not indexing"
        );
    }

    #[test]
    fn consts_capture_type_and_docs() {
        let src =
            "/// Speed of light (§5).\nconst C: f64 = 3e8;\nfn f() { const INNER: f64 = 1.0; }\n";
        let s = scan(src);
        assert_eq!(s.consts.len(), 1, "fn-local consts are not items");
        assert_eq!(s.consts[0].name, "C");
        assert!(s.consts[0].doc.contains('§'));
        assert!(s.consts[0].ty.iter().any(|t| t.is_ident("f64")));
    }

    #[test]
    fn attributes_are_not_linted() {
        let src = "#[should_panic(expected = \"x\")]\nfn t() {}\n";
        let s = scan(src);
        assert!(s.sites.is_empty());
        assert!(s.fns[0].in_test, "should_panic marks a test fn");
    }

    #[test]
    fn macro_sites_are_found() {
        let s = scan("fn f() { panic!(\"boom\"); unreachable!(); }\n");
        let kinds: Vec<SiteKind> = s.sites.iter().map(|x| x.kind).collect();
        assert_eq!(kinds, vec![SiteKind::Panic, SiteKind::Unreachable]);
    }
}
