//! The allowlist: a budget file that may only shrink.
//!
//! `lint-allowlist.txt` at the workspace root records, per file and
//! finding kind, how many sites are accepted and why. Bare kinds
//! (`unwrap`, `index`, ...) are L2 panic budgets — the original format.
//! Lint-tagged kinds (`L5:mixed-units`, `L6:adhoc-derivation`,
//! `L7:inline-key`) budget the syntactic lints the same way. The budgets
//! are **exact**: more actual sites than budgeted is a regression (new
//! violations), and fewer is a stale entry (a site was fixed, so the
//! budget must be tightened in the same change). Both directions fail the
//! lint, which is what makes the allowlist shrink-only in practice.

use crate::report::{Finding, Lint};
use crate::source::SiteKind;
use std::collections::BTreeMap;

/// One `path kind count -- justification` entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Workspace-relative file path.
    pub path: String,
    /// Which lint the budget belongs to (L2 for bare kinds).
    pub lint: Lint,
    /// The finding kind the budget covers (`unwrap`, `mixed-units`, ...).
    pub kind: String,
    /// Number of accepted sites.
    pub count: usize,
    /// Why the sites are acceptable.
    pub justification: String,
}

impl Entry {
    /// The kind token as written in the file (`unwrap` vs `L5:mixed-units`).
    pub fn kind_token(&self) -> String {
        if self.lint == Lint::L2 {
            self.kind.clone()
        } else {
            format!("{}:{}", self.lint.code(), self.kind)
        }
    }
}

/// Parses a kind token into `(lint, kind)`, validating both halves.
fn parse_kind_token(token: &str) -> Option<(Lint, String)> {
    if let Some((code, kind)) = token.split_once(':') {
        let lint = Lint::parse(code)?;
        if !Lint::ALLOWLISTED.contains(&lint) || lint == Lint::L2 || kind.is_empty() {
            return None;
        }
        return Some((lint, kind.to_string()));
    }
    // Bare kinds are L2 panic kinds and must name a real one.
    SiteKind::parse(token).map(|k| (Lint::L2, k.name().to_string()))
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

impl Allowlist {
    /// Parses the allowlist file format. Blank lines and `#` comments are
    /// skipped; malformed lines are returned as errors with line numbers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, justification) = line
                .split_once("--")
                .ok_or_else(|| format!("line {}: missing `-- justification`", idx + 1))?;
            let mut parts = head.split_whitespace();
            let path = parts
                .next()
                .ok_or_else(|| format!("line {}: missing path", idx + 1))?;
            let (lint, kind) = parts
                .next()
                .and_then(parse_kind_token)
                .ok_or_else(|| format!("line {}: missing or unknown kind", idx + 1))?;
            let count: usize = parts
                .next()
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| format!("line {}: missing count", idx + 1))?;
            if parts.next().is_some() {
                return Err(format!("line {}: trailing tokens before `--`", idx + 1));
            }
            let justification = justification.trim();
            if justification.is_empty() {
                return Err(format!("line {}: empty justification", idx + 1));
            }
            entries.push(Entry {
                path: path.to_string(),
                lint,
                kind,
                count,
                justification: justification.to_string(),
            });
        }
        Ok(Self { entries })
    }

    /// Budget for a `(path, lint, kind)` triple; 0 when absent.
    pub fn budget(&self, path: &str, lint: Lint, kind: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.path == path && e.lint == lint && e.kind == kind)
            .map(|e| e.count)
            .sum()
    }

    /// Total budgeted sites for one lint (the CI `--max-allowlisted` cap
    /// applies to L2 only).
    pub fn total(&self, lint: Lint) -> usize {
        self.entries
            .iter()
            .filter(|e| e.lint == lint)
            .map(|e| e.count)
            .sum()
    }

    /// Applies the budgets to the raw findings of every allowlisted lint.
    ///
    /// Per `(lint, file, kind)` group: if the actual count exceeds the
    /// budget the excess findings are kept (reported at their real
    /// locations); if it matches, all are suppressed; if it falls short —
    /// or an entry's file has no findings at all — a `stale-allowlist`
    /// finding is emitted so the budget gets tightened. Returns the
    /// surviving findings and the number suppressed.
    pub fn apply(&self, raw: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut groups: BTreeMap<(Lint, String, String), Vec<Finding>> = BTreeMap::new();
        for f in raw {
            groups
                .entry((f.lint, f.file.clone(), f.kind.clone()))
                .or_default()
                .push(f);
        }
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for ((lint, file, kind), group) in &mut groups {
            let budget = self.budget(file, *lint, kind);
            let actual = group.len();
            if actual > budget {
                suppressed += budget;
                kept.extend(group.drain(budget..).map(|mut f| {
                    f.message = format!(
                        "{} (allowlist budget {budget}, found {actual} — new site)",
                        f.message
                    );
                    f
                }));
            } else if actual < budget {
                suppressed += actual;
                kept.push(Finding {
                    lint: *lint,
                    file: file.clone(),
                    line: 0,
                    kind: "stale-allowlist".into(),
                    message: format!(
                        "allowlist budgets {budget} `{kind}` site(s) but only {actual} \
                         remain — shrink the entry in lint-allowlist.txt"
                    ),
                });
            } else {
                suppressed += actual;
            }
        }
        // Entries whose file/kind produced no findings at all are stale too.
        for e in &self.entries {
            let key = (e.lint, e.path.clone(), e.kind.clone());
            if !groups.contains_key(&key) && e.count > 0 {
                kept.push(Finding {
                    lint: e.lint,
                    file: e.path.clone(),
                    line: 0,
                    kind: "stale-allowlist".into(),
                    message: format!(
                        "allowlist budgets {} `{}` site(s) but none remain — delete the entry",
                        e.count, e.kind
                    ),
                });
            }
        }
        (kept, suppressed)
    }

    /// Renders entries back into the file format (used by
    /// `--update-allowlist` to tighten budgets mechanically).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# picocube-lint allowlist — shrink-only.\n\
             # Format: <path> <kind> <count> -- <justification>\n\
             # Bare kinds are L2 panic budgets; `L5:`/`L6:`/`L7:`-tagged kinds budget\n\
             # the syntactic lints. Budgets are exact: the lint fails when a file\n\
             # gains OR loses sites relative to its budget, so fixes must tighten\n\
             # the entry here.\n\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{} {} {} -- {}\n",
                e.path,
                e.kind_token(),
                e.count,
                e.justification
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: Lint, file: &str, kind: &str, line: u32) -> Finding {
        Finding {
            lint,
            file: file.into(),
            line,
            kind: kind.into(),
            message: "site".into(),
        }
    }

    #[test]
    fn parses_entries_and_skips_comments() {
        let a = Allowlist::parse(
            "# header\n\ncrates/sim/src/power.rs index 2 -- rail ids are validated at build\n",
        )
        .unwrap();
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.budget("crates/sim/src/power.rs", Lint::L2, "index"), 2);
        assert_eq!(a.budget("crates/sim/src/power.rs", Lint::L2, "unwrap"), 0);
    }

    #[test]
    fn parses_lint_tagged_kinds() {
        let a = Allowlist::parse(
            "crates/core/src/stack/storage.rs L6:adhoc-derivation 1 -- decorrelation hash\n",
        )
        .unwrap();
        assert_eq!(a.entries[0].lint, Lint::L6);
        assert_eq!(
            a.budget(
                "crates/core/src/stack/storage.rs",
                Lint::L6,
                "adhoc-derivation"
            ),
            1
        );
        assert_eq!(a.total(Lint::L6), 1);
        assert_eq!(a.total(Lint::L2), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("no-kind-or-count\n").is_err());
        assert!(Allowlist::parse("p unwrap x -- why\n").is_err());
        assert!(Allowlist::parse("p unwrap 1 --   \n").is_err());
        assert!(Allowlist::parse("p wibble 1 -- why\n").is_err());
        // Only allowlisted lints may carry budgets; L2 uses bare kinds.
        assert!(Allowlist::parse("p L3:hashmap 1 -- why\n").is_err());
        assert!(Allowlist::parse("p L2:unwrap 1 -- why\n").is_err());
        assert!(Allowlist::parse("p L5: 1 -- why\n").is_err());
    }

    #[test]
    fn exact_budget_suppresses_all() {
        let a = Allowlist::parse("f.rs unwrap 2 -- fine\n").unwrap();
        let (kept, suppressed) = a.apply(vec![
            finding(Lint::L2, "f.rs", "unwrap", 1),
            finding(Lint::L2, "f.rs", "unwrap", 2),
        ]);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn growth_keeps_excess_findings() {
        let a = Allowlist::parse("f.rs unwrap 1 -- fine\n").unwrap();
        let (kept, _) = a.apply(vec![
            finding(Lint::L2, "f.rs", "unwrap", 1),
            finding(Lint::L2, "f.rs", "unwrap", 9),
        ]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 9, "excess reported at the newest site");
        assert!(kept[0].message.contains("new site"));
    }

    #[test]
    fn budgets_are_per_lint() {
        // An L5 budget must not absorb an L6 finding of the same kind name.
        let a = Allowlist::parse("f.rs L5:oops 1 -- fine\n").unwrap();
        let (kept, _) = a.apply(vec![finding(Lint::L6, "f.rs", "oops", 3)]);
        // The L6 finding survives and the L5 entry is stale.
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|f| f.lint == Lint::L6 && f.line == 3));
        assert!(kept
            .iter()
            .any(|f| f.lint == Lint::L5 && f.kind == "stale-allowlist"));
    }

    #[test]
    fn shrink_flags_stale_budget() {
        let a = Allowlist::parse("f.rs unwrap 3 -- fine\n").unwrap();
        let (kept, _) = a.apply(vec![finding(Lint::L2, "f.rs", "unwrap", 1)]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].kind, "stale-allowlist");
    }

    #[test]
    fn entry_with_no_findings_is_stale() {
        let a = Allowlist::parse("gone.rs expect 1 -- was here once\n").unwrap();
        let (kept, _) = a.apply(Vec::new());
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("delete the entry"));
    }

    #[test]
    fn render_round_trips() {
        let text = "a.rs unwrap 1 -- one\nb.rs index 2 -- two\nc.rs L7:inline-key 3 -- three\n";
        let a = Allowlist::parse(text).unwrap();
        let again = Allowlist::parse(&a.render()).unwrap();
        assert_eq!(again.entries.len(), 3);
        assert_eq!(again.budget("b.rs", Lint::L2, "index"), 2);
        assert_eq!(again.budget("c.rs", Lint::L7, "inline-key"), 3);
        assert!(a.render().contains("c.rs L7:inline-key 3"));
    }
}
