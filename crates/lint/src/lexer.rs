//! A minimal Rust lexer, sufficient for the workspace lints.
//!
//! The workspace builds fully offline, so `syn` is not available; this
//! hand-rolled lexer covers exactly what the lint passes need: identifiers,
//! punctuation and literals with correct line numbers, comments stripped
//! from the token stream but doc comments and `picocube-lint:` markers
//! retained as side tables. Nested block comments, raw strings, byte
//! strings, char literals and lifetimes are all handled so that quotes and
//! braces inside them can never desynchronize the structural scan.

use std::collections::BTreeMap;

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// A lifetime such as `'a` (kept distinct so the apostrophe cannot be
    /// confused with a char literal).
    Lifetime,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Numeric literal.
    Num,
    /// Single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text (a single character for punctuation).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes() == [c as u8]
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// For a string literal token, the decoded content (prefix, quotes and
    /// raw-string hashes stripped, common escapes resolved). `None` for
    /// non-string literals such as chars and numbers.
    pub fn str_value(&self) -> Option<String> {
        if self.kind != TokenKind::Literal {
            return None;
        }
        let mut rest = self.text.as_str();
        let mut raw = false;
        while let Some(c) = rest.chars().next() {
            match c {
                'r' => {
                    raw = true;
                    rest = &rest[1..];
                }
                'b' | 'c' => rest = &rest[1..],
                _ => break,
            }
        }
        rest = rest.trim_start_matches('#').trim_end_matches('#');
        let body = rest.strip_prefix('"')?;
        let body = body.strip_suffix('"').unwrap_or(body);
        if raw || !body.contains('\\') {
            return Some(body.to_string());
        }
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('0') => out.push('\0'),
                Some(other) => out.push(other),
                None => {}
            }
        }
        Some(out)
    }
}

/// Lexer output: the token stream plus the comment-derived side tables.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Doc-comment text by 1-based line (`///`, `//!`, `/** */`, `/*! */`).
    pub doc_lines: BTreeMap<u32, String>,
    /// Lint names allowed by a `picocube-lint: allow(...)` marker, by the
    /// 1-based line the marker's comment starts on.
    pub allow_markers: BTreeMap<u32, Vec<String>>,
}

/// The marker prefix recognized inside comments. A comment containing
/// `picocube-lint: allow(L1)` suppresses the named lints on its own line
/// and the line that follows it.
pub const ALLOW_MARKER: &str = "picocube-lint: allow(";

fn record_marker(out: &mut Lexed, comment: &str, line: u32) {
    let Some(at) = comment.find(ALLOW_MARKER) else {
        return;
    };
    let rest = &comment[at + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    let names: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if !names.is_empty() {
        out.allow_markers.entry(line).or_default().extend(names);
    }
}

/// Lexes `src` into tokens and comment side tables.
///
/// Unterminated strings or comments end the affected literal at EOF rather
/// than failing: the linter must degrade gracefully on code that rustc
/// itself will reject.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Byte-level scan; multi-byte UTF-8 only ever appears inside comments,
    // strings and identifiers, and identifiers are ASCII throughout the
    // workspace, so treating non-ASCII bytes as opaque is safe.
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                let is_doc = text.starts_with("///") || text.starts_with("//!");
                record_marker(&mut out, text, line);
                if is_doc {
                    let body = text.trim_start_matches(['/', '!']).trim().to_string();
                    let slot = out.doc_lines.entry(line).or_default();
                    slot.push_str(&body);
                    slot.push(' ');
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = &src[start..i.min(src.len())];
                record_marker(&mut out, text, start_line);
                if text.starts_with("/**") || text.starts_with("/*!") {
                    let slot = out.doc_lines.entry(start_line).or_default();
                    slot.push_str(text);
                    slot.push(' ');
                }
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i = lex_string(b, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime if followed by ident-start not closed by a quote.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < b.len() && b[i + 2] == b'\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    // Char literal: consume escapes until the closing quote.
                    let start = i;
                    let start_line = line;
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: src[start..i.min(src.len())].to_string(),
                        line: start_line,
                    });
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] >= 0x80)
                {
                    i += 1;
                }
                let text = &src[start..i];
                // Raw/byte string prefixes glue onto the following quote.
                let is_str_prefix = matches!(text, "r" | "b" | "br" | "rb" | "c" | "cr")
                    && i < b.len()
                    && (b[i] == b'"' || b[i] == b'#');
                if is_str_prefix && text.contains('r') {
                    let start_line = line;
                    i = lex_raw_string(b, i, &mut line);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: src[start..i.min(src.len())].to_string(),
                        line: start_line,
                    });
                } else if is_str_prefix && b[i] == b'"' {
                    let start_line = line;
                    i = lex_string(b, i, &mut line);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: src[start..i.min(src.len())].to_string(),
                        line: start_line,
                    });
                } else if text == "b" && i < b.len() && b[i] == b'\'' {
                    // Byte-char literal `b']'`: glue the prefix onto the
                    // char literal so it doesn't read as ident + char.
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: src[start..i.min(src.len())].to_string(),
                        line,
                    });
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: text.to_string(),
                        line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `0..10` range: stop before a second consecutive dot.
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at the opening quote (or at a one-byte
/// prefix such as `b` already consumed by the caller); returns the index
/// just past the closing quote.
fn lex_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert!(b[i] == b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string body starting at the `#`s or quote after the `r`
/// prefix; returns the index just past the closing delimiter.
fn lex_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return i;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_with_lines() {
        let l = lex("fn main() {\n    x.unwrap();\n}\n");
        let idents: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(
            idents,
            vec![("fn", 1), ("main", 1), ("x", 2), ("unwrap", 2)]
        );
    }

    #[test]
    fn comments_do_not_tokenize_but_docs_are_kept() {
        let l = lex("/// cited in §4.2\nconst X: f64 = 1.0; // unwrap() in a comment\n");
        assert!(l.doc_lines.get(&1).is_some_and(|d| d.contains('§')));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn strings_and_chars_hide_their_contents() {
        let l = lex("let s = \"panic!('}')\"; let c = '\\''; let r = r#\"unwrap()\"#;\n");
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            3
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            3
        );
    }

    #[test]
    fn allow_markers_are_collected() {
        let l = lex("// picocube-lint: allow(L1, L4)\nfn f() {}\n");
        assert_eq!(
            l.allow_markers.get(&1),
            Some(&vec!["L1".to_string(), "L4".to_string()])
        );
    }

    #[test]
    fn nested_block_comments_terminate() {
        let l = lex("/* outer /* inner */ still */ fn f() {}\n");
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("outer")));
    }
}
