//! L2 — panic freedom.
//!
//! Library code on the simulation hot path must not contain panic-capable
//! constructs: `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`,
//! `todo!`/`unimplemented!`, and (in the tightest-scoped crates) slice
//! indexing. Test code is exempt. Raw findings from this pass are netted
//! against the shrink-only allowlist by the caller; a
//! `picocube-lint: allow(L2)` marker suppresses an individual site with an
//! inline justification.

use crate::report::{Finding, Lint};
use crate::source::{ScannedFile, SiteKind};

/// Runs L2 over a scanned file. `index_scoped` enables the slice-indexing
/// kind (only the event-queue/fleet crates opt in — indexing is pervasive
/// and legitimate in table-driven physics code elsewhere).
pub fn check_panics(file: &ScannedFile, path: &str, index_scoped: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    for site in &file.sites {
        if site.in_test {
            continue;
        }
        if site.kind == SiteKind::Index && !index_scoped {
            continue;
        }
        if file.allows(Lint::L2.code(), site.line) {
            continue;
        }
        let what = match site.kind {
            SiteKind::Unwrap => "`.unwrap()`",
            SiteKind::Expect => "`.expect(…)`",
            SiteKind::Panic => "`panic!`",
            SiteKind::Unreachable => "`unreachable!`",
            SiteKind::Todo => "`todo!`/`unimplemented!`",
            SiteKind::Index => "slice indexing",
        };
        out.push(Finding {
            lint: Lint::L2,
            file: path.to_string(),
            line: site.line,
            kind: site.kind.name().into(),
            message: format!("{what} in library code"),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    #[test]
    fn unwrap_in_lib_code_is_flagged() {
        let s = scan("fn f() { x.unwrap(); y.expect(\"msg\"); }\n");
        let f = check_panics(&s, "x.rs", false);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].kind, "unwrap");
        assert_eq!(f[1].kind, "expect");
    }

    #[test]
    fn test_code_is_exempt() {
        let s = scan("#[cfg(test)]\nmod t { fn g() { x.unwrap(); panic!(); } }\n");
        assert!(check_panics(&s, "x.rs", true).is_empty());
    }

    #[test]
    fn indexing_only_when_scoped() {
        let s = scan("fn f(xs: &[u32]) -> u32 { xs[0] }\n");
        assert!(check_panics(&s, "x.rs", false).is_empty());
        assert_eq!(check_panics(&s, "x.rs", true).len(), 1);
    }

    #[test]
    fn allow_marker_suppresses_single_site() {
        let src = "fn f() {\n    // picocube-lint: allow(L2) checked above\n    x.unwrap();\n    y.unwrap();\n}\n";
        let s = scan(src);
        let f = check_panics(&s, "x.rs", false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn macros_are_flagged() {
        let s = scan("fn f() { todo!(); }\nfn g() { unreachable!(\"no\"); }\n");
        let f = check_panics(&s, "x.rs", false);
        assert_eq!(f.len(), 2);
    }
}
