//! L6: RNG-stream discipline.
//!
//! Reserved `SimRng` stream indices are a global namespace: two subsystems
//! drawing the same stream silently correlate their randomness, and a
//! re-implementation of the derivation rule drifts out of sync with
//! `SimRng::stream_seed` the day either changes. The lint enforces the
//! contract from `DESIGN.md`:
//!
//! - every reserved stream is a named constant (`*_STREAM` or
//!   `*_STREAM_BASE`) declared exactly once across the workspace;
//! - a declared stream is drawn by exactly one module (its owner), and
//!   every draw names the constant — no literal stream indices;
//! - arithmetic stream derivation (e.g. `2 * node`) lives only in the
//!   fleet engine's per-node seed-stream derivation;
//! - `SimRng::fork` and ad-hoc golden-ratio seed mixing appear only in
//!   `crates/sim/src/rng.rs`, the derivation rule's home.
//!
//! Fact collection ([`collect_streams`]) runs per file during the normal
//! scan; the registry checks ([`check_streams_workspace`]) run once over
//! the whole workspace's facts.

use crate::parser::{walk_block_exprs, Ast, Expr};
use crate::report::{Finding, Lint};
use std::collections::BTreeMap;

/// The one module allowed to implement seed/stream derivation.
const RNG_HOME: &str = "crates/sim/src/rng.rs";

/// The one module allowed to derive stream indices arithmetically (its
/// per-node `2i`/`2i + 1` scheme is the documented derivation rule).
const DERIVATION_HOME: &str = "crates/core/src/fleet/mod.rs";

/// The 64-bit golden-ratio constant used by splitmix64 and the stream
/// derivation rule; its appearance outside [`RNG_HOME`] marks a re-derived
/// stream mixing scheme.
const GOLDEN_RATIO: u64 = 0x9E37_79B9_7F4A_7C15;

/// A reserved-stream constant declaration.
#[derive(Debug, Clone)]
pub struct StreamDecl {
    /// Constant name (`MERGE_STREAM`, `FALSE_WAKE_STREAM_BASE`, ...).
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// Constant value when the initializer is a plain literal or
    /// `u64::MAX`; `None` for derived initializers like `1 << 62`.
    pub value: Option<u64>,
    /// Whether an inline `allow(L6)` marker covers the declaration.
    pub allowed: bool,
}

/// One `SimRng::stream`/`stream_seed` call site naming a reserved constant.
#[derive(Debug, Clone)]
pub struct StreamDraw {
    /// The constant named by the stream argument.
    pub name: String,
    /// 1-based call line.
    pub line: u32,
    /// Whether an inline `allow(L6)` marker covers the call.
    pub allowed: bool,
}

/// Per-file L6 facts, fed to [`check_streams_workspace`].
#[derive(Debug, Clone, Default)]
pub struct StreamFacts {
    /// Workspace-relative path of the scanned file.
    pub file: String,
    /// Reserved-stream constants declared here.
    pub decls: Vec<StreamDecl>,
    /// Reserved-stream constants drawn here.
    pub draws: Vec<StreamDraw>,
}

/// Whether a constant name claims a reserved stream.
fn is_stream_const(name: &str) -> bool {
    name.ends_with("_STREAM") || name.ends_with("_STREAM_BASE")
}

/// Parses an integer literal's text (`1_000`, `0xFF`, `7u64`, ...).
fn parse_num(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        return u64::from_str_radix(&digits, 16).ok();
    }
    if let Some(bin) = cleaned.strip_prefix("0b") {
        let digits: String = bin.chars().take_while(|c| *c == '0' || *c == '1').collect();
        return u64::from_str_radix(&digits, 2).ok();
    }
    let digits: String = cleaned.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Best-effort constant evaluation of a declaration initializer. Only
/// plain literals and `u64::MAX`/`u64::MIN` resolve; arithmetic stays
/// `None` (duplicate detection then falls back to name identity).
fn eval_u64(e: &Expr) -> Option<u64> {
    match e {
        Expr::Num { text, .. } => parse_num(text),
        Expr::Path { segs, .. } => match segs.last().map(String::as_str) {
            Some("MAX") if segs.iter().any(|s| s == "u64") => Some(u64::MAX),
            Some("MIN") if segs.iter().any(|s| s == "u64") => Some(0),
            _ => None,
        },
        Expr::Wrap { expr } | Expr::Cast { expr, .. } => eval_u64(expr),
        _ => None,
    }
}

/// Whether a numeric literal spells the golden-ratio constant.
fn is_golden_ratio(text: &str) -> bool {
    parse_num(text) == Some(GOLDEN_RATIO)
}

/// How a `SimRng::stream`/`stream_seed` stream argument is formed.
enum StreamArg {
    /// A named `*_STREAM` constant.
    Const(String),
    /// `*_STREAM_BASE + <expr>` (a reserved per-node range).
    BaseOffset(String),
    /// A hard-coded integer index.
    Literal,
    /// Anything else (arithmetic derivation, variables).
    Derived,
}

/// Strips wrapping parens.
fn unwrap_expr(e: &Expr) -> &Expr {
    match e {
        Expr::Wrap { expr } => unwrap_expr(expr),
        _ => e,
    }
}

/// Classifies the stream argument of a draw call.
fn classify_stream_arg(e: &Expr) -> StreamArg {
    match unwrap_expr(e) {
        Expr::Num { .. } => StreamArg::Literal,
        Expr::Path { segs, .. } => match segs.last() {
            Some(name) if is_stream_const(name) => StreamArg::Const(name.clone()),
            _ => StreamArg::Derived,
        },
        Expr::Binary { lhs, rhs, .. } => {
            for side in [lhs.as_ref(), rhs.as_ref()] {
                if let Expr::Path { segs, .. } = unwrap_expr(side) {
                    if let Some(name) = segs.last() {
                        if name.ends_with("_STREAM_BASE") {
                            return StreamArg::BaseOffset(name.clone());
                        }
                    }
                }
            }
            StreamArg::Derived
        }
        _ => StreamArg::Derived,
    }
}

/// Whether the callee path is `SimRng::stream` or `SimRng::stream_seed`.
fn is_draw_callee(callee: &Expr) -> bool {
    if let Expr::Path { segs, .. } = unwrap_expr(callee) {
        if segs.len() >= 2 {
            let ty = &segs[segs.len() - 2];
            let m = &segs[segs.len() - 1];
            return (ty == "SimRng" || ty == "Self") && (m == "stream" || m == "stream_seed");
        }
    }
    false
}

/// Collects per-file stream facts and emits the file-local findings
/// (forks, ad-hoc derivation, literal/derived stream arguments).
pub fn collect_streams(ast: &Ast, path: &str) -> (StreamFacts, Vec<Finding>) {
    let mut facts = StreamFacts {
        file: path.to_string(),
        ..StreamFacts::default()
    };
    let mut findings = Vec::new();
    let in_rng_home = path == RNG_HOME;
    let allows = &ast.lexed.allow_markers;
    let allowed = |line: u32| {
        [line.saturating_sub(1), line]
            .iter()
            .any(|l| allows.get(l).is_some_and(|v| v.iter().any(|n| n == "L6")))
    };
    let push = |findings: &mut Vec<Finding>, line: u32, kind: &str, message: String| {
        if !allowed(line) {
            findings.push(Finding {
                lint: Lint::L6,
                file: path.to_string(),
                line,
                kind: kind.to_string(),
                message,
            });
        }
    };

    ast.for_each_const(&mut |c| {
        if c.in_test || !is_stream_const(&c.name) {
            return;
        }
        facts.decls.push(StreamDecl {
            name: c.name.clone(),
            line: c.line,
            value: c.init.as_ref().and_then(eval_u64),
            allowed: allowed(c.line),
        });
    });

    ast.for_each_fn(&mut |f| {
        if f.in_test {
            return;
        }
        let Some(body) = &f.body else { return };
        walk_block_exprs(body, &mut |e| match e {
            Expr::MethodCall { name, line, .. } if name == "fork" && !in_rng_home => {
                push(
                    &mut findings,
                    *line,
                    "fork",
                    "`SimRng::fork` outside the derivation home; draw a numbered \
                     stream via `SimRng::stream` instead"
                        .into(),
                );
            }
            Expr::Num { text, line } if is_golden_ratio(text) && !in_rng_home => {
                push(
                    &mut findings,
                    *line,
                    "adhoc-derivation",
                    "golden-ratio seed mixing outside `SimRng`; use \
                     `SimRng::stream_seed`/`fan_seed` so the derivation rule \
                     has one home"
                        .into(),
                );
            }
            Expr::Call { callee, args, line } if is_draw_callee(callee) && !in_rng_home => {
                match args.get(1).map(classify_stream_arg) {
                    Some(StreamArg::Const(name)) | Some(StreamArg::BaseOffset(name)) => {
                        facts.draws.push(StreamDraw {
                            name,
                            line: *line,
                            allowed: allowed(*line),
                        });
                    }
                    Some(StreamArg::Literal) => {
                        push(
                            &mut findings,
                            *line,
                            "literal-stream",
                            "hard-coded stream index; declare a reserved \
                             `*_STREAM` constant"
                                .into(),
                        );
                    }
                    Some(StreamArg::Derived) if path != DERIVATION_HOME => {
                        push(
                            &mut findings,
                            *line,
                            "derived-stream",
                            "arithmetic stream derivation outside the fleet \
                             engine's per-node scheme"
                                .into(),
                        );
                    }
                    _ => {}
                }
            }
            _ => {}
        });
    });

    (facts, findings)
}

/// Cross-file registry checks over every scanned file's [`StreamFacts`].
pub fn check_streams_workspace(all: &[StreamFacts]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |file: &str, line: u32, kind: &str, message: String| {
        findings.push(Finding {
            lint: Lint::L6,
            file: file.to_string(),
            line,
            kind: kind.to_string(),
            message,
        });
    };

    // Declarations by name and by resolved value.
    let mut by_name: BTreeMap<&str, Vec<(&str, &StreamDecl)>> = BTreeMap::new();
    let mut by_value: BTreeMap<u64, Vec<(&str, &StreamDecl)>> = BTreeMap::new();
    for f in all {
        for d in &f.decls {
            by_name.entry(&d.name).or_default().push((&f.file, d));
            if let Some(v) = d.value {
                by_value.entry(v).or_default().push((&f.file, d));
            }
        }
    }

    for (name, decls) in &by_name {
        if decls.len() > 1 {
            for (file, d) in &decls[1..] {
                if !d.allowed {
                    push(
                        file,
                        d.line,
                        "dup-stream",
                        format!(
                            "`{name}` already declared in `{}`; reserved streams \
                             are declared exactly once",
                            decls[0].0
                        ),
                    );
                }
            }
        }
    }
    for (value, decls) in &by_value {
        if decls.len() > 1 {
            for (file, d) in &decls[1..] {
                if !d.allowed {
                    push(
                        file,
                        d.line,
                        "dup-stream",
                        format!(
                            "`{}` reuses stream index {value} already reserved by \
                             `{}` in `{}`",
                            d.name, decls[0].1.name, decls[0].0
                        ),
                    );
                }
            }
        }
    }

    // Draws by constant name: must resolve to a declaration, and each
    // constant is drawn from a single owning file.
    let mut draws_by_name: BTreeMap<&str, Vec<(&str, &StreamDraw)>> = BTreeMap::new();
    for f in all {
        for d in &f.draws {
            draws_by_name.entry(&d.name).or_default().push((&f.file, d));
        }
    }
    for (name, draws) in &draws_by_name {
        if !by_name.contains_key(name) {
            for (file, d) in draws {
                if !d.allowed {
                    push(
                        file,
                        d.line,
                        "unregistered-stream",
                        format!("`{name}` drawn but never declared as a reserved stream"),
                    );
                }
            }
            continue;
        }
        let owner = draws[0].0;
        for (file, d) in &draws[1..] {
            if *file != owner && !d.allowed {
                push(
                    file,
                    d.line,
                    "shared-stream",
                    format!("`{name}` already drawn by `{owner}`; one stream, one subsystem"),
                );
            }
        }
    }

    // Declared but never drawn: dead reservations rot the registry.
    for (name, decls) in &by_name {
        if !draws_by_name.contains_key(name) {
            for (file, d) in decls {
                if !d.allowed {
                    push(
                        file,
                        d.line,
                        "stale-stream",
                        format!("`{name}` declared but never drawn; remove the reservation"),
                    );
                }
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.kind).cmp(&(&b.file, b.line, &b.kind)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn facts(path: &str, src: &str) -> (StreamFacts, Vec<Finding>) {
        let ast = parse(src);
        assert!(ast.gaps.is_empty(), "parse gaps: {:?}", ast.gaps);
        collect_streams(&ast, path)
    }

    #[test]
    fn decl_and_const_draw_are_clean() {
        let (f, findings) = facts(
            "crates/core/src/mesh.rs",
            "const SINK_STREAM: u64 = 7;\n\
             fn go(seed: u64) { let _r = SimRng::stream(seed, SINK_STREAM); }\n",
        );
        assert!(findings.is_empty());
        assert_eq!(f.decls.len(), 1);
        assert_eq!(f.decls[0].value, Some(7));
        assert_eq!(f.draws.len(), 1);
        assert_eq!(f.draws[0].name, "SINK_STREAM");
    }

    #[test]
    fn base_offset_draw_resolves_to_base_const() {
        let (f, findings) = facts(
            "crates/core/src/mesh.rs",
            "const WAKE_STREAM_BASE: u64 = 1 << 62;\n\
             fn go(seed: u64, i: u64) {\n\
                 let _r = SimRng::stream(seed, WAKE_STREAM_BASE + i);\n\
             }\n",
        );
        assert!(findings.is_empty());
        assert_eq!(f.draws[0].name, "WAKE_STREAM_BASE");
        // `1 << 62` does not const-evaluate; name identity still registers.
        assert_eq!(f.decls[0].value, None);
    }

    #[test]
    fn literal_and_derived_stream_args_flag() {
        let (_, findings) = facts(
            "crates/core/src/mesh.rs",
            "fn go(seed: u64, i: u64) {\n\
                 let _a = SimRng::stream(seed, 3);\n\
                 let _b = SimRng::stream_seed(seed, 2 * i);\n\
             }\n",
        );
        let kinds: Vec<&str> = findings.iter().map(|f| f.kind.as_str()).collect();
        assert_eq!(kinds, ["literal-stream", "derived-stream"]);
    }

    #[test]
    fn fleet_engine_may_derive_streams() {
        let (_, findings) = facts(
            "crates/core/src/fleet/mod.rs",
            "fn node_stream(master: u64, node: usize) -> u64 {\n\
                 SimRng::stream_seed(master, 2 * node as u64)\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn fork_and_golden_ratio_flag_outside_rng_home() {
        let (_, findings) = facts(
            "crates/harvest/src/shaker.rs",
            "fn go(rng: &mut SimRng, seed: u64) -> u64 {\n\
                 let _child = rng.fork();\n\
                 seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)\n\
             }\n",
        );
        let kinds: Vec<&str> = findings.iter().map(|f| f.kind.as_str()).collect();
        assert_eq!(kinds, ["fork", "adhoc-derivation"]);
    }

    #[test]
    fn rng_home_is_exempt() {
        let (_, findings) = facts(
            "crates/sim/src/rng.rs",
            "fn mix(s: u64) -> u64 { s.wrapping_add(0x9E37_79B9_7F4A_7C15) }\n",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn allow_marker_suppresses_site() {
        let (_, findings) = facts(
            "crates/core/src/stack/storage.rs",
            "fn hash(seed: u64) -> u64 {\n\
                 // picocube-lint: allow(L6) independent decorrelation hash\n\
                 seed.wrapping_add(0x9E37_79B9_7F4A_7C15)\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let (f, findings) = facts(
            "crates/core/src/mesh.rs",
            "#[cfg(test)]\nmod tests {\n\
                 #[test]\n\
                 fn t() { let _r = SimRng::stream(1, 3); }\n\
             }\n",
        );
        assert!(findings.is_empty());
        assert!(f.draws.is_empty());
    }

    fn one_file(path: &str, src: &str) -> StreamFacts {
        facts(path, src).0
    }

    #[test]
    fn workspace_dup_by_name_and_value() {
        let a = one_file(
            "crates/core/src/fleet.rs",
            "const MERGE_STREAM: u64 = 100;\n\
             fn go(s: u64) { let _ = SimRng::stream(s, MERGE_STREAM); }\n",
        );
        let b = one_file(
            "crates/core/src/mesh.rs",
            "const MERGE_STREAM: u64 = 101;\n\
             const SINK_STREAM: u64 = 100;\n\
             fn go(s: u64) {\n\
                 let _ = SimRng::stream(s, MERGE_STREAM);\n\
                 let _ = SimRng::stream(s, SINK_STREAM);\n\
             }\n",
        );
        let findings = check_streams_workspace(&[a, b]);
        let kinds: Vec<&str> = findings.iter().map(|f| f.kind.as_str()).collect();
        // mesh.rs redeclares MERGE_STREAM (name), SINK_STREAM reuses
        // index 100 (value), and mesh.rs also draws fleet's MERGE_STREAM.
        assert_eq!(kinds, ["dup-stream", "dup-stream", "shared-stream"]);
        assert!(findings.iter().all(|f| f.file == "crates/core/src/mesh.rs"));
    }

    #[test]
    fn workspace_shared_unregistered_and_stale() {
        let a = one_file(
            "crates/core/src/fleet.rs",
            "const MERGE_STREAM: u64 = 1;\n\
             const SPARE_STREAM: u64 = 2;\n\
             fn go(s: u64) { let _ = SimRng::stream(s, MERGE_STREAM); }\n",
        );
        let b = one_file(
            "crates/core/src/mesh.rs",
            "fn go(s: u64) {\n\
                 let _ = SimRng::stream(s, MERGE_STREAM);\n\
                 let _ = SimRng::stream(s, GHOST_STREAM);\n\
             }\n",
        );
        let findings = check_streams_workspace(&[a, b]);
        let kinds: Vec<&str> = findings.iter().map(|f| f.kind.as_str()).collect();
        assert!(kinds.contains(&"shared-stream"), "{findings:?}");
        assert!(kinds.contains(&"unregistered-stream"), "{findings:?}");
        assert!(kinds.contains(&"stale-stream"), "{findings:?}");
    }

    #[test]
    fn clean_workspace_has_no_findings() {
        let a = one_file(
            "crates/core/src/fleet.rs",
            "const MERGE_STREAM: u64 = u64::MAX;\n\
             fn go(s: u64) { let _ = SimRng::stream(s, MERGE_STREAM); }\n",
        );
        let b = one_file(
            "crates/core/src/mesh.rs",
            "const SINK_STREAM: u64 = 50;\n\
             fn go(s: u64) { let _ = SimRng::stream(s, SINK_STREAM); }\n",
        );
        assert!(check_streams_workspace(&[a, b]).is_empty());
    }
}
