//! The seven lint passes.
//!
//! The structural passes (L1–L4) are pure functions from a
//! [`crate::source::ScannedFile`] (plus the file's workspace-relative
//! path, which decides scope) to findings. The syntactic passes (L5–L7)
//! run over the [`crate::parser`] AST instead; L6 and L7 additionally
//! split into per-file fact collection and a workspace-level registry
//! check. Scope rules live in [`crate::scope`] so the passes themselves
//! stay path-agnostic and fixture-testable.

pub mod determinism;
pub mod dimflow;
pub mod keys;
pub mod panics;
pub mod provenance;
pub mod streams;
pub mod units;

pub use determinism::check_determinism;
pub use dimflow::check_dimflow;
pub use keys::{check_keys_workspace, collect_keys, GoldenKeys, KeyFacts};
pub use panics::check_panics;
pub use provenance::check_provenance;
pub use streams::{check_streams_workspace, collect_streams, StreamFacts};
pub use units::check_units;
