//! The four lint passes.
//!
//! Each pass is a pure function from a [`crate::source::ScannedFile`] (plus
//! the file's workspace-relative path, which decides scope) to findings.
//! Scope rules live in [`crate::scope`] so the passes themselves stay
//! path-agnostic and fixture-testable.

pub mod determinism;
pub mod panics;
pub mod provenance;
pub mod units;

pub use determinism::check_determinism;
pub use panics::check_panics;
pub use provenance::check_provenance;
pub use units::check_units;
