//! L1 — unit hygiene.
//!
//! Public functions in the physical crates must not take or return bare
//! `f64` for values that carry a unit: the `picocube-units` newtypes exist
//! precisely so millivolts cannot be fed where volts are expected. The
//! lint fires when an `f64` parameter's name (or, for returns, the
//! function's name) carries a unit suffix (`_mah`, `_um`, `_dbm`, …) or a
//! dimensional keyword (`voltage`, `distance`, …). Genuinely dimensionless
//! values — efficiencies, ratios, duty cycles — pass untouched, and a
//! `picocube-lint: allow(L1)` marker documents deliberate boundary
//! crossings (FFI, datasheet-shaped constructors).

use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, Lint};
use crate::source::{FnSig, ScannedFile};

/// Name suffixes that imply a unit (after the final `_`).
const UNIT_SUFFIXES: &[&str] = &[
    "m", "mm", "um", "cm", "km", "v", "mv", "uv", "a", "ma", "ua", "na", "w", "mw", "uw", "nw",
    "j", "mj", "uj", "nj", "s", "ms", "us", "ns", "h", "hz", "khz", "mhz", "ghz", "db", "dbm",
    "mah", "ohm", "ohms", "f", "uf", "nf", "pf", "c", "g", "kpa",
];

/// Name components that imply a dimensional quantity.
const UNIT_WORDS: &[&str] = &[
    "voltage",
    "current",
    "charge",
    "capacitance",
    "resistance",
    "impedance",
    "frequency",
    "distance",
    "range",
    "thickness",
    "wavelength",
    "energy",
    "power",
    "temperature",
    "mass",
    "volume",
    "area",
    "duration",
    "latency",
    "timeout",
];

/// Whether an identifier names a unit-bearing quantity.
fn has_unit_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    if let Some((_, suffix)) = lower.rsplit_once('_') {
        if UNIT_SUFFIXES.contains(&suffix) {
            return true;
        }
    }
    UNIT_WORDS.iter().any(|w| {
        lower
            .split('_')
            .any(|part| part == *w || (w.len() > 5 && part.starts_with(w)))
    })
}

/// Splits a parameter list at top-level commas into `(name, type tokens)`.
fn split_params(params: &[Token]) -> Vec<(String, Vec<Token>)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut current: Vec<Token> = Vec::new();
    let mut flush = |current: &mut Vec<Token>| {
        // `name : type…` — skip `self`, `&self`, `mut name`.
        let colon = current.iter().position(|t| t.is_punct(':'));
        if let Some(c) = colon {
            let name = current[..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokenKind::Ident && t.text != "mut")
                .map(|t| t.text.clone());
            if let Some(name) = name {
                out.push((name, current[c + 1..].to_vec()));
            }
        }
        current.clear();
    };
    for t in params {
        match t.text.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "," if depth == 0 => {
                flush(&mut current);
                continue;
            }
            _ => {}
        }
        current.push(t.clone());
    }
    flush(&mut current);
    out
}

/// Whether a type token sequence is bare `f64` (possibly `&f64` or
/// `Option<f64>`/`impl Into<f64>` are deliberately NOT flagged — only the
/// direct scalar type is).
fn is_bare_f64(ty: &[Token]) -> bool {
    let idents: Vec<&str> = ty
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    idents == ["f64"]
}

fn check_fn(file: &ScannedFile, path: &str, f: &FnSig, out: &mut Vec<Finding>) {
    if !f.is_pub || f.in_test || file.allows(Lint::L1.code(), f.line) {
        return;
    }
    for (name, ty) in split_params(&f.params) {
        if is_bare_f64(&ty) && has_unit_name(&name) {
            out.push(Finding {
                lint: Lint::L1,
                file: path.to_string(),
                line: f.line,
                kind: "param".into(),
                message: format!(
                    "`{}` takes `{name}: f64` — use the picocube-units quantity for this \
                     dimension (or mark `picocube-lint: allow(L1)` with a reason)",
                    f.name
                ),
            });
        }
    }
    if is_bare_f64(&f.ret) && has_unit_name(&f.name) {
        out.push(Finding {
            lint: Lint::L1,
            file: path.to_string(),
            line: f.line,
            kind: "return".into(),
            message: format!(
                "`{}` returns bare `f64` — its name implies a unit; return the \
                 picocube-units quantity instead",
                f.name
            ),
        });
    }
}

/// Runs L1 over a scanned file.
pub fn check_units(file: &ScannedFile, path: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &file.fns {
        check_fn(file, path, f, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    #[test]
    fn unit_suffixed_f64_param_is_flagged() {
        let s = scan("pub fn path_loss(&self, distance_m: f64) -> Db { Db::ZERO }\n");
        let f = check_units(&s, "x.rs");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "param");
    }

    #[test]
    fn dimensionless_f64_is_fine() {
        let s = scan(
            "pub fn set_duty(&mut self, duty: f64) {}\npub fn efficiency(&self) -> f64 { 0.9 }\n",
        );
        assert!(check_units(&s, "x.rs").is_empty());
    }

    #[test]
    fn unit_named_return_is_flagged() {
        let s = scan("pub fn thickness_um(&self) -> f64 { 0.0 }\n");
        let f = check_units(&s, "x.rs");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "return");
    }

    #[test]
    fn private_and_test_fns_are_skipped() {
        let s = scan("fn helper(distance_m: f64) {}\n#[cfg(test)]\nmod t { pub fn capacity_mah() -> f64 { 1.0 } }\n");
        assert!(check_units(&s, "x.rs").is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let s = scan("// picocube-lint: allow(L1) datasheet-shaped constructor\npub fn from_mah(capacity_mah: f64) {}\n");
        assert!(check_units(&s, "x.rs").is_empty());
    }

    #[test]
    fn typed_quantities_pass() {
        let s = scan("pub fn budget(&self, distance: Meters) -> LinkBudget { todo() }\n");
        assert!(check_units(&s, "x.rs").is_empty());
    }

    #[test]
    fn unit_word_components_are_flagged() {
        let s = scan("pub fn set_supply(&mut self, rail_voltage: f64) {}\n");
        assert_eq!(check_units(&s, "x.rs").len(), 1);
    }
}
