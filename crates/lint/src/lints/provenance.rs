//! L4 — provenance.
//!
//! Every named physical constant in the power, radio and storage crates is
//! a number taken from the PicoCube paper or a component datasheet, and the
//! doc comment must say which: a `§x.y` citation (or an explicit datasheet
//! reference via the allow marker) keeps the model auditable against its
//! source. The lint fires on module- and impl-level `const` items whose
//! type is `f64` or a unit quantity and whose doc comment lacks a `§`.

use crate::lexer::TokenKind;
use crate::report::{Finding, Lint};
use crate::source::{ConstItem, ScannedFile};

/// picocube-units quantity type names (kept in sync with the units crate's
/// public exports; unknown types are simply not linted).
const UNIT_TYPES: &[&str] = &[
    "Volts",
    "Amps",
    "Ohms",
    "Farads",
    "Coulombs",
    "Hertz",
    "Joules",
    "JoulesPerGram",
    "Seconds",
    "Watts",
    "Db",
    "Dbm",
    "Celsius",
    "Grams",
    "Gs",
    "Kilopascals",
    "Meters",
    "MetersPerSecond",
    "MetersPerSecond2",
    "Millimeters",
    "Rpm",
    "SquareMillimeters",
    "CubicMillimeters",
];

fn is_physical(c: &ConstItem) -> bool {
    c.ty.iter().any(|t| {
        t.kind == TokenKind::Ident && (t.text == "f64" || UNIT_TYPES.contains(&t.text.as_str()))
    })
}

/// Runs L4 over a scanned file (the caller restricts this to the
/// provenance-scoped crates).
pub fn check_provenance(file: &ScannedFile, path: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in &file.consts {
        if c.in_test || !is_physical(c) {
            continue;
        }
        if file.allows(Lint::L4.code(), c.line) {
            continue;
        }
        if c.doc.contains('§') {
            continue;
        }
        out.push(Finding {
            lint: Lint::L4,
            file: path.to_string(),
            line: c.line,
            kind: "const".into(),
            message: format!(
                "physical constant `{}` has no `§x.y` paper citation in its doc comment",
                c.name
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    #[test]
    fn uncited_f64_const_is_flagged() {
        let s = scan("/// Speed of light in m/s.\npub const C: f64 = 299_792_458.0;\n");
        let f = check_provenance(&s, "x.rs");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains('C'));
    }

    #[test]
    fn cited_const_passes() {
        let s = scan("/// Sensitivity floor from the §5.2 receiver budget.\npub const FLOOR: Dbm = Dbm::new(-94.0);\n");
        assert!(check_provenance(&s, "x.rs").is_empty());
    }

    #[test]
    fn non_physical_consts_are_ignored() {
        let s = scan("const NAME: &str = \"picocube\";\nconst N: usize = 4;\n");
        assert!(check_provenance(&s, "x.rs").is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let s = scan("/// Newton iteration convergence epsilon (numerical, not physical).\n// picocube-lint: allow(L4)\nconst EPS: f64 = 1e-12;\n");
        assert!(check_provenance(&s, "x.rs").is_empty());
    }

    #[test]
    fn unit_typed_const_needs_citation() {
        let s = scan("/// The 15 mAh cell.\npub const CAPACITY: Coulombs = Coulombs::new(54.0);\n");
        assert_eq!(check_provenance(&s, "x.rs").len(), 1);
    }
}
