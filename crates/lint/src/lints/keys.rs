//! L7: telemetry-key registry.
//!
//! Metric keys are stringly typed at the `picocube-telemetry` API, which
//! means a typo'd key silently splits a counter and a renamed key silently
//! orphans every golden fixture that mentions the old spelling. The lint
//! closes the loop around one registry: `crates/telemetry/src/keys.rs`.
//!
//! - every key passed to a [`KEY_METHODS`] call is a `keys::` constant,
//!   an imported registry constant, or a call to a registry helper
//!   function (the blessed home for `format!`-built dynamic keys) — never
//!   an inline string literal or ad-hoc `format!`;
//! - the registry itself has no duplicate values, and `*_PATTERN`
//!   constants (with `*` wildcards) document each dynamic key family;
//! - every dotted metric key appearing in a golden fixture matches a
//!   registry constant or pattern, so emit sites and goldens cannot
//!   drift apart unnoticed.
//!
//! Events are not covered: `EventKind` is a typed enum, so the compiler
//! already enforces its namespace.

use crate::parser::{walk_block_exprs, Ast, Expr};
use crate::report::{Finding, Lint};
use std::collections::{BTreeMap, BTreeSet};

/// The registry module; the only place metric-key strings may live.
pub const KEYS_HOME: &str = "crates/telemetry/src/keys.rs";

/// `Metrics` methods whose first argument is a metric key.
pub const KEY_METHODS: &[&str] = &[
    "inc",
    "add",
    "observe",
    "register_histogram",
    "counter",
    "gauge",
    "histogram",
];

/// A registry constant (`pub const MESH_OFFERED: &str = "mesh.offered";`).
#[derive(Debug, Clone)]
pub struct KeyConst {
    /// Constant name.
    pub name: String,
    /// The key string, when the initializer is a plain literal.
    pub value: Option<String>,
    /// 1-based declaration line.
    pub line: u32,
    /// Whether an inline `allow(L7)` marker covers the declaration.
    pub allowed: bool,
}

/// A reference to a registry item (`keys::MESH_OFFERED`,
/// `keys::power_rail_uj(...)` or an imported constant).
#[derive(Debug, Clone)]
pub struct KeyRef {
    /// The referenced constant or helper-function name.
    pub name: String,
    /// 1-based reference line.
    pub line: u32,
    /// Whether an inline `allow(L7)` marker covers the site.
    pub allowed: bool,
}

/// Per-file L7 facts, fed to [`check_keys_workspace`].
#[derive(Debug, Clone, Default)]
pub struct KeyFacts {
    /// Workspace-relative path of the scanned file.
    pub file: String,
    /// Registry constants (populated only for [`KEYS_HOME`]).
    pub registry: Vec<KeyConst>,
    /// Registry helper functions (populated only for [`KEYS_HOME`]).
    pub helper_fns: Vec<String>,
    /// Registry references at emit/read sites.
    pub refs: Vec<KeyRef>,
}

/// Strips references and parens off an argument expression.
fn unwrap_arg(e: &Expr) -> &Expr {
    match e {
        Expr::Wrap { expr } | Expr::Unary { expr } => unwrap_arg(expr),
        _ => e,
    }
}

/// How a key argument is formed.
enum KeyArg {
    /// `keys::NAME` or an imported registry constant.
    Registry(String),
    /// A string literal or string-building macro.
    Inline,
    /// An `ALLCAPS` constant that does not come from the registry.
    Foreign(String),
    /// Anything else (variables, passthrough parameters): not checkable
    /// locally; the golden cross-check catches drift they could cause.
    Opaque,
}

/// Whether a path has a `keys` module segment.
fn has_keys_seg(segs: &[String]) -> bool {
    segs.iter().any(|s| s == "keys")
}

/// Whether an identifier looks like a constant name.
fn is_const_ident(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
}

/// Classifies the first argument of a key-taking call. `imported` holds
/// the names brought in by `use ...::keys::{...}` in this file.
fn classify_key_arg(e: &Expr, imported: &BTreeSet<String>) -> KeyArg {
    match unwrap_arg(e) {
        Expr::Str { .. } => KeyArg::Inline,
        Expr::Macro { segs, .. } => match segs.last().map(String::as_str) {
            Some("format" | "concat") => KeyArg::Inline,
            _ => KeyArg::Opaque,
        },
        Expr::Path { segs, .. } => {
            let Some(name) = segs.last() else {
                return KeyArg::Opaque;
            };
            if has_keys_seg(segs) || imported.contains(name) {
                KeyArg::Registry(name.clone())
            } else if is_const_ident(name) {
                KeyArg::Foreign(name.clone())
            } else {
                KeyArg::Opaque
            }
        }
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, .. } = unwrap_arg(callee) {
                if has_keys_seg(segs) {
                    if let Some(name) = segs.last() {
                        return KeyArg::Registry(name.clone());
                    }
                }
            }
            KeyArg::Opaque
        }
        _ => KeyArg::Opaque,
    }
}

/// Collects per-file key facts and emits the file-local findings
/// (inline keys, constants from outside the registry).
pub fn collect_keys(ast: &Ast, path: &str) -> (KeyFacts, Vec<Finding>) {
    let mut facts = KeyFacts {
        file: path.to_string(),
        ..KeyFacts::default()
    };
    let mut findings = Vec::new();
    let in_keys_home = path == KEYS_HOME;
    let allows = &ast.lexed.allow_markers;
    let allowed = |line: u32| {
        [line.saturating_sub(1), line]
            .iter()
            .any(|l| allows.get(l).is_some_and(|v| v.iter().any(|n| n == "L7")))
    };

    if in_keys_home {
        ast.for_each_const(&mut |c| {
            if c.in_test {
                return;
            }
            let value = c.init.as_ref().and_then(|e| match unwrap_arg(e) {
                Expr::Str { text, line: _ } => decode_str(text),
                _ => None,
            });
            facts.registry.push(KeyConst {
                name: c.name.clone(),
                value,
                line: c.line,
                allowed: allowed(c.line),
            });
        });
        ast.for_each_fn(&mut |f| {
            if !f.in_test {
                facts.helper_fns.push(f.name.clone());
            }
        });
        return (facts, findings);
    }

    // Names imported from the registry via `use`.
    let mut imported = BTreeSet::new();
    ast.for_each_use(&mut |u| {
        if has_keys_seg(&u.prefix) {
            imported.extend(u.leaves.iter().cloned());
        }
    });

    ast.for_each_fn(&mut |f| {
        if f.in_test {
            return;
        }
        let Some(body) = &f.body else { return };
        walk_block_exprs(body, &mut |e| {
            let Expr::MethodCall {
                name, args, line, ..
            } = e
            else {
                return;
            };
            if !KEY_METHODS.contains(&name.as_str()) {
                return;
            }
            let Some(arg0) = args.first() else { return };
            match classify_key_arg(arg0, &imported) {
                KeyArg::Registry(key) => facts.refs.push(KeyRef {
                    name: key,
                    line: *line,
                    allowed: allowed(*line),
                }),
                KeyArg::Inline => {
                    if !allowed(*line) {
                        findings.push(Finding {
                            lint: Lint::L7,
                            file: path.to_string(),
                            line: *line,
                            kind: "inline-key".into(),
                            message: format!(
                                "inline metric key passed to `{name}`; use a \
                                 `picocube_telemetry::keys` constant or helper"
                            ),
                        });
                    }
                }
                KeyArg::Foreign(konst) => {
                    if !allowed(*line) {
                        findings.push(Finding {
                            lint: Lint::L7,
                            file: path.to_string(),
                            line: *line,
                            kind: "unregistered-key".into(),
                            message: format!(
                                "`{konst}` is not a `picocube_telemetry::keys` \
                                 constant; metric keys live in the registry"
                            ),
                        });
                    }
                }
                KeyArg::Opaque => {}
            }
        });
    });

    (facts, findings)
}

/// Decodes a string literal's token text into its value.
fn decode_str(text: &str) -> Option<String> {
    // The lexer retains raw token text; reuse its decoding rules via a
    // tiny local copy (plain `"..."` literals only — registry keys never
    // need escapes beyond the basics).
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                '0' => out.push('\0'),
                other => out.push(other),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Matches a key against a `*`-wildcard pattern (`*` spans any chars).
pub fn pattern_matches(pattern: &str, key: &str) -> bool {
    fn inner(p: &[u8], k: &[u8]) -> bool {
        match p.first() {
            None => k.is_empty(),
            Some(b'*') => (0..=k.len()).any(|i| inner(&p[1..], &k[i..])),
            Some(c) => k.first() == Some(c) && inner(&p[1..], &k[1..]),
        }
    }
    inner(pattern.as_bytes(), key.as_bytes())
}

/// A golden fixture's extracted metric keys, for the drift check.
#[derive(Debug, Clone)]
pub struct GoldenKeys {
    /// Display path of the fixture (workspace-relative).
    pub file: String,
    /// Dotted metric keys found in the document.
    pub keys: Vec<String>,
}

/// Cross-file registry checks: duplicate values, unknown references and
/// golden-fixture drift.
pub fn check_keys_workspace(all: &[KeyFacts], goldens: &[GoldenKeys]) -> Vec<Finding> {
    let mut findings = Vec::new();

    let registry_file = all.iter().find(|f| f.file == KEYS_HOME);
    let consts: Vec<&KeyConst> = registry_file
        .map(|f| f.registry.iter().collect())
        .unwrap_or_default();
    let helper_fns: BTreeSet<&str> = registry_file
        .map(|f| f.helper_fns.iter().map(String::as_str).collect())
        .unwrap_or_default();
    let const_names: BTreeSet<&str> = consts.iter().map(|c| c.name.as_str()).collect();

    // Duplicate key values split a metric silently; flag the later decl.
    let mut by_value: BTreeMap<&str, &KeyConst> = BTreeMap::new();
    for c in &consts {
        let Some(v) = &c.value else { continue };
        if let Some(first) = by_value.get(v.as_str()) {
            if !c.allowed {
                findings.push(Finding {
                    lint: Lint::L7,
                    file: KEYS_HOME.into(),
                    line: c.line,
                    kind: "dup-key".into(),
                    message: format!(
                        "`{}` duplicates key \"{v}\" already registered as `{}`",
                        c.name, first.name
                    ),
                });
            }
        } else {
            by_value.insert(v, c);
        }
    }

    // Every reference resolves to a registry constant or helper.
    for f in all {
        for r in &f.refs {
            if r.allowed
                || const_names.contains(r.name.as_str())
                || helper_fns.contains(r.name.as_str())
            {
                continue;
            }
            findings.push(Finding {
                lint: Lint::L7,
                file: f.file.clone(),
                line: r.line,
                kind: "unknown-key".into(),
                message: format!("`keys::{}` is not declared in the registry", r.name),
            });
        }
    }

    // Golden fixtures only mention registered keys (exact or pattern).
    let values: BTreeSet<&str> = consts.iter().filter_map(|c| c.value.as_deref()).collect();
    let patterns: Vec<&str> = consts
        .iter()
        .filter(|c| c.name.ends_with("_PATTERN"))
        .filter_map(|c| c.value.as_deref())
        .collect();
    for g in goldens {
        for key in &g.keys {
            let known =
                values.contains(key.as_str()) || patterns.iter().any(|p| pattern_matches(p, key));
            if !known {
                findings.push(Finding {
                    lint: Lint::L7,
                    file: g.file.clone(),
                    line: 0,
                    kind: "golden-drift".into(),
                    message: format!(
                        "golden fixture key \"{key}\" is not in the telemetry-key registry"
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.kind).cmp(&(&b.file, b.line, &b.kind)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn facts(path: &str, src: &str) -> (KeyFacts, Vec<Finding>) {
        let ast = parse(src);
        assert!(ast.gaps.is_empty(), "parse gaps: {:?}", ast.gaps);
        collect_keys(&ast, path)
    }

    #[test]
    fn registry_consts_and_helpers_are_collected() {
        let (f, findings) = facts(
            KEYS_HOME,
            "pub const MESH_OFFERED: &str = \"mesh.offered\";\n\
             pub const POWER_RAIL_UJ_PATTERN: &str = \"power.rail.*.uj\";\n\
             pub fn power_rail_uj(rail: &str) -> String {\n\
                 format!(\"power.rail.{rail}.uj\")\n\
             }\n",
        );
        assert!(findings.is_empty());
        assert_eq!(f.registry.len(), 2);
        assert_eq!(f.registry[0].value.as_deref(), Some("mesh.offered"));
        assert_eq!(f.helper_fns, ["power_rail_uj"]);
    }

    #[test]
    fn inline_key_flags_and_registry_ref_does_not() {
        let (f, findings) = facts(
            "crates/core/src/mesh.rs",
            "use picocube_telemetry::keys;\n\
             fn go(m: &mut Metrics) {\n\
                 m.inc(keys::MESH_OFFERED, 1);\n\
                 m.inc(\"mesh.collided\", 1);\n\
                 m.add(&format!(\"power.rail.{}.uj\", name), 0.5);\n\
             }\n",
        );
        let kinds: Vec<&str> = findings.iter().map(|x| x.kind.as_str()).collect();
        assert_eq!(kinds, ["inline-key", "inline-key"]);
        assert_eq!(f.refs.len(), 1);
        assert_eq!(f.refs[0].name, "MESH_OFFERED");
    }

    #[test]
    fn imported_const_and_helper_call_are_registry_refs() {
        let (f, findings) = facts(
            "crates/sim/src/power.rs",
            "use picocube_telemetry::keys::{POWER_TOTAL_UJ};\n\
             fn go(m: &mut Metrics, rail: &str) {\n\
                 m.add(POWER_TOTAL_UJ, 1.0);\n\
                 m.add(&keys::power_rail_uj(rail), 2.0);\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
        let names: Vec<&str> = f.refs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["POWER_TOTAL_UJ", "power_rail_uj"]);
    }

    #[test]
    fn foreign_const_flags_unregistered() {
        let (_, findings) = facts(
            "crates/core/src/mesh.rs",
            "const MY_KEY: &str = \"mesh.offered\";\n\
             fn go(m: &mut Metrics) { m.inc(MY_KEY, 1); }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "unregistered-key");
    }

    #[test]
    fn passthrough_variables_are_not_flagged() {
        let (_, findings) = facts(
            "crates/sim/src/queue.rs",
            "fn export(m: &mut Metrics, key: &str, n: u64) { m.inc(key, n); }\n",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn allow_marker_suppresses_inline_key() {
        let (_, findings) = facts(
            "crates/core/src/mesh.rs",
            "fn go(m: &mut Metrics) {\n\
                 // picocube-lint: allow(L7) scratch metric in a demo\n\
                 m.inc(\"demo.scratch\", 1);\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let (_, findings) = facts(
            "crates/core/src/mesh.rs",
            "#[cfg(test)]\nmod tests {\n\
                 #[test]\n\
                 fn t() { m.inc(\"mesh.offered\", 1); }\n\
             }\n",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn wildcard_patterns_match_spans() {
        assert!(pattern_matches("power.rail.*.uj", "power.rail.VBAT.uj"));
        assert!(pattern_matches("power.load.*.uj", "power.load.VBAT.mcu.uj"));
        assert!(pattern_matches("*.pushed", "sim.queue.pushed"));
        assert!(!pattern_matches("power.rail.*.uj", "power.rail.VBAT.nj"));
        assert!(!pattern_matches("mesh.offered", "mesh.offered_load"));
    }

    fn registry(src: &str) -> KeyFacts {
        facts(KEYS_HOME, src).0
    }

    #[test]
    fn workspace_dup_unknown_and_drift() {
        let reg = registry(
            "pub const A: &str = \"mesh.offered\";\n\
             pub const B: &str = \"mesh.offered\";\n\
             pub const RAIL_PATTERN: &str = \"power.rail.*.uj\";\n",
        );
        let user = facts(
            "crates/core/src/mesh.rs",
            "use picocube_telemetry::keys;\n\
             fn go(m: &mut Metrics) { m.inc(keys::GHOST, 1); }\n",
        )
        .0;
        let goldens = [GoldenKeys {
            file: "tests/golden/mesh.json".into(),
            keys: vec![
                "mesh.offered".into(),
                "power.rail.VBAT.uj".into(),
                "mesh.renamed".into(),
            ],
        }];
        let findings = check_keys_workspace(&[reg, user], &goldens);
        let kinds: Vec<&str> = findings.iter().map(|f| f.kind.as_str()).collect();
        assert!(kinds.contains(&"dup-key"), "{findings:?}");
        assert!(kinds.contains(&"unknown-key"), "{findings:?}");
        assert!(kinds.contains(&"golden-drift"), "{findings:?}");
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn clean_workspace_has_no_findings() {
        let reg = registry("pub const MESH_OFFERED: &str = \"mesh.offered\";\n");
        let user = facts(
            "crates/core/src/mesh.rs",
            "use picocube_telemetry::keys;\n\
             fn go(m: &mut Metrics) { m.inc(keys::MESH_OFFERED, 1); }\n",
        )
        .0;
        let goldens = [GoldenKeys {
            file: "tests/golden/mesh.json".into(),
            keys: vec!["mesh.offered".into()],
        }];
        assert!(check_keys_workspace(&[reg, user], &goldens).is_empty());
    }
}
