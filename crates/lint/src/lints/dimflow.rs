//! L5 — dimensional flow.
//!
//! Infers `picocube-units` quantity types through function bodies: let
//! bindings, parameters, struct fields, constructor paths, the `relate!`
//! multiplication algebra and the accessor methods (`.value()`, `.micro()`,
//! …) whose raw-`f64` results keep a *provenance* tag. Two rules fire:
//!
//! - **mixed-units** — an add/sub/compare whose operands carry different
//!   dimensions, either as typed quantities (`Joules + Watts`, which rustc
//!   itself rejects, so this mostly catches fixture code) or — the
//!   important case — as raw `f64` values laundered out of *different*
//!   units (`e.micro() + p.micro()` with `e: Joules, p: Watts`), which
//!   rustc happily accepts.
//! - **launder** — `.0` / `.into_inner()` applied to a quantity, with the
//!   result escaping into further arithmetic. The quantity newtypes keep
//!   their field private precisely so this cannot compile outside the
//!   units crate; the lint keeps it that way for any future `pub` slip.
//!
//! Inference is deliberately conservative: anything unknown stays unknown
//! and can only ever *suppress* a finding, never invent one. `SimTime` and
//! `SimDuration` participate as time-dimensioned pseudo-quantities (their
//! tick fields are integers, so the launder rule does not apply to them).

use crate::parser::{Ast, BinOp, Block, Expr, FnItem, Param, Stmt, TypeRef};
use crate::report::{Finding, Lint};
use std::collections::BTreeMap;

/// The `picocube-units` quantity newtypes (plus the RF decibel types).
const UNITS: &[&str] = &[
    "Volts",
    "Amps",
    "Ohms",
    "Farads",
    "Coulombs",
    "Hertz",
    "Watts",
    "Joules",
    "Seconds",
    "JoulesPerGram",
    "Meters",
    "Millimeters",
    "SquareMillimeters",
    "CubicMillimeters",
    "Grams",
    "Kilopascals",
    "Gs",
    "MetersPerSecond2",
    "MetersPerSecond",
    "Rpm",
    "Celsius",
    "Dbm",
    "Db",
];

/// Integer-backed simulation clock newtypes: dimension-checked like units
/// but exempt from the `.0` launder rule.
const TICK_TYPES: &[&str] = &["SimTime", "SimDuration"];

/// The `relate!` algebra: `(a, b, product)` with both operand orders
/// accepted and division derived by reversal.
const RELATE: &[(&str, &str, &str)] = &[
    ("Volts", "Amps", "Watts"),
    ("Amps", "Ohms", "Volts"),
    ("Farads", "Volts", "Coulombs"),
    ("Amps", "Seconds", "Coulombs"),
    ("Watts", "Seconds", "Joules"),
    ("JoulesPerGram", "Grams", "Joules"),
    ("Millimeters", "Millimeters", "SquareMillimeters"),
    ("SquareMillimeters", "Millimeters", "CubicMillimeters"),
];

/// Add/sub pairs that are legal across *different* types (affine scales
/// and clock arithmetic): `(lhs, rhs, result)`.
const ADD_PAIRS: &[(&str, &str, &str)] = &[
    ("Dbm", "Db", "Dbm"),
    ("Db", "Dbm", "Dbm"),
    ("SimTime", "SimDuration", "SimTime"),
    ("SimDuration", "SimTime", "SimTime"),
];

/// Methods on a quantity that return `Self`.
const SELF_METHODS: &[&str] = &["abs", "min", "max", "clamp"];

/// Accessor methods that return raw `f64` (or integer ticks) while keeping
/// provenance: the receiver's dimension tags the result.
const ACCESSOR_METHODS: &[&str] = &[
    "value",
    "nano",
    "micro",
    "milli",
    "kilo",
    "mega",
    "hours",
    "days",
    "milliamp_hours",
    "as_milliamp_hours",
    "mils",
    "micrometers",
    "kelvin",
    "fahrenheit",
    "psi",
    "bar",
    "kmh",
    "to_ratio",
    "as_nanos",
    "as_seconds_f64",
];

/// Methods whose *name* determines the result dimension regardless of the
/// (quantity-typed) receiver.
const METHOD_RESULTS: &[(&str, &str)] = &[
    ("power_at", "Watts"),
    ("conduction_loss", "Watts"),
    ("energy_at", "Joules"),
    ("charge_at", "Coulombs"),
    ("period", "Seconds"),
    ("frequency", "Hertz"),
    ("to_watts", "Watts"),
    ("margin_over", "Db"),
    ("to_millimeters", "Millimeters"),
    ("to_si", "MetersPerSecond2"),
    ("to_gs", "Gs"),
    ("wheel_rpm", "Rpm"),
    ("centripetal_at_radius", "MetersPerSecond2"),
    ("as_seconds", "Seconds"),
];

/// An inferred dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dim {
    /// A typed quantity.
    Unit(&'static str),
    /// A raw scalar; `prov` tags the unit it was extracted from, and
    /// `laundered` marks a `.0`/`into_inner` escape not yet reported.
    F64 {
        prov: Option<&'static str>,
        laundered: bool,
    },
    /// Known to be non-dimensional (bool, string, struct, …).
    Other,
    /// No information.
    Unknown,
}

impl Dim {
    fn f64_prov(prov: Option<&'static str>) -> Self {
        Dim::F64 {
            prov,
            laundered: false,
        }
    }
}

/// Interns a type name against the unit roster.
fn unit_name(name: &str) -> Option<&'static str> {
    UNITS
        .iter()
        .chain(TICK_TYPES.iter())
        .find(|u| **u == name)
        .copied()
}

fn dim_of_type(ty: &TypeRef) -> Dim {
    match ty.single() {
        Some("f64") | Some("f32") => Dim::f64_prov(None),
        Some(name) => match unit_name(name) {
            Some(u) => Dim::Unit(u),
            None => Dim::Unknown,
        },
        None => Dim::Unknown,
    }
}

/// Per-file context shared by every function body.
struct FileCtx<'a> {
    path: &'a str,
    /// Field name → dimension, for names unambiguous across the file's
    /// structs (conflicting names collapse to `Unknown`).
    fields: BTreeMap<String, Dim>,
    /// Function name → return dimension, for same-file calls.
    fn_rets: BTreeMap<String, Dim>,
    /// Allow-marker lines (from the lexer side table).
    allows: &'a std::collections::BTreeMap<u32, Vec<String>>,
    findings: Vec<Finding>,
}

impl FileCtx<'_> {
    fn allowed(&self, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|v| v.iter().any(|n| n == "L5"))
        })
    }

    fn push(&mut self, line: u32, kind: &str, message: String) {
        if self.allowed(line) {
            return;
        }
        // One finding per (line, kind): chained expressions otherwise
        // report the same site repeatedly.
        if self
            .findings
            .iter()
            .any(|f| f.line == line && f.kind == kind)
        {
            return;
        }
        self.findings.push(Finding {
            lint: Lint::L5,
            file: self.path.to_string(),
            line,
            kind: kind.into(),
            message,
        });
    }
}

type Env = BTreeMap<String, Dim>;

/// Runs L5 over a parsed file.
pub fn check_dimflow(ast: &Ast, path: &str) -> Vec<Finding> {
    let mut ctx = FileCtx {
        path,
        fields: BTreeMap::new(),
        fn_rets: BTreeMap::new(),
        allows: &ast.lexed.allow_markers,
        findings: Vec::new(),
    };
    ast.for_each_struct(&mut |_, fields| {
        for (name, ty) in fields {
            let dim = dim_of_type(ty);
            match ctx.fields.get(name) {
                None => {
                    ctx.fields.insert(name.clone(), dim);
                }
                Some(prev) if *prev != dim => {
                    ctx.fields.insert(name.clone(), Dim::Unknown);
                }
                Some(_) => {}
            }
        }
    });
    ast.for_each_fn(&mut |f| {
        let dim = f.ret.as_ref().map_or(Dim::Other, dim_of_type);
        match ctx.fn_rets.get(&f.name) {
            None => {
                ctx.fn_rets.insert(f.name.clone(), dim);
            }
            Some(prev) if *prev != dim => {
                ctx.fn_rets.insert(f.name.clone(), Dim::Unknown);
            }
            Some(_) => {}
        }
    });
    ast.for_each_fn(&mut |f: &FnItem| {
        if f.in_test {
            return;
        }
        let Some(body) = &f.body else { return };
        let mut env = Env::new();
        for Param { name, ty } in &f.params {
            if let (Some(n), Some(t)) = (name, ty) {
                env.insert(n.clone(), dim_of_type(t));
            }
        }
        check_block(body, &mut env, &mut ctx);
    });
    ctx.findings
}

fn check_block(block: &Block, env: &mut Env, ctx: &mut FileCtx<'_>) -> Dim {
    let mut last = Dim::Other;
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { name, ty, init, .. } => {
                let init_dim = init.as_ref().map(|e| infer(e, env, ctx));
                let dim = ty
                    .as_ref()
                    .map(dim_of_type)
                    .filter(|d| *d != Dim::Unknown)
                    .or(init_dim)
                    .unwrap_or(Dim::Unknown);
                if let Some(n) = name {
                    env.insert(n.clone(), dim);
                }
                last = Dim::Other;
            }
            Stmt::Expr(e) => last = infer(e, env, ctx),
            Stmt::Item(_) => last = Dim::Other,
        }
    }
    last
}

/// Strips the pending-launder flag (used once an operand has been checked).
fn settle(d: Dim) -> Dim {
    match d {
        Dim::F64 { prov, .. } => Dim::f64_prov(prov),
        other => other,
    }
}

fn infer(expr: &Expr, env: &mut Env, ctx: &mut FileCtx<'_>) -> Dim {
    match expr {
        Expr::Num { .. } => Dim::f64_prov(None),
        Expr::Str { .. } => Dim::Other,
        Expr::Path { segs, line } => infer_path(segs, *line, env),
        Expr::Unary { expr } | Expr::Wrap { expr } => infer(expr, env, ctx),
        Expr::Binary { op, lhs, rhs, line } => {
            let ld = infer(lhs, env, ctx);
            let rd = infer(rhs, env, ctx);
            check_launder(ld, *line, ctx);
            check_launder(rd, *line, ctx);
            combine(*op, settle(ld), settle(rd), *line, ctx)
        }
        Expr::Assign { lhs, op, rhs, line } => {
            let ld = infer(lhs, env, ctx);
            let rd = infer(rhs, env, ctx);
            if matches!(op, Some(BinOp::AddSub)) {
                check_launder(rd, *line, ctx);
                combine(BinOp::AddSub, settle(ld), settle(rd), *line, ctx);
            }
            Dim::Other
        }
        Expr::Call { callee, args, line } => {
            for a in args {
                let _ = infer(a, env, ctx);
            }
            if let Expr::Path { segs, .. } = callee.as_ref() {
                return infer_call_path(segs, *line, ctx);
            }
            let _ = infer(callee, env, ctx);
            Dim::Unknown
        }
        Expr::MethodCall {
            recv, name, args, ..
        } => {
            let recv_dim = infer(recv, env, ctx);
            for a in args {
                let _ = infer(a, env, ctx);
            }
            infer_method(recv_dim, name, ctx)
        }
        Expr::Field { recv, name, line } => {
            let recv_dim = infer(recv, env, ctx);
            if name == "0" || name.chars().all(|c| c.is_ascii_digit()) {
                // Tuple access: laundering when the receiver is a float
                // quantity.
                if let Dim::Unit(u) = recv_dim {
                    if UNITS.contains(&u) {
                        return Dim::F64 {
                            prov: Some(u),
                            laundered: true,
                        };
                    }
                    return Dim::f64_prov(Some(u));
                }
                return Dim::Unknown;
            }
            if matches!(recv.as_ref(), Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self")
            {
                return ctx.fields.get(name).copied().unwrap_or(Dim::Unknown);
            }
            let _ = line;
            Dim::Unknown
        }
        Expr::Index { recv, index } => {
            let _ = infer(recv, env, ctx);
            let _ = infer(index, env, ctx);
            Dim::Unknown
        }
        Expr::Cast { expr, ty } => {
            let inner = infer(expr, env, ctx);
            match ty.single() {
                Some("f64") | Some("f32") => match settle(inner) {
                    Dim::F64 { prov, .. } => Dim::f64_prov(prov),
                    _ => Dim::f64_prov(None),
                },
                _ => Dim::Other,
            }
        }
        Expr::StructLit { fields, .. } => {
            for f in fields {
                let _ = infer(f, env, ctx);
            }
            Dim::Other
        }
        Expr::Seq { elems } => {
            for e in elems {
                let _ = infer(e, env, ctx);
            }
            Dim::Unknown
        }
        Expr::Block(b) => {
            let mut inner = env.clone();
            check_block(b, &mut inner, ctx)
        }
        Expr::If { cond, then, else_ } => {
            let _ = infer(cond, env, ctx);
            let mut t_env = env.clone();
            let t = check_block(then, &mut t_env, ctx);
            let e = else_
                .as_ref()
                .map(|e| infer(e, env, ctx))
                .unwrap_or(Dim::Other);
            if t == e {
                t
            } else {
                Dim::Unknown
            }
        }
        Expr::Match { scrutinee, arms } => {
            let _ = infer(scrutinee, env, ctx);
            let mut dims: Vec<Dim> = Vec::new();
            for arm in arms {
                let mut a_env = env.clone();
                dims.push(infer(arm, &mut a_env, ctx));
            }
            dims.dedup();
            match dims.as_slice() {
                [one] => *one,
                _ => Dim::Unknown,
            }
        }
        Expr::Loop { head, body } => {
            if let Some(h) = head {
                let _ = infer(h, env, ctx);
            }
            let mut inner = env.clone();
            let _ = check_block(body, &mut inner, ctx);
            Dim::Other
        }
        Expr::Closure { params, body } => {
            let mut inner = env.clone();
            for Param { name, ty } in params {
                if let Some(n) = name {
                    inner.insert(n.clone(), ty.as_ref().map_or(Dim::Unknown, dim_of_type));
                }
            }
            let _ = infer(body, &mut inner, ctx);
            Dim::Unknown
        }
        Expr::Macro { args, .. } => {
            for a in args {
                let _ = infer(a, env, ctx);
            }
            Dim::Unknown
        }
        Expr::Opaque { .. } => Dim::Unknown,
    }
}

fn infer_path(segs: &[String], _line: u32, env: &Env) -> Dim {
    match segs {
        [one] => env.get(one).copied().unwrap_or(Dim::Unknown),
        [ty, tail] => {
            if let Some(u) = unit_name(ty) {
                // `Joules::ZERO`, `Seconds::HOUR`, … associated constants.
                if tail.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                    return Dim::Unit(u);
                }
            }
            Dim::Unknown
        }
        _ => Dim::Unknown,
    }
}

fn infer_call_path(segs: &[String], _line: u32, ctx: &FileCtx<'_>) -> Dim {
    match segs {
        [one] => ctx.fn_rets.get(one).copied().unwrap_or(Dim::Unknown),
        [ty, ctor] => {
            if let Some(u) = unit_name(ty) {
                if ctor == "new" || ctor.starts_with("from_") {
                    return Dim::Unit(u);
                }
            }
            if ty == "Self" {
                return ctx.fn_rets.get(ctor).copied().unwrap_or(Dim::Unknown);
            }
            Dim::Unknown
        }
        _ => Dim::Unknown,
    }
}

fn infer_method(recv: Dim, name: &str, ctx: &FileCtx<'_>) -> Dim {
    match settle(recv) {
        Dim::Unit(u) => {
            if SELF_METHODS.contains(&name) {
                return Dim::Unit(u);
            }
            if ACCESSOR_METHODS.contains(&name) {
                return Dim::f64_prov(Some(u));
            }
            if name == "into_inner" {
                if UNITS.contains(&u) {
                    return Dim::F64 {
                        prov: Some(u),
                        laundered: true,
                    };
                }
                return Dim::f64_prov(Some(u));
            }
            if let Some((_, ret)) = METHOD_RESULTS.iter().find(|(m, _)| *m == name) {
                return Dim::Unit(ret);
            }
            if name == "is_finite" || name == "is_zero" {
                return Dim::Other;
            }
            Dim::Unknown
        }
        Dim::F64 { prov, .. } => match name {
            // Float combinators that keep the value in its dimension.
            "abs" | "min" | "max" | "clamp" => Dim::f64_prov(prov),
            "floor" | "ceil" | "round" | "trunc" => Dim::f64_prov(prov),
            // Anything else (sqrt, powi, ln, …) changes the dimension.
            _ => Dim::f64_prov(None),
        },
        Dim::Unknown => {
            // A same-file method call: `self.stored_energy()` &c.
            ctx.fn_rets.get(name).copied().unwrap_or(Dim::Unknown)
        }
        Dim::Other => Dim::Unknown,
    }
}

fn check_launder(d: Dim, line: u32, ctx: &mut FileCtx<'_>) {
    if let Dim::F64 {
        prov,
        laundered: true,
    } = d
    {
        let unit = prov.unwrap_or("a quantity");
        ctx.push(
            line,
            "launder",
            format!(
                "raw f64 laundered out of {unit} via `.0`/`into_inner` escapes into \
                 arithmetic — use `.value()` at the boundary or keep the typed quantity"
            ),
        );
    }
}

fn combine(op: BinOp, lhs: Dim, rhs: Dim, line: u32, ctx: &mut FileCtx<'_>) -> Dim {
    match op {
        BinOp::AddSub | BinOp::Cmp => {
            let result = match (lhs, rhs) {
                (Dim::Unit(a), Dim::Unit(b)) => {
                    if a == b {
                        Some(Dim::Unit(a))
                    } else if let Some((_, _, r)) =
                        ADD_PAIRS.iter().find(|(x, y, _)| *x == a && *y == b)
                    {
                        Some(Dim::Unit(r))
                    } else {
                        ctx.push(
                            line,
                            "mixed-units",
                            format!(
                                "{} of {a} and {b} — these dimensions do not mix",
                                if op == BinOp::Cmp {
                                    "comparison"
                                } else {
                                    "add/sub"
                                },
                            ),
                        );
                        Some(Dim::Unknown)
                    }
                }
                (Dim::F64 { prov: Some(a), .. }, Dim::F64 { prov: Some(b), .. }) if a != b => {
                    ctx.push(
                        line,
                        "mixed-units",
                        format!(
                            "{} mixes raw f64 values from {a} and {b} — convert to one \
                             dimension (or one scale) before combining",
                            if op == BinOp::Cmp {
                                "comparison"
                            } else {
                                "add/sub"
                            },
                        ),
                    );
                    Some(Dim::f64_prov(None))
                }
                (Dim::F64 { prov: pa, .. }, Dim::F64 { prov: pb, .. }) => {
                    Some(Dim::f64_prov(pa.or(pb)))
                }
                _ => None,
            };
            if op == BinOp::Cmp {
                return Dim::Other;
            }
            result.unwrap_or(Dim::Unknown)
        }
        BinOp::Mul => match (lhs, rhs) {
            (Dim::Unit(a), Dim::Unit(b)) => RELATE
                .iter()
                .find(|(x, y, _)| (*x == a && *y == b) || (*x == b && *y == a))
                .map(|(_, _, p)| Dim::Unit(p))
                .unwrap_or(Dim::Unknown),
            (Dim::Unit(u), Dim::F64 { .. }) | (Dim::F64 { .. }, Dim::Unit(u)) => Dim::Unit(u),
            (Dim::F64 { .. }, Dim::F64 { .. }) => Dim::f64_prov(None),
            _ => Dim::Unknown,
        },
        BinOp::Div => match (lhs, rhs) {
            (Dim::Unit(a), Dim::Unit(b)) => {
                if a == b {
                    Dim::f64_prov(None)
                } else {
                    RELATE
                        .iter()
                        .find_map(|(x, y, p)| {
                            if *p == a && *y == b {
                                Some(Dim::Unit(x))
                            } else if *p == a && *x == b {
                                Some(Dim::Unit(y))
                            } else {
                                None
                            }
                        })
                        .unwrap_or(Dim::Unknown)
                }
            }
            (Dim::Unit(u), Dim::F64 { .. }) => Dim::Unit(u),
            (Dim::F64 { .. }, Dim::F64 { .. }) => Dim::f64_prov(None),
            _ => Dim::Unknown,
        },
        BinOp::Opaque => Dim::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Vec<Finding> {
        let ast = parse(src);
        assert!(ast.gaps.is_empty(), "fixture should parse: {:?}", ast.gaps);
        check_dimflow(&ast, "x.rs")
    }

    #[test]
    fn clean_unit_arithmetic_passes() {
        let f = run("fn f(p: Watts, t: Seconds) -> Joules { p * t }\n\
             fn g(a: Joules, b: Joules) -> Joules { a + b }\n\
             fn h(e: Joules, t: Seconds) -> Watts { e / t }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mixed_unit_add_is_flagged() {
        let f = run("fn f(e: Joules, p: Watts) -> f64 { e.value() + p.value() }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "mixed-units");
        assert!(f[0].message.contains("Joules"));
        assert!(f[0].message.contains("Watts"));
    }

    #[test]
    fn mixed_unit_compare_is_flagged() {
        let f = run("fn f(v: Volts, t: Seconds) -> bool { v.value() < t.value() }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("comparison"));
    }

    #[test]
    fn provenance_flows_through_lets_and_fields() {
        let f = run("struct S { stored: Joules, rate: Watts }\n\
             impl S {\n\
             fn f(&self) -> f64 { let e = self.stored.micro(); e + self.rate.micro() }\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn same_unit_accessors_pass() {
        let f = run("fn f(a: Joules, b: Joules) -> f64 { a.micro() + b.micro() }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relate_algebra_types_products() {
        let f = run("fn f(v: Volts, i: Amps, t: Seconds) -> f64 {\n\
             let e = v * i * t;\n\
             e.value() + Joules::ZERO.value()\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn launder_escaping_into_arithmetic_is_flagged() {
        let f = run("fn f(e: Joules) -> f64 { e.into_inner() * 2.0 }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "launder");
    }

    #[test]
    fn dbm_plus_db_is_fine_dbm_plus_dbm_compare_is_fine() {
        let f =
            run("fn f(p: Dbm, g: Db, s: Dbm) -> bool { let rx = p + g; rx.value() < s.value() }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_marker_suppresses() {
        let f = run("fn f(e: Joules, p: Watts) -> f64 {\n\
             // picocube-lint: allow(L5) intentional scale mix in a fixture\n\
             e.value() + p.value()\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scalar_plus_provenance_passes() {
        let f = run("fn f(e: Joules) -> f64 { e.value() + 1.0 }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_fns_are_skipped() {
        let f = run(
            "#[cfg(test)]\nmod t {\n fn f(e: Joules, p: Watts) -> f64 { e.value() + p.value() }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
