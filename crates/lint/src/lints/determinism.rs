//! L3 — determinism.
//!
//! The fleet engine's contract is bit-identical results for a given seed,
//! serial or threaded. Iteration order and wall-clock reads are the two
//! classic ways to break that, so in the simulation core, the telemetry
//! merge path and the fleet engine this lint forbids: `HashMap`/`HashSet`
//! (randomized iteration order — use `BTreeMap`/`BTreeSet`),
//! `Instant`/`SystemTime` (wall-clock reads — simulation time comes from
//! the event queue), and ambient RNG (`thread_rng`, the `rand` crate —
//! randomness must flow from `SimRng` seed streams).

use crate::report::{Finding, Lint};
use crate::source::ScannedFile;

/// Forbidden identifiers and what to use instead.
const FORBIDDEN: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized; use BTreeMap"),
    ("HashSet", "iteration order is randomized; use BTreeSet"),
    (
        "Instant",
        "wall-clock read; simulation time comes from the event queue",
    ),
    (
        "SystemTime",
        "wall-clock read; simulation time comes from the event queue",
    ),
    ("thread_rng", "ambient RNG; draw from a SimRng seed stream"),
    ("rand", "external RNG; draw from a SimRng seed stream"),
];

/// Runs L3 over a scanned file (the caller restricts this to the
/// determinism-scoped paths).
pub fn check_determinism(file: &ScannedFile, path: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for u in &file.idents {
        if u.in_test {
            continue;
        }
        let Some((_, why)) = FORBIDDEN.iter().find(|(name, _)| *name == u.ident) else {
            continue;
        };
        if file.allows(Lint::L3.code(), u.line) {
            continue;
        }
        out.push(Finding {
            lint: Lint::L3,
            file: path.to_string(),
            line: u.line,
            kind: u.ident.clone(),
            message: format!("`{}` in a determinism-scoped path: {why}", u.ident),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    #[test]
    fn hashmap_is_flagged_with_alternative() {
        let s = scan("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n");
        let f = check_determinism(&s, "x.rs");
        assert_eq!(f.len(), 3, "use + type + constructor");
        assert!(f[0].message.contains("BTreeMap"));
    }

    #[test]
    fn wall_clock_is_flagged() {
        let s = scan("fn f() { let t = Instant::now(); }\n");
        assert_eq!(check_determinism(&s, "x.rs").len(), 1);
    }

    #[test]
    fn test_code_and_btree_are_fine() {
        let s = scan(
            "use std::collections::BTreeMap;\n#[cfg(test)]\nmod t { fn g() { Instant::now(); } }\n",
        );
        assert!(check_determinism(&s, "x.rs").is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let s = scan("// picocube-lint: allow(L3) scratch map, drained in sorted order\nfn f() { let m = HashMap::new(); }\n");
        assert!(check_determinism(&s, "x.rs").is_empty());
    }
}
