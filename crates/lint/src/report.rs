//! Findings, the machine-readable JSON report and the human table.

use picocube_units::json::{Json, ToJson};
use std::fmt::Write as _;

/// The seven workspace lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// Unit hygiene: no bare `f64` in public signatures where a
    /// `picocube-units` quantity exists.
    L1,
    /// Panic freedom: no `unwrap`/`expect`/`panic!`/indexing in library
    /// code of the simulation hot path.
    L2,
    /// Determinism: no `HashMap`/`HashSet`, wall clocks or ambient RNG in
    /// the simulation and telemetry merge paths.
    L3,
    /// Provenance: named physical constants must cite a paper section.
    L4,
    /// Dimensional flow: unit types inferred through function bodies must
    /// agree at every add/sub/compare; `.0`/`into_inner` laundering that
    /// escapes into arithmetic is flagged.
    L5,
    /// RNG-stream discipline: reserved `SimRng` streams are declared once,
    /// drawn by one module, never forked or re-derived ad hoc.
    L6,
    /// Telemetry-key registry: metric/event keys are constants from the
    /// `picocube-telemetry` `keys` module, never inline strings.
    L7,
}

impl Lint {
    /// Stable short code, also the name used by allow markers.
    pub fn code(self) -> &'static str {
        match self {
            Self::L1 => "L1",
            Self::L2 => "L2",
            Self::L3 => "L3",
            Self::L4 => "L4",
            Self::L5 => "L5",
            Self::L6 => "L6",
            Self::L7 => "L7",
        }
    }

    /// One-line description for report headers.
    pub fn title(self) -> &'static str {
        match self {
            Self::L1 => "unit hygiene",
            Self::L2 => "panic freedom",
            Self::L3 => "determinism",
            Self::L4 => "provenance",
            Self::L5 => "dimensional flow",
            Self::L6 => "rng-stream discipline",
            Self::L7 => "telemetry-key registry",
        }
    }

    /// Parses a lint code (`"L5"` → [`Lint::L5`]).
    pub fn parse(code: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|l| l.code() == code)
    }

    /// All lints in report order.
    pub const ALL: [Lint; 7] = [
        Lint::L1,
        Lint::L2,
        Lint::L3,
        Lint::L4,
        Lint::L5,
        Lint::L6,
        Lint::L7,
    ];

    /// The lints whose findings are netted against `lint-allowlist.txt`.
    pub const ALLOWLISTED: [Lint; 4] = [Lint::L2, Lint::L5, Lint::L6, Lint::L7];
}

/// One lint violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Sub-kind within the lint (e.g. `unwrap`, `param`, `const`).
    pub kind: String,
    /// Human-readable explanation.
    pub message: String,
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("lint".into(), Json::Str(self.lint.code().into())),
            ("file".into(), Json::Str(self.file.clone())),
            ("line".into(), Json::UInt(u64::from(self.line))),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("message".into(), Json::Str(self.message.clone())),
        ])
    }
}

/// A construct the parser could not understand; the syntactic lints
/// degraded gracefully around it. Reported so that gaps cannot silently
/// hide violations.
#[derive(Debug, Clone)]
pub struct ReportGap {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What the parser was trying to parse.
    pub context: String,
    /// The token that stopped it.
    pub found: String,
}

impl ToJson for ReportGap {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("file".into(), Json::Str(self.file.clone())),
            ("line".into(), Json::UInt(u64::from(self.line))),
            ("context".into(), Json::Str(self.context.clone())),
            ("found".into(), Json::Str(self.found.clone())),
        ])
    }
}

/// A full lint run: findings plus bookkeeping for the summary.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of sites suppressed by the allowlist (all layers).
    pub allowlisted: usize,
    /// Parser gaps encountered while building the syntactic lints' ASTs.
    pub parse_gaps: Vec<ReportGap>,
}

impl Report {
    /// Sorts findings into the stable report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    }

    /// Whether the run is clean (no findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Count of findings for one lint.
    pub fn count(&self, lint: Lint) -> usize {
        self.findings.iter().filter(|f| f.lint == lint).count()
    }

    /// The machine-readable report document.
    pub fn to_json(&self) -> Json {
        let counts = Json::Obj(
            Lint::ALL
                .iter()
                .map(|l| (l.code().to_string(), Json::UInt(self.count(*l) as u64)))
                .collect(),
        );
        Json::Obj(vec![
            ("schema".into(), Json::Str("picocube-lint/v2".into())),
            (
                "files_scanned".into(),
                Json::UInt(self.files_scanned as u64),
            ),
            ("allowlisted".into(), Json::UInt(self.allowlisted as u64)),
            ("counts".into(), counts),
            ("findings".into(), self.findings.to_json()),
            ("parse_gaps".into(), self.parse_gaps.to_json()),
        ])
    }

    /// The human-readable diagnostic table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            let _ = writeln!(
                out,
                "picocube-lint: clean ({} files scanned, {} allowlisted sites, {} parse gaps)",
                self.files_scanned,
                self.allowlisted,
                self.parse_gaps.len()
            );
            return out;
        }
        let loc_width = self
            .findings
            .iter()
            .map(|f| f.file.len() + 1 + f.line.to_string().len())
            .max()
            .unwrap_or(8)
            .max("location".len());
        let kind_width = self
            .findings
            .iter()
            .map(|f| f.kind.len())
            .max()
            .unwrap_or(4)
            .max("kind".len());
        let _ = writeln!(
            out,
            "LINT  {:loc_width$}  {:kind_width$}  MESSAGE",
            "LOCATION", "KIND"
        );
        for f in &self.findings {
            let loc = format!("{}:{}", f.file, f.line);
            let _ = writeln!(
                out,
                "{}    {:loc_width$}  {:kind_width$}  {}",
                f.lint.code(),
                loc,
                f.kind,
                f.message
            );
        }
        let _ = writeln!(out);
        for l in Lint::ALL {
            let n = self.count(l);
            if n > 0 {
                let _ = writeln!(out, "{}: {} {} finding(s)", l.code(), n, l.title());
            }
        }
        let _ = writeln!(
            out,
            "total: {} finding(s) in {} file(s) scanned",
            self.findings.len(),
            self.files_scanned
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    lint: Lint::L2,
                    file: "crates/sim/src/queue.rs".into(),
                    line: 10,
                    kind: "unwrap".into(),
                    message: "`.unwrap()` in library code".into(),
                },
                Finding {
                    lint: Lint::L1,
                    file: "crates/radio/src/channel.rs".into(),
                    line: 3,
                    kind: "param".into(),
                    message: "bare f64 parameter".into(),
                },
            ],
            files_scanned: 2,
            allowlisted: 1,
            parse_gaps: Vec::new(),
        };
        r.sort();
        r
    }

    #[test]
    fn sort_orders_by_file_then_line() {
        let r = sample();
        assert_eq!(r.findings[0].lint, Lint::L1);
        assert_eq!(r.findings[1].lint, Lint::L2);
    }

    #[test]
    fn json_has_counts_and_findings() {
        let doc = sample().to_json();
        assert_eq!(
            doc.get("counts")
                .and_then(|c| c.get("L2"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            doc.get("findings")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        // Round-trips through the parser.
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn table_lists_every_finding() {
        let table = sample().render_table();
        assert!(table.contains("crates/sim/src/queue.rs:10"));
        assert!(table.contains("total: 2 finding(s)"));
    }

    #[test]
    fn clean_report_prints_summary() {
        let r = Report {
            files_scanned: 40,
            allowlisted: 3,
            ..Report::default()
        };
        assert!(r.render_table().contains("clean"));
        assert!(r.is_clean());
    }
}
