//! A small recursive-descent Rust parser for the dataflow lints.
//!
//! Built directly on [`crate::lexer`] — no `syn`, no rustc internals. The
//! goal is not fidelity to the full grammar but a *recoverable* syntactic
//! skeleton: items with bodies, statements, and a Pratt-parsed expression
//! tree precise enough to flow unit types (L5), stream-id expressions (L6)
//! and key strings (L7) through function bodies. Anything the parser does
//! not understand is recorded as a structured [`ParseGap`] and skipped to a
//! safe synchronization point (`;` or a balanced `}`) — the parser never
//! panics and never silently drops tokens without a gap record, which is
//! what the workspace round-trip property test pins.
//!
//! Deliberate simplifications (all recorded in DESIGN.md §14):
//!
//! - Patterns are opaque: a `let` pattern binds a name only when it is a
//!   plain (possibly `mut`/`ref`) identifier; destructured bindings simply
//!   stay untyped, which can only suppress findings, never invent them.
//! - Generic argument lists and type expressions are token-skipped; only
//!   the identifiers inside a type are retained (enough to spot `Joules`
//!   or `f64`).
//! - Macro invocations are parsed speculatively as expression lists; when
//!   the body is not expression-shaped (e.g. `matches!` patterns) the
//!   arguments fall back to the string literals found inside, so `format!`
//!   keys stay visible to L7 without a gap.

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// A construct the parser could not understand at `line`; the surrounding
/// analysis degrades gracefully instead of failing.
#[derive(Debug, Clone)]
pub struct ParseGap {
    /// 1-based line of the unparsed construct.
    pub line: u32,
    /// What the parser was trying to parse (`item`, `stmt`, `expr`, …).
    pub context: &'static str,
    /// The token that stopped it.
    pub found: String,
}

/// A type reference, token-skipped but with its identifiers retained.
#[derive(Debug, Clone, Default)]
pub struct TypeRef {
    /// Identifiers appearing in the type, in source order.
    pub idents: Vec<String>,
}

impl TypeRef {
    /// The sole identifier, when the type is a plain path like `f64` or
    /// `Joules` (`&T` and `mut` wrappers stripped).
    pub fn single(&self) -> Option<&str> {
        let named: Vec<&String> = self
            .idents
            .iter()
            .filter(|i| !matches!(i.as_str(), "mut" | "dyn" | "impl"))
            .collect();
        match named.as_slice() {
            [one] => Some(one.as_str()),
            _ => None,
        }
    }
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name, when the pattern is a plain identifier.
    pub name: Option<String>,
    /// Declared type, when present.
    pub ty: Option<TypeRef>,
}

/// A parsed `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item carries any `pub` visibility.
    pub is_pub: bool,
    /// Whether the item lives under `#[cfg(test)]` or carries `#[test]`.
    pub in_test: bool,
    /// Parameters in order (receiver `self` omitted).
    pub params: Vec<Param>,
    /// Return type, when present.
    pub ret: Option<TypeRef>,
    /// Body block; `None` for trait method signatures.
    pub body: Option<Block>,
}

/// A parsed `const` or `static` item.
#[derive(Debug)]
pub struct ConstItem {
    /// Item name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Whether the item carries any `pub` visibility.
    pub is_pub: bool,
    /// Whether the item lives under `#[cfg(test)]`.
    pub in_test: bool,
    /// Declared type.
    pub ty: Option<TypeRef>,
    /// Initializer expression.
    pub init: Option<Expr>,
}

/// A parsed `use` declaration, flattened: `use a::b::{c, d as e}` yields
/// leaves `["c", "e"]` under prefix `["a", "b"]`.
#[derive(Debug)]
pub struct UseItem {
    /// Path segments before any brace group.
    pub prefix: Vec<String>,
    /// Final imported names (aliases applied; `*` recorded verbatim).
    pub leaves: Vec<String>,
    /// 1-based line.
    pub line: u32,
}

/// One top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A function with (optionally) its body.
    Fn(FnItem),
    /// A `const` or `static`.
    Const(ConstItem),
    /// An inline module with its items.
    Mod {
        /// Module name.
        name: String,
        /// Whether the module is `#[cfg(test)]`.
        cfg_test: bool,
        /// Contained items.
        items: Vec<Item>,
    },
    /// An `impl` or `trait` block's items (the self type is not resolved).
    ImplLike {
        /// Contained items.
        items: Vec<Item>,
    },
    /// A `use` declaration.
    Use(UseItem),
    /// A `struct` with named fields (tuple and unit structs are `Other`).
    Struct {
        /// Struct name.
        name: String,
        /// `(field name, declared type)` pairs.
        fields: Vec<(String, TypeRef)>,
    },
    /// Any other item (enum/type/macro_rules/extern), skipped.
    Other,
}

/// A `{ … }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Trailing expression present (last stmt without `;`).
    pub line: u32,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let [mut] name[: ty] = init;` — name is `None` for destructuring.
    Let {
        /// Binding name for plain-identifier patterns.
        name: Option<String>,
        /// Declared type, when annotated.
        ty: Option<TypeRef>,
        /// Initializer.
        init: Option<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// An expression statement (with or without `;`).
    Expr(Expr),
    /// A nested item (fn/const/…), parsed like any other.
    Item(Item),
}

/// Binary operators L5 cares about; everything else is `Opaque`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` or `-` (dimension-preserving, operands must agree).
    AddSub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `==ieq`, `!=`, `<`, `>`, `<=`, `>=` (operands must agree).
    Cmp,
    /// Anything else (`%`, shifts, bitwise, logical).
    Opaque,
}

/// An expression tree node. Lines point at the operator or head token.
#[derive(Debug)]
pub enum Expr {
    /// Numeric literal.
    Num {
        /// Literal text.
        text: String,
        /// 1-based line.
        line: u32,
    },
    /// String/char literal.
    Str {
        /// Raw literal text (quotes included).
        text: String,
        /// 1-based line.
        line: u32,
    },
    /// A (possibly qualified) path such as `x`, `Joules::new`, `u64::MAX`.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// 1-based line.
        line: u32,
    },
    /// Unary `-`, `!` or `*`.
    Unary {
        /// The operand.
        expr: Box<Expr>,
    },
    /// `lhs op rhs`.
    Binary {
        /// Operator class.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line of the operator.
        line: u32,
    },
    /// `lhs = rhs` or `lhs op= rhs`.
    Assign {
        /// Assignment target.
        lhs: Box<Expr>,
        /// Compound operator class, when `op=`.
        op: Option<BinOp>,
        /// Assigned value.
        rhs: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `callee(args…)`.
    Call {
        /// The called expression (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `recv.name(args…)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `recv.name` or `recv.0`.
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name or tuple index.
        name: String,
        /// 1-based line.
        line: u32,
    },
    /// `recv[index]`.
    Index {
        /// Receiver.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `expr as Ty`.
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeRef,
    },
    /// `path { fields… }` struct literal (field values kept, names not).
    StructLit {
        /// Struct path segments.
        segs: Vec<String>,
        /// Field value expressions.
        fields: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// Tuple or array literal.
    Seq {
        /// Element expressions.
        elems: Vec<Expr>,
    },
    /// A block expression (also bodies of `loop`/`unsafe`).
    Block(Block),
    /// `if cond { … } else …` (also `if let` — pattern opaque).
    If {
        /// Condition (for `if let`, the matched expression).
        cond: Box<Expr>,
        /// Then block.
        then: Block,
        /// Else branch.
        else_: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms… }` — patterns opaque, guards skipped.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arm body expressions.
        arms: Vec<Expr>,
    },
    /// `while`/`while let`/`for … in`/`loop` — bodies kept, the loop
    /// header expression (condition or iterator) kept when present.
    Loop {
        /// Condition or iterator expression.
        head: Option<Box<Expr>>,
        /// Loop body.
        body: Block,
    },
    /// `|params| body` closure.
    Closure {
        /// Parameters (names only; types when annotated).
        params: Vec<Param>,
        /// Closure body.
        body: Box<Expr>,
    },
    /// `path!(args…)` macro invocation, speculatively parsed.
    Macro {
        /// Macro path segments (without the `!`).
        segs: Vec<String>,
        /// Arguments when the body parsed as an expression list, else the
        /// string literals found inside.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `expr?`, `&expr`, ranges, `return`/`break` values — wrappers that
    /// forward their operand.
    Wrap {
        /// The wrapped operand.
        expr: Box<Expr>,
    },
    /// A placeholder for something unparsed (gap already recorded) or
    /// valueless (`return;`, `continue`).
    Opaque {
        /// 1-based line.
        line: u32,
    },
}

impl Expr {
    /// The 1-based line most representative of this expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Num { line, .. }
            | Expr::Str { line, .. }
            | Expr::Path { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Opaque { line } => *line,
            Expr::Unary { expr } | Expr::Wrap { expr } | Expr::Cast { expr, .. } => expr.line(),
            Expr::Index { recv, .. } => recv.line(),
            Expr::Seq { elems } => elems.first().map_or(0, Expr::line),
            Expr::Block(b) => b.line,
            Expr::If { cond, .. } => cond.line(),
            Expr::Match { scrutinee, .. } => scrutinee.line(),
            Expr::Loop { body, .. } => body.line,
            Expr::Closure { body, .. } => body.line(),
        }
    }
}

/// A parsed file: the item tree plus the lexer side tables and any gaps.
#[derive(Debug)]
pub struct Ast {
    /// Top-level items.
    pub items: Vec<Item>,
    /// Constructs the parser could not understand.
    pub gaps: Vec<ParseGap>,
    /// The underlying lex (doc lines, allow markers).
    pub lexed: Lexed,
}

impl Ast {
    /// Walks every function item (at any nesting depth) in source order.
    pub fn for_each_fn(&self, f: &mut impl FnMut(&FnItem)) {
        fn walk(items: &[Item], f: &mut impl FnMut(&FnItem)) {
            for item in items {
                match item {
                    Item::Fn(func) => {
                        f(func);
                        if let Some(body) = &func.body {
                            walk_block(body, f);
                        }
                    }
                    Item::Mod { items, .. } | Item::ImplLike { items } => walk(items, f),
                    _ => {}
                }
            }
        }
        fn walk_block(b: &Block, f: &mut impl FnMut(&FnItem)) {
            for s in &b.stmts {
                if let Stmt::Item(Item::Fn(func)) = s {
                    f(func);
                    if let Some(body) = &func.body {
                        walk_block(body, f);
                    }
                }
            }
        }
        walk(&self.items, f);
    }

    /// Walks every const/static item (at any nesting depth) in source order.
    pub fn for_each_const(&self, f: &mut impl FnMut(&ConstItem)) {
        fn walk(items: &[Item], f: &mut impl FnMut(&ConstItem)) {
            for item in items {
                match item {
                    Item::Const(c) => f(c),
                    Item::Mod { items, .. } | Item::ImplLike { items } => walk(items, f),
                    _ => {}
                }
            }
        }
        walk(&self.items, f);
    }

    /// Walks every named-field struct (at any nesting depth).
    pub fn for_each_struct(&self, f: &mut impl FnMut(&str, &[(String, TypeRef)])) {
        fn walk(items: &[Item], f: &mut impl FnMut(&str, &[(String, TypeRef)])) {
            for item in items {
                match item {
                    Item::Struct { name, fields } => f(name, fields),
                    Item::Mod { items, .. } | Item::ImplLike { items } => walk(items, f),
                    _ => {}
                }
            }
        }
        walk(&self.items, f);
    }

    /// Walks every `use` declaration (at any nesting depth).
    pub fn for_each_use(&self, f: &mut impl FnMut(&UseItem)) {
        fn walk(items: &[Item], f: &mut impl FnMut(&UseItem)) {
            for item in items {
                match item {
                    Item::Use(u) => f(u),
                    Item::Mod { items, .. } | Item::ImplLike { items } => walk(items, f),
                    _ => {}
                }
            }
        }
        walk(&self.items, f);
    }
}

/// Visits every expression nested in `block`'s statements (including the
/// expressions of nested items' bodies is the caller's concern — nested
/// `fn` items are *not* descended into, mirroring `for_each_fn`).
pub fn walk_block_exprs(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    walk_exprs(e, f);
                }
            }
            Stmt::Expr(e) => walk_exprs(e, f),
            Stmt::Item(_) => {}
        }
    }
}

/// Recursively visits `expr` and every sub-expression, parents first.
pub fn walk_exprs(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Num { .. } | Expr::Str { .. } | Expr::Path { .. } | Expr::Opaque { .. } => {}
        Expr::Unary { expr } | Expr::Wrap { expr } | Expr::Cast { expr, .. } => {
            walk_exprs(expr, f);
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        Expr::Call { callee, args, .. } => {
            walk_exprs(callee, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_exprs(recv, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_exprs(recv, f),
        Expr::Index { recv, index } => {
            walk_exprs(recv, f);
            walk_exprs(index, f);
        }
        Expr::StructLit { fields, .. } => {
            for e in fields {
                walk_exprs(e, f);
            }
        }
        Expr::Seq { elems } => {
            for e in elems {
                walk_exprs(e, f);
            }
        }
        Expr::Block(b) => walk_block_exprs(b, f),
        Expr::If { cond, then, else_ } => {
            walk_exprs(cond, f);
            walk_block_exprs(then, f);
            if let Some(e) = else_ {
                walk_exprs(e, f);
            }
        }
        Expr::Match { scrutinee, arms } => {
            walk_exprs(scrutinee, f);
            for a in arms {
                walk_exprs(a, f);
            }
        }
        Expr::Loop { head, body } => {
            if let Some(h) = head {
                walk_exprs(h, f);
            }
            walk_block_exprs(body, f);
        }
        Expr::Closure { body, .. } => walk_exprs(body, f),
        Expr::Macro { args, .. } => {
            for a in args {
                walk_exprs(a, f);
            }
        }
    }
}

/// Parses `src` into an [`Ast`]. Never panics; unknown constructs become
/// [`ParseGap`]s.
pub fn parse(src: &str) -> Ast {
    let lexed = lex(src);
    let mut p = Parser {
        toks: &lexed.tokens,
        i: 0,
        gaps: Vec::new(),
        no_struct: 0,
    };
    let items = p.parse_items(false, None);
    Ast {
        items,
        gaps: p.gaps,
        lexed,
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
    gaps: Vec<ParseGap>,
    /// Depth counter: while > 0, `path {` is not a struct literal (we are
    /// in an `if`/`while`/`match`/`for` header).
    no_struct: u32,
}

const EOF_LINE: u32 = 0;

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.i)
    }

    fn peek_at(&self, n: usize) -> Option<&'a Token> {
        self.toks.get(self.i + n)
    }

    fn line(&self) -> u32 {
        self.peek().map_or(EOF_LINE, |t| t.line)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// Two adjacent punct tokens forming `ab`? (The lexer emits single
    /// chars; valid Rust never separates compound operators.)
    fn at_punct2(&self, a: char, b: char) -> bool {
        self.at_punct(a) && self.peek_at(1).is_some_and(|t| t.is_punct(b))
    }

    fn gap(&mut self, context: &'static str) {
        let found = self
            .peek()
            .map_or_else(|| "<eof>".to_string(), |t| t.text.clone());
        self.gaps.push(ParseGap {
            line: self.line(),
            context,
            found,
        });
    }

    /// Skips one balanced group assuming the opener is the current token.
    fn skip_balanced(&mut self) {
        let Some(open) = self.bump() else { return };
        let close = match open.text.as_str() {
            "(" => ')',
            "[" => ']',
            "{" => '}',
            _ => return,
        };
        let open_c = open.text.chars().next().unwrap_or('(');
        let mut depth = 1u32;
        while let Some(t) = self.bump() {
            if t.is_punct(open_c) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Recovery: skip to the next `;` or balanced `}` at the current depth.
    fn recover_stmt(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.i += 1;
                return;
            }
            if t.is_punct('}') {
                return; // caller's block close
            }
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                self.skip_balanced();
            } else {
                self.i += 1;
            }
        }
    }

    /// Skips outer attributes `#[…]` and inner attributes `#![…]`,
    /// returning whether any of them was `#[cfg(test)]` / `#[test]`.
    fn skip_attrs(&mut self) -> bool {
        let mut test = false;
        while self.at_punct('#') {
            let start = self.i;
            self.i += 1;
            self.eat_punct('!');
            if self.at_punct('[') {
                let attr_start = self.i;
                self.skip_balanced();
                let text: Vec<&str> = self.toks[attr_start..self.i]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect();
                if text.contains(&"test") && !text.contains(&"doctest") {
                    test = true;
                }
            } else {
                self.i = start;
                return test;
            }
        }
        test
    }

    /// Skips a `<…>` generic group if present (handles nesting).
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            } else if t.is_punct('-') && self.peek_at(1).is_some_and(|n| n.is_punct('>')) {
                // `->` inside an `Fn(…) -> R` bound: consume both.
                self.i += 1;
            } else if t.is_punct(';') || t.is_punct('{') {
                return; // malformed; bail before eating a body
            }
            self.i += 1;
        }
    }

    /// Token-skips a type, collecting identifiers, until a terminator at
    /// depth 0 (one of `terms`, `{`, or `;`).
    fn parse_type(&mut self, terms: &[char]) -> TypeRef {
        let mut ty = TypeRef::default();
        let mut angle = 0i32;
        let mut paren = 0i32;
        while let Some(t) = self.peek() {
            if angle == 0 && paren == 0 {
                if t.kind == TokenKind::Punct {
                    let c = t.text.chars().next().unwrap_or(' ');
                    if terms.contains(&c) || c == '{' || c == '}' || c == ';' {
                        break;
                    }
                }
                if t.is_ident("where") {
                    break;
                }
            }
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" | "[" => paren += 1,
                ")" | "]" => {
                    if paren == 0 {
                        break;
                    }
                    paren -= 1;
                }
                "-" if self.peek_at(1).is_some_and(|n| n.is_punct('>')) => {
                    self.i += 2;
                    continue;
                }
                _ => {}
            }
            if t.kind == TokenKind::Ident {
                ty.idents.push(t.text.clone());
            }
            self.i += 1;
        }
        ty
    }

    // ----- items ---------------------------------------------------------

    /// Parses items until EOF (top level) or a closing `}`.
    fn parse_items(&mut self, in_test: bool, close: Option<char>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if let Some(c) = close {
                if self.at_punct(c) {
                    self.i += 1;
                    return items;
                }
            }
            if self.peek().is_none() {
                return items;
            }
            let before = self.i;
            match self.parse_item(in_test) {
                Some(item) => items.push(item),
                None => {
                    // Unknown item: record and resynchronize.
                    self.gap("item");
                    self.recover_item();
                }
            }
            if self.i == before {
                // A stray close brace (or other recovery dead-end) at a
                // level that has no closer: force progress, never spin.
                self.i += 1;
            }
        }
    }

    /// Recovery at item level: skip to after the next `;` or balanced
    /// `{}`, or stop (after at least one token) at a likely item start so
    /// garbage before an item does not swallow the item itself.
    fn recover_item(&mut self) {
        let start = self.i;
        while let Some(t) = self.peek() {
            if self.i > start
                && matches!(
                    t.text.as_str(),
                    "pub" | "fn" | "struct" | "enum" | "impl" | "mod" | "use" | "trait"
                )
            {
                return;
            }
            if t.is_punct(';') {
                self.i += 1;
                return;
            }
            if t.is_punct('{') {
                self.skip_balanced();
                return;
            }
            if t.is_punct('}') {
                return;
            }
            if t.is_punct('(') || t.is_punct('[') {
                self.skip_balanced();
            } else {
                self.i += 1;
            }
        }
    }

    fn parse_item(&mut self, in_test: bool) -> Option<Item> {
        let attr_test = self.skip_attrs();
        let in_test = in_test || attr_test;
        let mut is_pub = false;
        if self.eat_ident("pub") {
            if self.at_punct('(') {
                self.skip_balanced(); // pub(crate), pub(super), …
            }
            is_pub = true;
        }
        // Leading qualifiers.
        let mut is_unsafe = false;
        loop {
            if self.eat_ident("unsafe") {
                is_unsafe = true;
            } else if self.at_ident("default") && self.peek_at(1).is_some_and(|t| t.is_ident("fn"))
            {
                self.i += 1;
            } else if self.at_ident("const")
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.is_ident("fn") || t.is_ident("unsafe"))
            {
                self.i += 1; // `const fn`
            } else if self.at_ident("async") || self.at_ident("extern") && is_unsafe {
                self.i += 1;
            } else {
                break;
            }
        }
        let t = self.peek()?;
        match t.text.as_str() {
            "fn" => self.parse_fn(is_pub, in_test).map(Item::Fn),
            "const" | "static" => self.parse_const(is_pub, in_test).map(Item::Const),
            "mod" => self.parse_mod(in_test, attr_test),
            "use" => Some(self.parse_use()),
            "impl" | "trait" => self.parse_impl_like(in_test),
            "struct" => Some(self.parse_struct()),
            "enum" | "union" | "type" => {
                self.i += 1;
                self.recover_item();
                Some(Item::Other)
            }
            "macro_rules" => {
                self.i += 1;
                self.eat_punct('!');
                if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                    self.i += 1;
                }
                if self.at_punct('{') || self.at_punct('(') || self.at_punct('[') {
                    self.skip_balanced();
                }
                self.eat_punct(';');
                Some(Item::Other)
            }
            "extern" => {
                self.i += 1;
                self.recover_item();
                Some(Item::Other)
            }
            _ => {
                // Item-position macro invocation (`proptest! { … }`,
                // `relate! { … }`): an ident (path) followed by `!` and a
                // balanced body. Consumed opaquely.
                if t.kind == TokenKind::Ident {
                    let mut j = self.i + 1;
                    while self.toks.get(j).is_some_and(|n| n.is_punct(':'))
                        && self.toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                        && self
                            .toks
                            .get(j + 2)
                            .is_some_and(|n| n.kind == TokenKind::Ident)
                    {
                        j += 3;
                    }
                    if self.toks.get(j).is_some_and(|n| n.is_punct('!')) {
                        self.i = j + 1;
                        if self.at_punct('{') || self.at_punct('(') || self.at_punct('[') {
                            self.skip_balanced();
                        }
                        self.eat_punct(';');
                        return Some(Item::Other);
                    }
                }
                None
            }
        }
    }

    fn parse_fn(&mut self, is_pub: bool, in_test: bool) -> Option<FnItem> {
        debug_assert!(self.at_ident("fn"));
        self.i += 1;
        let name_tok = self.peek()?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        self.i += 1;
        self.skip_generics();
        if !self.at_punct('(') {
            return None;
        }
        let params = self.parse_params();
        let mut ret = None;
        if self.at_punct('-') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            self.i += 2;
            ret = Some(self.parse_type(&[]));
        }
        if self.eat_ident("where") {
            // Skip the where clause up to the body or `;`.
            let _ = self.parse_type(&[]);
        }
        let body = if self.at_punct('{') {
            Some(self.parse_block())
        } else {
            self.eat_punct(';');
            None
        };
        Some(FnItem {
            name,
            line,
            is_pub,
            in_test,
            params,
            ret,
            body,
        })
    }

    /// Parses `( pattern: Type, … )`; receiver `self` forms are skipped.
    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        debug_assert!(self.at_punct('('));
        self.i += 1;
        loop {
            if self.eat_punct(')') || self.peek().is_none() {
                return params;
            }
            self.skip_attrs();
            // Pattern side: plain ident (after mut/ref) binds a name.
            let mut name = None;
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if depth == 0 && (t.is_punct(':') || t.is_punct(',') || t.is_punct(')')) {
                    break;
                }
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    _ => {}
                }
                if t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "self")
                {
                    name = Some(t.text.clone());
                } else if !matches!(t.text.as_str(), "mut" | "ref" | "self" | "&" | "_") {
                    name = None; // destructuring pattern
                }
                self.i += 1;
            }
            let ty = if self.eat_punct(':') {
                Some(self.parse_type(&[',', ')']))
            } else {
                None
            };
            if ty.is_none() {
                name = None; // `self`, `&mut self`
            }
            params.push(Param { name, ty });
            if !self.eat_punct(',') && self.eat_punct(')') {
                return params;
            }
        }
    }

    fn parse_const(&mut self, is_pub: bool, in_test: bool) -> Option<ConstItem> {
        self.i += 1; // const | static
        self.eat_ident("mut");
        if self.at_punct('_') {
            // `const _: () = …`
            self.recover_stmt();
            return Some(ConstItem {
                name: "_".into(),
                line: self.line(),
                is_pub,
                in_test,
                ty: None,
                init: None,
            });
        }
        let name_tok = self.peek()?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        self.i += 1;
        let ty = if self.eat_punct(':') {
            Some(self.parse_type(&['=']))
        } else {
            None
        };
        let init = if self.eat_punct('=') {
            Some(self.parse_expr())
        } else {
            None
        };
        self.eat_punct(';');
        Some(ConstItem {
            name,
            line,
            is_pub,
            in_test,
            ty,
            init,
        })
    }

    /// Parses `struct Name { field: Type, … }`; tuple/unit structs become
    /// [`Item::Other`].
    fn parse_struct(&mut self) -> Item {
        self.i += 1; // struct
        let Some(name_tok) = self.peek() else {
            return Item::Other;
        };
        if name_tok.kind != TokenKind::Ident {
            self.recover_item();
            return Item::Other;
        }
        let name = name_tok.text.clone();
        self.i += 1;
        self.skip_generics();
        if self.eat_ident("where") {
            let _ = self.parse_type(&[]);
        }
        if !self.at_punct('{') {
            // Tuple or unit struct.
            self.recover_item();
            return Item::Other;
        }
        self.i += 1;
        let mut fields = Vec::new();
        loop {
            if self.eat_punct('}') || self.peek().is_none() {
                break;
            }
            self.skip_attrs();
            if self.eat_ident("pub") && self.at_punct('(') {
                self.skip_balanced();
            }
            let Some(t) = self.peek() else { break };
            if t.kind != TokenKind::Ident {
                self.recover_item();
                break;
            }
            let field = t.text.clone();
            self.i += 1;
            if !self.eat_punct(':') {
                self.recover_item();
                break;
            }
            let ty = self.parse_type(&[',']);
            fields.push((field, ty));
            if !self.eat_punct(',') {
                self.eat_punct('}');
                break;
            }
        }
        Item::Struct { name, fields }
    }

    fn parse_mod(&mut self, in_test: bool, cfg_test: bool) -> Option<Item> {
        self.i += 1; // mod
        let name = self.bump().map(|t| t.text.clone())?;
        if self.eat_punct(';') {
            return Some(Item::Other); // out-of-line module
        }
        if !self.eat_punct('{') {
            return None;
        }
        let items = self.parse_items(in_test || cfg_test, Some('}'));
        Some(Item::Mod {
            name,
            cfg_test,
            items,
        })
    }

    fn parse_use(&mut self) -> Item {
        let line = self.line();
        self.i += 1; // use
        let mut prefix = Vec::new();
        let mut leaves = Vec::new();
        // Walk `a::b::…` until `{`, `;` or `*`.
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    let seg = t.text.clone();
                    self.i += 1;
                    if self.at_punct2(':', ':') {
                        self.i += 2;
                        prefix.push(seg);
                    } else if self.eat_ident("as") {
                        if let Some(alias) = self.bump() {
                            leaves.push(alias.text.clone());
                        }
                        break;
                    } else {
                        leaves.push(seg);
                        break;
                    }
                }
                Some(t) if t.is_punct('{') => {
                    self.i += 1;
                    let mut depth = 1u32;
                    let mut last: Option<String> = None;
                    while let Some(t) = self.bump() {
                        if t.is_punct('{') {
                            depth += 1;
                        } else if t.is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if t.is_punct(',') && depth == 1 {
                            leaves.extend(last.take());
                        } else if t.kind == TokenKind::Ident && t.text != "as" && t.text != "self" {
                            last = Some(t.text.clone());
                        } else if t.is_punct('*') {
                            last = Some("*".into());
                        }
                    }
                    leaves.extend(last);
                    break;
                }
                Some(t) if t.is_punct('*') => {
                    self.i += 1;
                    leaves.push("*".into());
                    break;
                }
                _ => break,
            }
        }
        self.eat_punct(';');
        Item::Use(UseItem {
            prefix,
            leaves,
            line,
        })
    }

    fn parse_impl_like(&mut self, in_test: bool) -> Option<Item> {
        self.i += 1; // impl | trait
        self.skip_generics();
        // Skip the type / trait-for-type header up to the body.
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if angle == 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "-" if self.peek_at(1).is_some_and(|n| n.is_punct('>')) => {
                    self.i += 1;
                }
                _ => {}
            }
            self.i += 1;
        }
        if self.eat_punct(';') {
            return Some(Item::Other);
        }
        if !self.eat_punct('{') {
            return None;
        }
        let items = self.parse_items(in_test, Some('}'));
        Some(Item::ImplLike { items })
    }

    // ----- statements and blocks -----------------------------------------

    fn parse_block(&mut self) -> Block {
        let line = self.line();
        let mut block = Block {
            stmts: Vec::new(),
            line,
        };
        if !self.eat_punct('{') {
            return block;
        }
        loop {
            if self.eat_punct('}') || self.peek().is_none() {
                return block;
            }
            if self.eat_punct(';') {
                continue;
            }
            let before = self.i;
            if let Some(stmt) = self.parse_stmt() {
                block.stmts.push(stmt);
            } else {
                if self.i == before {
                    self.gap("stmt");
                    self.recover_stmt();
                }
                if self.i == before {
                    self.i += 1; // last-resort forward progress
                }
            }
        }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        // Items can appear in statement position.
        if self
            .peek()
            .is_some_and(|t| matches!(t.text.as_str(), "fn" | "struct" | "enum" | "impl" | "mod"))
            || self.at_punct('#') && self.peek_at(1).is_some_and(|t| t.is_punct('['))
            || self.at_ident("use")
            || (self.at_ident("const")
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.kind == TokenKind::Ident && t.text != "fn"))
            || self.at_ident("static")
        {
            return self.parse_item(false).map(Stmt::Item);
        }
        if self.at_ident("let") {
            return self.parse_let();
        }
        let expr = self.parse_expr();
        self.eat_punct(';');
        Some(Stmt::Expr(expr))
    }

    fn parse_let(&mut self) -> Option<Stmt> {
        let line = self.line();
        self.i += 1; // let
                     // Pattern: plain ident (after mut/ref) binds; anything else opaque.
        let mut name = None;
        let mut plain = true;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if self.at_punct2(':', ':') {
                // Path segment (`let StepResult::Ran { .. } = …`), not the
                // type annotation — skip both colons as one unit.
                self.i += 2;
                plain = false;
                name = None;
                continue;
            }
            if depth == 0
                && (t.is_punct(':') || t.is_punct('=') || t.is_punct(';') || t.is_punct('}'))
            {
                break;
            }
            match t.text.as_str() {
                // Braces nest: struct patterns (`let Foo { a: b } = …`)
                // carry both braces and colons that must not end the skip.
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            if t.kind == TokenKind::Ident {
                if matches!(t.text.as_str(), "mut" | "ref") {
                    // qualifier
                } else if name.is_none() && plain {
                    name = Some(t.text.clone());
                } else {
                    plain = false;
                    name = None;
                }
            } else if !t.is_punct('_') {
                plain = false;
                name = None;
            }
            self.i += 1;
        }
        let ty = if self.eat_punct(':') {
            Some(self.parse_type(&['=']))
        } else {
            None
        };
        let init = if self.eat_punct('=') {
            Some(self.parse_expr())
        } else {
            None
        };
        // `let … else { … }` diverging fallback.
        if self.at_ident("else") {
            self.i += 1;
            if self.at_punct('{') {
                self.skip_balanced();
            }
        }
        self.eat_punct(';');
        Some(Stmt::Let {
            name,
            ty,
            init,
            line,
        })
    }

    // ----- expressions ----------------------------------------------------

    /// Full expression, including assignment.
    pub(crate) fn parse_expr(&mut self) -> Expr {
        let lhs = self.parse_range();
        // Assignment / compound assignment: `=`, `+=`, `-=` …
        if let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct {
                let c = t.text.chars().next().unwrap_or(' ');
                let next_eq = self.peek_at(1).is_some_and(|n| n.is_punct('='));
                let next2_eq = self.peek_at(2).is_some_and(|n| n.is_punct('='));
                if c == '=' && !next_eq && !self.at_punct2('=', '>') {
                    let line = t.line;
                    self.i += 1;
                    let rhs = self.parse_expr();
                    return Expr::Assign {
                        lhs: Box::new(lhs),
                        op: None,
                        rhs: Box::new(rhs),
                        line,
                    };
                }
                let compound = match c {
                    '+' | '-' if next_eq => Some(BinOp::AddSub),
                    '*' if next_eq => Some(BinOp::Mul),
                    '/' if next_eq => Some(BinOp::Div),
                    '%' | '^' | '|' | '&' if next_eq => Some(BinOp::Opaque),
                    '<' | '>' if self.at_punct2(c, c) && next2_eq => {
                        // `<<=` / `>>=`
                        self.i += 1;
                        Some(BinOp::Opaque)
                    }
                    _ => None,
                };
                if let Some(op) = compound {
                    let line = t.line;
                    self.i += 2;
                    let rhs = self.parse_expr();
                    return Expr::Assign {
                        lhs: Box::new(lhs),
                        op: Some(op),
                        rhs: Box::new(rhs),
                        line,
                    };
                }
            }
        }
        lhs
    }

    fn parse_range(&mut self) -> Expr {
        // Leading `..`/`..=`.
        if self.at_punct2('.', '.') {
            self.i += 2;
            self.eat_punct('=');
            if self.range_operand_follows() {
                let hi = self.parse_or();
                return Expr::Wrap { expr: Box::new(hi) };
            }
            return Expr::Opaque { line: self.line() };
        }
        let lo = self.parse_or();
        if self.at_punct2('.', '.') && !self.peek_at(2).is_some_and(|t| t.is_punct('.')) {
            self.i += 2;
            self.eat_punct('=');
            if self.range_operand_follows() {
                let hi = self.parse_or();
                return Expr::Seq {
                    elems: vec![lo, hi],
                };
            }
            return Expr::Wrap { expr: Box::new(lo) };
        }
        lo
    }

    fn range_operand_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Punct => matches!(t.text.as_str(), "(" | "-" | "!" | "*" | "&" | "["),
                TokenKind::Ident => !matches!(t.text.as_str(), "if" | "else" | "in"),
                _ => true,
            },
        }
    }

    fn parse_or(&mut self) -> Expr {
        let mut lhs = self.parse_and();
        while self.at_punct2('|', '|') {
            let line = self.line();
            self.i += 2;
            let rhs = self.parse_and();
            lhs = Expr::Binary {
                op: BinOp::Opaque,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_and(&mut self) -> Expr {
        let mut lhs = self.parse_cmp();
        while self.at_punct2('&', '&')
            && !self
                .peek_at(2)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            let line = self.line();
            self.i += 2;
            let rhs = self.parse_cmp();
            lhs = Expr::Binary {
                op: BinOp::Opaque,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_cmp(&mut self) -> Expr {
        let lhs = self.parse_bitor();
        let Some(t) = self.peek() else { return lhs };
        if t.kind != TokenKind::Punct {
            return lhs;
        }
        let line = t.line;
        let c = t.text.chars().next().unwrap_or(' ');
        let next_eq = self.peek_at(1).is_some_and(|n| n.is_punct('='));
        let matched = match c {
            '=' if next_eq => {
                self.i += 2;
                true
            }
            '!' if next_eq => {
                self.i += 2;
                true
            }
            '<' | '>' if !self.at_punct2(c, c) => {
                self.i += 1;
                self.eat_punct('=');
                true
            }
            _ => false,
        };
        if !matched {
            return lhs;
        }
        let rhs = self.parse_bitor();
        Expr::Binary {
            op: BinOp::Cmp,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            line,
        }
    }

    fn parse_bitor(&mut self) -> Expr {
        let mut lhs = self.parse_bitxor();
        while self.at_punct('|') && !self.at_punct2('|', '|') && !self.at_punct2('|', '=') {
            let line = self.line();
            self.i += 1;
            let rhs = self.parse_bitxor();
            lhs = Expr::Binary {
                op: BinOp::Opaque,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_bitxor(&mut self) -> Expr {
        let mut lhs = self.parse_bitand();
        while self.at_punct('^') && !self.at_punct2('^', '=') {
            let line = self.line();
            self.i += 1;
            let rhs = self.parse_bitand();
            lhs = Expr::Binary {
                op: BinOp::Opaque,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_bitand(&mut self) -> Expr {
        let mut lhs = self.parse_shift();
        while self.at_punct('&') && !self.at_punct2('&', '&') && !self.at_punct2('&', '=') {
            let line = self.line();
            self.i += 1;
            let rhs = self.parse_shift();
            lhs = Expr::Binary {
                op: BinOp::Opaque,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_shift(&mut self) -> Expr {
        let mut lhs = self.parse_addsub();
        while (self.at_punct2('<', '<') || self.at_punct2('>', '>'))
            && !self.peek_at(2).is_some_and(|t| t.is_punct('='))
        {
            let line = self.line();
            self.i += 2;
            let rhs = self.parse_addsub();
            lhs = Expr::Binary {
                op: BinOp::Opaque,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_addsub(&mut self) -> Expr {
        let mut lhs = self.parse_muldiv();
        loop {
            let Some(t) = self.peek() else { return lhs };
            let is_add = t.is_punct('+');
            let is_sub = t.is_punct('-') && !self.at_punct2('-', '>');
            if (!is_add && !is_sub) || self.peek_at(1).is_some_and(|n| n.is_punct('=')) {
                return lhs;
            }
            let line = t.line;
            self.i += 1;
            let rhs = self.parse_muldiv();
            lhs = Expr::Binary {
                op: BinOp::AddSub,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_muldiv(&mut self) -> Expr {
        let mut lhs = self.parse_cast();
        loop {
            let Some(t) = self.peek() else { return lhs };
            let op = if t.is_punct('*') {
                BinOp::Mul
            } else if t.is_punct('/') {
                BinOp::Div
            } else if t.is_punct('%') {
                BinOp::Opaque
            } else {
                return lhs;
            };
            if self.peek_at(1).is_some_and(|n| n.is_punct('=')) {
                return lhs;
            }
            let line = t.line;
            self.i += 1;
            let rhs = self.parse_cast();
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_cast(&mut self) -> Expr {
        let mut expr = self.parse_unary();
        while self.at_ident("as") {
            self.i += 1;
            // Reference / raw-pointer casts: the sigils that would end a
            // *trailing* type position are valid *leading* here
            // (`as &dyn Board`, `as *const u8`) — consume them first.
            while self.at_punct('&') {
                self.i += 1;
                self.eat_punct('&');
                self.eat_ident("mut");
            }
            if self.at_punct('*')
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.is_ident("const") || t.is_ident("mut"))
            {
                self.i += 2;
            }
            self.eat_ident("dyn");
            let ty = self.parse_type(&[
                ',', ';', ')', ']', '}', '+', '-', '*', '/', '%', '<', '>', '=', '?', '.', '&',
                '|', '^',
            ]);
            expr = Expr::Cast {
                expr: Box::new(expr),
                ty,
            };
        }
        expr
    }

    fn parse_unary(&mut self) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Opaque { line: EOF_LINE };
        };
        if t.is_punct('-') || t.is_punct('!') {
            self.i += 1;
            let expr = self.parse_unary();
            return Expr::Unary {
                expr: Box::new(expr),
            };
        }
        if t.is_punct('*') {
            self.i += 1;
            let expr = self.parse_unary();
            return Expr::Unary {
                expr: Box::new(expr),
            };
        }
        if t.is_punct('&') {
            self.i += 1;
            self.eat_punct('&');
            self.eat_ident("mut");
            let expr = self.parse_unary();
            return Expr::Wrap {
                expr: Box::new(expr),
            };
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Expr {
        let mut expr = self.parse_primary();
        loop {
            if self.at_punct('?') {
                self.i += 1;
                expr = Expr::Wrap {
                    expr: Box::new(expr),
                };
            } else if self.at_punct('.') && !self.at_punct2('.', '.') {
                let line = self.line();
                self.i += 1;
                if self.eat_ident("await") {
                    expr = Expr::Wrap {
                        expr: Box::new(expr),
                    };
                    continue;
                }
                let Some(name_tok) = self.peek() else {
                    return expr;
                };
                if name_tok.kind == TokenKind::Num {
                    // Tuple index `.0`; the lexer may glue `0.0` in `x.0.0`.
                    let name = name_tok.text.clone();
                    self.i += 1;
                    for part in name.split('.') {
                        expr = Expr::Field {
                            recv: Box::new(expr),
                            name: part.to_string(),
                            line,
                        };
                    }
                    continue;
                }
                if name_tok.kind != TokenKind::Ident {
                    self.gap("field");
                    return expr;
                }
                let name = name_tok.text.clone();
                self.i += 1;
                if self.at_punct2(':', ':') {
                    // Turbofish: `.collect::<Vec<_>>()`.
                    self.i += 2;
                    self.skip_generics();
                }
                if self.at_punct('(') {
                    let args = self.parse_args();
                    expr = Expr::MethodCall {
                        recv: Box::new(expr),
                        name,
                        args,
                        line,
                    };
                } else {
                    expr = Expr::Field {
                        recv: Box::new(expr),
                        name,
                        line,
                    };
                }
            } else if self.at_punct('(') {
                let line = self.line();
                let args = self.parse_args();
                expr = Expr::Call {
                    callee: Box::new(expr),
                    args,
                    line,
                };
            } else if self.at_punct('[') {
                self.i += 1;
                let saved = self.no_struct;
                self.no_struct = 0;
                let index = self.parse_expr();
                self.no_struct = saved;
                self.eat_punct(']');
                expr = Expr::Index {
                    recv: Box::new(expr),
                    index: Box::new(index),
                };
            } else {
                return expr;
            }
        }
    }

    /// Parses a `( … )` argument list (the opener is the current token).
    fn parse_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        self.i += 1; // (
        let saved = self.no_struct;
        self.no_struct = 0;
        loop {
            if self.eat_punct(')') || self.peek().is_none() {
                self.no_struct = saved;
                return args;
            }
            args.push(self.parse_expr());
            if !self.eat_punct(',') {
                if !self.eat_punct(')') {
                    self.gap("args");
                    self.recover_stmt();
                }
                self.no_struct = saved;
                return args;
            }
        }
    }

    fn parse_primary(&mut self) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Opaque { line: EOF_LINE };
        };
        let line = t.line;
        match t.kind {
            TokenKind::Num => {
                self.i += 1;
                Expr::Num {
                    text: t.text.clone(),
                    line,
                }
            }
            TokenKind::Literal => {
                self.i += 1;
                Expr::Str {
                    text: t.text.clone(),
                    line,
                }
            }
            TokenKind::Lifetime => {
                // Labeled loop/block: `'outer: loop { … }`.
                self.i += 1;
                self.eat_punct(':');
                self.parse_primary()
            }
            TokenKind::Punct => match t.text.as_str() {
                "(" => {
                    self.i += 1;
                    let saved = self.no_struct;
                    self.no_struct = 0;
                    let mut elems = Vec::new();
                    let mut tuple = false;
                    loop {
                        if self.eat_punct(')') || self.peek().is_none() {
                            break;
                        }
                        elems.push(self.parse_expr());
                        if self.eat_punct(',') {
                            tuple = true;
                        } else {
                            if !self.eat_punct(')') {
                                self.gap("paren");
                                self.recover_stmt();
                            }
                            break;
                        }
                    }
                    self.no_struct = saved;
                    if !tuple && elems.len() == 1 {
                        elems.pop().unwrap_or(Expr::Opaque { line })
                    } else {
                        Expr::Seq { elems }
                    }
                }
                "[" => {
                    self.i += 1;
                    let saved = self.no_struct;
                    self.no_struct = 0;
                    let mut elems = Vec::new();
                    loop {
                        if self.eat_punct(']') || self.peek().is_none() {
                            break;
                        }
                        elems.push(self.parse_expr());
                        if self.eat_punct(';') {
                            // `[elem; N]` repeat
                            elems.push(self.parse_expr());
                            self.eat_punct(']');
                            break;
                        }
                        if !self.eat_punct(',') {
                            self.eat_punct(']');
                            break;
                        }
                    }
                    self.no_struct = saved;
                    Expr::Seq { elems }
                }
                "{" => Expr::Block(self.parse_block()),
                "|" => self.parse_closure(),
                "#" => {
                    // Expression attribute (`#[allow] expr` in stmt position).
                    self.i += 1;
                    if self.at_punct('[') {
                        self.skip_balanced();
                    }
                    self.parse_primary()
                }
                "<" => {
                    // Qualified path `<T as Trait>::f` — skip the qualifier.
                    self.skip_generics();
                    if self.at_punct2(':', ':') {
                        self.i += 2;
                    }
                    self.parse_postfix_path(line)
                }
                _ => {
                    self.gap("expr");
                    self.i += 1;
                    Expr::Opaque { line }
                }
            },
            TokenKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(),
                "match" => self.parse_match(),
                "while" => {
                    self.i += 1;
                    let head = self.parse_loop_head();
                    let body = self.parse_block();
                    Expr::Loop { head, body }
                }
                "loop" => {
                    self.i += 1;
                    let body = self.parse_block();
                    Expr::Loop { head: None, body }
                }
                "for" => {
                    self.i += 1;
                    // Skip the pattern up to `in` at depth 0.
                    let mut depth = 0i32;
                    while let Some(t) = self.peek() {
                        if depth == 0 && t.is_ident("in") {
                            break;
                        }
                        match t.text.as_str() {
                            // A brace before `in` starts a struct pattern
                            // (`for Foo { x } in …`) — nest, don't bail.
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "}" if depth > 0 => depth -= 1,
                            "}" | ";" => break,
                            _ => {}
                        }
                        self.i += 1;
                    }
                    let head = if self.eat_ident("in") {
                        self.no_struct += 1;
                        let e = self.parse_expr();
                        self.no_struct -= 1;
                        Some(Box::new(e))
                    } else {
                        None
                    };
                    let body = self.parse_block();
                    Expr::Loop { head, body }
                }
                "unsafe" => {
                    self.i += 1;
                    Expr::Block(self.parse_block())
                }
                "return" | "break" => {
                    self.i += 1;
                    if self.peek().is_some_and(|t| {
                        !t.is_punct(';') && !t.is_punct('}') && !t.is_punct(')') && !t.is_punct(',')
                    }) {
                        if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                            self.i += 1; // break 'label
                        }
                        if self.peek().is_some_and(|t| {
                            !t.is_punct(';') && !t.is_punct('}') && !t.is_punct(')')
                        }) {
                            let expr = self.parse_expr();
                            return Expr::Wrap {
                                expr: Box::new(expr),
                            };
                        }
                    }
                    Expr::Opaque { line }
                }
                "continue" => {
                    self.i += 1;
                    if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                        self.i += 1;
                    }
                    Expr::Opaque { line }
                }
                "move" => {
                    self.i += 1;
                    if self.at_punct('|') || self.at_punct2('|', '|') {
                        self.parse_closure()
                    } else {
                        self.parse_primary()
                    }
                }
                "let" => {
                    // `let PAT = expr` in a condition: skip the pattern.
                    // Braces nest (struct patterns); a brace would only sit
                    // at depth 0 here if the `=` is missing entirely.
                    self.i += 1;
                    let mut depth = 0i32;
                    while let Some(t) = self.peek() {
                        if depth == 0 && t.is_punct('=') && !self.at_punct2('=', '=') {
                            break;
                        }
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "}" if depth > 0 => depth -= 1,
                            "}" | ";" => break,
                            _ => {}
                        }
                        self.i += 1;
                    }
                    if self.eat_punct('=') {
                        let expr = self.parse_or();
                        Expr::Wrap {
                            expr: Box::new(expr),
                        }
                    } else {
                        Expr::Opaque { line }
                    }
                }
                _ => self.parse_postfix_path(line),
            },
        }
    }

    /// Parses a path (`a::b::c`, with optional turbofish) then decides
    /// between a macro call, struct literal or plain path.
    fn parse_postfix_path(&mut self, line: u32) -> Expr {
        let mut segs = Vec::new();
        while let Some(t) = self.peek() {
            if t.kind != TokenKind::Ident {
                break;
            }
            segs.push(t.text.clone());
            self.i += 1;
            if self.at_punct2(':', ':') {
                self.i += 2;
                if self.at_punct('<') {
                    self.skip_generics(); // turbofish
                    if self.at_punct2(':', ':') {
                        self.i += 2;
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.gap("path");
            self.i += 1;
            return Expr::Opaque { line };
        }
        if self.at_punct('!') && !self.at_punct2('!', '=') {
            self.i += 1;
            return self.parse_macro_call(segs, line);
        }
        if self.at_punct('{') && self.no_struct == 0 {
            let last = segs.last().map(String::as_str).unwrap_or("");
            let struct_like =
                last.chars().next().is_some_and(|c| c.is_ascii_uppercase()) || last == "self";
            if struct_like {
                return self.parse_struct_lit(segs, line);
            }
        }
        Expr::Path { segs, line }
    }

    fn parse_struct_lit(&mut self, segs: Vec<String>, line: u32) -> Expr {
        self.i += 1; // {
        let saved = self.no_struct;
        self.no_struct = 0;
        let mut fields = Vec::new();
        loop {
            if self.eat_punct('}') || self.peek().is_none() {
                break;
            }
            if self.at_punct2('.', '.') {
                self.i += 2;
                if !self.at_punct('}') {
                    fields.push(self.parse_expr()); // ..base
                }
                continue;
            }
            // `name: value` or shorthand `name`.
            let Some(name_tok) = self.peek() else { break };
            if name_tok.kind != TokenKind::Ident {
                self.gap("struct-lit");
                self.recover_stmt();
                break;
            }
            let field_line = name_tok.line;
            let name = name_tok.text.clone();
            self.i += 1;
            if self.eat_punct(':') {
                fields.push(self.parse_expr());
            } else {
                fields.push(Expr::Path {
                    segs: vec![name],
                    line: field_line,
                });
            }
            if !self.eat_punct(',') {
                self.eat_punct('}');
                break;
            }
        }
        self.no_struct = saved;
        Expr::StructLit { segs, fields, line }
    }

    /// Speculatively parses macro arguments as an expression list; on
    /// failure falls back to the string literals inside the body.
    fn parse_macro_call(&mut self, segs: Vec<String>, line: u32) -> Expr {
        let Some(open) = self.peek() else {
            return Expr::Macro {
                segs,
                args: Vec::new(),
                line,
            };
        };
        let close = match open.text.as_str() {
            "(" => ')',
            "[" => ']',
            "{" => '}',
            _ => {
                return Expr::Macro {
                    segs,
                    args: Vec::new(),
                    line,
                }
            }
        };
        let start = self.i;
        // Find the end of the balanced body first (for fallback + resync).
        self.skip_balanced();
        let end = self.i;
        // Attempt: re-parse the interior as `expr, expr, …`.
        let gaps_before = self.gaps.len();
        self.i = start + 1;
        let mut args = Vec::new();
        let mut ok = true;
        let saved = self.no_struct;
        self.no_struct = 0;
        loop {
            if self.i >= end.saturating_sub(1) {
                break;
            }
            args.push(self.parse_expr());
            if self.i >= end.saturating_sub(1) {
                break;
            }
            if !self.eat_punct(',') {
                ok = false;
                break;
            }
        }
        self.no_struct = saved;
        if !ok || self.gaps.len() > gaps_before || self.i > end.saturating_sub(1) {
            // Not expression-shaped: keep only the string literals.
            self.gaps.truncate(gaps_before);
            args = self.toks[start..end]
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .map(|t| Expr::Str {
                    text: t.text.clone(),
                    line: t.line,
                })
                .collect();
        }
        self.i = end;
        let _ = close;
        Expr::Macro { segs, args, line }
    }

    fn parse_closure(&mut self) -> Expr {
        let mut params = Vec::new();
        if self.at_punct2('|', '|') {
            self.i += 2;
        } else {
            self.i += 1; // |
            loop {
                if self.eat_punct('|') || self.peek().is_none() {
                    break;
                }
                self.eat_ident("mut");
                self.eat_ident("ref");
                let name = match self.peek() {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let n = t.text.clone();
                        self.i += 1;
                        Some(n)
                    }
                    _ => {
                        // Destructuring closure param: skip to `,` or `|`.
                        let mut depth = 0i32;
                        while let Some(t) = self.peek() {
                            if depth == 0 && (t.is_punct(',') || t.is_punct('|')) {
                                break;
                            }
                            match t.text.as_str() {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                _ => {}
                            }
                            self.i += 1;
                        }
                        None
                    }
                };
                let ty = if self.eat_punct(':') {
                    Some(self.parse_type(&[',', '|']))
                } else {
                    None
                };
                params.push(Param { name, ty });
                if !self.eat_punct(',') {
                    self.eat_punct('|');
                    break;
                }
            }
        }
        if self.at_punct('-') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            self.i += 2;
            let _ = self.parse_type(&[]);
        }
        let body = self.parse_expr();
        Expr::Closure {
            params,
            body: Box::new(body),
        }
    }

    fn parse_if(&mut self) -> Expr {
        self.i += 1; // if
        self.no_struct += 1;
        let cond = self.parse_expr();
        self.no_struct -= 1;
        let then = self.parse_block();
        let else_ = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else {
                Some(Box::new(Expr::Block(self.parse_block())))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            else_,
        }
    }

    fn parse_loop_head(&mut self) -> Option<Box<Expr>> {
        self.no_struct += 1;
        let e = self.parse_expr();
        self.no_struct -= 1;
        Some(Box::new(e))
    }

    fn parse_match(&mut self) -> Expr {
        self.i += 1; // match
        self.no_struct += 1;
        let scrutinee = self.parse_expr();
        self.no_struct -= 1;
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            loop {
                if self.eat_punct('}') || self.peek().is_none() {
                    break;
                }
                self.skip_attrs();
                // Skip the pattern (and any guard) to `=>` at depth 0.
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    if depth == 0 && self.at_punct2('=', '>') {
                        break;
                    }
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                    self.i += 1;
                }
                if !self.at_punct2('=', '>') {
                    break;
                }
                self.i += 2;
                arms.push(self.parse_expr());
                self.eat_punct(',');
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_clean(src: &str) -> Ast {
        let ast = parse(src);
        assert!(ast.gaps.is_empty(), "gaps: {:?}", ast.gaps);
        ast
    }

    #[test]
    fn fn_with_params_and_body() {
        let ast = parse_clean("pub fn f(a: Joules, b: f64) -> Watts { a.value() + b }\n");
        let mut seen = 0;
        ast.for_each_fn(&mut |f| {
            seen += 1;
            assert_eq!(f.name, "f");
            assert!(f.is_pub);
            assert_eq!(f.params.len(), 2);
            assert_eq!(f.params[0].name.as_deref(), Some("a"));
            assert_eq!(
                f.params[0].ty.as_ref().and_then(TypeRef::single),
                Some("Joules")
            );
            assert_eq!(f.ret.as_ref().and_then(TypeRef::single), Some("Watts"));
            assert_eq!(f.body.as_ref().map(|b| b.stmts.len()), Some(1));
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn precedence_builds_the_right_tree() {
        let ast = parse_clean("fn f() { let x = a + b * c; }\n");
        ast.for_each_fn(&mut |f| {
            let body = f.body.as_ref().unwrap();
            let Stmt::Let { init: Some(e), .. } = &body.stmts[0] else {
                panic!("expected let");
            };
            let Expr::Binary {
                op: BinOp::AddSub,
                rhs,
                ..
            } = e
            else {
                panic!("expected + at the root, got {e:?}");
            };
            assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
        });
    }

    #[test]
    fn method_chains_and_fields() {
        let ast = parse_clean("fn f() { let y = x.energy().value(); let z = q.0; }\n");
        ast.for_each_fn(&mut |f| {
            let body = f.body.as_ref().unwrap();
            assert_eq!(body.stmts.len(), 2);
            let Stmt::Let {
                init: Some(Expr::MethodCall { name, recv, .. }),
                ..
            } = &body.stmts[0]
            else {
                panic!("expected method call");
            };
            assert_eq!(name, "value");
            assert!(matches!(**recv, Expr::MethodCall { .. }));
            let Stmt::Let {
                init: Some(Expr::Field { name, .. }),
                ..
            } = &body.stmts[1]
            else {
                panic!("expected field access");
            };
            assert_eq!(name, "0");
        });
    }

    #[test]
    fn if_while_for_match_and_closures_parse() {
        parse_clean(
            "fn f(v: Vec<u64>) -> u64 {\n\
             let mut acc = 0;\n\
             for x in v.iter().map(|i| i + 1) { acc += x; }\n\
             while acc > 10 { acc -= 1; }\n\
             if let Some(y) = v.first() { acc += *y; } else { acc = 0; }\n\
             match acc { 0 => 1, n if n > 5 => n, _ => 2 }\n\
             }\n",
        );
    }

    #[test]
    fn struct_literals_do_not_eat_blocks() {
        let ast = parse_clean(
            "fn f() -> P { if x { P { a: 1 } } else { P { a: 2 } } }\n\
             fn g() -> P { P { a: 1, ..Default::default() } }\n",
        );
        let mut names = Vec::new();
        ast.for_each_fn(&mut |f| names.push(f.name.clone()));
        assert_eq!(names, ["f", "g"]);
    }

    #[test]
    fn macro_args_parse_as_exprs_with_string_capture() {
        let ast = parse_clean("fn f() { m.inc(format!(\"power.rail.{}.uj\", name)); }\n");
        let mut found = false;
        ast.for_each_fn(&mut |f| {
            let Stmt::Expr(Expr::MethodCall { args, .. }) = &f.body.as_ref().unwrap().stmts[0]
            else {
                panic!("expected method call");
            };
            let Expr::Macro { segs, args, .. } = &args[0] else {
                panic!("expected macro arg");
            };
            assert_eq!(segs, &["format"]);
            assert!(matches!(&args[0], Expr::Str { text, .. } if text.contains("power.rail")));
            found = true;
        });
        assert!(found);
    }

    #[test]
    fn non_expr_macros_fall_back_to_literals() {
        parse_clean("fn f() { let b = matches!(x, Some(_) | None); }\n");
    }

    #[test]
    fn consts_keep_their_initializers() {
        let ast = parse_clean("pub const SINK_STREAM: u64 = u64::MAX - 1;\n");
        let mut seen = false;
        ast.for_each_const(&mut |c| {
            assert_eq!(c.name, "SINK_STREAM");
            assert!(matches!(
                c.init,
                Some(Expr::Binary {
                    op: BinOp::AddSub,
                    ..
                })
            ));
            seen = true;
        });
        assert!(seen);
    }

    #[test]
    fn use_trees_flatten() {
        let ast =
            parse("use picocube_telemetry::keys::{RADIO_TX_PACKETS, NODE_WAKES};\nuse a::b::c;\n");
        let mut uses = Vec::new();
        ast.for_each_use(&mut |u| uses.push((u.prefix.clone(), u.leaves.clone())));
        assert_eq!(uses.len(), 2);
        assert_eq!(
            uses[0].1,
            vec!["RADIO_TX_PACKETS".to_string(), "NODE_WAKES".to_string()]
        );
        assert_eq!(uses[1].1, vec!["c".to_string()]);
    }

    #[test]
    fn unknown_constructs_become_gaps_not_panics() {
        let ast = parse("fn f() { yield 3; }\n@@@\n");
        assert!(!ast.gaps.is_empty());
    }

    #[test]
    fn cfg_test_modules_mark_their_fns() {
        let ast = parse_clean(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n\
             fn lib_fn() {}\n",
        );
        let mut flags = Vec::new();
        ast.for_each_fn(&mut |f| flags.push((f.name.clone(), f.in_test)));
        assert_eq!(
            flags,
            vec![("t".to_string(), true), ("lib_fn".to_string(), false)]
        );
    }

    #[test]
    fn generics_turbofish_and_qualified_paths() {
        parse_clean(
            "fn f<T: Into<f64>>(x: T) -> Vec<f64> {\n\
             let v = Vec::<f64>::new();\n\
             let y = <u64 as Default>::default();\n\
             v.iter().copied().collect::<Vec<_>>()\n\
             }\n",
        );
    }

    #[test]
    fn impl_blocks_nest() {
        let ast = parse_clean(
            "struct S;\nimpl S {\n    pub fn m(&self) -> f64 { 1.0 }\n}\n\
             impl Default for S { fn default() -> Self { S } }\n",
        );
        let mut names = Vec::new();
        ast.for_each_fn(&mut |f| names.push(f.name.clone()));
        assert_eq!(names, ["m", "default"]);
    }
}
