//! Which lints apply to which workspace paths.
//!
//! Paths are workspace-relative with `/` separators. Only library sources
//! are scanned: `crates/*/src/**` plus the root package's `src/**`,
//! excluding the linter itself, the `xtask` runner, binary targets
//! (`src/bin/`), integration tests, benches and examples — those are
//! tooling and test surface, not the simulation.

/// The lints enabled for one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scope {
    /// L1 unit hygiene (physical crates' public API).
    pub l1: bool,
    /// L2 panic freedom (all scanned library code).
    pub l2: bool,
    /// L2's slice-indexing kind (event queue and fleet engine only).
    pub l2_index: bool,
    /// L3 determinism (simulation core, telemetry merge, fleet engine).
    pub l3: bool,
    /// L4 provenance (power, radio, storage constants).
    pub l4: bool,
    /// L5 dimensional flow (function bodies of the physical crates).
    pub l5: bool,
    /// L6 RNG-stream discipline (fact collection runs on every scanned
    /// file; the registry check itself is cross-file).
    pub l6: bool,
    /// L7 telemetry-key registry (every scanned file's emit sites).
    pub l7: bool,
}

/// Crates whose public API must use unit newtypes (L1).
const L1_CRATES: &[&str] = &["power", "harvest", "storage", "radio", "sensors"];

/// Crates whose named constants must cite the paper (L4).
const L4_CRATES: &[&str] = &["power", "radio", "storage"];

/// Crates whose function bodies get dimensional-flow inference (L5).
const L5_CRATES: &[&str] = &["harvest", "storage", "power", "sim", "core"];

/// The crate name for a `crates/<name>/src/...` path, if any.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// Computes the lint scope for a workspace-relative path; `None` when the
/// file is not scanned at all.
pub fn scope_for(path: &str) -> Option<Scope> {
    if !path.ends_with(".rs") || path.contains("/bin/") {
        return None;
    }
    if let Some(krate) = crate_of(path) {
        // The linter itself and the vendored property-test framework are
        // tooling: proptest's public API is panic-based by design.
        if krate == "lint" || krate == "proptest" {
            return None;
        }
        let in_sim = path.starts_with("crates/sim/src/");
        let in_core = path.starts_with("crates/core/src/");
        let in_telemetry = path.starts_with("crates/telemetry/src/");
        return Some(Scope {
            l1: L1_CRATES.contains(&krate),
            l2: true,
            l2_index: in_sim || in_core,
            l3: in_sim
                || in_telemetry
                || path.starts_with("crates/core/src/fleet/")
                || path == "crates/core/src/mesh.rs"
                // The decoder must translate identically on every host:
                // a nondeterministic micro-op cache would silently fork
                // the instruction-level goldens.
                || path == "crates/mcu/src/uops.rs",
            l4: L4_CRATES.contains(&krate),
            l5: L5_CRATES.contains(&krate),
            l6: true,
            l7: true,
        });
    }
    // The root package's library sources.
    if path.starts_with("src/") {
        return Some(Scope {
            l2: true,
            l6: true,
            l7: true,
            ..Scope::default()
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_crates_get_l1_and_l4() {
        let s = scope_for("crates/radio/src/channel.rs").unwrap();
        assert!(s.l1 && s.l2 && s.l4);
        assert!(!s.l2_index && !s.l3);
    }

    #[test]
    fn sim_gets_determinism_and_indexing() {
        let s = scope_for("crates/sim/src/queue.rs").unwrap();
        assert!(s.l2 && s.l2_index && s.l3);
        assert!(!s.l1 && !s.l4);
    }

    #[test]
    fn fleet_is_determinism_scoped_but_demo_is_not() {
        assert!(scope_for("crates/core/src/fleet/mod.rs").unwrap().l3);
        assert!(
            scope_for("crates/core/src/fleet/accumulator.rs")
                .unwrap()
                .l3
        );
        assert!(scope_for("crates/core/src/mesh.rs").unwrap().l3);
        let demo = scope_for("crates/core/src/demo.rs").unwrap();
        assert!(!demo.l3 && demo.l2_index);
    }

    #[test]
    fn mcu_decoder_is_determinism_scoped_but_cpu_is_not() {
        let uops = scope_for("crates/mcu/src/uops.rs").unwrap();
        assert!(uops.l3 && uops.l2);
        let cpu = scope_for("crates/mcu/src/cpu.rs").unwrap();
        assert!(!cpu.l3 && cpu.l2);
    }

    #[test]
    fn tooling_and_binaries_are_not_scanned() {
        assert_eq!(scope_for("crates/lint/src/lib.rs"), None);
        assert_eq!(scope_for("crates/bench/src/bin/exp_radio.rs"), None);
        assert_eq!(scope_for("crates/sim/tests/integration.rs"), None);
        assert_eq!(scope_for("crates/units/README.md"), None);
    }

    #[test]
    fn root_package_gets_l2_and_registry_lints_only() {
        let s = scope_for("src/lib.rs").unwrap();
        assert_eq!(
            s,
            Scope {
                l2: true,
                l6: true,
                l7: true,
                ..Scope::default()
            }
        );
    }

    #[test]
    fn physical_crates_get_dimensional_flow() {
        assert!(scope_for("crates/power/src/charge_pump.rs").unwrap().l5);
        assert!(scope_for("crates/sim/src/power.rs").unwrap().l5);
        assert!(!scope_for("crates/radio/src/channel.rs").unwrap().l5);
    }
}
