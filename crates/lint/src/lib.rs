//! Workspace invariant linter for the PicoCube simulation.
//!
//! `cargo xtask lint` runs four AST/token-level lints over every library
//! source in the workspace:
//!
//! - **L1 unit hygiene** — public functions in the physical crates must not
//!   take or return bare `f64` where a `picocube-units` quantity exists.
//! - **L2 panic freedom** — no `unwrap`/`expect`/`panic!`/slice indexing in
//!   library code of the simulation hot path; residual sites live in a
//!   shrink-only allowlist (`lint-allowlist.txt`).
//! - **L3 determinism** — no `HashMap`/`HashSet`, wall clocks or ambient
//!   RNG in the simulation core, fleet engine and telemetry merge paths.
//! - **L4 provenance** — named physical constants in power/radio/storage
//!   must cite their paper section (`§x.y`) in a doc comment.
//!
//! The workspace builds fully offline, so there is no `syn`: the crate
//! carries its own minimal lexer ([`lexer`]) and structural scanner
//! ([`source`]). Individual sites opt out with an inline
//! `picocube-lint: allow(L1)`-style marker, which applies to its own line
//! and the next.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allowlist;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scope;
pub mod source;

use allowlist::Allowlist;
use report::{Finding, Lint, Report};
use scope::scope_for;
use std::io;
use std::path::{Path, PathBuf};

/// The allowlist's location, relative to the workspace root.
pub const ALLOWLIST_PATH: &str = "lint-allowlist.txt";

/// Lints one file's contents under the scope its path implies. L2 findings
/// are returned raw (not netted against any allowlist). Files outside
/// every scope yield no findings.
pub fn lint_file_contents(rel_path: &str, src: &str) -> Vec<Finding> {
    let Some(scope) = scope_for(rel_path) else {
        return Vec::new();
    };
    let scanned = source::scan(src);
    let mut out = Vec::new();
    if scope.l1 {
        out.extend(lints::check_units(&scanned, rel_path));
    }
    if scope.l2 {
        out.extend(lints::check_panics(&scanned, rel_path, scope.l2_index));
    }
    if scope.l3 {
        out.extend(lints::check_determinism(&scanned, rel_path));
    }
    if scope.l4 {
        out.extend(lints::check_provenance(&scanned, rel_path));
    }
    out
}

/// A completed workspace run.
#[derive(Debug)]
pub struct RunOutput {
    /// The final report (L2 already netted against the allowlist).
    pub report: Report,
    /// Raw L2 findings before the allowlist, for `--update-allowlist`.
    pub raw_l2: Vec<Finding>,
}

/// Recursively collects `.rs` files under `dir`, as workspace-relative
/// paths with `/` separators, in sorted order.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Enumerates the scannable library sources of the workspace rooted at
/// `root` (every `crates/*/src` tree plus the root package's `src`).
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs_files(root, &src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs_files(root, &root_src, &mut files)?;
    }
    files.retain(|f| scope_for(f).is_some());
    Ok(files)
}

/// Runs the full lint over the workspace at `root`.
///
/// # Errors
///
/// Returns I/O errors from walking or reading sources, and surfaces a
/// malformed allowlist as a finding rather than an error so it shows up in
/// the report like any other violation.
pub fn run_workspace(root: &Path) -> io::Result<RunOutput> {
    let files = workspace_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut raw_l2 = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        for f in lint_file_contents(rel, &src) {
            if f.lint == Lint::L2 {
                raw_l2.push(f);
            } else {
                report.findings.push(f);
            }
        }
    }

    let allow_path = root.join(ALLOWLIST_PATH);
    let allow = if allow_path.is_file() {
        match Allowlist::parse(&std::fs::read_to_string(&allow_path)?) {
            Ok(a) => a,
            Err(msg) => {
                report.findings.push(Finding {
                    lint: Lint::L2,
                    file: ALLOWLIST_PATH.into(),
                    line: 0,
                    kind: "allowlist-parse".into(),
                    message: msg,
                });
                Allowlist::default()
            }
        }
    } else {
        Allowlist::default()
    };
    raw_l2.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let (kept, suppressed) = allow.apply(raw_l2.clone());
    report.findings.extend(kept);
    report.allowlisted = suppressed;
    report.sort();
    Ok(RunOutput { report, raw_l2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_scope_files_yield_nothing() {
        let findings = lint_file_contents("crates/lint/src/lib.rs", "fn f() { x.unwrap(); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn scoped_file_is_linted() {
        let findings = lint_file_contents("crates/sim/src/fake.rs", "fn f() { x.unwrap(); }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, Lint::L2);
    }

    #[test]
    fn l1_only_fires_in_physical_crates() {
        let src = "pub fn set(&mut self, rail_voltage: f64) {}";
        assert_eq!(lint_file_contents("crates/power/src/fake.rs", src).len(), 1);
        assert!(lint_file_contents("crates/sim/src/fake.rs", src).is_empty());
    }
}
