//! Workspace invariant linter for the PicoCube simulation.
//!
//! `cargo xtask lint` runs seven lints over every library source in the
//! workspace:
//!
//! - **L1 unit hygiene** — public functions in the physical crates must not
//!   take or return bare `f64` where a `picocube-units` quantity exists.
//! - **L2 panic freedom** — no `unwrap`/`expect`/`panic!`/slice indexing in
//!   library code of the simulation hot path; residual sites live in a
//!   shrink-only allowlist (`lint-allowlist.txt`).
//! - **L3 determinism** — no `HashMap`/`HashSet`, wall clocks or ambient
//!   RNG in the simulation core, fleet engine and telemetry merge paths.
//! - **L4 provenance** — named physical constants in power/radio/storage
//!   must cite their paper section (`§x.y`) in a doc comment.
//! - **L5 dimensional flow** — unit types inferred through function bodies
//!   of the physical crates must agree at every add/sub/compare, and
//!   `.0`/`into_inner` laundering must not escape into arithmetic.
//! - **L6 RNG-stream discipline** — reserved `SimRng` streams are declared
//!   once, drawn by one module, never forked or re-derived ad hoc.
//! - **L7 telemetry-key registry** — metric keys are constants from
//!   `picocube_telemetry::keys`, and golden fixtures only mention
//!   registered keys.
//!
//! The workspace builds fully offline, so there is no `syn`: the crate
//! carries its own minimal lexer ([`lexer`]), structural scanner
//! ([`source`]) and recursive-descent parser ([`parser`]) — L1–L4 run on
//! tokens, L5–L7 on the AST. Individual sites opt out with an inline
//! `picocube-lint: allow(L1)`-style marker, which applies to its own line
//! and the next. Constructs the parser cannot understand degrade into
//! structured parse gaps that surface in the report rather than hiding
//! violations silently.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allowlist;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod report;
pub mod scope;
pub mod source;

use allowlist::Allowlist;
use lints::{GoldenKeys, KeyFacts, StreamFacts};
use picocube_units::json::Json;
use report::{Finding, Lint, Report, ReportGap};
use scope::scope_for;
use std::io;
use std::path::{Path, PathBuf};

/// The allowlist's location, relative to the workspace root.
pub const ALLOWLIST_PATH: &str = "lint-allowlist.txt";

/// The golden-fixture tree scanned by the L7 drift check.
pub const GOLDEN_DIR: &str = "tests/golden";

/// One file's full analysis: findings, cross-file facts and parse gaps.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Raw findings (nothing netted against the allowlist yet).
    pub findings: Vec<Finding>,
    /// L6 facts for the workspace stream-registry check.
    pub stream_facts: Option<StreamFacts>,
    /// L7 facts for the workspace key-registry check.
    pub key_facts: Option<KeyFacts>,
    /// Constructs the parser could not understand.
    pub parse_gaps: Vec<ReportGap>,
}

/// Analyzes one file's contents under the scope its path implies. Files
/// outside every scope yield an empty analysis.
pub fn analyze_file(rel_path: &str, src: &str) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    let Some(scope) = scope_for(rel_path) else {
        return out;
    };
    let scanned = source::scan(src);
    if scope.l1 {
        out.findings.extend(lints::check_units(&scanned, rel_path));
    }
    if scope.l2 {
        out.findings
            .extend(lints::check_panics(&scanned, rel_path, scope.l2_index));
    }
    if scope.l3 {
        out.findings
            .extend(lints::check_determinism(&scanned, rel_path));
    }
    if scope.l4 {
        out.findings
            .extend(lints::check_provenance(&scanned, rel_path));
    }
    if scope.l5 || scope.l6 || scope.l7 {
        let ast = parser::parse(src);
        out.parse_gaps.extend(ast.gaps.iter().map(|g| ReportGap {
            file: rel_path.to_string(),
            line: g.line,
            context: g.context.to_string(),
            found: g.found.clone(),
        }));
        if scope.l5 {
            out.findings.extend(lints::check_dimflow(&ast, rel_path));
        }
        if scope.l6 {
            let (facts, findings) = lints::collect_streams(&ast, rel_path);
            out.findings.extend(findings);
            out.stream_facts = Some(facts);
        }
        if scope.l7 {
            let (facts, findings) = lints::collect_keys(&ast, rel_path);
            out.findings.extend(findings);
            out.key_facts = Some(facts);
        }
    }
    out
}

/// Lints one file's contents under the scope its path implies. Findings of
/// the allowlisted lints are returned raw (not netted against any
/// allowlist), and the cross-file registry checks do not run — this is the
/// per-file surface the fixture tests exercise.
pub fn lint_file_contents(rel_path: &str, src: &str) -> Vec<Finding> {
    analyze_file(rel_path, src).findings
}

/// A completed workspace run.
#[derive(Debug)]
pub struct RunOutput {
    /// The final report (allowlisted lints already netted).
    pub report: Report,
    /// Raw findings of the allowlisted lints (L2/L5/L6/L7) before the
    /// allowlist, for `--update-allowlist`.
    pub raw_allowlisted: Vec<Finding>,
}

/// Recursively collects files with `ext` under `dir`, as workspace-relative
/// paths with `/` separators, in sorted order.
fn collect_files(root: &Path, dir: &Path, ext: &str, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_files(root, &path, ext, out)?;
        } else if path.extension().is_some_and(|e| e == ext) {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Enumerates the scannable library sources of the workspace rooted at
/// `root` (every `crates/*/src` tree plus the root package's `src`).
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_files(root, &src, "rs", &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_files(root, &root_src, "rs", &mut files)?;
    }
    files.retain(|f| scope_for(f).is_some());
    Ok(files)
}

/// Collects every `metrics` object's keys from one parsed golden document.
fn metrics_keys(doc: &Json, out: &mut Vec<String>) {
    match doc {
        Json::Obj(pairs) => {
            for (key, value) in pairs {
                if key == "metrics" {
                    if let Json::Obj(metrics) = value {
                        out.extend(metrics.iter().map(|(k, _)| k.clone()));
                    }
                }
                metrics_keys(value, out);
            }
        }
        Json::Arr(items) => {
            for item in items {
                metrics_keys(item, out);
            }
        }
        _ => {}
    }
}

/// Extracts the metric keys of every golden fixture under
/// [`GOLDEN_DIR`], for the L7 drift check. Unparseable fixtures are
/// skipped here — the golden tests themselves fail on those.
pub fn golden_keys(root: &Path) -> io::Result<Vec<GoldenKeys>> {
    let dir = root.join(GOLDEN_DIR);
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut files = Vec::new();
    collect_files(root, &dir, "json", &mut files)?;
    let mut out = Vec::new();
    for rel in files {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let Ok(doc) = Json::parse(&text) else {
            continue;
        };
        let mut keys = Vec::new();
        metrics_keys(&doc, &mut keys);
        keys.sort();
        keys.dedup();
        out.push(GoldenKeys { file: rel, keys });
    }
    Ok(out)
}

/// Runs the full lint over the workspace at `root`.
///
/// # Errors
///
/// Returns I/O errors from walking or reading sources, and surfaces a
/// malformed allowlist as a finding rather than an error so it shows up in
/// the report like any other violation.
pub fn run_workspace(root: &Path) -> io::Result<RunOutput> {
    let files = workspace_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut raw = Vec::new();
    let mut stream_facts = Vec::new();
    let mut key_facts = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let analysis = analyze_file(rel, &src);
        for f in analysis.findings {
            if Lint::ALLOWLISTED.contains(&f.lint) {
                raw.push(f);
            } else {
                report.findings.push(f);
            }
        }
        report.parse_gaps.extend(analysis.parse_gaps);
        stream_facts.extend(analysis.stream_facts);
        key_facts.extend(analysis.key_facts);
    }

    // Cross-file registry checks (inline-allowed sites were already
    // filtered out during fact collection).
    raw.extend(lints::check_streams_workspace(&stream_facts));
    raw.extend(lints::check_keys_workspace(&key_facts, &golden_keys(root)?));

    let allow_path = root.join(ALLOWLIST_PATH);
    let allow = if allow_path.is_file() {
        match Allowlist::parse(&std::fs::read_to_string(&allow_path)?) {
            Ok(a) => a,
            Err(msg) => {
                report.findings.push(Finding {
                    lint: Lint::L2,
                    file: ALLOWLIST_PATH.into(),
                    line: 0,
                    kind: "allowlist-parse".into(),
                    message: msg,
                });
                Allowlist::default()
            }
        }
    } else {
        Allowlist::default()
    };
    raw.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    let (kept, suppressed) = allow.apply(raw.clone());
    report.findings.extend(kept);
    report.allowlisted = suppressed;
    report.sort();
    Ok(RunOutput {
        report,
        raw_allowlisted: raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_scope_files_yield_nothing() {
        let findings = lint_file_contents("crates/lint/src/lib.rs", "fn f() { x.unwrap(); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn scoped_file_is_linted() {
        let findings = lint_file_contents("crates/sim/src/fake.rs", "fn f() { x.unwrap(); }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, Lint::L2);
    }

    #[test]
    fn l1_only_fires_in_physical_crates() {
        let src = "pub fn set(&mut self, rail_voltage: f64) {}";
        assert_eq!(lint_file_contents("crates/power/src/fake.rs", src).len(), 1);
        assert!(lint_file_contents("crates/sim/src/fake.rs", src).is_empty());
    }

    #[test]
    fn l5_fires_in_physical_crates_only() {
        let src = "fn f(v: Volts, a: Amps) -> bool { v > a }\n";
        let findings = lint_file_contents("crates/power/src/fake.rs", src);
        assert!(findings.iter().any(|f| f.lint == Lint::L5), "{findings:?}");
        // The radio crate is L1-scoped but not L5-scoped.
        let findings = lint_file_contents("crates/radio/src/fake.rs", src);
        assert!(findings.iter().all(|f| f.lint != Lint::L5));
    }

    #[test]
    fn l6_and_l7_fire_in_any_scanned_file() {
        let src = "fn f(m: &mut Metrics, s: u64) {\n\
                       m.inc(\"ad.hoc\", 1);\n\
                       let _r = SimRng::stream(s, 3);\n\
                   }\n";
        let findings = lint_file_contents("crates/core/src/fake.rs", src);
        assert!(findings.iter().any(|f| f.lint == Lint::L6));
        assert!(findings.iter().any(|f| f.lint == Lint::L7));
    }

    #[test]
    fn analyze_reports_parse_gaps() {
        let analysis = analyze_file("crates/sim/src/fake.rs", "fn f() { let x = @!; }\n");
        assert!(!analysis.parse_gaps.is_empty());
    }

    #[test]
    fn metrics_keys_walks_nested_objects() {
        let doc = Json::parse(r#"{"outcome":{"metrics":{"a.b":1,"c.d":2}},"metrics":{"e.f":3}}"#)
            .unwrap();
        let mut keys = Vec::new();
        metrics_keys(&doc, &mut keys);
        keys.sort();
        assert_eq!(keys, ["a.b", "c.d", "e.f"]);
    }
}
