//! L3 fixture (violation): iteration-order and wall-clock nondeterminism.
//! Analyzed as text only — never compiled.

pub fn stamp(names: &[&str]) -> usize {
    let mut seen = std::collections::HashMap::new();
    for name in names {
        seen.insert(*name, std::time::Instant::now());
    }
    seen.len()
}
