//! L3 fixture (pass): deterministic collections and simulated time only.
//! Analyzed as text only — never compiled.

use std::collections::BTreeMap;

/// Counts names with a deterministically ordered map.
pub fn tally(names: &[&str]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for name in names {
        *counts.entry(name.to_string()).or_insert(0) += 1;
    }
    counts
}
