//! L1 fixture (violation): bare `f64` where quantities exist.
//! Analyzed as text only — never compiled.

/// Takes a voltage as a naked float — must be `Volts`.
pub fn set_supply(rail_voltage: f64) {
    let _ = rail_voltage;
}

/// Suffix form: `_mah` marks a battery capacity.
pub fn configure(capacity_mah: f64) {
    let _ = capacity_mah;
}

/// Returns a thickness as a naked float — must be `Millimeters`.
pub fn film_thickness_um() -> f64 {
    100.0
}
