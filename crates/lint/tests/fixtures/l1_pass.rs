//! L1 fixture (pass): a unit-hygienic public API in a physical crate.
//! Analyzed as text only — never compiled.

use picocube_units::{Amps, Volts, Watts};

/// Output power at a converter operating point: quantities in, quantity
/// out.
pub fn output_power(rail_voltage: Volts, load_current: Amps) -> Watts {
    rail_voltage * load_current
}

/// Conversion efficiency is dimensionless, so a bare float is correct.
pub fn efficiency(loss_fraction: f64) -> f64 {
    1.0 - loss_fraction
}

/// A deliberate boundary crossing, documented with the allow marker.
// picocube-lint: allow(L1) datasheet-shaped constructor takes raw millivolts
pub fn from_datasheet(ripple_mv: f64) -> Volts {
    Volts::new(ripple_mv * 1e-3)
}
