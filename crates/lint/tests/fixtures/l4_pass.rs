//! L4 fixture (pass): physical constants cite their paper section.
//! Analyzed as text only — never compiled.

/// Nominal NiMH cell voltage from the §4.4 battery discussion.
pub const NIMH_NOMINAL_V: f64 = 1.2;

/// Number of stacked boards; a count, not a physical quantity.
pub const BOARD_COUNT: usize = 4;
