//! L5 pass fixture: dimensionally consistent arithmetic. Unit algebra
//! (V·A·s = J), same-unit sums/compares, and scalar offsets are all fine.

fn energy_budget(p: Watts, t: Seconds) -> Joules {
    p * t
}

fn total(a: Joules, b: Joules) -> Joules {
    a + b
}

fn rate(e: Joules, t: Seconds) -> Watts {
    e / t
}

fn headroom(stored: Joules, cost: Joules) -> bool {
    stored.value() > cost.value()
}

fn biased(e: Joules) -> f64 {
    e.micro() + 1.0
}

fn integral(v: Volts, i: Amps, t: Seconds) -> f64 {
    let e = v * i * t;
    e.value() + Joules::ZERO.value()
}
