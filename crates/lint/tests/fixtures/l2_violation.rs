//! L2 fixture (violation): one of every panic-site kind the lint knows.
//! Analyzed as text only — never compiled.

pub fn first(values: &[u64]) -> u64 {
    values.first().copied().unwrap()
}

pub fn second(values: &[u64]) -> u64 {
    values.get(1).copied().expect("at least two values")
}

pub fn third(values: &[u64]) -> u64 {
    values[2]
}

pub fn classify(code: u8) -> &'static str {
    match code {
        0 => "idle",
        1 => "active",
        2 => panic!("reserved state"),
        3 => unreachable!("masked off by the caller"),
        _ => todo!("remaining states"),
    }
}
