//! L7 violation fixture: an inline key string at an emit site, and a
//! constant minted outside the registry module.

const LOCAL_KEY: &str = "fixture.local";

fn export(m: &mut Metrics) {
    m.inc("fixture.inline", 1);
    m.inc(LOCAL_KEY, 1);
}
