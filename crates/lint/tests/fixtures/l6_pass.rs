//! L6 pass fixture: a stream id declared as a named constant and drawn
//! through `SimRng::stream` — the registry discipline the lint enforces.

const FIXTURE_STREAM: u64 = 11;

fn spawn(seed: u64) -> SimRng {
    SimRng::stream(seed, FIXTURE_STREAM)
}
