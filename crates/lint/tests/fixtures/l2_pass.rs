//! L2 fixture (pass): panic-free library code — typed errors and checked
//! access. Analyzed as text only — never compiled.

/// The head element, if any: checked access instead of `values[0]`.
pub fn head(values: &[u64]) -> Option<u64> {
    values.first().copied()
}

/// Reports degenerate input through the type system instead of panicking.
pub fn mean(sum: f64, count: u64) -> Result<f64, &'static str> {
    if count == 0 {
        return Err("empty sample");
    }
    Ok(sum / count as f64)
}

/// A documented residual site, suppressed by the inline marker.
pub fn initial(name: &str) -> char {
    // picocube-lint: allow(L2) caller guarantees non-empty names
    name.chars().next().expect("non-empty name")
}
