//! L4 fixture (violation): an uncited physical constant.
//! Analyzed as text only — never compiled.

/// Nominal cell voltage.
pub const CELL_NOMINAL_V: f64 = 1.2;
