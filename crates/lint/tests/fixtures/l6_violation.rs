//! L6 violation fixture: every way to break stream discipline — magic
//! stream numbers, arithmetic index derivation outside the fleet engine,
//! forking outside the RNG home, and golden-ratio seed mixing by hand.

fn literal(seed: u64) -> SimRng {
    SimRng::stream(seed, 3)
}

fn derived(seed: u64, i: u64) -> u64 {
    SimRng::stream_seed(seed, 2 * i)
}

fn forked(rng: &mut SimRng) -> SimRng {
    rng.fork()
}

fn remixed(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
