//! L5 violation fixture: mixed-unit arithmetic and raw-`f64` laundering.

fn mixed_add(e: Joules, p: Watts) -> f64 {
    e.value() + p.value()
}

fn mixed_compare(v: Volts, t: Seconds) -> bool {
    v.value() < t.value()
}

fn laundered(e: Joules) -> f64 {
    e.into_inner() * 2.0
}
