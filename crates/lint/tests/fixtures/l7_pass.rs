//! L7 pass fixture: metric keys come from the `picocube_telemetry::keys`
//! registry, either as constants or as its wildcard helper fns.

use picocube_telemetry::keys;

fn export(m: &mut Metrics, rail: &str) {
    m.inc(keys::MESH_OFFERED, 1);
    m.add(&keys::power_rail_uj(rail), 2.0);
}
