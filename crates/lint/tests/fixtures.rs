//! Fixture-driven end-to-end tests: every lint has a passing and a failing
//! fixture under `tests/fixtures/`, analyzed as text under a virtual
//! workspace path (the fixtures are never compiled). The JSON snapshot
//! pins the report schema; regenerate it with
//! `UPDATE_SNAPSHOT=1 cargo test -p picocube-lint --test fixtures`.

use picocube_lint::lint_file_contents;
use picocube_lint::report::{Finding, Lint, Report};

/// Lints a fixture under a virtual path, keeping only one lint's findings
/// (the path's scope may enable several).
fn lint_fixture(lint: Lint, virtual_path: &str, src: &str) -> Vec<Finding> {
    lint_file_contents(virtual_path, src)
        .into_iter()
        .filter(|f| f.lint == lint)
        .collect()
}

#[test]
fn l1_pass_fixture_is_clean() {
    let f = lint_fixture(
        Lint::L1,
        "crates/power/src/fixture.rs",
        include_str!("fixtures/l1_pass.rs"),
    );
    assert!(f.is_empty(), "unexpected L1 findings: {f:?}");
}

#[test]
fn l1_violation_fixture_is_caught() {
    let f = lint_fixture(
        Lint::L1,
        "crates/power/src/fixture.rs",
        include_str!("fixtures/l1_violation.rs"),
    );
    let kinds: Vec<&str> = f.iter().map(|f| f.kind.as_str()).collect();
    assert_eq!(kinds, ["param", "param", "return"], "{f:?}");
}

#[test]
fn l2_pass_fixture_is_clean() {
    let f = lint_fixture(
        Lint::L2,
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/l2_pass.rs"),
    );
    assert!(f.is_empty(), "unexpected L2 findings: {f:?}");
}

#[test]
fn l2_violation_fixture_catches_every_site_kind() {
    let f = lint_fixture(
        Lint::L2,
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/l2_violation.rs"),
    );
    let mut kinds: Vec<&str> = f.iter().map(|f| f.kind.as_str()).collect();
    kinds.sort_unstable();
    assert_eq!(
        kinds,
        ["expect", "index", "panic", "todo", "unreachable", "unwrap"],
        "{f:?}"
    );
}

#[test]
fn l2_indexing_is_not_flagged_outside_the_hot_path() {
    // The same violation fixture under a physical crate: indexing is out of
    // scope there, the other five kinds still fire.
    let f = lint_fixture(
        Lint::L2,
        "crates/power/src/fixture.rs",
        include_str!("fixtures/l2_violation.rs"),
    );
    assert_eq!(f.len(), 5, "{f:?}");
    assert!(f.iter().all(|f| f.kind != "index"));
}

#[test]
fn l3_pass_fixture_is_clean() {
    let f = lint_fixture(
        Lint::L3,
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/l3_pass.rs"),
    );
    assert!(f.is_empty(), "unexpected L3 findings: {f:?}");
}

#[test]
fn l3_violation_fixture_is_caught() {
    let f = lint_fixture(
        Lint::L3,
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/l3_violation.rs"),
    );
    let names: Vec<bool> = f.iter().map(|f| f.message.contains("HashMap")).collect();
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(names.contains(&true), "HashMap not reported: {f:?}");
}

#[test]
fn l3_is_out_of_scope_outside_the_deterministic_core() {
    let f = lint_fixture(
        Lint::L3,
        "crates/power/src/fixture.rs",
        include_str!("fixtures/l3_violation.rs"),
    );
    assert!(f.is_empty(), "L3 fired outside its scope: {f:?}");
}

#[test]
fn l4_pass_fixture_is_clean() {
    let f = lint_fixture(
        Lint::L4,
        "crates/storage/src/fixture.rs",
        include_str!("fixtures/l4_pass.rs"),
    );
    assert!(f.is_empty(), "unexpected L4 findings: {f:?}");
}

#[test]
fn l4_violation_fixture_is_caught() {
    let f = lint_fixture(
        Lint::L4,
        "crates/storage/src/fixture.rs",
        include_str!("fixtures/l4_violation.rs"),
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].kind, "const");
    assert!(f[0].message.contains("CELL_NOMINAL_V"));
}

#[test]
fn l5_pass_fixture_is_clean() {
    let f = lint_fixture(
        Lint::L5,
        "crates/power/src/fixture.rs",
        include_str!("fixtures/l5_pass.rs"),
    );
    assert!(f.is_empty(), "unexpected L5 findings: {f:?}");
}

#[test]
fn l5_violation_fixture_is_caught() {
    let f = lint_fixture(
        Lint::L5,
        "crates/power/src/fixture.rs",
        include_str!("fixtures/l5_violation.rs"),
    );
    let mut kinds: Vec<&str> = f.iter().map(|f| f.kind.as_str()).collect();
    kinds.sort_unstable();
    assert_eq!(kinds, ["launder", "mixed-units", "mixed-units"], "{f:?}");
}

#[test]
fn l5_is_out_of_scope_outside_physical_crates() {
    let f = lint_fixture(
        Lint::L5,
        "crates/radio/src/fixture.rs",
        include_str!("fixtures/l5_violation.rs"),
    );
    assert!(f.is_empty(), "L5 fired outside its scope: {f:?}");
}

#[test]
fn l6_pass_fixture_is_clean() {
    let f = lint_fixture(
        Lint::L6,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/l6_pass.rs"),
    );
    assert!(f.is_empty(), "unexpected L6 findings: {f:?}");
}

#[test]
fn l6_violation_fixture_catches_every_discipline_breach() {
    let f = lint_fixture(
        Lint::L6,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/l6_violation.rs"),
    );
    let kinds: Vec<&str> = f.iter().map(|f| f.kind.as_str()).collect();
    assert_eq!(
        kinds,
        [
            "literal-stream",
            "derived-stream",
            "fork",
            "adhoc-derivation"
        ],
        "{f:?}"
    );
}

#[test]
fn l6_homes_are_exempt_from_their_own_rules() {
    // The RNG home may mix seeds; the fleet engine may derive stream
    // indices arithmetically.
    let f = lint_fixture(
        Lint::L6,
        "crates/sim/src/rng.rs",
        "fn mix(s: u64) -> u64 { s.wrapping_add(0x9E37_79B9_7F4A_7C15) }\n",
    );
    assert!(f.is_empty(), "{f:?}");
    let f = lint_fixture(
        Lint::L6,
        "crates/core/src/fleet/mod.rs",
        "fn node_stream(master: u64, node: usize) -> u64 {\n\
             SimRng::stream_seed(master, 2 * node as u64)\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn l7_pass_fixture_is_clean() {
    let f = lint_fixture(
        Lint::L7,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/l7_pass.rs"),
    );
    assert!(f.is_empty(), "unexpected L7 findings: {f:?}");
}

#[test]
fn l7_violation_fixture_is_caught() {
    let f = lint_fixture(
        Lint::L7,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/l7_violation.rs"),
    );
    let kinds: Vec<&str> = f.iter().map(|f| f.kind.as_str()).collect();
    assert_eq!(kinds, ["inline-key", "unregistered-key"], "{f:?}");
}

/// All violation fixtures rolled into one report, serialized and compared
/// against the checked-in snapshot — any schema or message drift shows up
/// as a diff here.
#[test]
fn violation_report_json_snapshot() {
    let mut report = Report::default();
    for (path, src) in [
        (
            "crates/power/src/l1_violation.rs",
            include_str!("fixtures/l1_violation.rs"),
        ),
        (
            "crates/sim/src/l2_violation.rs",
            include_str!("fixtures/l2_violation.rs"),
        ),
        (
            "crates/sim/src/l3_violation.rs",
            include_str!("fixtures/l3_violation.rs"),
        ),
        (
            "crates/storage/src/l4_violation.rs",
            include_str!("fixtures/l4_violation.rs"),
        ),
        (
            "crates/power/src/l5_violation.rs",
            include_str!("fixtures/l5_violation.rs"),
        ),
        (
            "crates/core/src/l6_violation.rs",
            include_str!("fixtures/l6_violation.rs"),
        ),
        (
            "crates/core/src/l7_violation.rs",
            include_str!("fixtures/l7_violation.rs"),
        ),
    ] {
        report.findings.extend(lint_file_contents(path, src));
    }
    report.files_scanned = 7;
    report.sort();
    let actual = report.to_json().to_string();

    let snapshot_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/report.snapshot.json"
    );
    if std::env::var_os("UPDATE_SNAPSHOT").is_some() {
        std::fs::write(snapshot_path, format!("{actual}\n")).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(snapshot_path)
        .expect("missing report.snapshot.json — run with UPDATE_SNAPSHOT=1 to create it");
    assert_eq!(
        actual,
        expected.trim_end(),
        "snapshot drift — rerun with UPDATE_SNAPSHOT=1 and review the diff"
    );
}
