//! Parser totality over the real workspace: every checked-in library
//! source must parse without panicking, and with zero parse gaps — the
//! syntactic lints only see what the parser understands, so a gap in real
//! code is silent lint blindness. A deliberate gap fixture keeps the
//! structured-gap path honest.

use picocube_lint::parser::parse;
use picocube_lint::workspace_files;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn every_workspace_source_parses_without_gaps() {
    let root = workspace_root();
    let files = workspace_files(root).expect("walk workspace");
    assert!(
        files.len() > 20,
        "workspace walk found only {} files",
        files.len()
    );
    let mut gaps = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).expect("read source");
        let ast = parse(&src);
        for gap in &ast.gaps {
            gaps.push(format!(
                "{rel}:{} expected {} found {}",
                gap.line, gap.context, gap.found
            ));
        }
    }
    assert!(
        gaps.is_empty(),
        "parser gaps over checked-in sources:\n  {}",
        gaps.join("\n  ")
    );
}

#[test]
fn unparseable_input_yields_structured_gaps_not_panics() {
    // Garbage at item position: recovered as a gap, parsing continues.
    let ast = parse("@@@!\npub fn ok() {}\n");
    assert!(!ast.gaps.is_empty());
    assert_eq!(ast.items.len(), 1);
}
