//! Property-based tests for the MCU toolchain and core: random programs
//! round-trip through assembler and disassembler, and the ALU agrees with
//! an arithmetic oracle.

use picocube_mcu::{asm, disasm, FlatMemory, Mcu, StepResult};
use proptest::prelude::*;

/// Strategy for one random (valid) instruction in assembler syntax, using
/// only encodings the disassembler renders canonically.
fn instruction() -> impl Strategy<Value = String> {
    let reg = (4u8..=15).prop_map(|r| format!("r{r}"));
    let src = prop_oneof![
        reg.clone(),
        (4u8..=15).prop_map(|r| format!("@r{r}")),
        (4u8..=15).prop_map(|r| format!("@r{r}+")),
        (0x0200u16..0x0400).prop_map(|a| format!("&{a:#06x}")),
        // Immediates outside the constant-generator set keep one canonical
        // encoding (the CG values also round-trip, tested separately).
        (0x0010u16..0xFFF0)
            .prop_filter("non-cg", |v| ![0, 1, 2, 4, 8, 0xFFFF].contains(v))
            .prop_map(|v| format!("#{v:#06x}")),
        ((2u16..200), (4u8..=15)).prop_map(|(x, r)| format!("{:#06x}(r{})", x * 2, r)),
    ];
    let dst = prop_oneof![
        reg,
        (0x0200u16..0x0400).prop_map(|a| format!("&{a:#06x}")),
        ((2u16..200), (4u8..=15)).prop_map(|(x, r)| format!("{:#06x}(r{})", x * 2, r)),
    ];
    let two_op = prop_oneof![
        Just("mov"),
        Just("add"),
        Just("addc"),
        Just("sub"),
        Just("subc"),
        Just("cmp"),
        Just("bit"),
        Just("bic"),
        Just("bis"),
        Just("xor"),
        Just("and"),
    ];
    let one_op = prop_oneof![Just("rrc"), Just("rra"), Just("swpb"), Just("push")];
    prop_oneof![
        (two_op, prop::bool::ANY, src.clone(), dst).prop_map(|(m, byte, s, d)| {
            let suffix = if byte { ".b" } else { "" };
            format!("{m}{suffix} {s}, {d}")
        }),
        (one_op, src).prop_map(|(m, s)| format!("{m} {s}")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_round_trip_through_the_toolchain(
        instructions in prop::collection::vec(instruction(), 1..40)
    ) {
        let mut src = String::from(".org 0xF000\n");
        for i in &instructions {
            src.push_str(i);
            src.push('\n');
        }
        let image = asm::assemble(&src).expect("generated program assembles");
        let code = image.segments().iter().find(|(org, _)| *org == 0xF000).unwrap();
        let mut mem = FlatMemory::new();
        mem.load(&image);
        let (listing, err) = disasm::disassemble_range(&mem, 0xF000, code.1.len() as u16);
        prop_assert!(err.is_none(), "disassembly failed: {err:?}");
        let rebuilt = asm::assemble(&disasm::to_source(&listing)).expect("listing reassembles");
        let rebuilt_code = rebuilt.segments().iter().find(|(org, _)| *org == 0xF000).unwrap();
        prop_assert_eq!(&rebuilt_code.1, &code.1, "round trip must be bit exact");
    }

    #[test]
    fn alu_add_matches_oracle(a in any::<u16>(), b in any::<u16>()) {
        let src = format!(
            ".org 0xF000\nstart: mov #{a:#06x}, r4\nadd #{b:#06x}, r4\nhalt: jmp halt\n.vector reset, start\n"
        );
        let image = asm::assemble(&src).unwrap();
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        for _ in 0..2 {
            let ran = matches!(mcu.step(), StepResult::Ran { .. });
            prop_assert!(ran);
        }
        prop_assert_eq!(mcu.register(4), a.wrapping_add(b));
        // Carry flag mirrors the 17th bit.
        let carry = (u32::from(a) + u32::from(b)) > 0xFFFF;
        prop_assert_eq!(mcu.register(2) & 1 != 0, carry);
        // Zero flag mirrors the result.
        prop_assert_eq!(mcu.register(2) & 2 != 0, a.wrapping_add(b) == 0);
    }

    #[test]
    fn alu_sub_and_cmp_agree(a in any::<u16>(), b in any::<u16>()) {
        // CMP must set the same flags SUB does, without writing the result.
        let src_sub = format!(
            ".org 0xF000\nstart: mov #{a:#06x}, r4\nsub #{b:#06x}, r4\nhalt: jmp halt\n.vector reset, start\n"
        );
        let src_cmp = format!(
            ".org 0xF000\nstart: mov #{a:#06x}, r4\ncmp #{b:#06x}, r4\nhalt: jmp halt\n.vector reset, start\n"
        );
        let run = |src: &str| {
            let image = asm::assemble(src).unwrap();
            let mut mcu = Mcu::new();
            mcu.load(&image);
            mcu.reset();
            for _ in 0..2 {
                assert!(matches!(mcu.step(), StepResult::Ran { .. }));
            }
            (mcu.register(4), mcu.register(2))
        };
        let (sub_result, sub_flags) = run(&src_sub);
        let (cmp_result, cmp_flags) = run(&src_cmp);
        prop_assert_eq!(sub_result, a.wrapping_sub(b));
        prop_assert_eq!(cmp_result, a, "cmp must not write back");
        prop_assert_eq!(sub_flags & 0x0107, cmp_flags & 0x0107, "C/Z/N/V must agree");
    }

    #[test]
    fn logic_ops_match_oracle(a in any::<u16>(), b in any::<u16>()) {
        for (mn, expect) in [("bis", a | b), ("bic", a & !b), ("xor", a ^ b), ("and", a & b)] {
            let src = format!(
                ".org 0xF000\nstart: mov #{a:#06x}, r4\n{mn} #{b:#06x}, r4\nhalt: jmp halt\n.vector reset, start\n"
            );
            let image = asm::assemble(&src).unwrap();
            let mut mcu = Mcu::new();
            mcu.load(&image);
            mcu.reset();
            for _ in 0..2 {
                let ran = matches!(mcu.step(), StepResult::Ran { .. });
            prop_assert!(ran);
            }
            prop_assert_eq!(mcu.register(4), expect, "{} failed", mn);
        }
    }

    #[test]
    fn swpb_sxt_push_pop_oracle(v in any::<u16>()) {
        let src = format!(
            ".org 0xF000\nstart: mov #0x0A00, sp\nmov #{v:#06x}, r4\npush r4\nswpb r4\npop r5\nhalt: jmp halt\n.vector reset, start\n"
        );
        let image = asm::assemble(&src).unwrap();
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        for _ in 0..5 {
            let ran = matches!(mcu.step(), StepResult::Ran { .. });
            prop_assert!(ran);
        }
        prop_assert_eq!(mcu.register(4), v.rotate_left(8));
        prop_assert_eq!(mcu.register(5), v, "push/pop must round trip");
    }

    #[test]
    fn memory_word_round_trip_through_cpu(addr in (0x0200u16..0x03FE), v in any::<u16>()) {
        let addr = addr & !1;
        let src = format!(
            ".org 0xF000\nstart: mov #{v:#06x}, &{addr:#06x}\nmov &{addr:#06x}, r5\nhalt: jmp halt\n.vector reset, start\n"
        );
        let image = asm::assemble(&src).unwrap();
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        for _ in 0..2 {
            let ran = matches!(mcu.step(), StepResult::Ran { .. });
            prop_assert!(ran);
        }
        prop_assert_eq!(mcu.register(5), v);
        prop_assert_eq!(mcu.read_mem16(addr), v);
    }
}
