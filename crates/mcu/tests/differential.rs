//! Differential suite: the pre-decoded translation cache vs the
//! interpreter, in lockstep.
//!
//! Two cores load the same image; one runs through the micro-op cache, the
//! other with translation disabled. After every step the full architectural
//! state must agree: all sixteen registers, the cycle counter, the step
//! result (including fault latching and sleep reporting), and — at
//! checkpoints and at the end — every byte of the address space. Stimuli
//! (interrupts, pin edges, SPI slaves, sleep fast-forwards) are mirrored.
//!
//! Coverage comes from three directions: every checked-in firmware image,
//! proptest-generated instruction soups over all addressing modes (via the
//! in-tree assembler), and directed edge cases (self-modifying code, odd
//! PCs, undecodable words, interrupt storms).

use picocube_mcu::firmware;
use picocube_mcu::{asm, Image, Irq, Mcu, SegmentStop, StepResult};
use proptest::prelude::*;

/// A decoded/interpreter pair over one image.
struct Pair {
    dec: Mcu,
    int: Mcu,
}

impl Pair {
    fn boot(image: &Image) -> Self {
        let mut dec = Mcu::new();
        dec.load(image);
        dec.reset();
        let mut int = Mcu::new();
        int.load(image);
        int.reset();
        int.set_translation(false);
        Self { dec, int }
    }

    fn attach_echo_spi(&mut self) {
        self.dec.attach_spi(Box::new(|mosi: u8| mosi ^ 0xA5));
        self.int.attach_spi(Box::new(|mosi: u8| mosi ^ 0xA5));
    }

    /// Applies one mirrored stimulus to both cores.
    fn both(&mut self, f: impl Fn(&mut Mcu)) {
        f(&mut self.dec);
        f(&mut self.int);
    }

    fn assert_registers(&self, step: usize) {
        for r in 0..16 {
            assert_eq!(
                self.dec.register(r),
                self.int.register(r),
                "step {step}: r{r} diverged"
            );
        }
        assert_eq!(
            self.dec.cycles(),
            self.int.cycles(),
            "step {step}: cycle counters diverged"
        );
        assert_eq!(
            self.dec.mode(),
            self.int.mode(),
            "step {step}: operating mode diverged"
        );
    }

    fn assert_memory(&self, context: &str) {
        for addr in 0..=0xFFFFu16 {
            let (a, b) = (self.dec.read_mem8(addr), self.int.read_mem8(addr));
            assert_eq!(a, b, "{context}: memory diverged at {addr:#06x}");
        }
    }

    /// Steps both cores once and checks full lockstep agreement.
    fn step(&mut self, step: usize) -> StepResult {
        let a = self.dec.step();
        let b = self.int.step();
        assert_eq!(a, b, "step {step}: step results diverged");
        self.assert_registers(step);
        a
    }

    /// Fast-forwards a sleeping pair identically.
    fn sleep(&mut self, cycles: u64, step: usize) {
        let a = self.dec.sleep(cycles);
        let b = self.int.sleep(cycles);
        assert_eq!(a, b, "step {step}: slept cycle counts diverged");
        self.assert_registers(step);
    }
}

/// Drives a pair for `steps` steps with periodic pin pulses so firmware
/// that parks in an LPM keeps waking up and exercising its burst path.
fn drive_firmware(pair: &mut Pair, steps: usize) {
    let mut faulted = false;
    for i in 0..steps {
        match pair.step(i) {
            StepResult::Ran { .. } => {}
            StepResult::Sleeping(_) => {
                pair.sleep(997, i);
                if i % 5 == 0 {
                    // The board's latched wake line: a P1.0 pulse.
                    pair.both(|m| {
                        m.drive_p1(0, false);
                        m.drive_p1(0, true);
                    });
                }
                if i % 11 == 0 {
                    pair.both(|m| {
                        m.drive_p2(1, false);
                        m.drive_p2(1, true);
                    });
                }
            }
            StepResult::IllegalInstruction { .. } => {
                faulted = true;
                break;
            }
        }
        if i % 64 == 0 {
            pair.both(|m| {
                m.drive_p1(0, false);
            });
        }
    }
    assert!(!faulted, "stock firmware must not fault");
    pair.assert_memory("after drive");
}

#[test]
fn stock_firmware_images_run_in_lockstep() {
    let images: Vec<(&str, Image)> = vec![
        ("tpms", firmware::tpms_app(0x42).expect("tpms builds")),
        (
            "tpms_alarm",
            firmware::tpms_alarm_app(0x17, 0x0123).expect("alarm builds"),
        ),
        ("motion", firmware::motion_app(7).expect("motion builds")),
        ("beacon", firmware::beacon_app(3, 2).expect("beacon builds")),
    ];
    for (name, image) in &images {
        let mut pair = Pair::boot(image);
        pair.attach_echo_spi();
        drive_firmware(&mut pair, 20_000);
        assert!(
            pair.dec.cycles() > 10_000,
            "{name}: the pair should have made real progress"
        );
    }
}

#[test]
fn run_streams_blocks_bit_identically() {
    // Mcu::run takes the block-streaming fast path; chunked budgets must
    // leave both cores at identical stopping points.
    let image = firmware::tpms_app(0x42).expect("tpms builds");
    let mut pair = Pair::boot(&image);
    pair.attach_echo_spi();
    for chunk in 0..400 {
        let a = pair.dec.run(1_337);
        let b = pair.int.run(1_337);
        assert_eq!(a, b, "chunk {chunk}: run() consumed different cycles");
        pair.assert_registers(chunk);
        if a == 0 {
            // Parked: wake both through the pin-change path.
            pair.sleep(1_009, chunk);
            pair.both(|m| {
                m.drive_p1(0, false);
                m.drive_p1(0, true);
            });
        }
    }
    pair.assert_memory("after chunked runs");
}

#[test]
fn self_modifying_code_falls_back_identically() {
    // The program overwrites an instruction it then executes: the decoded
    // core must notice the write into cached flash and drop back to the
    // interpreter, landing on the same result.
    let image = asm::assemble(
        r#"
        .org 0xF000
start:  mov #0x0A00, r1
        mov #0x1111, r4
        mov #0x2222, r5
        mov #0x4506, &patch   ; overwrite "mov r4, r6" with "mov r5, r6"
patch:  mov r4, r6
halt:   jmp halt
        .vector reset, start
        "#,
    )
    .expect("smc program assembles");
    let mut pair = Pair::boot(&image);
    for i in 0..8 {
        pair.step(i);
    }
    assert_eq!(
        pair.dec.register(6),
        0x2222,
        "the patched instruction must execute, not the stale decode"
    );
    pair.assert_memory("after smc");
}

#[test]
fn undecodable_words_fault_in_lockstep() {
    let image = asm::assemble(
        r#"
        .org 0xF000
start:  mov #0x0A00, r1
        mov #3, r4
        .word 0x0000          ; opcode 0: undecodable
        .vector reset, start
        "#,
    )
    .expect("fault program assembles");
    let mut pair = Pair::boot(&image);
    pair.step(0);
    pair.step(1);
    let r = pair.step(2);
    assert!(
        matches!(r, StepResult::IllegalInstruction { word: 0, .. }),
        "both cores must latch the fault"
    );
    // The fault sticks on both.
    let r = pair.step(3);
    assert!(matches!(r, StepResult::IllegalInstruction { .. }));
    pair.assert_memory("after fault");
}

#[test]
fn odd_pc_executes_identically() {
    let image = asm::assemble(
        r#"
        .org 0xF000
start:  mov #0x0A00, r1
        mov #0x1234, r4
halt:   jmp halt
        .vector reset, start
        "#,
    )
    .expect("odd-pc program assembles");
    let mut pair = Pair::boot(&image);
    pair.step(0);
    // Force an odd PC: the hardware masks the low bit on fetch but keeps
    // the odd increment; both paths must model it the same way.
    pair.both(|m| m.set_register(0, 0xF005));
    for i in 1..6 {
        pair.step(i);
    }
    pair.assert_memory("after odd pc");
}

#[test]
fn interrupt_storm_dispatches_identically() {
    let image = asm::assemble(
        r#"
        .org 0xF000
start:  mov #0x0A00, r1
        eint
loop:   add #1, r4
        jmp loop
tisr:   add #0x10, r5
        reti
sisr:   add #0x10, r6
        reti
p1isr:  add #0x10, r7
        reti
p2isr:  add #0x10, r8
        reti
        .vector reset, start
        .vector timera, tisr
        .vector spi, sisr
        .vector port1, p1isr
        .vector port2, p2isr
        "#,
    )
    .expect("storm program assembles");
    let mut pair = Pair::boot(&image);
    let schedule = [
        (3usize, Irq::Port2),
        (4, Irq::TimerA),
        (4, Irq::Spi),
        (9, Irq::Port1),
        (9, Irq::Port2),
        (9, Irq::TimerA),
        (23, Irq::Spi),
        (24, Irq::Spi),
    ];
    for i in 0..600 {
        for (at, irq) in &schedule {
            if *at == i % 40 {
                pair.both(|m| m.raise(*irq));
            }
        }
        pair.step(i);
    }
    pair.assert_memory("after storm");
}

/// Reference implementation of the [`Mcu::run_segment`] contract written
/// purely against the public single-step API: step until the budget is
/// exhausted, an observable (GPIO outputs, SPI activity, operating mode)
/// changes, or the core reports sleep/fault. `run_segment` documents
/// itself as exactly this loop — here the claim is checked.
fn reference_segment(
    m: &mut Mcu,
    limit_cycles: u64,
    max_insns: usize,
    deltas: &mut Vec<u32>,
) -> SegmentStop {
    let obs = |m: &Mcu| (m.p1_output(), m.p2_output(), m.spi_busy(), m.mode());
    let base = obs(m);
    loop {
        if m.cycles() >= limit_cycles || deltas.len() >= max_insns {
            return SegmentStop::Budget;
        }
        match m.step() {
            StepResult::Ran { cycles } => {
                deltas.push(cycles);
                if obs(m) != base {
                    return SegmentStop::Observable;
                }
            }
            StepResult::Sleeping(mode) => return SegmentStop::Sleeping(mode),
            StepResult::IllegalInstruction { word, at } => return SegmentStop::Fault { word, at },
        }
    }
}

#[test]
fn run_segment_matches_single_stepping() {
    // The decoded core runs whole segments (block streaming plus the fused
    // SPI spin); the interpreter core single-steps through the reference
    // loop above. Ragged cycle/instruction budgets force segment splits at
    // awkward points — including mid-spin — and every stop reason, delta
    // list, register file, and memory image must agree.
    let images: Vec<(&str, Image)> = vec![
        ("tpms", firmware::tpms_app(0x42).expect("tpms builds")),
        ("beacon", firmware::beacon_app(3, 2).expect("beacon builds")),
        ("motion", firmware::motion_app(7).expect("motion builds")),
    ];
    for (name, image) in &images {
        let mut pair = Pair::boot(image);
        pair.attach_echo_spi();
        let (mut da, mut db) = (Vec::new(), Vec::new());
        for seg in 0..4_000usize {
            let limit = pair.dec.cycles() + 23 + (seg % 977) as u64;
            let max_insns = 1 + seg % 63;
            da.clear();
            db.clear();
            let a = pair.dec.run_segment(limit, max_insns, &mut da);
            let b = reference_segment(&mut pair.int, limit, max_insns, &mut db);
            assert_eq!(a, b, "{name} segment {seg}: stop reasons diverged");
            assert_eq!(da, db, "{name} segment {seg}: cycle deltas diverged");
            pair.assert_registers(seg);
            if let SegmentStop::Sleeping(_) = a {
                pair.sleep(997, seg);
                if seg % 5 == 0 {
                    pair.both(|m| {
                        m.drive_p1(0, false);
                        m.drive_p1(0, true);
                    });
                }
                if seg % 11 == 0 {
                    pair.both(|m| {
                        m.drive_p2(1, false);
                        m.drive_p2(1, true);
                    });
                }
            }
            if seg % 64 == 0 {
                pair.both(|m| m.drive_p1(0, false));
            }
        }
        pair.assert_memory("after segments");
    }
}

/// Strategy for one random instruction covering every addressing-mode
/// family. Pointer-shaped operands use r8–r10, which the preamble aims at
/// scratch RAM; wilder values flow through immediates and the ALU.
fn soup_instruction() -> impl Strategy<Value = String> {
    let data_reg = (4u8..=15).prop_map(|r| format!("r{r}"));
    let ptr_reg = (8u8..=10).prop_map(|r| format!("r{r}"));
    let src = prop_oneof![
        data_reg.clone(),
        ptr_reg.clone().prop_map(|r| format!("@{r}")),
        ptr_reg.clone().prop_map(|r| format!("@{r}+")),
        (0x0300u16..0x03F0).prop_map(|a| format!("&{a:#06x}")),
        (0u16..0xFFFF).prop_map(|v| format!("#{v:#06x}")),
        // The constant-generator immediates get their own arm so they are
        // always exercised (folded constants in the decoded path).
        prop_oneof![
            Just("#0".to_string()),
            Just("#1".to_string()),
            Just("#2".to_string()),
            Just("#4".to_string()),
            Just("#8".to_string()),
            Just("#-1".to_string()),
        ],
        ((0u16..0x40), ptr_reg.clone()).prop_map(|(x, r)| format!("{:#06x}({})", x * 2, r)),
    ];
    let dst = prop_oneof![
        data_reg.clone(),
        data_reg,
        (0x0300u16..0x03F0).prop_map(|a| format!("&{a:#06x}")),
        ((0u16..0x40), ptr_reg).prop_map(|(x, r)| format!("{:#06x}({})", x * 2, r)),
        // Rare-ish: status-register destination (flag scramble, block end).
        Just("sr".to_string()),
    ];
    let two_op = prop_oneof![
        Just("mov"),
        Just("add"),
        Just("addc"),
        Just("sub"),
        Just("subc"),
        Just("cmp"),
        Just("dadd"),
        Just("bit"),
        Just("bic"),
        Just("bis"),
        Just("xor"),
        Just("and"),
    ];
    let one_op = prop_oneof![
        Just("rrc"),
        Just("rra"),
        Just("swpb"),
        Just("sxt"),
        Just("push"),
    ];
    let fmt1 = (two_op, prop::bool::ANY, src.clone(), dst).prop_map(|(m, byte, s, d)| {
        let suffix = if byte && m != "dadd" { ".b" } else { "" };
        format!("{m}{suffix} {s}, {d}")
    });
    let fmt2 = (one_op, src).prop_map(|(m, s)| format!("{m} {s}"));
    prop_oneof![fmt1, fmt2]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_programs_run_in_lockstep(
        instructions in prop::collection::vec(soup_instruction(), 1..48),
        seeds in prop::collection::vec(0u16..0xFFFF, 4..5),
        jump_every in 3usize..9,
        irq_at in 5usize..180,
    ) {
        // Preamble: stack, seeded data registers, pointer registers aimed
        // at scratch RAM, interrupts enabled with all vectors populated.
        let mut src = String::from(".org 0xF000\nstart: mov #0x0A00, r1\n");
        for (i, s) in seeds.iter().enumerate() {
            src.push_str(&format!("mov #{s:#06x}, r{}\n", 4 + i));
        }
        src.push_str("mov #0x0300, r8\nmov #0x0340, r9\nmov #0x0380, r10\neint\n");
        let n = instructions.len();
        for (i, insn) in instructions.iter().enumerate() {
            src.push_str(&format!("i{i}: "));
            // Sprinkle conditional jumps over the soup: forward, to a
            // label that always exists.
            if i % jump_every == jump_every - 1 && i + 1 < n {
                let cond = ["jnz", "jz", "jc", "jnc", "jn", "jge", "jl"][i % 7];
                src.push_str(&format!("{cond} i{}\n", (i + 2).min(n)));
                continue;
            }
            src.push_str(insn);
            src.push('\n');
        }
        src.push_str(&format!("i{n}: jmp i{n}\n"));
        src.push_str("isr: add #1, r15\nreti\n");
        src.push_str(
            ".vector reset, start\n.vector port1, isr\n.vector port2, isr\n\
             .vector timera, isr\n.vector spi, isr\n",
        );
        let image = asm::assemble(&src).expect("generated soup assembles");
        let mut pair = Pair::boot(&image);
        pair.attach_echo_spi();
        let mut slept = 0;
        for i in 0..400 {
            if i == irq_at {
                pair.both(|m| m.raise(Irq::Port1));
            }
            match pair.step(i) {
                StepResult::Ran { .. } => {}
                StepResult::Sleeping(_) => {
                    // A generated SR write parked the core; wake it or stop.
                    slept += 1;
                    if slept > 3 {
                        break;
                    }
                    pair.sleep(499, i);
                    pair.both(|m| m.raise(Irq::TimerA));
                }
                StepResult::IllegalInstruction { .. } => break,
            }
            if i % 37 == 0 {
                pair.both(|m| {
                    m.drive_p1(0, false);
                    m.drive_p1(0, true);
                });
            }
        }
        pair.assert_memory("after soup");
    }
}
