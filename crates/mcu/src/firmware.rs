//! Stock PicoCube firmware images.
//!
//! §4.5: "Microcontroller code was written in 'C' and is entirely interrupt
//! driven. No operating system support was required for this simple
//! application." These are the equivalent programs for the emulated core,
//! in assembly, for the two sensor boards:
//!
//! * [`tpms_app`] — the tire-pressure application: sleep in LPM3, wake on
//!   the SP12's 6-second interrupt, sample pressure / temperature /
//!   acceleration / supply voltage, format a packet, clock it to the radio,
//!   sleep again. The ≈ 14 ms active window of Fig. 6 is the run time of
//!   this program.
//! * [`motion_app`] — the §6 retreat demo: sleep in LPM4 (nothing to time),
//!   wake on the SCA3000's motion-threshold interrupt, read X/Y/Z, packet,
//!   transmit.
//!
//! ## Board contract
//!
//! The firmware assumes the PicoCube bus wiring modeled by
//! `picocube-node`:
//!
//! | Pin | Direction | Function |
//! |-----|-----------|----------|
//! | P1.0 | in  | sensor wake/interrupt line |
//! | P1.4 | out | radio SPI (digital) power enable |
//! | P1.5 | out | radio PA power enable |
//! | P2.0 | out | sensor chip select |
//!
//! SPI is shared between the sensor (selected by P2.0) and the radio
//! (selected by P1.4); the node's bus multiplexer routes transfers by pin
//! state. Packets are `AA AA D3 <id> <payload…> <xor-checksum>`.

use crate::asm::{assemble, AsmError};
use crate::memory::Image;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Cache key: `(application discriminant, node id, app argument)`.
type ImageKey = (u8, u8, u16);

/// Process-wide cache of assembled stock images, keyed by entry point and
/// arguments. Assembly is deterministic, and a fleet instantiates at most
/// 256 distinct ids per application, so each distinct image is assembled
/// once and cheaply cloned out afterwards.
static IMAGES: OnceLock<Mutex<HashMap<ImageKey, Image>>> = OnceLock::new();

/// Growth bound for [`IMAGES`]: far above any fleet's distinct-image count,
/// so in practice the cache never evicts; it merely stops growing if a
/// caller sweeps the whole argument space.
const IMAGE_CACHE_CAP: usize = 4096;

/// Returns the cached image for `key`, assembling (and caching) it on the
/// first request. Assembly runs outside the lock; a racing duplicate build
/// is benign because assembly is deterministic.
fn cached(
    key: ImageKey,
    build: impl FnOnce() -> Result<Image, AsmError>,
) -> Result<Image, AsmError> {
    let map = IMAGES.get_or_init(|| Mutex::new(HashMap::new()));
    if let Ok(guard) = map.lock() {
        if let Some(image) = guard.get(&key) {
            return Ok(image.clone());
        }
    }
    let image = build()?;
    if let Ok(mut guard) = map.lock() {
        if guard.len() < IMAGE_CACHE_CAP {
            guard.insert(key, image.clone());
        }
    }
    Ok(image)
}

/// Preamble byte (OOK-friendly alternating pattern).
pub const PREAMBLE: u8 = 0xAA;
/// Start-of-frame sync byte.
pub const SYNC: u8 = 0xD3;
/// Payload length of a TPMS packet (4 channels × 2 bytes).
pub const TPMS_PAYLOAD_LEN: usize = 8;
/// Payload length of a motion packet (3 axes × 2 bytes).
pub const MOTION_PAYLOAD_LEN: usize = 6;

/// P1 bit: sensor wake line.
pub const PIN_WAKE: u8 = 0x01;
/// P1 bit: radio SPI power enable.
pub const PIN_RADIO_SPI: u8 = 0x10;
/// P1 bit: radio PA power enable.
pub const PIN_RADIO_PA: u8 = 0x20;
/// P2 bit: sensor chip select.
pub const PIN_SENSOR_CS: u8 = 0x01;

/// Common definitions shared by both applications.
fn prelude() -> String {
    r#"
        .equ P1OUT,  0x0021
        .equ P1DIR,  0x0022
        .equ P1IFG,  0x0023
        .equ P1IE,   0x0025
        .equ P2OUT,  0x0029
        .equ P2DIR,  0x002A
        .equ SPITX,  0x0040
        .equ SPIRX,  0x0041
        .equ SPISTAT,0x0042
        .equ SPICTL, 0x0043
        .equ LPM3,   0x00D0
        .equ LPM4,   0x00F0
        .equ GIE,    0x0008
        .equ BUF,    0x0200
"#
    .to_string()
}

/// The shared SPI helper: transmit `r4`, response in `r5`.
fn spi_helper() -> String {
    r#"
spi_xfer:
        mov.b r4, &SPITX
spi_wait:
        bit.b #1, &SPISTAT
        jnz spi_wait
        mov.b &SPIRX, r5
        ret
"#
    .to_string()
}

/// Assembles the tire-pressure application for a given node id.
///
/// # Errors
///
/// Returns an [`AsmError`] only if the embedded source is broken (a bug).
pub fn tpms_app(node_id: u8) -> Result<Image, AsmError> {
    cached((0, node_id, 0), || tpms_app_fresh(node_id))
}

fn tpms_app_fresh(node_id: u8) -> Result<Image, AsmError> {
    let src = format!(
        r#"{prelude}
        .org 0xF000
start:  mov #0x0A00, sp
        mov.b #0x30, &P1DIR      ; radio power enables are outputs
        mov.b #0x01, &P2DIR      ; sensor CS is an output
        mov.b #0x01, &P1IE       ; SP12 wake line interrupt
        mov.b #0x05, &SPICTL     ; SPI clock divider 32
        eint
main:   bis #LPM3, sr            ; sleep between samples (timer domain on)
        jmp main

; ---- wake: one sample/format/transmit cycle (the Fig. 6 "on" burst) ----
wake:   mov.b #0, &P1IFG
        mov.b #0x01, &P2OUT      ; select the SP12
        mov #BUF, r7
        clr r6                   ; channel index
chan:   mov r6, r4
        bis #0x00A0, r4          ; 0xA0 | ch: start conversion
        call #spi_xfer
poll:   mov #0x00F0, r4          ; status request
        call #spi_xfer
        bit.b #1, r5             ; conversion ready?
        jz poll
        mov #0x00F1, r4          ; read high byte
        call #spi_xfer
        mov.b r5, 0(r7)
        inc r7
        mov #0x00F2, r4          ; read low byte
        call #spi_xfer
        mov.b r5, 0(r7)
        inc r7
        inc r6
        cmp #4, r6
        jnz chan
        mov.b #0, &P2OUT         ; deselect sensor
        call #transmit
        reti                     ; back to LPM3 (saved SR keeps the bits)

; ---- packetize BUF and clock it into the radio ----
transmit:
        mov.b #0x03, &SPICTL     ; SPI divider 8: TX data at ~125 kbps
        bis.b #0x10, &P1OUT      ; radio SPI power
        bis.b #0x20, &P1OUT      ; PA power (sequenced after)
        mov #0x00AA, r4
        call #spi_xfer
        mov #0x00AA, r4
        call #spi_xfer
        mov #0x00D3, r4
        call #spi_xfer
        mov #{node_id}, r4
        call #spi_xfer
        mov #BUF, r7
        mov #8, r6
        clr r8                   ; running checksum
txb:    mov.b @r7+, r4
        xor r4, r8
        call #spi_xfer
        dec r6
        jnz txb
        mov.b r8, r4
        and #0x00FF, r4
        call #spi_xfer
        bic.b #0x30, &P1OUT      ; radio off
        mov.b #0x05, &SPICTL     ; restore the sensor's slow SPI clock
        ret
{spi}
        .vector reset, start
        .vector port1, wake
"#,
        prelude = prelude(),
        node_id = node_id,
        spi = spi_helper(),
    );
    assemble(&src)
}

/// Assembles the tire-pressure application with a low-pressure alarm: when
/// the sampled pressure code drops below `threshold_code`, the packet is
/// transmitted twice (alarm repetition for link robustness) — the kind of
/// on-node "process the data" step §3 lists among the node's functions.
///
/// # Errors
///
/// Returns an [`AsmError`] only if the embedded source is broken (a bug).
pub fn tpms_alarm_app(node_id: u8, threshold_code: u16) -> Result<Image, AsmError> {
    cached((1, node_id, threshold_code), || {
        tpms_alarm_app_fresh(node_id, threshold_code)
    })
}

fn tpms_alarm_app_fresh(node_id: u8, threshold_code: u16) -> Result<Image, AsmError> {
    let src = format!(
        r#"{prelude}
        .org 0xF000
start:  mov #0x0A00, sp
        mov.b #0x30, &P1DIR
        mov.b #0x01, &P2DIR
        mov.b #0x01, &P1IE
        mov.b #0x05, &SPICTL
        eint
main:   bis #LPM3, sr
        jmp main

wake:   mov.b #0, &P1IFG
        mov.b #0x01, &P2OUT
        mov #BUF, r7
        clr r6
chan:   mov r6, r4
        bis #0x00A0, r4
        call #spi_xfer
poll:   mov #0x00F0, r4
        call #spi_xfer
        bit.b #1, r5
        jz poll
        mov #0x00F1, r4
        call #spi_xfer
        mov.b r5, 0(r7)
        inc r7
        mov #0x00F2, r4
        call #spi_xfer
        mov.b r5, 0(r7)
        inc r7
        inc r6
        cmp #4, r6
        jnz chan
        mov.b #0, &P2OUT
        call #transmit
        ; --- alarm check: pressure code (channel 0) below threshold? ---
        mov.b &0x0200, r9        ; high byte (stored big-endian in BUF)
        swpb r9
        mov.b &0x0201, r4        ; low byte
        bis r4, r9               ; r9 = 12-bit pressure code
        cmp #{threshold}, r9
        jc ok                    ; code >= threshold: healthy tire
        call #transmit           ; alarm: repeat the packet
ok:     reti

transmit:
        mov.b #0x03, &SPICTL
        bis.b #0x10, &P1OUT
        bis.b #0x20, &P1OUT
        mov #0x00AA, r4
        call #spi_xfer
        mov #0x00AA, r4
        call #spi_xfer
        mov #0x00D3, r4
        call #spi_xfer
        mov #{node_id}, r4
        call #spi_xfer
        mov #BUF, r7
        mov #8, r6
        clr r8
txb:    mov.b @r7+, r4
        xor r4, r8
        call #spi_xfer
        dec r6
        jnz txb
        mov.b r8, r4
        and #0x00FF, r4
        call #spi_xfer
        bic.b #0x30, &P1OUT
        mov.b #0x05, &SPICTL
        ret
{spi}
        .vector reset, start
        .vector port1, wake
"#,
        prelude = prelude(),
        node_id = node_id,
        threshold = threshold_code,
        spi = spi_helper(),
    );
    assemble(&src)
}

/// Assembles the accelerometer motion-demo application.
///
/// # Errors
///
/// Returns an [`AsmError`] only if the embedded source is broken (a bug).
pub fn motion_app(node_id: u8) -> Result<Image, AsmError> {
    cached((2, node_id, 0), || motion_app_fresh(node_id))
}

fn motion_app_fresh(node_id: u8) -> Result<Image, AsmError> {
    let src = format!(
        r#"{prelude}
        .org 0xF000
start:  mov #0x0A00, sp
        mov.b #0x30, &P1DIR
        mov.b #0x01, &P2DIR
        mov.b #0x01, &P1IE       ; SCA3000 motion interrupt
        mov.b #0x05, &SPICTL
        eint
main:   bis #LPM4, sr            ; deepest sleep: wake only by motion
        jmp main

wake:   mov.b #0, &P1IFG
        mov.b #0x01, &P2OUT      ; select accelerometer
        mov #BUF, r7
        clr r6                   ; axis index
axis:   mov r6, r4
        bis #0x0010, r4          ; 0x10 | axis: read request
        call #spi_xfer
        mov #0x00F1, r4          ; high byte
        call #spi_xfer
        mov.b r5, 0(r7)
        inc r7
        mov #0x00F2, r4          ; low byte
        call #spi_xfer
        mov.b r5, 0(r7)
        inc r7
        inc r6
        cmp #3, r6
        jnz axis
        mov.b #0, &P2OUT
        call #transmit
        reti                     ; saved SR returns the core to LPM4

transmit:
        mov.b #0x03, &SPICTL
        bis.b #0x10, &P1OUT
        bis.b #0x20, &P1OUT
        mov #0x00AA, r4
        call #spi_xfer
        mov #0x00AA, r4
        call #spi_xfer
        mov #0x00D3, r4
        call #spi_xfer
        mov #{node_id}, r4
        call #spi_xfer
        mov #BUF, r7
        mov #6, r6
        clr r8
txb:    mov.b @r7+, r4
        xor r4, r8
        call #spi_xfer
        dec r6
        jnz txb
        mov.b r8, r4
        and #0x00FF, r4
        call #spi_xfer
        bic.b #0x30, &P1OUT
        mov.b #0x05, &SPICTL
        ret
{spi}
        .vector reset, start
        .vector port1, wake
"#,
        prelude = prelude(),
        node_id = node_id,
        spi = spi_helper(),
    );
    assemble(&src)
}

/// Assembles the periodic-beacon application: no sensor interrupt line at
/// all — the MSP430's own ACLK timer paces sampling. Timer A fires once a
/// second; a software prescaler counts to `period_s`, then the firmware
/// reads the accelerometer's three axes and transmits, exactly like the
/// motion app but time- rather than event-triggered (the building-monitor
/// configuration). Sleeps in LPM3 (the timer's clock domain must stay up).
///
/// # Errors
///
/// Returns an [`AsmError`] only if the embedded source is broken (a bug)
/// or `period_s` is zero (reported as an assembly error on the `cmp`).
pub fn beacon_app(node_id: u8, period_s: u16) -> Result<Image, AsmError> {
    cached((3, node_id, period_s), || {
        beacon_app_fresh(node_id, period_s)
    })
}

fn beacon_app_fresh(node_id: u8, period_s: u16) -> Result<Image, AsmError> {
    let src = format!(
        r#"{prelude}
        .equ TACTL,  0x0060
        .equ TACCR0, 0x0062
        .org 0xF000
start:  mov #0x0A00, sp
        mov.b #0x30, &P1DIR
        mov.b #0x01, &P2DIR
        mov.b #0x05, &SPICTL
        mov #0x8000, &TACCR0     ; 32768 ACLK ticks = 1 s per fire
        mov.b #3, &TACTL         ; run + CCR0 interrupt
        clr r10                  ; software prescaler (seconds)
        eint
main:   bis #LPM3, sr
        jmp main

tick:   inc r10
        cmp #{period}, r10
        jnz done
        clr r10
        call #sample_tx
done:   reti

sample_tx:
        mov.b #0x01, &P2OUT      ; select accelerometer
        mov #BUF, r7
        clr r6
axis:   mov r6, r4
        bis #0x0010, r4
        call #spi_xfer
        mov #0x00F1, r4
        call #spi_xfer
        mov.b r5, 0(r7)
        inc r7
        mov #0x00F2, r4
        call #spi_xfer
        mov.b r5, 0(r7)
        inc r7
        inc r6
        cmp #3, r6
        jnz axis
        mov.b #0, &P2OUT
        mov.b #0x03, &SPICTL
        bis.b #0x10, &P1OUT
        bis.b #0x20, &P1OUT
        mov #0x00AA, r4
        call #spi_xfer
        mov #0x00AA, r4
        call #spi_xfer
        mov #0x00D3, r4
        call #spi_xfer
        mov #{node_id}, r4
        call #spi_xfer
        mov #BUF, r7
        mov #6, r6
        clr r8
txb:    mov.b @r7+, r4
        xor r4, r8
        call #spi_xfer
        dec r6
        jnz txb
        mov.b r8, r4
        and #0x00FF, r4
        call #spi_xfer
        bic.b #0x30, &P1OUT
        mov.b #0x05, &SPICTL
        ret
{spi}
        .vector reset, start
        .vector timera, tick
"#,
        prelude = prelude(),
        node_id = node_id,
        period = period_s,
        spi = spi_helper(),
    );
    assemble(&src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Mcu, StepResult};
    use crate::power_model::OperatingMode;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A scripted SPI slave standing in for the node's bus mux: acts as a
    /// 6-poll SP12 for sensor commands and logs radio bytes.
    #[derive(Default)]
    struct FakeBus {
        polls: u8,
        log: Rc<RefCell<Vec<u8>>>,
        value: u16,
    }

    impl crate::peripherals::SpiDevice for FakeBus {
        fn transfer(&mut self, mosi: u8) -> u8 {
            match mosi {
                0xA0..=0xA3 => {
                    self.polls = 0;
                    self.value = 0x0100 * u16::from(mosi & 0xF) + 0x23;
                    0
                }
                0xF0 => {
                    self.polls += 1;
                    u8::from(self.polls >= 6)
                }
                0xF1 => (self.value >> 8) as u8,
                0xF2 => self.value as u8,
                other => {
                    self.log.borrow_mut().push(other);
                    0
                }
            }
        }
    }

    fn run_one_tpms_cycle() -> (Mcu, Rc<RefCell<Vec<u8>>>, u64) {
        let image = tpms_app(0x42).expect("firmware assembles");
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        let log = Rc::new(RefCell::new(Vec::new()));
        mcu.attach_spi(Box::new(FakeBus {
            log: log.clone(),
            ..FakeBus::default()
        }));

        // Boot until asleep.
        let mut guard = 0;
        while !matches!(mcu.step(), StepResult::Sleeping(_)) {
            guard += 1;
            assert!(guard < 1000, "boot did not reach sleep");
        }
        assert_eq!(mcu.mode(), OperatingMode::Lpm3);

        // SP12 wake edge.
        mcu.drive_p1(0, true);
        let start = mcu.cycles();
        let mut guard = 0;
        loop {
            match mcu.step() {
                StepResult::Ran { .. } => {}
                StepResult::Sleeping(_) => break,
                StepResult::IllegalInstruction { word, at } => {
                    panic!("fault {word:#06x} at {at:#06x}")
                }
            }
            guard += 1;
            assert!(guard < 2_000_000, "cycle did not complete");
        }
        let active = mcu.cycles() - start;
        (mcu, log, active)
    }

    #[test]
    fn tpms_cycle_emits_a_well_formed_packet() {
        let (_, log, _) = run_one_tpms_cycle();
        let bytes = log.borrow();
        assert_eq!(bytes.len(), 2 + 1 + 1 + 8 + 1, "packet length");
        assert_eq!(&bytes[..3], &[PREAMBLE, PREAMBLE, SYNC]);
        assert_eq!(bytes[3], 0x42);
        // Payload: channel ch gives 0x0ch3 split hi/lo.
        assert_eq!(
            &bytes[4..12],
            &[0x00, 0x23, 0x01, 0x23, 0x02, 0x23, 0x03, 0x23]
        );
        let checksum = bytes[4..12].iter().fold(0u8, |a, b| a ^ b);
        assert_eq!(bytes[12], checksum);
    }

    #[test]
    fn tpms_active_burst_is_about_14_ms() {
        // §4.5: "a sample/format/transmit cycle that takes about 14 ms".
        let (mcu, _, active) = run_one_tpms_cycle();
        let secs = mcu.power_model().cycles_to_seconds(active).value();
        assert!(
            (0.008..0.022).contains(&secs),
            "active burst {:.1} ms outside the ~14 ms envelope",
            secs * 1e3
        );
    }

    #[test]
    fn tpms_returns_to_lpm3_not_lpm4() {
        // The SP12's 6 s timer must keep running between samples.
        let (mcu, _, _) = run_one_tpms_cycle();
        assert_eq!(mcu.mode(), OperatingMode::Lpm3);
    }

    #[test]
    fn radio_pins_toggled_during_cycle_and_off_after() {
        let (mcu, _, _) = run_one_tpms_cycle();
        assert_eq!(mcu.p1_output() & (PIN_RADIO_SPI | PIN_RADIO_PA), 0);
        assert_eq!(mcu.p2_output() & PIN_SENSOR_CS, 0);
    }

    #[test]
    fn repeated_cycles_are_stable() {
        let image = tpms_app(7).unwrap();
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        let log = Rc::new(RefCell::new(Vec::new()));
        mcu.attach_spi(Box::new(FakeBus {
            log: log.clone(),
            ..FakeBus::default()
        }));
        while !matches!(mcu.step(), StepResult::Sleeping(_)) {}
        for _ in 0..5 {
            mcu.drive_p1(0, false);
            mcu.drive_p1(0, true);
            let mut guard = 0;
            loop {
                match mcu.step() {
                    StepResult::Sleeping(_) => break,
                    StepResult::Ran { .. } => {}
                    other => panic!("unexpected {other:?}"),
                }
                guard += 1;
                assert!(guard < 2_000_000);
            }
        }
        assert_eq!(log.borrow().len(), 5 * 13);
    }

    #[test]
    fn beacon_app_transmits_on_the_timer() {
        // No external interrupt at all: the Timer A ISR paces sampling.
        let image = beacon_app(0x21, 3).unwrap();
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        let log = Rc::new(RefCell::new(Vec::new()));
        struct Accel {
            log: Rc<RefCell<Vec<u8>>>,
        }
        impl crate::peripherals::SpiDevice for Accel {
            fn transfer(&mut self, mosi: u8) -> u8 {
                match mosi {
                    0x10..=0x13 => 0,
                    0xF1 => 0x04,
                    0xF2 => 0x00,
                    other => {
                        self.log.borrow_mut().push(other);
                        0
                    }
                }
            }
        }
        mcu.attach_spi(Box::new(Accel { log: log.clone() }));
        while !matches!(mcu.step(), StepResult::Sleeping(_)) {}
        assert_eq!(mcu.mode(), OperatingMode::Lpm3);

        // Simulate ~10 s: alternate sleeping and servicing whatever the
        // timer raises. Period 3 s → 3 beacons.
        let budget: u64 = 10_000_000; // cycles at 1 MHz
        while mcu.cycles() < budget {
            let remaining = budget - mcu.cycles();
            if mcu.sleep(remaining) == 0 {
                // Awake: run the ISR to completion.
                loop {
                    match mcu.step() {
                        StepResult::Ran { .. } => {}
                        StepResult::Sleeping(_) => break,
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
        }
        let packets = log.borrow().len() / 11; // 2+1+1+6+1 bytes each
        assert_eq!(packets, 3, "expected 3 beacons in 10 s at period 3");
    }

    #[test]
    fn motion_app_sleeps_in_lpm4_and_sends_xyz() {
        let image = motion_app(0x42).unwrap();
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        let log = Rc::new(RefCell::new(Vec::new()));
        // The fake bus answers 0x10|axis requests like the SP12's 0xA0.
        struct Accel {
            log: Rc<RefCell<Vec<u8>>>,
            value: u16,
        }
        impl crate::peripherals::SpiDevice for Accel {
            fn transfer(&mut self, mosi: u8) -> u8 {
                match mosi {
                    0x10..=0x13 => {
                        self.value = 0x0400 + u16::from(mosi & 0xF);
                        0
                    }
                    0xF1 => (self.value >> 8) as u8,
                    0xF2 => self.value as u8,
                    other => {
                        self.log.borrow_mut().push(other);
                        0
                    }
                }
            }
        }
        mcu.attach_spi(Box::new(Accel {
            log: log.clone(),
            value: 0,
        }));
        while !matches!(mcu.step(), StepResult::Sleeping(_)) {}
        assert_eq!(mcu.mode(), OperatingMode::Lpm4);
        mcu.drive_p1(0, true);
        let mut guard = 0;
        loop {
            match mcu.step() {
                StepResult::Sleeping(_) => break,
                StepResult::Ran { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
            guard += 1;
            assert!(guard < 2_000_000);
        }
        let bytes = log.borrow();
        assert_eq!(bytes.len(), 2 + 1 + 1 + 6 + 1);
        assert_eq!(&bytes[..3], &[PREAMBLE, PREAMBLE, SYNC]);
        assert_eq!(mcu.mode(), OperatingMode::Lpm4);
    }
}
