//! A two-pass assembler for the MSP430 subset.
//!
//! Keeps firmware readable in tests, examples and the stock
//! [`firmware`](crate::firmware) images. Supported syntax:
//!
//! ```text
//!         .org 0xF000          ; set the location counter
//!         .equ LED, 0x01       ; named constant
//! start:  mov #0x0A00, sp      ; labels, immediates, register names
//!         mov.b #LED, &0x0021  ; byte ops, absolute addressing
//! loop:   dec r4               ; emulated instructions
//!         jnz loop             ; jumps to labels
//!         .word 0x1234         ; literal data
//!         .vector reset, start ; interrupt vector entries
//! ```
//!
//! Operand forms: `rN`/`pc`/`sp`/`sr`, `#imm`, `&abs`, `X(rN)`, `@rN`,
//! `@rN+`, and bare labels (for jump targets and as absolute addresses in
//! data contexts). Immediates in the constant-generator set
//! (0, 1, 2, 4, 8, −1) assemble to single-word instructions, as on the
//! real part.

use crate::memory::{vectors, Image};
use std::collections::HashMap;

/// An assembly failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = core::result::Result<T, AsmError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assembles source text into a loadable [`Image`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending line for syntax errors,
/// unknown mnemonics or labels, out-of-range jumps, and misuse of
/// directives.
pub fn assemble(source: &str) -> Result<Image> {
    let lines = parse_lines(source)?;
    let (symbols, _) = layout(&lines, &HashMap::new())?;
    // Second layout pass with symbols known lets `.equ` of labels resolve;
    // then emit.
    let (symbols, segments) = layout(&lines, &symbols)?;
    emit(&lines, &symbols, segments)
}

#[derive(Debug, Clone)]
enum Item {
    Org(String),
    Equ(String, String),
    Word(String),
    Byte(String),
    Vector(String, String),
    Insn {
        mnemonic: String,
        byte_mode: bool,
        operands: Vec<String>,
    },
}

#[derive(Debug, Clone)]
struct Line {
    number: usize,
    label: Option<String>,
    item: Option<Item>,
}

fn parse_lines(source: &str) -> Result<Vec<Line>> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let (label, rest) = match text.split_once(':') {
            Some((l, r)) if is_ident(l.trim()) => (Some(l.trim().to_string()), r.trim()),
            _ => (None, text),
        };
        let item = if rest.is_empty() {
            None
        } else if let Some(dir) = rest.strip_prefix('.') {
            let (name, args) = dir.split_once(char::is_whitespace).unwrap_or((dir, ""));
            let args = args.trim();
            Some(match name.to_ascii_lowercase().as_str() {
                "org" => Item::Org(args.to_string()),
                "word" => Item::Word(args.to_string()),
                "byte" => Item::Byte(args.to_string()),
                "equ" => {
                    let (n, v) = args.split_once(',').ok_or_else(|| AsmError {
                        line: number,
                        message: ".equ needs NAME, VALUE".into(),
                    })?;
                    Item::Equ(n.trim().to_string(), v.trim().to_string())
                }
                "vector" => {
                    let (n, v) = args.split_once(',').ok_or_else(|| AsmError {
                        line: number,
                        message: ".vector needs NAME, LABEL".into(),
                    })?;
                    Item::Vector(n.trim().to_ascii_lowercase(), v.trim().to_string())
                }
                other => return err(number, format!("unknown directive .{other}")),
            })
        } else {
            let (mn, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            let mn = mn.to_ascii_lowercase();
            let (mnemonic, byte_mode) = match mn.strip_suffix(".b") {
                Some(stem) => (stem.to_string(), true),
                None => (mn.strip_suffix(".w").unwrap_or(&mn).to_string(), false),
            };
            let operands: Vec<String> = split_operands(args)
                .into_iter()
                .map(|s| s.trim().to_string())
                .collect();
            // Desugar emulated mnemonics once here, not in every pass:
            // layout runs twice and emit once, so rewriting at parse time
            // keeps the per-instruction work out of the hot reassembly path
            // (every fleet node assembles its own image).
            let (mnemonic, operands) = desugar(&mnemonic, &operands);
            Some(Item::Insn {
                mnemonic,
                byte_mode,
                operands,
            })
        };
        out.push(Line {
            number,
            label,
            item,
        });
    }
    Ok(out)
}

/// Splits an operand list on commas that are not inside parentheses.
fn split_operands(args: &str) -> Vec<&str> {
    let args = args.trim();
    if args.is_empty() {
        return Vec::new();
    }
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in args.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&args[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&args[start..]);
    parts
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Register name to index.
fn register(name: &str) -> Option<usize> {
    if name.eq_ignore_ascii_case("pc") {
        return Some(0);
    }
    if name.eq_ignore_ascii_case("sp") {
        return Some(1);
    }
    if name.eq_ignore_ascii_case("sr") {
        return Some(2);
    }
    let n: usize = name.strip_prefix(['r', 'R'])?.parse().ok()?;
    (n < 16).then_some(n)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Register direct.
    Reg(usize),
    /// Indexed / absolute / symbolic: one extension word.
    Indexed { reg: usize, absolute: bool },
    /// Indirect @Rn.
    Indirect(usize),
    /// Indirect autoincrement @Rn+ (also immediate via @PC+).
    AutoIncr(usize),
    /// Immediate handled by a constant generator: zero extension words.
    Const(u16),
    /// General immediate: @PC+ with an extension word.
    Imm,
}

impl Mode {
    fn extension_words(self) -> u16 {
        match self {
            Mode::Indexed { .. } | Mode::Imm => 1,
            _ => 0,
        }
    }
}

/// Parses an operand's addressing *shape* without resolving expressions
/// (expression values are not needed for layout except const-generator
/// immediates, which need the value).
fn operand_mode(op: &str, symbols: &HashMap<String, u16>) -> Option<Mode> {
    let op = op.trim();
    if let Some(r) = register(op) {
        return Some(Mode::Reg(r));
    }
    if let Some(rest) = op.strip_prefix('#') {
        // Constant generator if the value is resolvable now and in-set.
        if let Ok(v) = eval(rest, symbols) {
            if matches!(v, 0 | 1 | 2 | 4 | 8 | 0xFFFF) {
                return Some(Mode::Const(v));
            }
        }
        return Some(Mode::Imm);
    }
    if op.strip_prefix('&').is_some() {
        return Some(Mode::Indexed {
            reg: 2,
            absolute: true,
        });
    }
    if let Some(rest) = op.strip_prefix('@') {
        if let Some(stem) = rest.strip_suffix('+') {
            return register(stem).map(Mode::AutoIncr);
        }
        return register(rest).map(Mode::Indirect);
    }
    if let Some(open) = op.find('(') {
        let close = op.rfind(')')?;
        let reg = register(&op[open + 1..close])?;
        return Some(Mode::Indexed {
            reg,
            absolute: false,
        });
    }
    // Bare symbol: treat as absolute address (assembler convenience; the
    // real toolchain would use symbolic mode).
    is_ident(op).then_some(Mode::Indexed {
        reg: 2,
        absolute: true,
    })
}

/// Evaluates a constant expression: decimal, hex, char, unary minus,
/// symbol, with `|` and `+` combinations.
fn eval(expr: &str, symbols: &HashMap<String, u16>) -> core::result::Result<u16, String> {
    let expr = expr.trim();
    // Lowest-precedence split on `|` then `+` then leading `-`.
    if let Some((a, b)) = split_top(expr, '|') {
        return Ok(eval(a, symbols)? | eval(b, symbols)?);
    }
    if let Some((a, b)) = split_top(expr, '+') {
        return Ok(eval(a, symbols)?.wrapping_add(eval(b, symbols)?));
    }
    if let Some(rest) = expr.strip_prefix('-') {
        return Ok(eval(rest, symbols)?.wrapping_neg());
    }
    if let Some(hex) = expr.strip_prefix("0x").or_else(|| expr.strip_prefix("0X")) {
        return u16::from_str_radix(hex, 16).map_err(|e| e.to_string());
    }
    if expr.starts_with('\'') && expr.ends_with('\'') && expr.len() == 3 {
        return Ok(expr.as_bytes()[1].into());
    }
    if let Ok(v) = expr.parse::<u16>() {
        return Ok(v);
    }
    symbols
        .get(expr)
        .copied()
        .ok_or_else(|| format!("unknown symbol `{expr}`"))
}

fn split_top(expr: &str, sep: char) -> Option<(&str, &str)> {
    // Split at the last top-level separator, skipping a leading sign.
    let bytes = expr.as_bytes();
    for i in (1..expr.len()).rev() {
        if bytes[i] == sep as u8 {
            return Some((&expr[..i], &expr[i + 1..]));
        }
    }
    None
}

const FORMAT1: &[(&str, u16)] = &[
    ("mov", 0x4),
    ("add", 0x5),
    ("addc", 0x6),
    ("subc", 0x7),
    ("sub", 0x8),
    ("cmp", 0x9),
    ("dadd", 0xA),
    ("bit", 0xB),
    ("bic", 0xC),
    ("bis", 0xD),
    ("xor", 0xE),
    ("and", 0xF),
];

const FORMAT2: &[(&str, u16)] = &[
    ("rrc", 0),
    ("swpb", 1),
    ("rra", 2),
    ("sxt", 3),
    ("push", 4),
    ("call", 5),
];

const JUMPS: &[(&str, u16)] = &[
    ("jnz", 0),
    ("jne", 0),
    ("jz", 1),
    ("jeq", 1),
    ("jnc", 2),
    ("jlo", 2),
    ("jc", 3),
    ("jhs", 3),
    ("jn", 4),
    ("jge", 5),
    ("jl", 6),
    ("jmp", 7),
];

/// Rewrites emulated mnemonics into core ones (applied once at parse
/// time). Returns the core mnemonic and operand list; unknown mnemonics
/// pass through unchanged so later passes still report them by their
/// original spelling.
fn desugar(mnemonic: &str, operands: &[String]) -> (String, Vec<String>) {
    let one = |s: &str| vec![s.to_string()];
    match (mnemonic, operands.len()) {
        ("nop", 0) => ("mov".into(), vec!["r3".into(), "r3".into()]),
        ("ret", 0) => ("mov".into(), vec!["@sp+".into(), "pc".into()]),
        ("pop", 1) => ("mov".into(), vec!["@sp+".into(), operands[0].clone()]),
        ("br", 1) => ("mov".into(), vec![operands[0].clone(), "pc".into()]),
        ("clr", 1) => ("mov".into(), vec!["#0".into(), operands[0].clone()]),
        ("inc", 1) => ("add".into(), vec!["#1".into(), operands[0].clone()]),
        ("incd", 1) => ("add".into(), vec!["#2".into(), operands[0].clone()]),
        ("dec", 1) => ("sub".into(), vec!["#1".into(), operands[0].clone()]),
        ("decd", 1) => ("sub".into(), vec!["#2".into(), operands[0].clone()]),
        ("tst", 1) => ("cmp".into(), vec!["#0".into(), operands[0].clone()]),
        ("inv", 1) => ("xor".into(), vec!["#-1".into(), operands[0].clone()]),
        ("rla", 1) => ("add".into(), vec![operands[0].clone(), operands[0].clone()]),
        ("eint", 0) => ("bis".into(), vec!["#8".into(), "sr".into()]),
        ("dint", 0) => ("bic".into(), vec!["#8".into(), "sr".into()]),
        ("setc", 0) => (
            "bis".into(),
            one("#1")[..]
                .to_vec()
                .into_iter()
                .chain(one("sr"))
                .collect(),
        ),
        ("clrc", 0) => ("bic".into(), vec!["#1".into(), "sr".into()]),
        ("setz", 0) => ("bis".into(), vec!["#2".into(), "sr".into()]),
        ("clrz", 0) => ("bic".into(), vec!["#2".into(), "sr".into()]),
        _ => (mnemonic.to_string(), operands.to_vec()),
    }
}

/// Size in bytes of one instruction, given resolvable symbols.
fn insn_size(
    line: usize,
    mnemonic: &str,
    operands: &[String],
    symbols: &HashMap<String, u16>,
) -> Result<u16> {
    let (mn, ops) = (mnemonic, operands);
    if JUMPS.iter().any(|&(m, _)| m == mn) {
        return Ok(2);
    }
    if mn == "reti" {
        return Ok(2);
    }
    if FORMAT2.iter().any(|&(m, _)| m == mn) {
        let m = ops
            .first()
            .and_then(|o| operand_mode(o, symbols))
            .ok_or_else(|| AsmError {
                line,
                message: format!("bad operand for {mn}"),
            })?;
        return Ok(2 + 2 * m.extension_words());
    }
    if FORMAT1.iter().any(|&(m, _)| m == mn) {
        if ops.len() != 2 {
            return err(line, format!("{mn} needs two operands"));
        }
        let s = operand_mode(&ops[0], symbols).ok_or_else(|| AsmError {
            line,
            message: format!("bad source `{}`", ops[0]),
        })?;
        let d = operand_mode(&ops[1], symbols).ok_or_else(|| AsmError {
            line,
            message: format!("bad destination `{}`", ops[1]),
        })?;
        return Ok(2 + 2 * s.extension_words() + 2 * d.extension_words());
    }
    err(line, format!("unknown mnemonic `{mnemonic}`"))
}

type Segments = Vec<(u16, u16)>; // (org, size) per .org region in order

fn layout(
    lines: &[Line],
    known: &HashMap<String, u16>,
) -> Result<(HashMap<String, u16>, Segments)> {
    let mut symbols = known.clone();
    let mut pc: u16 = 0;
    let mut segments: Segments = Vec::new();
    let mut seg_start: Option<u16> = None;
    let mut seg_len: u16 = 0;
    let flush = |segments: &mut Segments, seg_start: &mut Option<u16>, seg_len: &mut u16| {
        if let Some(s) = seg_start.take() {
            segments.push((s, *seg_len));
            *seg_len = 0;
        }
    };
    for line in lines {
        if let Some(label) = &line.label {
            symbols.insert(label.clone(), pc);
        }
        match &line.item {
            None => {}
            Some(Item::Org(expr)) => {
                flush(&mut segments, &mut seg_start, &mut seg_len);
                pc = eval(expr, &symbols).map_err(|m| AsmError {
                    line: line.number,
                    message: m,
                })?;
                seg_start = Some(pc);
            }
            Some(Item::Equ(name, expr)) => {
                let v = eval(expr, &symbols).unwrap_or(0);
                symbols.insert(name.clone(), v);
            }
            Some(Item::Vector(..)) => {}
            Some(Item::Word(_)) => {
                if seg_start.is_none() {
                    seg_start = Some(pc);
                }
                pc = pc.wrapping_add(2);
                seg_len += 2;
            }
            Some(Item::Byte(_)) => {
                if seg_start.is_none() {
                    seg_start = Some(pc);
                }
                pc = pc.wrapping_add(1);
                seg_len += 1;
            }
            Some(Item::Insn {
                mnemonic,
                byte_mode: _,
                operands,
            }) => {
                if seg_start.is_none() {
                    seg_start = Some(pc);
                }
                let size = insn_size(line.number, mnemonic, operands, &symbols)?;
                pc = pc.wrapping_add(size);
                seg_len += size;
            }
        }
    }
    flush(&mut segments, &mut seg_start, &mut seg_len);
    Ok((symbols, segments))
}

fn vector_address(name: &str, line: usize) -> Result<u16> {
    Ok(match name {
        "reset" => vectors::RESET,
        "port1" => vectors::PORT1,
        "port2" => vectors::PORT2,
        "spi" => vectors::SPI,
        "timera" => vectors::TIMER_A,
        other => return err(line, format!("unknown vector `{other}`")),
    })
}

struct Encoder<'a> {
    symbols: &'a HashMap<String, u16>,
    line: usize,
}

impl Encoder<'_> {
    fn ev(&self, expr: &str) -> Result<u16> {
        eval(expr, self.symbols).map_err(|m| AsmError {
            line: self.line,
            message: m,
        })
    }

    /// Encodes an operand as (register, as-bits, extension word).
    fn source(&self, op: &str) -> Result<(u16, u16, Option<u16>)> {
        let mode = operand_mode(op, self.symbols).ok_or_else(|| AsmError {
            line: self.line,
            message: format!("bad operand `{op}`"),
        })?;
        Ok(match mode {
            Mode::Reg(r) => (r as u16, 0b00, None),
            Mode::Indirect(r) => (r as u16, 0b10, None),
            Mode::AutoIncr(r) => (r as u16, 0b11, None),
            Mode::Imm => {
                let v = self.ev(op.strip_prefix('#').unwrap_or(op))?;
                (0, 0b11, Some(v))
            }
            Mode::Const(v) => match v {
                0 => (3, 0b00, None),
                1 => (3, 0b01, None),
                2 => (3, 0b10, None),
                4 => (2, 0b10, None),
                8 => (2, 0b11, None),
                _ => (3, 0b11, None), // 0xFFFF
            },
            Mode::Indexed { reg, absolute } => {
                let expr = if absolute {
                    op.trim().strip_prefix('&').unwrap_or(op.trim())
                } else if let Some(open) = op.find('(') {
                    &op[..open]
                } else {
                    op
                };
                let x = self.ev(expr)?;
                ((if absolute { 2 } else { reg }) as u16, 0b01, Some(x))
            }
        })
    }

    /// Encodes a destination operand as (register, ad-bit, extension word).
    fn destination(&self, op: &str) -> Result<(u16, u16, Option<u16>)> {
        let mode = operand_mode(op, self.symbols).ok_or_else(|| AsmError {
            line: self.line,
            message: format!("bad operand `{op}`"),
        })?;
        Ok(match mode {
            Mode::Reg(r) => (r as u16, 0, None),
            Mode::Indexed { reg, absolute } => {
                let expr = if absolute {
                    op.trim().strip_prefix('&').unwrap_or(op.trim())
                } else if let Some(open) = op.find('(') {
                    &op[..open]
                } else {
                    op
                };
                let x = self.ev(expr)?;
                ((if absolute { 2 } else { reg }) as u16, 1, Some(x))
            }
            _ => {
                return err(
                    self.line,
                    format!("destination `{op}` must be a register, X(Rn), &abs or label"),
                )
            }
        })
    }
}

fn emit(lines: &[Line], symbols: &HashMap<String, u16>, _segments: Segments) -> Result<Image> {
    let mut image = Image::new();
    let mut pc: u16 = 0;
    let mut current: Vec<u8> = Vec::new();
    let mut current_org: u16 = 0;
    let mut started = false;
    let mut vectors_out: Vec<(u16, u16)> = Vec::new();

    let flush = |image: &mut Image, current: &mut Vec<u8>, org: u16| {
        if !current.is_empty() {
            image.push_segment(org, std::mem::take(current));
        }
    };

    for line in lines {
        let enc = Encoder {
            symbols,
            line: line.number,
        };
        match &line.item {
            None | Some(Item::Equ(..)) => {}
            Some(Item::Org(expr)) => {
                flush(&mut image, &mut current, current_org);
                pc = enc.ev(expr)?;
                current_org = pc;
                started = true;
            }
            Some(Item::Vector(name, target)) => {
                let addr = vector_address(name, line.number)?;
                let value = enc.ev(target)?;
                vectors_out.push((addr, value));
            }
            Some(Item::Word(expr)) => {
                if !started {
                    current_org = pc;
                    started = true;
                }
                let v = enc.ev(expr)?;
                current.extend_from_slice(&v.to_le_bytes());
                pc = pc.wrapping_add(2);
            }
            Some(Item::Byte(expr)) => {
                if !started {
                    current_org = pc;
                    started = true;
                }
                let v = enc.ev(expr)?;
                current.push(v as u8);
                pc = pc.wrapping_add(1);
            }
            Some(Item::Insn {
                mnemonic,
                byte_mode,
                operands,
            }) => {
                if !started {
                    current_org = pc;
                    started = true;
                }
                let (mn, ops) = (mnemonic, operands);
                let bw = u16::from(*byte_mode);
                let mut words: Vec<u16> = Vec::new();

                if let Some(&(_, cond)) = JUMPS.iter().find(|&&(m, _)| m == mn) {
                    let target = enc.ev(ops.first().map(String::as_str).unwrap_or(""))?;
                    // Work in raw address space to avoid sign confusion.
                    let off = (i64::from(target) - i64::from(pc) - 2) / 2;
                    if (i64::from(target) - i64::from(pc) - 2) % 2 != 0 {
                        return err(line.number, "jump target must be word-aligned");
                    }
                    if !(-512..=511).contains(&off) {
                        return err(line.number, "jump out of range (±512 words)");
                    }
                    words.push(0x2000 | (cond << 10) | ((off as u16) & 0x3FF));
                } else if mn == "reti" {
                    words.push(0x1300);
                } else if let Some(&(_, op2)) = FORMAT2.iter().find(|&&(m, _)| m == mn) {
                    let (reg, as_bits, ext) =
                        enc.source(ops.first().map(String::as_str).unwrap_or(""))?;
                    words.push(0x1000 | (op2 << 7) | (bw << 6) | (as_bits << 4) | reg);
                    if let Some(x) = ext {
                        words.push(x);
                    }
                } else if let Some(&(_, op1)) = FORMAT1.iter().find(|&&(m, _)| m == mn) {
                    if ops.len() != 2 {
                        return err(line.number, format!("{mn} needs two operands"));
                    }
                    let (sreg, as_bits, sext) = enc.source(&ops[0])?;
                    let (dreg, ad, dext) = enc.destination(&ops[1])?;
                    words.push(
                        (op1 << 12) | (sreg << 8) | (ad << 7) | (bw << 6) | (as_bits << 4) | dreg,
                    );
                    if let Some(x) = sext {
                        words.push(x);
                    }
                    if let Some(x) = dext {
                        words.push(x);
                    }
                } else {
                    return err(line.number, format!("unknown mnemonic `{mnemonic}`"));
                }

                for w in words {
                    current.extend_from_slice(&w.to_le_bytes());
                    pc = pc.wrapping_add(2);
                }
            }
        }
    }
    flush(&mut image, &mut current, current_org);
    for (addr, value) in vectors_out {
        image.push_segment(addr, value.to_le_bytes().to_vec());
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_opcodes() {
        // mov #0x1234, r4 => 0x4034 ext 0x1234 (As=11 on PC).
        let img = assemble(".org 0xF000\nmov #0x1234, r4\n").unwrap();
        let bytes = &img.segments()[0].1;
        assert_eq!(bytes, &vec![0x34, 0x40, 0x34, 0x12]);
    }

    #[test]
    fn constant_generator_immediates_are_single_word() {
        for imm in ["#0", "#1", "#2", "#4", "#8", "#-1"] {
            let src = format!(".org 0xF000\nmov {imm}, r4\n");
            let img = assemble(&src).unwrap();
            assert_eq!(img.segments()[0].1.len(), 2, "imm {imm}");
        }
        let img = assemble(".org 0xF000\nmov #3, r4\n").unwrap();
        assert_eq!(img.segments()[0].1.len(), 4);
    }

    #[test]
    fn labels_and_jumps() {
        let img = assemble(".org 0xF000\nstart: dec r4\njnz start\n").unwrap();
        let bytes = &img.segments()[0].1;
        // dec = sub #1, r4 (constant generator): 0x8314 | dst 4 => 0x8314.
        assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), 0x8314);
        // jnz start: offset = (0xF000 - 0xF002 - 2)/2 = -2 => 0x3FE masked.
        let jw = u16::from_le_bytes([bytes[2], bytes[3]]);
        assert_eq!(jw & 0xE000, 0x2000);
        assert_eq!(jw & 0x3FF, 0x3FE);
    }

    #[test]
    fn vectors_are_emitted() {
        let img =
            assemble(".org 0xF000\nstart: jmp start\n.vector reset, start\n.vector port1, start\n")
                .unwrap();
        let segs = img.segments();
        assert!(segs
            .iter()
            .any(|(org, b)| *org == 0xFFFE && b == &vec![0x00, 0xF0]));
        assert!(segs
            .iter()
            .any(|(org, b)| *org == 0xFFE8 && b == &vec![0x00, 0xF0]));
    }

    #[test]
    fn equ_and_or_expressions() {
        let img =
            assemble(".equ LPM3, 0x00D0\n.equ GIE, 8\n.org 0xF000\nbis #LPM3|GIE, sr\n").unwrap();
        let bytes = &img.segments()[0].1;
        assert_eq!(u16::from_le_bytes([bytes[2], bytes[3]]), 0x00D8);
    }

    #[test]
    fn byte_suffix_sets_bw() {
        let img = assemble(".org 0xF000\nmov.b #0x12, r4\n").unwrap();
        let w = u16::from_le_bytes([img.segments()[0].1[0], img.segments()[0].1[1]]);
        assert_ne!(w & 0x0040, 0);
    }

    #[test]
    fn forward_references_resolve() {
        let img =
            assemble(".org 0xF000\nmov #later, r4\njmp skip\nlater: .word 7\nskip: nop\n").unwrap();
        let bytes = &img.segments()[0].1;
        // mov #later: later = 0xF000 + 6.
        assert_eq!(u16::from_le_bytes([bytes[2], bytes[3]]), 0xF006);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".org 0xF000\nmov #1, r4\nbogus r4\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
        let e = assemble(".org 0xF000\njmp nowhere\n").unwrap_err();
        assert!(e.message.contains("unknown symbol"));
    }

    #[test]
    fn jump_range_checked() {
        let mut src = String::from(".org 0xF000\nstart: nop\n");
        for _ in 0..600 {
            src.push_str("nop\n");
        }
        src.push_str("jmp start\n");
        let e = assemble(&src).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn emulated_mnemonics() {
        let img =
            assemble(".org 0xF000\nnop\nret\nclr r4\ninc r4\ntst r4\neint\ndint\nclrc\n").unwrap();
        // All emulated forms use constant generators: single words.
        assert_eq!(img.segments()[0].1.len(), 16);
    }

    #[test]
    fn indexed_operands_both_sides() {
        let img = assemble(".org 0xF000\nmov 2(r4), 4(r5)\n").unwrap();
        assert_eq!(img.segments()[0].1.len(), 6); // op + two extensions
    }

    #[test]
    fn bare_label_is_absolute_reference() {
        let img = assemble(".org 0x0200\nvalue: .word 0\n.org 0xF000\nmov #7, value\n").unwrap();
        // Source extension (#7) comes first, then the destination's
        // absolute address extension.
        let code = img
            .segments()
            .iter()
            .find(|(org, _)| *org == 0xF000)
            .unwrap();
        assert_eq!(u16::from_le_bytes([code.1[2], code.1[3]]), 7);
        assert_eq!(u16::from_le_bytes([code.1[4], code.1[5]]), 0x0200);
    }
}
