//! Supply-current model for the MSP430-class core.

use picocube_units::{Amps, Hertz, Volts};

/// The core's operating mode, derived from the `SR` low-power bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OperatingMode {
    /// CPU executing instructions.
    Active,
    /// CPUOFF: CPU halted, all clocks alive.
    Lpm0,
    /// CPUOFF + SCG0/SCG1: only ACLK alive — the Cube's between-samples
    /// state (timers keep running; §4.5 "only an internal timer is
    /// running").
    Lpm3,
    /// CPUOFF + OSCOFF: everything stopped; wake only by external
    /// interrupt. The "sub-microwatt deep sleep" headline mode.
    Lpm4,
}

/// Datasheet-class supply currents for the F1222 at 2.2 V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McuPowerModel {
    /// Active current per MHz of MCLK.
    pub active_per_mhz: Amps,
    /// LPM0 standing current.
    pub lpm0: Amps,
    /// LPM3 standing current (ACLK + RTC domain alive).
    pub lpm3: Amps,
    /// LPM4 standing current (RAM retention only).
    pub lpm4: Amps,
    /// Nominal supply for power computations.
    pub vdd: Volts,
    /// Master clock frequency.
    pub mclk: Hertz,
}

impl McuPowerModel {
    /// The F1222 numbers the Cube's budget is built on: 300 µA/MHz active,
    /// 50 µA LPM0, 0.7 µA LPM3, 0.1 µA LPM4, at 2.2 V / 1 MHz.
    pub fn msp430f1222() -> Self {
        Self {
            active_per_mhz: Amps::from_micro(300.0),
            lpm0: Amps::from_micro(50.0),
            lpm3: Amps::from_micro(0.7),
            lpm4: Amps::from_micro(0.1),
            vdd: Volts::new(2.2),
            mclk: Hertz::from_mega(1.0),
        }
    }

    /// Supply current in the given mode.
    pub fn current(&self, mode: OperatingMode) -> Amps {
        match mode {
            OperatingMode::Active => self.active_per_mhz * self.mclk.mega(),
            OperatingMode::Lpm0 => self.lpm0,
            OperatingMode::Lpm3 => self.lpm3,
            OperatingMode::Lpm4 => self.lpm4,
        }
    }

    /// Wall-clock duration of `cycles` of MCLK.
    pub fn cycles_to_seconds(&self, cycles: u64) -> picocube_units::Seconds {
        picocube_units::Seconds::new(cycles as f64 / self.mclk.value())
    }
}

impl Default for McuPowerModel {
    fn default() -> Self {
        Self::msp430f1222()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_units::Watts;

    #[test]
    fn deep_sleep_is_sub_microwatt() {
        // §4.5: "a sub-microwatt deep sleep mode".
        let m = McuPowerModel::msp430f1222();
        let p = m.vdd * m.current(OperatingMode::Lpm4);
        assert!(p < Watts::from_micro(1.0));
        let p3 = m.vdd * m.current(OperatingMode::Lpm3);
        assert!(p3 < Watts::from_micro(2.0));
    }

    #[test]
    fn active_current_scales_with_mclk() {
        let mut m = McuPowerModel::msp430f1222();
        let at_1mhz = m.current(OperatingMode::Active);
        m.mclk = Hertz::from_mega(8.0);
        assert!((m.current(OperatingMode::Active).value() / at_1mhz.value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn mode_ordering_tracks_depth() {
        assert!(OperatingMode::Active < OperatingMode::Lpm0);
        assert!(OperatingMode::Lpm0 < OperatingMode::Lpm3);
        assert!(OperatingMode::Lpm3 < OperatingMode::Lpm4);
    }

    #[test]
    fn cycle_timing_at_1mhz() {
        let m = McuPowerModel::msp430f1222();
        assert!((m.cycles_to_seconds(14_000).value() - 14e-3).abs() < 1e-12);
    }
}
