//! F1222-like peripherals: GPIO ports, SPI master, and the ACLK timer.

use crate::memory::io;

/// Interrupt sources, in priority order (highest first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Irq {
    /// Timer A CCR0 compare.
    TimerA,
    /// SPI transfer complete.
    Spi,
    /// Port 1 pin change.
    Port1,
    /// Port 2 pin change.
    Port2,
}

impl Irq {
    /// All interrupts, highest priority first (the order `Ord` sorts by).
    /// Rank `i` maps to bit `i` of the CPU's pending mask.
    pub const PRIORITY: [Irq; 4] = [Irq::TimerA, Irq::Spi, Irq::Port1, Irq::Port2];

    /// This interrupt's bit in the pending mask (bit = priority rank).
    pub fn mask(self) -> u8 {
        match self {
            Self::TimerA => 1 << 0,
            Self::Spi => 1 << 1,
            Self::Port1 => 1 << 2,
            Self::Port2 => 1 << 3,
        }
    }

    /// The vector address holding this interrupt's service-routine entry.
    pub fn vector(self) -> u16 {
        match self {
            Self::TimerA => crate::memory::vectors::TIMER_A,
            Self::Spi => crate::memory::vectors::SPI,
            Self::Port1 => crate::memory::vectors::PORT1,
            Self::Port2 => crate::memory::vectors::PORT2,
        }
    }
}

/// A device on the SPI bus. The MCU is the master: each transfer shifts one
/// MOSI byte out and one MISO byte in.
pub trait SpiDevice {
    /// Performs one full-duplex byte exchange.
    fn transfer(&mut self, mosi: u8) -> u8;
}

/// Blanket impl so closures can serve as simple test devices.
impl<F: FnMut(u8) -> u8> SpiDevice for F {
    fn transfer(&mut self, mosi: u8) -> u8 {
        self(mosi)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct GpioPort {
    input: u8,
    output: u8,
    direction: u8,
    ifg: u8,
    ie: u8,
}

/// The peripheral block: dispatched from the CPU's memory accesses.
pub struct Peripherals {
    p1: GpioPort,
    p2: GpioPort,
    spi_rx: u8,
    spi_busy_cycles: u32,
    spi_pending_mosi: Option<u8>,
    spi_ctl: u8,
    spi_ifg: bool,
    timer_ctl: u8,
    timer_ccr0: u16,
    timer_count: u16,
    /// MCLK cycles per ACLK tick (MCLK 1 MHz / ACLK 32768 Hz ≈ 30.5).
    aclk_ratio_num: u64,
    aclk_accum: u64,
    device: Option<Box<dyn SpiDevice>>,
}

impl core::fmt::Debug for Peripherals {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Peripherals")
            .field("p1", &self.p1)
            .field("p2", &self.p2)
            .field("spi_busy_cycles", &self.spi_busy_cycles)
            .field("timer_count", &self.timer_count)
            .finish_non_exhaustive()
    }
}

impl Peripherals {
    /// Fresh peripherals with nothing attached.
    pub fn new() -> Self {
        Self {
            p1: GpioPort::default(),
            p2: GpioPort::default(),
            spi_rx: 0,
            spi_busy_cycles: 0,
            spi_pending_mosi: None,
            spi_ctl: 0,
            spi_ifg: false,
            timer_ctl: 0,
            timer_ccr0: 0,
            timer_count: 0,
            // MCLK 1 MHz, ACLK 32768 Hz: 1e6/32768 ≈ 30.52 cycles per tick.
            aclk_ratio_num: 1_000_000,
            aclk_accum: 0,
            device: None,
        }
    }

    /// Attaches (or replaces) the SPI slave device.
    pub fn attach_spi(&mut self, device: Box<dyn SpiDevice>) {
        self.device = Some(device);
    }

    /// Whether an address belongs to the peripheral window.
    pub fn owns(addr: u16) -> bool {
        (0x0020..0x0200).contains(&addr)
    }

    /// Firmware-visible register read (byte granularity except the timer
    /// words).
    pub fn read(&self, addr: u16) -> u8 {
        match addr {
            io::P1IN => self.p1.input,
            io::P1OUT => self.p1.output,
            io::P1DIR => self.p1.direction,
            io::P1IFG => self.p1.ifg,
            io::P1IE => self.p1.ie,
            io::P2IN => self.p2.input,
            io::P2OUT => self.p2.output,
            io::P2DIR => self.p2.direction,
            io::P2IFG => self.p2.ifg,
            io::P2IE => self.p2.ie,
            io::SPIRX => self.spi_rx,
            io::SPISTAT => u8::from(self.spi_busy_cycles > 0),
            io::SPICTL => self.spi_ctl,
            io::TACTL => self.timer_ctl,
            io::TACCR0 => self.timer_ccr0 as u8,
            a if a == io::TACCR0 + 1 => (self.timer_ccr0 >> 8) as u8,
            io::TAR => self.timer_count as u8,
            a if a == io::TAR + 1 => (self.timer_count >> 8) as u8,
            _ => 0,
        }
    }

    /// Firmware-visible register write.
    pub fn write(&mut self, addr: u16, value: u8) {
        match addr {
            io::P1OUT => self.p1.output = value,
            io::P1DIR => self.p1.direction = value,
            io::P1IFG => self.p1.ifg = value,
            io::P1IE => self.p1.ie = value,
            io::P2OUT => self.p2.output = value,
            io::P2DIR => self.p2.direction = value,
            io::P2IFG => self.p2.ifg = value,
            io::P2IE => self.p2.ie = value,
            io::SPITX => {
                // Start a transfer: 8 bit-times at the divided clock.
                let div = 1u32 << (self.spi_ctl & 0x7);
                self.spi_busy_cycles = 8 * div;
                self.spi_pending_mosi = Some(value);
            }
            io::SPICTL => self.spi_ctl = value,
            io::TACTL => self.timer_ctl = value & 0b0111,
            io::TACCR0 => self.timer_ccr0 = (self.timer_ccr0 & 0xFF00) | u16::from(value),
            a if a == io::TACCR0 + 1 => {
                self.timer_ccr0 = (self.timer_ccr0 & 0x00FF) | (u16::from(value) << 8);
            }
            io::TAR => self.timer_count = (self.timer_count & 0xFF00) | u16::from(value),
            a if a == io::TAR + 1 => {
                self.timer_count = (self.timer_count & 0x00FF) | (u16::from(value) << 8);
            }
            _ => {}
        }
    }

    /// Whether a `tick` can change any state right now: the SPI engine is
    /// mid-transfer or the timer is running. When false the CPU may skip
    /// the call entirely and just advance its cycle counter — the common
    /// case for active TPMS firmware, which runs with the timer stopped
    /// and the bus idle between transfers.
    #[inline]
    pub fn needs_tick(&self) -> bool {
        self.spi_busy_cycles > 0 || self.timer_ctl & 0b001 != 0
    }

    /// Advances peripheral state by `cycles` of MCLK. `aclk_alive` is false
    /// in LPM4 (OSCOFF), which freezes the timer. Returns any interrupt
    /// that became pending.
    pub fn tick(&mut self, cycles: u32, aclk_alive: bool) -> Option<Irq> {
        let mut pending = None;

        // SPI engine.
        if self.spi_busy_cycles > 0 {
            self.spi_busy_cycles = self.spi_busy_cycles.saturating_sub(cycles);
            if self.spi_busy_cycles == 0 {
                if let Some(mosi) = self.spi_pending_mosi.take() {
                    self.spi_rx = self.device.as_mut().map_or(0xFF, |d| d.transfer(mosi));
                }
                if self.spi_ctl & 0x08 != 0 {
                    self.spi_ifg = true;
                    pending = pending.or(Some(Irq::Spi));
                }
            }
        }

        // Timer on ACLK (runs through LPM3, not LPM4).
        if aclk_alive && self.timer_ctl & 0b001 != 0 {
            self.aclk_accum += u64::from(cycles) * 32_768;
            // Subtraction instead of div/mod: per-instruction calls carry at
            // most a handful of cycles, so the accumulator crosses the ratio
            // zero or one times and the 64-bit divide is pure overhead.
            while self.aclk_accum >= self.aclk_ratio_num {
                self.aclk_accum -= self.aclk_ratio_num;
                self.timer_count = self.timer_count.wrapping_add(1);
                if self.timer_count == self.timer_ccr0 {
                    self.timer_count = 0;
                    if self.timer_ctl & 0b010 != 0 {
                        self.timer_ctl |= 0b100;
                        pending = Some(Irq::TimerA);
                    }
                }
            }
        }
        pending
    }

    /// Remaining MCLK cycles on the in-flight SPI transfer (0 when the
    /// bus is idle). Lets the CPU bound how far a fused busy-wait can
    /// fast-forward without crossing the completion event.
    #[inline]
    pub fn spi_busy_remaining(&self) -> u32 {
        self.spi_busy_cycles
    }

    /// Bulk equivalent of [`tick`](Self::tick) for spans the caller has
    /// proven completion-free: `cycles` must be strictly less than the
    /// SPI engine's remaining busy count, so the in-flight transfer
    /// cannot finish inside the span. The arithmetic is identical to
    /// ticking stepwise — the busy countdown and the ACLK accumulator
    /// are plain sums, and every CCR0 crossing latches the same
    /// interrupt it would latch per-instruction — so only the call
    /// count differs.
    pub fn tick_bulk(&mut self, cycles: u64, aclk_alive: bool) -> Option<Irq> {
        debug_assert!(cycles < u64::from(self.spi_busy_cycles));
        #[allow(clippy::cast_possible_truncation)] // < spi_busy_cycles: u32
        {
            self.spi_busy_cycles -= cycles as u32;
        }
        let mut pending = None;
        if aclk_alive && self.timer_ctl & 0b001 != 0 {
            self.aclk_accum += cycles * 32_768;
            while self.aclk_accum >= self.aclk_ratio_num {
                self.aclk_accum -= self.aclk_ratio_num;
                self.timer_count = self.timer_count.wrapping_add(1);
                if self.timer_count == self.timer_ccr0 {
                    self.timer_count = 0;
                    if self.timer_ctl & 0b010 != 0 {
                        self.timer_ctl |= 0b100;
                        pending = Some(Irq::TimerA);
                    }
                }
            }
        }
        pending
    }

    /// MCLK cycles until the timer's next CCR0 match fires an interrupt, or
    /// `None` if the timer cannot fire (stopped, masked, or clock domain
    /// dead). Used to bound sleep fast-forwarding so wake timing is exact.
    pub fn cycles_until_timer_fire(&self, aclk_alive: bool) -> Option<u64> {
        if !aclk_alive || self.timer_ctl & 0b011 != 0b011 {
            return None;
        }
        let delta = self.timer_ccr0.wrapping_sub(self.timer_count);
        let ticks = if delta == 0 {
            0x1_0000u64
        } else {
            u64::from(delta)
        };
        let need = ticks * self.aclk_ratio_num;
        Some((need - self.aclk_accum).div_ceil(32_768))
    }

    /// Drives an external pin on port 1 (bit index 0–7) from the board.
    /// A rising edge with the interrupt enabled raises `P1IFG` and returns
    /// the pending interrupt.
    pub fn set_p1_input(&mut self, bit: u8, high: bool) -> Option<Irq> {
        debug_assert!(bit < 8);
        let mask = 1u8 << bit;
        let was = self.p1.input & mask != 0;
        if high {
            self.p1.input |= mask;
        } else {
            self.p1.input &= !mask;
        }
        if high && !was && (self.p1.ie & mask != 0) {
            self.p1.ifg |= mask;
            return Some(Irq::Port1);
        }
        None
    }

    /// Drives an external pin on port 2.
    pub fn set_p2_input(&mut self, bit: u8, high: bool) -> Option<Irq> {
        debug_assert!(bit < 8);
        let mask = 1u8 << bit;
        let was = self.p2.input & mask != 0;
        if high {
            self.p2.input |= mask;
        } else {
            self.p2.input &= !mask;
        }
        if high && !was && (self.p2.ie & mask != 0) {
            self.p2.ifg |= mask;
            return Some(Irq::Port2);
        }
        None
    }

    /// Board-side view of the port 1 output pins.
    pub fn p1_output(&self) -> u8 {
        self.p1.output & self.p1.direction
    }

    /// Board-side view of the port 2 output pins.
    pub fn p2_output(&self) -> u8 {
        self.p2.output & self.p2.direction
    }

    /// Whether the SPI engine is mid-transfer.
    pub fn spi_busy(&self) -> bool {
        self.spi_busy_cycles > 0
    }

    /// Clears the SPI transfer-complete flag (read by the ISR).
    pub fn clear_spi_ifg(&mut self) {
        self.spi_ifg = false;
    }
}

impl Default for Peripherals {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpio_output_masked_by_direction() {
        let mut p = Peripherals::new();
        p.write(io::P1OUT, 0xFF);
        p.write(io::P1DIR, 0x0F);
        assert_eq!(p.p1_output(), 0x0F);
    }

    #[test]
    fn pin_change_interrupt_needs_enable() {
        let mut p = Peripherals::new();
        assert_eq!(p.set_p1_input(3, true), None); // IE clear: no interrupt
        p.set_p1_input(3, false);
        p.write(io::P1IE, 0b1000);
        assert_eq!(p.set_p1_input(3, true), Some(Irq::Port1));
        assert_eq!(p.read(io::P1IFG), 0b1000);
        // Falling edge does not re-trigger.
        assert_eq!(p.set_p1_input(3, false), None);
    }

    #[test]
    fn spi_transfer_round_trip() {
        let mut p = Peripherals::new();
        p.attach_spi(Box::new(|mosi: u8| mosi.wrapping_add(1)));
        p.write(io::SPITX, 0x41);
        assert!(p.spi_busy());
        // 8 cycles at divider 1.
        assert_eq!(p.tick(8, true), None); // interrupt not enabled
        assert!(!p.spi_busy());
        assert_eq!(p.read(io::SPIRX), 0x42);
    }

    #[test]
    fn spi_divider_stretches_transfer() {
        let mut p = Peripherals::new();
        p.attach_spi(Box::new(|_| 0u8));
        p.write(io::SPICTL, 0x03); // divider 8
        p.write(io::SPITX, 0x00);
        p.tick(32, true);
        assert!(p.spi_busy());
        p.tick(32, true);
        assert!(!p.spi_busy());
    }

    #[test]
    fn spi_completion_interrupt_when_enabled() {
        let mut p = Peripherals::new();
        p.attach_spi(Box::new(|_| 0u8));
        p.write(io::SPICTL, 0x08); // ien, divider 1
        p.write(io::SPITX, 0x00);
        assert_eq!(p.tick(8, true), Some(Irq::Spi));
    }

    #[test]
    fn spi_without_device_reads_0xff() {
        let mut p = Peripherals::new();
        p.write(io::SPITX, 0x55);
        p.tick(8, true);
        assert_eq!(p.read(io::SPIRX), 0xFF);
    }

    #[test]
    fn timer_fires_at_ccr0_on_aclk() {
        let mut p = Peripherals::new();
        p.write(io::TACCR0, 2); // fire every 2 ACLK ticks
        p.write(io::TACTL, 0b011); // run + interrupt enable
                                   // 2 ticks at 32768 Hz need ≈ 61 MCLK cycles.
        let mut fired = false;
        for _ in 0..70 {
            if p.tick(1, true) == Some(Irq::TimerA) {
                fired = true;
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn timer_frozen_without_aclk() {
        let mut p = Peripherals::new();
        p.write(io::TACCR0, 1);
        p.write(io::TACTL, 0b011);
        assert_eq!(p.tick(10_000, false), None); // LPM4: OSCOFF
        assert_eq!(p.read(io::TAR), 0);
    }

    #[test]
    fn timer_word_registers_assemble_from_bytes() {
        let mut p = Peripherals::new();
        p.write(io::TACCR0, 0x34);
        p.write(io::TACCR0 + 1, 0x12);
        assert_eq!(p.read(io::TACCR0), 0x34);
        assert_eq!(p.read(io::TACCR0 + 1), 0x12);
    }
}
