//! Instruction-set definitions and decoding for the MSP430 subset.

/// Two-operand (format I) operations, by their 4-bit opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // names are the MSP430 mnemonics
pub enum Format1Op {
    Mov,
    Add,
    Addc,
    Subc,
    Sub,
    Cmp,
    Dadd,
    Bit,
    Bic,
    Bis,
    Xor,
    And,
}

impl Format1Op {
    /// Decodes from the instruction word's top nibble (0x4–0xF).
    pub fn from_opcode(op: u16) -> Option<Self> {
        Some(match op {
            0x4 => Self::Mov,
            0x5 => Self::Add,
            0x6 => Self::Addc,
            0x7 => Self::Subc,
            0x8 => Self::Sub,
            0x9 => Self::Cmp,
            0xA => Self::Dadd,
            0xB => Self::Bit,
            0xC => Self::Bic,
            0xD => Self::Bis,
            0xE => Self::Xor,
            0xF => Self::And,
            _ => return None,
        })
    }

    /// Whether the operation writes its result back to the destination.
    pub fn writes_back(self) -> bool {
        !matches!(self, Self::Cmp | Self::Bit)
    }
}

/// Single-operand (format II) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // names are the MSP430 mnemonics
pub enum Format2Op {
    Rrc,
    Swpb,
    Rra,
    Sxt,
    Push,
    Call,
    Reti,
}

impl Format2Op {
    /// Decodes from bits 9:7 of a 0b000100… instruction word.
    pub fn from_bits(bits: u16) -> Option<Self> {
        Some(match bits {
            0 => Self::Rrc,
            1 => Self::Swpb,
            2 => Self::Rra,
            3 => Self::Sxt,
            4 => Self::Push,
            5 => Self::Call,
            6 => Self::Reti,
            _ => return None,
        })
    }
}

/// Jump conditions (bits 12:10 of a jump instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // names are the MSP430 mnemonics
pub enum Condition {
    Jnz,
    Jz,
    Jnc,
    Jc,
    Jn,
    Jge,
    Jl,
    Jmp,
}

impl Condition {
    /// Decodes from the 3-bit condition field.
    pub fn from_bits(bits: u16) -> Self {
        match bits & 0x7 {
            0 => Self::Jnz,
            1 => Self::Jz,
            2 => Self::Jnc,
            3 => Self::Jc,
            4 => Self::Jn,
            5 => Self::Jge,
            6 => Self::Jl,
            _ => Self::Jmp,
        }
    }

    /// Evaluates against the status flags.
    pub fn taken(self, sr: u16) -> bool {
        let c = sr & super::cpu::FLAG_C != 0;
        let z = sr & super::cpu::FLAG_Z != 0;
        let n = sr & super::cpu::FLAG_N != 0;
        let v = sr & super::cpu::FLAG_V != 0;
        match self {
            Self::Jnz => !z,
            Self::Jz => z,
            Self::Jnc => !c,
            Self::Jc => c,
            Self::Jn => n,
            Self::Jge => n == v,
            Self::Jl => n != v,
            Self::Jmp => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{FLAG_C, FLAG_N, FLAG_V, FLAG_Z};

    #[test]
    fn format1_decode_covers_all_opcodes() {
        for op in 0x4..=0xF {
            assert!(Format1Op::from_opcode(op).is_some());
        }
        assert!(Format1Op::from_opcode(0x3).is_none());
        assert!(Format1Op::from_opcode(0x10).is_none());
    }

    #[test]
    fn cmp_and_bit_do_not_write_back() {
        assert!(!Format1Op::Cmp.writes_back());
        assert!(!Format1Op::Bit.writes_back());
        assert!(Format1Op::Add.writes_back());
    }

    #[test]
    fn jump_conditions() {
        assert!(Condition::Jz.taken(FLAG_Z));
        assert!(!Condition::Jz.taken(0));
        assert!(Condition::Jc.taken(FLAG_C));
        assert!(Condition::Jn.taken(FLAG_N));
        assert!(Condition::Jmp.taken(0));
        // Signed comparisons: JGE is N == V.
        assert!(Condition::Jge.taken(0));
        assert!(Condition::Jge.taken(FLAG_N | FLAG_V));
        assert!(Condition::Jl.taken(FLAG_N));
        assert!(Condition::Jl.taken(FLAG_V));
    }

    #[test]
    fn format2_decode() {
        assert_eq!(Format2Op::from_bits(0), Some(Format2Op::Rrc));
        assert_eq!(Format2Op::from_bits(5), Some(Format2Op::Call));
        assert_eq!(Format2Op::from_bits(6), Some(Format2Op::Reti));
        assert_eq!(Format2Op::from_bits(7), None);
    }
}
