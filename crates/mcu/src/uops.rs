//! Pre-decoded firmware translation cache: the micro-op stream.
//!
//! Firmware is immutable after [`Mcu::load`](crate::cpu::Mcu::load), so the
//! fetch/decode work the interpreter repeats on every execution can be done
//! once, at load time. Each word-aligned address inside the image's
//! segments gets an independent decode attempt (so interleaved data tables
//! cannot desynchronize a linear sweep), producing a compact [`UInsn`] with
//!
//! * operand forms made explicit ([`SrcOp`]/[`DstOp`]): register, indexed,
//!   indirect, autoincrement, immediate;
//! * constant-generator values and every PC-dependent operand folded to
//!   constants (the PC at any point inside an instruction is static);
//! * the datasheet cycle count, fully determined by the addressing modes;
//! * a basic-block boundary marker (`ends_block`) on branches, calls,
//!   `reti` and anything that can write SR — between markers the status
//!   register cannot change, which is what lets
//!   [`Mcu::run`](crate::cpu::Mcu::run) stream a block without re-checking
//!   the sleep/fault state per instruction.
//!
//! Decoding reuses [`disasm::decode_one`] as the gatekeeper: an address
//! gets a micro-op only if the disassembler decodes it, so the decoded
//! path's coverage is exactly the interpreter's decodable set and
//! undecodable words fault through the identical interpreter path.
//!
//! The cache is a pure function of the [`Image`], which makes it shareable:
//! a process-wide registry deduplicates caches by image content, so a
//! million-node fleet running 256 distinct firmware variants builds 256
//! caches, not a million. Self-modifying code is handled in the CPU layer:
//! any write landing in [`UopCache::covers`] permanently drops that core
//! back to the interpreter (the shared cache itself is immutable).
//!
//! No JIT, no `unsafe`: this is still the same interpreter, minus the
//! per-execution fetch/decode — behavior (cycles, flags, interrupt points,
//! fault latching) is pinned bit-identical by the differential suite in
//! `tests/differential.rs` and the golden traces.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::disasm;
use crate::isa::{Condition, Format1Op, Format2Op};
use crate::memory::{FlatMemory, Image};

/// A source operand with every static part resolved at decode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SrcOp {
    /// Fully static value: constant generators (unmasked, as the
    /// interpreter leaves them), immediates (byte-masked), and
    /// register-direct PC reads folded to the known next-word address.
    Const(u16),
    /// Register direct (byte ops mask on read).
    Reg(u8),
    /// Static memory address: `&ADDR`, and the PC-relative indexed /
    /// indirect forms whose address is a pure function of the
    /// instruction's location.
    Abs(u16),
    /// Indexed `X(Rn)` with the extension word captured.
    Indexed(u8, u16),
    /// Indirect `@Rn`.
    Indirect(u8),
    /// Autoincrement `@Rn+` with the post-increment amount (1 or 2).
    AutoInc(u8, u8),
}

/// A destination operand (format I only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DstOp {
    /// Register direct (byte ops mask on read).
    Reg(u8),
    /// Register-direct PC: the read value is static, and writing it back
    /// costs the extra cycle the interpreter charges for `DstLoc::Reg(0)`
    /// (already folded into [`UInsn::cycles`]).
    PcReg(u16),
    /// Static memory address (`&ADDR`, or `X(PC)` folded).
    Mem(u16),
    /// Indexed `X(Rn)` with the extension word captured.
    Indexed(u8, u16),
}

/// One decoded instruction's operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UOp {
    /// Two-operand format I.
    Fmt1 {
        /// The ALU operation.
        op: Format1Op,
        /// Byte-width operation.
        byte: bool,
        /// Source operand.
        src: SrcOp,
        /// Destination operand.
        dst: DstOp,
    },
    /// Single-operand format II (except `reti`).
    Fmt2 {
        /// The operation.
        op: Format2Op,
        /// Byte-width operation.
        byte: bool,
        /// Raw register field — the writeback target when the operand
        /// resolved without an address (including the constant-generator
        /// quirk of writing R2/R3).
        reg: u8,
        /// Source operand.
        src: SrcOp,
    },
    /// Conditional or unconditional jump with the target pre-computed.
    Jump {
        /// The condition.
        cond: Condition,
        /// Absolute branch target.
        target: u16,
    },
    /// Return from interrupt.
    Reti,
}

/// One pre-decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct UInsn {
    /// The operation with operands resolved.
    pub op: UOp,
    /// PC after fetching the instruction and all its extension words.
    pub next_pc: u16,
    /// Datasheet cycle count (static for every addressing-mode combination).
    pub cycles: u32,
    /// Basic-block boundary: set on jumps, calls, `reti`, and any form
    /// that can write SR or PC. Between boundaries SR is invariant.
    pub ends_block: bool,
    /// Head of the two-instruction SPI busy-wait idiom
    /// (`bit.b #1, &SPISTAT` followed by a `jnz` straight back to it):
    /// [`Mcu::run_segment`](crate::cpu::Mcu::run_segment) fast-forwards the
    /// spin without per-iteration dispatch. Purely an execution hint —
    /// `step`/`run` ignore it, and the fused loop replays the exact
    /// per-instruction flags, cycles, and peripheral ticks.
    pub spin_spi: bool,
}

/// The pre-decoded micro-op table for one image: a PC-indexed slot per
/// word-aligned address in the covered flash span.
#[derive(Debug)]
pub(crate) struct UopCache {
    /// First byte address covered (even).
    base: u16,
    /// One slot per word from `base`; `None` where no instruction decodes.
    slots: Vec<Option<UInsn>>,
}

impl UopCache {
    /// Looks up the micro-op for `pc`. Odd PCs are left to the interpreter
    /// (which models the hardware's low-bit masking plus odd increments).
    #[inline]
    pub(crate) fn lookup(&self, pc: u16) -> Option<UInsn> {
        let off = pc.wrapping_sub(self.base);
        if off & 1 != 0 {
            return None;
        }
        self.slots.get(usize::from(off >> 1)).copied().flatten()
    }

    /// Whether a write to `addr` can alias bytes any cached instruction
    /// was decoded from (the self-modifying-code guard's test).
    #[inline]
    pub(crate) fn covers(&self, addr: u16) -> bool {
        usize::from(addr.wrapping_sub(self.base)) < self.slots.len() * 2
    }

    /// Number of decoded instructions (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn decoded_len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Builds the table for an image: pure function of the image bytes.
    fn build(image: &Image) -> Self {
        let Some(lo) = image.segments().iter().map(|(org, _)| *org & !1).min() else {
            return Self {
                base: 0,
                slots: Vec::new(),
            };
        };
        // Pad the top so `covers` also catches writes to extension words
        // that run past the last segment byte (size ≤ 6 from an in-segment
        // start keeps them within 4 bytes of the end).
        let hi = image
            .segments()
            .iter()
            .map(|(org, bytes)| usize::from(*org) + bytes.len())
            .max()
            .unwrap_or(usize::from(lo))
            .saturating_add(4)
            .min(0x1_0000);
        let span = hi - usize::from(lo);
        // Which bytes the image actually provides: instructions must lie
        // wholly inside loaded segments, otherwise their extension words
        // would depend on whatever the surrounding memory happens to hold.
        let mut present = vec![false; span];
        for (org, bytes) in image.segments() {
            let start = usize::from(*org) - usize::from(lo);
            for slot in present.iter_mut().skip(start).take(bytes.len()) {
                *slot = true;
            }
        }
        let mut mem = FlatMemory::new();
        mem.load(image);

        let mut slots = vec![None; span.div_ceil(2)];
        for (word, slot) in slots.iter_mut().enumerate() {
            let off = word * 2;
            let at = lo.wrapping_add(off as u16);
            if usize::from(at) + 6 > 0x1_0000 {
                continue; // an instruction here could wrap the address space
            }
            let Some(u) = decode_at(&mem, at) else {
                continue;
            };
            let size = usize::from(u.next_pc.wrapping_sub(at).max(2));
            let contained = present
                .get(off..off + size)
                .is_some_and(|bytes| bytes.iter().all(|p| *p));
            if contained {
                *slot = Some(u);
            }
        }
        let mut cache = Self { base: lo, slots };
        cache.mark_spi_spins();
        cache
    }

    /// Fusion pass: flags each `bit.b #1, &SPISTAT` whose successor is a
    /// `jnz` straight back to it — the firmware idiom for "wait until the
    /// SPI engine finishes". The flag lets the segment runner iterate the
    /// pair without per-instruction dispatch; both instructions keep their
    /// own independent slots, so single-stepping and direct jumps into the
    /// `jnz` are unaffected.
    fn mark_spi_spins(&mut self) {
        use crate::isa::Format1Op;
        use crate::memory::io;
        for i in 0..self.slots.len() {
            let Some(u) = self.slots[i] else { continue };
            let head = self.base.wrapping_add((i * 2) as u16);
            let is_poll = matches!(
                u.op,
                UOp::Fmt1 {
                    op: Format1Op::Bit,
                    byte: true,
                    src: SrcOp::Const(1),
                    dst: DstOp::Mem(io::SPISTAT),
                }
            );
            if !is_poll {
                continue;
            }
            let loops_back = matches!(
                self.lookup(u.next_pc),
                Some(UInsn {
                    op: UOp::Jump {
                        cond: Condition::Jnz,
                        target,
                    },
                    ..
                }) if target == head
            );
            if loops_back {
                if let Some(slot) = self.slots.get_mut(i).and_then(|s| s.as_mut()) {
                    slot.spin_spi = true;
                }
            }
        }
    }
}

/// Decodes the instruction at `at` into a micro-op, or `None` where the
/// interpreter would fault. [`disasm::decode_one`] is the gatekeeper, so
/// coverage is exactly the disassembler's (= the interpreter's) decodable
/// set; the field extraction mirrors `Mcu::execute` form by form.
fn decode_at(mem: &FlatMemory, at: u16) -> Option<UInsn> {
    let decoded = disasm::decode_one(mem, at).ok()?;
    let word = mem.read16(at);
    let top = word >> 12;

    // Jumps: target is a static function of the instruction address.
    if top >> 1 == 0x1 {
        let cond = Condition::from_bits((word >> 10) & 0x7);
        let mut offset = i32::from(word & 0x3FF);
        if offset & 0x200 != 0 {
            offset -= 0x400;
        }
        let target = at.wrapping_add(2).wrapping_add((2 * offset) as u16);
        return Some(UInsn {
            op: UOp::Jump { cond, target },
            next_pc: at.wrapping_add(2),
            cycles: 2,
            ends_block: true,
            spin_spi: false,
        });
    }

    // Format II.
    if top == 0x1 {
        let op = Format2Op::from_bits((word >> 7) & 0x7)?;
        if op == Format2Op::Reti {
            return Some(UInsn {
                op: UOp::Reti,
                next_pc: at.wrapping_add(2),
                cycles: 5,
                ends_block: true,
                spin_spi: false,
            });
        }
        let byte = (word >> 6) & 1 != 0;
        let as_mode = (word >> 4) & 0x3;
        let reg = word & 0xF;
        let (src, ext, src_cycles) = decode_src(mem, at, reg, as_mode, byte);
        let base = match op {
            Format2Op::Push => 3,
            Format2Op::Call => 4,
            _ => 1,
        };
        // Register-form results (no writeback address) land in the raw
        // register field; writing PC or SR ends the block, as does `call`.
        let reg_result = matches!(src, SrcOp::Const(_) | SrcOp::Reg(_))
            && matches!(
                op,
                Format2Op::Rrc | Format2Op::Rra | Format2Op::Swpb | Format2Op::Sxt
            );
        let ends_block = op == Format2Op::Call || (reg_result && (reg == 0 || reg == 2));
        debug_assert_eq!(decoded.size, 2 + 2 * ext);
        return Some(UInsn {
            op: UOp::Fmt2 {
                op,
                byte,
                reg: reg as u8,
                src,
            },
            next_pc: at.wrapping_add(2 + 2 * ext),
            cycles: base + src_cycles,
            ends_block,
            spin_spi: false,
        });
    }

    // Format I.
    let op = Format1Op::from_opcode(top)?;
    let src_reg = (word >> 8) & 0xF;
    let ad = (word >> 7) & 1;
    let byte = (word >> 6) & 1 != 0;
    let as_mode = (word >> 4) & 0x3;
    let dst_reg = word & 0xF;

    let (src, src_ext, src_cycles) = decode_src(mem, at, src_reg, as_mode, byte);
    // PC as seen by the destination resolver: after the opcode word and
    // the source's extension words.
    let dst_pc = at.wrapping_add(2 + 2 * src_ext);
    let (dst, dst_ext, dst_cycles) = if ad == 0 {
        if dst_reg == 0 {
            let v = if byte { dst_pc & 0xFF } else { dst_pc };
            (DstOp::PcReg(v), 0, 0)
        } else {
            (DstOp::Reg(dst_reg as u8), 0, 0)
        }
    } else {
        let x = mem.read16(dst_pc);
        let loc = if dst_reg == 2 {
            DstOp::Mem(x) // absolute &ADDR
        } else if dst_reg == 0 {
            // Symbolic X(PC): base is the PC after this extension word.
            DstOp::Mem(dst_pc.wrapping_add(2).wrapping_add(x))
        } else {
            DstOp::Indexed(dst_reg as u8, x)
        };
        (loc, 1, 3)
    };
    let mut cycles = 1 + src_cycles + dst_cycles;
    if matches!(dst, DstOp::PcReg(_)) && op.writes_back() {
        cycles += 1; // writing the PC costs an extra cycle
    }
    let ends_block = op.writes_back() && matches!(dst, DstOp::PcReg(_) | DstOp::Reg(2));
    debug_assert_eq!(decoded.size, 2 + 2 * (src_ext + dst_ext));
    Some(UInsn {
        op: UOp::Fmt1 { op, byte, src, dst },
        next_pc: at.wrapping_add(2 + 2 * (src_ext + dst_ext)),
        cycles,
        ends_block,
        spin_spi: false,
    })
}

/// Decodes a source operand. Returns `(op, extension words, extra cycles)`
/// mirroring `Mcu::resolve_src` case by case, with every PC-dependent form
/// folded (the PC at the extension word is `at + 2`).
fn decode_src(mem: &FlatMemory, at: u16, reg: u16, as_mode: u16, byte: bool) -> (SrcOp, u16, u32) {
    let ext_at = at.wrapping_add(2);
    let mask = |v: u16| if byte { v & 0xFF } else { v };
    match (reg, as_mode) {
        // Constant generators: the interpreter does not byte-mask these.
        (2, 0b10) => (SrcOp::Const(4), 0, 0),
        (2, 0b11) => (SrcOp::Const(8), 0, 0),
        (3, 0b00) => (SrcOp::Const(0), 0, 0),
        (3, 0b01) => (SrcOp::Const(1), 0, 0),
        (3, 0b10) => (SrcOp::Const(2), 0, 0),
        (3, 0b11) => (SrcOp::Const(0xFFFF), 0, 0),
        // Register direct; reading PC is static (byte ops mask on read).
        (0, 0b00) => (SrcOp::Const(mask(ext_at)), 0, 0),
        (r, 0b00) => (SrcOp::Reg(r as u8), 0, 0),
        // Absolute &ADDR.
        (2, 0b01) => (SrcOp::Abs(mem.read16(ext_at)), 1, 2),
        // Symbolic X(PC): base is the PC at the extension word.
        (0, 0b01) => (SrcOp::Abs(ext_at.wrapping_add(mem.read16(ext_at))), 1, 2),
        (r, 0b01) => (SrcOp::Indexed(r as u8, mem.read16(ext_at)), 1, 2),
        // Indirect @PC reads the word after the opcode.
        (0, 0b10) => (SrcOp::Abs(ext_at), 0, 1),
        (r, 0b10) => (SrcOp::Indirect(r as u8), 0, 1),
        // Immediate #N (@PC+); the interpreter byte-masks these.
        (0, 0b11) => (SrcOp::Const(mask(mem.read16(ext_at))), 1, 1),
        (r, _) => (SrcOp::AutoInc(r as u8, if byte { 1 } else { 2 }), 0, 1),
    }
}

/// Registry entry: content fingerprint, the image itself (for exact
/// equality on fingerprint collisions), and the shared cache.
type RegistryEntry = (u64, Image, Arc<UopCache>);

/// Caches are shared process-wide by image content: fleets load the same
/// few firmware variants into thousands of cores. Bounded so pathological
/// workloads (e.g. property tests generating endless distinct images)
/// cannot grow it without limit — past the cap, caches are built uncached.
const REGISTRY_CAP: usize = 4096;

fn registry() -> &'static Mutex<Vec<RegistryEntry>> {
    static REGISTRY: OnceLock<Mutex<Vec<RegistryEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// FNV-1a over the segment layout and bytes. Collisions are survivable:
/// the registry compares full image equality before sharing.
fn fingerprint(image: &Image) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (org, bytes) in image.segments() {
        eat(*org as u8);
        eat((*org >> 8) as u8);
        eat(bytes.len() as u8);
        eat((bytes.len() >> 8) as u8);
        for b in bytes {
            eat(*b);
        }
    }
    h
}

/// The shared translation cache for an image: returns the registry's copy
/// when an identical image was decoded before, else builds (outside the
/// lock) and publishes it.
pub(crate) fn cache_for(image: &Image) -> Arc<UopCache> {
    let fp = fingerprint(image);
    {
        let guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
        for (f, img, cache) in guard.iter() {
            if *f == fp && img == image {
                return Arc::clone(cache);
            }
        }
    }
    let built = Arc::new(UopCache::build(image));
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    for (f, img, cache) in guard.iter() {
        if *f == fp && img == image {
            return Arc::clone(cache); // another thread won the build race
        }
    }
    if guard.len() < REGISTRY_CAP {
        guard.push((fp, image.clone(), Arc::clone(&built)));
    }
    built
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn image(src: &str) -> Image {
        assemble(src).expect("test source assembles")
    }

    #[test]
    fn decodes_whole_firmware_span() {
        let img = crate::firmware::tpms_app(0x42).expect("firmware builds");
        let cache = UopCache::build(&img);
        // Every address the disassembler decodes inside the code segment
        // must have a micro-op with a matching size.
        let mut mem = FlatMemory::new();
        mem.load(&img);
        let (org, bytes) = img
            .segments()
            .iter()
            .find(|(org, _)| *org == 0xF000)
            .expect("code segment");
        let mut at = *org;
        let end = org + bytes.len() as u16;
        let mut checked = 0;
        while at < end {
            let d = disasm::decode_one(&mem, at).expect("firmware decodes");
            let u = cache.lookup(at).expect("cached instruction");
            assert_eq!(u.next_pc, at.wrapping_add(d.size), "size must agree");
            at = at.wrapping_add(d.size);
            checked += 1;
        }
        assert!(checked > 10, "firmware should have real code");
        assert!(cache.decoded_len() >= checked);
    }

    #[test]
    fn pc_relative_operands_fold_to_constants() {
        let img = image(
            ".org 0xF000\n\
             mov #0x1234, r4\n\
             mov pc, r5\n\
             jmp 0xF000\n",
        );
        let cache = UopCache::build(&img);
        // mov #imm: immediate folds to a constant.
        let u = cache.lookup(0xF000).expect("imm mov");
        assert!(matches!(
            u.op,
            UOp::Fmt1 {
                src: SrcOp::Const(0x1234),
                ..
            }
        ));
        assert_eq!(u.cycles, 2);
        // mov pc, r5 at 0xF004: PC reads as 0xF006.
        let u = cache.lookup(0xF004).expect("pc mov");
        assert!(matches!(
            u.op,
            UOp::Fmt1 {
                src: SrcOp::Const(0xF006),
                ..
            }
        ));
        // jmp: block boundary with a static target.
        let u = cache.lookup(0xF006).expect("jmp");
        assert!(u.ends_block);
        assert!(matches!(u.op, UOp::Jump { target: 0xF000, .. }));
    }

    #[test]
    fn sr_writes_end_blocks() {
        let img = image(
            ".org 0xF000\n\
             bis #0x00D8, r2\n\
             mov #1, r6\n\
             call #0xF000\n\
             reti\n",
        );
        let cache = UopCache::build(&img);
        assert!(cache.lookup(0xF000).expect("bis sr").ends_block);
        assert!(!cache.lookup(0xF004).expect("mov r6").ends_block);
        assert!(cache.lookup(0xF006).expect("call").ends_block);
        assert!(cache.lookup(0xF00A).expect("reti").ends_block);
    }

    #[test]
    fn data_words_get_no_slot_but_code_after_them_does() {
        let img = image(
            ".org 0xF000\n\
             jmp 0xF006\n\
             .word 0x0000\n\
             .word 0x0003\n\
             mov #1, r4\n",
        );
        let cache = UopCache::build(&img);
        assert!(cache.lookup(0xF002).is_none(), "0x0000 is undecodable");
        assert!(cache.lookup(0xF006).is_some(), "code after data decodes");
    }

    #[test]
    fn lookup_rejects_odd_and_out_of_span_pcs() {
        let img = image(".org 0xF000\nmov #1, r4\n");
        let cache = UopCache::build(&img);
        assert!(cache.lookup(0xF001).is_none());
        assert!(cache.lookup(0xE000).is_none());
        assert!(cache.lookup(0x0000).is_none());
    }

    #[test]
    fn covers_spans_segments_with_padding() {
        let img = image(".org 0xF000\nmov #1, r4\n");
        let cache = UopCache::build(&img);
        assert!(cache.covers(0xF000));
        assert!(cache.covers(0xF003)); // inside the 4-byte pad
        assert!(!cache.covers(0xEFFE));
    }

    #[test]
    fn registry_shares_identical_images() {
        let a = image(".org 0xF000\nmov #0x5A5A, r4\nmov #0x5A5A, r5\n");
        let b = image(".org 0xF000\nmov #0x5A5A, r4\nmov #0x5A5A, r5\n");
        let c = image(".org 0xF000\nmov #0x5A5B, r4\nmov #0x5A5B, r5\n");
        let ca = cache_for(&a);
        let cb = cache_for(&b);
        let cc = cache_for(&c);
        assert!(Arc::ptr_eq(&ca, &cb), "identical images share one cache");
        assert!(!Arc::ptr_eq(&ca, &cc), "different images do not");
    }

    #[test]
    fn truncated_instruction_at_segment_end_is_not_cached() {
        // `mov #imm, r4` needs an extension word; provide only the opcode
        // word so the instruction runs past the segment's bytes.
        let mut img = Image::new();
        img.push_segment(0xF000, vec![0x34, 0x40]);
        let cache = UopCache::build(&img);
        assert!(cache.lookup(0xF000).is_none());
    }
}
