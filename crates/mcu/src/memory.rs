//! The 64 KiB address space, the F1222-like I/O map, and loadable images.

/// I/O register addresses (F1222-like layout; all below 0x0200).
pub mod io {
    /// Port 1 input register (read-only from firmware).
    pub const P1IN: u16 = 0x0020;
    /// Port 1 output register.
    pub const P1OUT: u16 = 0x0021;
    /// Port 1 direction register (1 = output).
    pub const P1DIR: u16 = 0x0022;
    /// Port 1 interrupt flag register.
    pub const P1IFG: u16 = 0x0023;
    /// Port 1 interrupt enable register.
    pub const P1IE: u16 = 0x0025;
    /// Port 2 input register.
    pub const P2IN: u16 = 0x0028;
    /// Port 2 output register.
    pub const P2OUT: u16 = 0x0029;
    /// Port 2 direction register.
    pub const P2DIR: u16 = 0x002A;
    /// Port 2 interrupt flag register.
    pub const P2IFG: u16 = 0x002B;
    /// Port 2 interrupt enable register.
    pub const P2IE: u16 = 0x002D;
    /// SPI transmit buffer: writing starts a transfer.
    pub const SPITX: u16 = 0x0040;
    /// SPI receive buffer: byte clocked in by the last transfer.
    pub const SPIRX: u16 = 0x0041;
    /// SPI status: bit 0 = busy.
    pub const SPISTAT: u16 = 0x0042;
    /// SPI control: bits 2:0 = clock divider log2, bit 3 = TX-complete
    /// interrupt enable.
    pub const SPICTL: u16 = 0x0043;
    /// Timer control: bit 0 = run, bit 1 = CCR0 interrupt enable,
    /// bit 2 = CCR0 interrupt flag (write 0 to clear).
    pub const TACTL: u16 = 0x0060;
    /// Timer CCR0 compare register (word).
    pub const TACCR0: u16 = 0x0062;
    /// Timer counter (word).
    pub const TAR: u16 = 0x0064;
}

/// Interrupt vector addresses (top of memory, MSP430 convention).
pub mod vectors {
    /// Power-on reset vector.
    pub const RESET: u16 = 0xFFFE;
    /// Timer A CCR0 vector.
    pub const TIMER_A: u16 = 0xFFF0;
    /// SPI transfer-complete vector.
    pub const SPI: u16 = 0xFFEE;
    /// Port 1 pin-change vector.
    pub const PORT1: u16 = 0xFFE8;
    /// Port 2 pin-change vector.
    pub const PORT2: u16 = 0xFFE6;
}

/// A loadable program image: contiguous byte runs at absolute addresses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Image {
    segments: Vec<(u16, Vec<u8>)>,
}

impl Image {
    /// Creates an empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment at an absolute address.
    ///
    /// # Panics
    ///
    /// Panics if the segment would run past the top of the address space.
    pub fn push_segment(&mut self, org: u16, bytes: Vec<u8>) {
        assert!(
            (org as usize) + bytes.len() <= 0x1_0000,
            "segment overruns the 64 KiB address space"
        );
        self.segments.push((org, bytes));
    }

    /// The image's segments in insertion order.
    pub fn segments(&self) -> &[(u16, Vec<u8>)] {
        &self.segments
    }

    /// Total payload size in bytes.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|(_, b)| b.len()).sum()
    }

    /// Whether the image carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The flat RAM/flash backing store. I/O dispatch happens in the CPU layer;
/// this type is plain storage with word helpers (little-endian, as MSP430).
#[derive(Clone)]
pub struct FlatMemory {
    bytes: Box<[u8; 0x1_0000]>,
}

impl core::fmt::Debug for FlatMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "FlatMemory(64 KiB)")
    }
}

impl FlatMemory {
    /// Zero-filled memory.
    pub fn new() -> Self {
        Self {
            bytes: Box::new([0u8; 0x1_0000]),
        }
    }

    /// Reads one byte.
    #[inline]
    pub fn read8(&self, addr: u16) -> u8 {
        self.bytes[addr as usize]
    }

    /// Writes one byte.
    #[inline]
    pub fn write8(&mut self, addr: u16, value: u8) {
        self.bytes[addr as usize] = value;
    }

    /// Reads a little-endian word. MSP430 word accesses are even-aligned;
    /// the low bit is ignored as the hardware does.
    #[inline]
    pub fn read16(&self, addr: u16) -> u16 {
        let a = (addr & !1) as usize;
        u16::from(self.bytes[a]) | (u16::from(self.bytes[(a + 1) & 0xFFFF]) << 8)
    }

    /// Writes a little-endian word (even-aligned).
    #[inline]
    pub fn write16(&mut self, addr: u16, value: u16) {
        let a = (addr & !1) as usize;
        self.bytes[a] = value as u8;
        self.bytes[(a + 1) & 0xFFFF] = (value >> 8) as u8;
    }

    /// Copies an image into memory.
    pub fn load(&mut self, image: &Image) {
        for (org, bytes) in image.segments() {
            let start = *org as usize;
            self.bytes[start..start + bytes.len()].copy_from_slice(bytes);
        }
    }
}

impl Default for FlatMemory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_little_endian() {
        let mut m = FlatMemory::new();
        m.write16(0x0200, 0xBEEF);
        assert_eq!(m.read8(0x0200), 0xEF);
        assert_eq!(m.read8(0x0201), 0xBE);
        assert_eq!(m.read16(0x0200), 0xBEEF);
    }

    #[test]
    fn word_access_ignores_low_bit() {
        let mut m = FlatMemory::new();
        m.write16(0x0201, 0x1234);
        assert_eq!(m.read16(0x0200), 0x1234);
    }

    #[test]
    fn image_load() {
        let mut img = Image::new();
        img.push_segment(0xF000, vec![0x31, 0x40, 0x00, 0x0A]);
        img.push_segment(0xFFFE, vec![0x00, 0xF0]);
        assert_eq!(img.len(), 6);
        let mut m = FlatMemory::new();
        m.load(&img);
        assert_eq!(m.read16(0xF000), 0x4031);
        assert_eq!(m.read16(0xFFFE), 0xF000);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn oversized_segment_rejected() {
        let mut img = Image::new();
        img.push_segment(0xFFFF, vec![0, 0]);
    }
}
