//! An MSP430-subset microcontroller emulator.
//!
//! The PicoCube's controller board carries a TI MSP430-F1222, chosen "in
//! part because it provides a sub-microwatt deep sleep mode" (§4.5), with
//! firmware that is "entirely interrupt driven". Rather than scripting the
//! node's behaviour, this crate executes real firmware on an emulated
//! MSP430-class core so the quantities the paper measures — the ~14 ms
//! sample/format/transmit burst, the sub-µA sleep floor, the
//! interrupt-driven duty cycle — *emerge* from the program.
//!
//! What is modeled:
//!
//! * The 16-bit MSP430 CPU: all seven addressing modes with the R2/R3
//!   constant generators, the format-I two-operand instructions
//!   (`MOV…AND`), format-II single-operand instructions
//!   (`RRC…CALL`, `RETI`), and the jump family, with byte/word widths and
//!   approximate datasheet cycle counts.
//! * The low-power modes LPM0–LPM4 via the `CPUOFF/OSCOFF/SCG0/SCG1` bits
//!   of the status register, with a per-mode supply-current model.
//! * Interrupts with MSP430 semantics (PC/SR push, GIE clear, `RETI`
//!   restore), vectored through the top of memory.
//! * F1222-like peripherals: two GPIO ports with pin-change interrupts, a
//!   byte-wide SPI master, and a 16-bit ACLK timer that keeps running in
//!   LPM3.
//! * A two-pass assembler ([`asm::assemble`]) so firmware stays readable
//!   in tests and examples, and the stock PicoCube firmware images
//!   ([`firmware`]).
//!
//! # Examples
//!
//! ```
//! use picocube_mcu::{asm, Mcu};
//!
//! let image = asm::assemble(r#"
//!         .org 0xF000
//! start:  mov #0x0A00, r1     ; set up the stack
//!         mov #5, r4
//! loop:   dec r4
//!         jnz loop
//! done:   jmp done
//!         .vector reset, start
//! "#)?;
//!
//! let mut mcu = Mcu::new();
//! mcu.load(&image);
//! mcu.reset();
//! for _ in 0..32 { mcu.step(); }
//! assert_eq!(mcu.register(4), 0);
//! # Ok::<(), picocube_mcu::asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod disasm;
pub mod firmware;

mod cpu;
mod isa;
mod memory;
mod peripherals;
mod power_model;
mod uops;

pub use cpu::{Mcu, SegmentStop, StepResult};
pub use isa::{Condition, Format1Op, Format2Op};
pub use memory::{io, vectors, FlatMemory, Image};
pub use peripherals::{Irq, SpiDevice};
pub use power_model::{McuPowerModel, OperatingMode};
