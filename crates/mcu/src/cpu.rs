//! The MSP430-subset CPU: fetch/decode/execute with cycle accounting.

use crate::isa::{Condition, Format1Op, Format2Op};
use crate::memory::{FlatMemory, Image};
use crate::peripherals::{Irq, Peripherals, SpiDevice};
use crate::power_model::{McuPowerModel, OperatingMode};

/// Carry flag bit in `SR`.
pub const FLAG_C: u16 = 0x0001;
/// Zero flag bit in `SR`.
pub const FLAG_Z: u16 = 0x0002;
/// Negative flag bit in `SR`.
pub const FLAG_N: u16 = 0x0004;
/// Global interrupt enable bit in `SR`.
pub const FLAG_GIE: u16 = 0x0008;
/// CPU-off bit (all LPMs).
pub const FLAG_CPUOFF: u16 = 0x0010;
/// Oscillator-off bit (LPM4).
pub const FLAG_OSCOFF: u16 = 0x0020;
/// System clock generator 0 off.
pub const FLAG_SCG0: u16 = 0x0040;
/// System clock generator 1 off.
pub const FLAG_SCG1: u16 = 0x0080;
/// Overflow flag bit in `SR`.
pub const FLAG_V: u16 = 0x0100;

const PC: usize = 0;
const SP: usize = 1;
const SR: usize = 2;

/// What one [`Mcu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Executed an instruction (or serviced an interrupt) costing the given
    /// MCLK cycles.
    Ran {
        /// Cycles consumed.
        cycles: u32,
    },
    /// The core is in a low-power mode with no pending enabled interrupt.
    Sleeping(OperatingMode),
    /// The core fetched an opcode it cannot decode (treated as a fault; PC
    /// stops advancing).
    IllegalInstruction {
        /// The undecodable word.
        word: u16,
        /// Address it was fetched from.
        at: u16,
    },
}

/// The emulated microcontroller: core, memory, peripherals and clock.
pub struct Mcu {
    regs: [u16; 16],
    mem: FlatMemory,
    periph: Peripherals,
    power: McuPowerModel,
    cycles: u64,
    pending: Vec<Irq>,
    halted_on_fault: bool,
}

impl core::fmt::Debug for Mcu {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Mcu")
            .field("pc", &format_args!("{:#06x}", self.regs[PC]))
            .field("sr", &format_args!("{:#06x}", self.regs[SR]))
            .field("cycles", &self.cycles)
            .finish_non_exhaustive()
    }
}

impl Mcu {
    /// A fresh core with zeroed memory and the default F1222 power model.
    pub fn new() -> Self {
        Self::with_power_model(McuPowerModel::msp430f1222())
    }

    /// A fresh core with a custom power model.
    pub fn with_power_model(power: McuPowerModel) -> Self {
        Self {
            regs: [0; 16],
            mem: FlatMemory::new(),
            periph: Peripherals::new(),
            power,
            cycles: 0,
            pending: Vec::new(),
            halted_on_fault: false,
        }
    }

    /// Loads a program image into memory.
    pub fn load(&mut self, image: &Image) {
        self.mem.load(image);
    }

    /// Applies the reset vector: PC from `0xFFFE`, SR cleared, cycle
    /// counter zeroed (power-on reset).
    pub fn reset(&mut self) {
        self.warm_reset();
        self.cycles = 0;
    }

    /// Reset without clearing the cycle counter: what a supply supervisor's
    /// reset release looks like mid-simulation (brown-out recovery).
    pub fn warm_reset(&mut self) {
        self.regs = [0; 16];
        self.regs[PC] = self.mem.read16(crate::memory::vectors::RESET);
        self.pending.clear();
        self.halted_on_fault = false;
    }

    /// Drops all latched interrupt requests (the node uses this while the
    /// supervisor holds the part in reset during a brown-out).
    pub fn clear_pending_irqs(&mut self) {
        self.pending.clear();
    }

    /// Attaches an SPI slave.
    pub fn attach_spi(&mut self, device: Box<dyn SpiDevice>) {
        self.periph.attach_spi(device);
    }

    /// Reads a register (0 = PC, 1 = SP, 2 = SR).
    pub fn register(&self, n: usize) -> u16 {
        self.regs[n]
    }

    /// Writes a register (testing / scenario setup).
    pub fn set_register(&mut self, n: usize, value: u16) {
        self.regs[n] = value;
    }

    /// Total MCLK cycles elapsed (including slept cycles).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Reads a memory byte (board-side view; routes through peripherals).
    pub fn read_mem8(&self, addr: u16) -> u8 {
        if Peripherals::owns(addr) {
            self.periph.read(addr)
        } else {
            self.mem.read8(addr)
        }
    }

    /// Reads a memory word.
    pub fn read_mem16(&self, addr: u16) -> u16 {
        u16::from(self.read_mem8(addr & !1)) | (u16::from(self.read_mem8((addr & !1) + 1)) << 8)
    }

    /// Writes a memory byte (board-side view).
    pub fn write_mem8(&mut self, addr: u16, value: u8) {
        if Peripherals::owns(addr) {
            self.periph.write(addr, value);
        } else {
            self.mem.write8(addr, value);
        }
    }

    /// The present operating mode per the SR low-power bits.
    pub fn mode(&self) -> OperatingMode {
        let sr = self.regs[SR];
        if sr & FLAG_CPUOFF == 0 {
            OperatingMode::Active
        } else if sr & FLAG_OSCOFF != 0 {
            OperatingMode::Lpm4
        } else if sr & FLAG_SCG1 != 0 {
            OperatingMode::Lpm3
        } else {
            OperatingMode::Lpm0
        }
    }

    /// Supply current in the present mode.
    pub fn current_draw(&self) -> picocube_units::Amps {
        self.power.current(self.mode())
    }

    /// The power model in force.
    pub fn power_model(&self) -> &McuPowerModel {
        &self.power
    }

    /// Whether the SPI engine is mid-transfer (board-side visibility).
    pub fn spi_busy(&self) -> bool {
        self.periph.spi_busy()
    }

    /// Board-side GPIO: port 1 output pins.
    pub fn p1_output(&self) -> u8 {
        self.periph.p1_output()
    }

    /// Board-side GPIO: port 2 output pins.
    pub fn p2_output(&self) -> u8 {
        self.periph.p2_output()
    }

    /// Drives a port-1 input pin; may latch a pin-change interrupt.
    pub fn drive_p1(&mut self, bit: u8, high: bool) {
        if let Some(irq) = self.periph.set_p1_input(bit, high) {
            self.raise(irq);
        }
    }

    /// Drives a port-2 input pin; may latch a pin-change interrupt.
    pub fn drive_p2(&mut self, bit: u8, high: bool) {
        if let Some(irq) = self.periph.set_p2_input(bit, high) {
            self.raise(irq);
        }
    }

    /// Latches an interrupt request.
    pub fn raise(&mut self, irq: Irq) {
        if !self.pending.contains(&irq) {
            self.pending.push(irq);
            self.pending.sort();
        }
    }

    /// Whether any interrupt is latched.
    pub fn has_pending_irq(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Executes one instruction, services one interrupt, or reports sleep.
    pub fn step(&mut self) -> StepResult {
        if self.halted_on_fault {
            return StepResult::IllegalInstruction {
                word: 0,
                at: self.regs[PC],
            };
        }
        // Interrupt dispatch: GIE must be set (an interrupt also wakes any
        // LPM, clearing the low-power bits for the ISR's duration).
        if self.regs[SR] & FLAG_GIE != 0 && !self.pending.is_empty() {
            let irq = self.pending.remove(0);
            let cycles = self.enter_interrupt(irq);
            self.tick_peripherals(cycles);
            return StepResult::Ran { cycles };
        }
        if self.regs[SR] & FLAG_CPUOFF != 0 {
            return StepResult::Sleeping(self.mode());
        }
        let at = self.regs[PC];
        let word = self.fetch16();
        let cycles = match self.execute(word) {
            Some(c) => c,
            None => {
                self.halted_on_fault = true;
                self.regs[PC] = at;
                return StepResult::IllegalInstruction { word, at };
            }
        };
        self.tick_peripherals(cycles);
        StepResult::Ran { cycles }
    }

    /// Runs until the core sleeps, faults, or `max_cycles` elapse. Returns
    /// the cycles consumed.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycles;
        while self.cycles - start < max_cycles {
            match self.step() {
                StepResult::Ran { .. } => {}
                _ => break,
            }
        }
        self.cycles - start
    }

    /// Fast-forwards through a low-power period: advances the clock by up
    /// to `max_cycles` without executing instructions, ticking the timer
    /// (when its clock domain is alive) and stopping early the moment an
    /// interrupt is latched. Returns the cycles actually slept.
    ///
    /// External events (pin changes) must be injected by the caller between
    /// calls; this only models time passing.
    pub fn sleep(&mut self, max_cycles: u64) -> u64 {
        let aclk_alive = self.mode() != OperatingMode::Lpm4;
        let mut slept = 0u64;
        while slept < max_cycles {
            if !self.pending.is_empty() && self.regs[SR] & FLAG_GIE != 0 {
                break;
            }
            // Bound the quantum by the next timer match so wake timing is
            // cycle-exact rather than overshooting into the batch.
            let mut quantum = max_cycles - slept;
            if let Some(c) = self.periph.cycles_until_timer_fire(aclk_alive) {
                quantum = quantum.min(c.max(1));
            }
            let quantum = quantum.min(u64::from(u32::MAX / 2)) as u32;
            self.cycles += u64::from(quantum);
            slept += u64::from(quantum);
            if let Some(irq) = self.periph.tick(quantum, aclk_alive) {
                self.raise(irq);
                break;
            }
        }
        slept
    }

    #[inline]
    fn tick_peripherals(&mut self, cycles: u32) {
        self.cycles += u64::from(cycles);
        if !self.periph.needs_tick() {
            return; // SPI idle and timer stopped: nothing can change
        }
        let aclk_alive = self.mode() != OperatingMode::Lpm4;
        if let Some(irq) = self.periph.tick(cycles, aclk_alive) {
            self.raise(irq);
        }
    }

    fn enter_interrupt(&mut self, irq: Irq) -> u32 {
        // MSP430 sequence: push PC, push SR, clear GIE and the LPM bits (the
        // ISR runs active), vector.
        self.push(self.regs[PC]);
        self.push(self.regs[SR]);
        self.regs[SR] &= !(FLAG_GIE | FLAG_CPUOFF | FLAG_OSCOFF | FLAG_SCG0 | FLAG_SCG1);
        self.regs[PC] = self.mem.read16(irq.vector());
        if irq == Irq::Spi {
            self.periph.clear_spi_ifg();
        }
        6
    }

    fn push(&mut self, value: u16) {
        self.regs[SP] = self.regs[SP].wrapping_sub(2);
        self.mem_write16(self.regs[SP], value);
    }

    fn pop(&mut self) -> u16 {
        let v = self.mem_read16(self.regs[SP]);
        self.regs[SP] = self.regs[SP].wrapping_add(2);
        v
    }

    fn fetch16(&mut self) -> u16 {
        let w = self.mem.read16(self.regs[PC]);
        self.regs[PC] = self.regs[PC].wrapping_add(2);
        w
    }

    fn mem_read16(&self, addr: u16) -> u16 {
        if Peripherals::owns(addr) {
            u16::from(self.periph.read(addr)) | (u16::from(self.periph.read(addr + 1)) << 8)
        } else {
            self.mem.read16(addr)
        }
    }

    fn mem_write16(&mut self, addr: u16, value: u16) {
        if Peripherals::owns(addr) {
            self.periph.write(addr, value as u8);
            self.periph.write(addr + 1, (value >> 8) as u8);
        } else {
            self.mem.write16(addr, value);
        }
    }

    fn mem_read(&self, addr: u16, byte: bool) -> u16 {
        if byte {
            u16::from(if Peripherals::owns(addr) {
                self.periph.read(addr)
            } else {
                self.mem.read8(addr)
            })
        } else {
            self.mem_read16(addr)
        }
    }

    fn mem_write(&mut self, addr: u16, value: u16, byte: bool) {
        if byte {
            if Peripherals::owns(addr) {
                self.periph.write(addr, value as u8);
            } else {
                self.mem.write8(addr, value as u8);
            }
        } else {
            self.mem_write16(addr, value);
        }
    }

    /// Resolves a source operand. Returns `(value, write_back_addr, extra_cycles)`.
    fn resolve_src(&mut self, reg: usize, as_mode: u16, byte: bool) -> (u16, Option<u16>, u32) {
        match (reg, as_mode) {
            // Constant generators.
            (SR, 0b10) => (4, None, 0),
            (SR, 0b11) => (8, None, 0),
            (3, 0b00) => (0, None, 0),
            (3, 0b01) => (1, None, 0),
            (3, 0b10) => (2, None, 0),
            (3, 0b11) => (0xFFFF, None, 0),
            // Register direct.
            (r, 0b00) => {
                let v = self.regs[r];
                (if byte { v & 0xFF } else { v }, None, 0)
            }
            // Absolute &ADDR (SR with indexed mode).
            (SR, 0b01) => {
                let addr = self.fetch16();
                (self.mem_read(addr, byte), Some(addr), 2)
            }
            // Indexed X(Rn) — including symbolic X(PC), where the base is
            // the PC at the extension word.
            (r, 0b01) => {
                let base = self.regs[r];
                let x = self.fetch16();
                let addr = base.wrapping_add(x);
                (self.mem_read(addr, byte), Some(addr), 2)
            }
            // Indirect @Rn.
            (r, 0b10) => {
                let addr = self.regs[r];
                (self.mem_read(addr, byte), Some(addr), 1)
            }
            // Immediate #N (@PC+).
            (PC, 0b11) => {
                let v = self.fetch16();
                (if byte { v & 0xFF } else { v }, None, 1)
            }
            // Indirect autoincrement @Rn+.
            (r, 0b11) => {
                let addr = self.regs[r];
                self.regs[r] = self.regs[r].wrapping_add(if byte { 1 } else { 2 });
                (self.mem_read(addr, byte), Some(addr), 1)
            }
            _ => unreachable!("2-bit addressing mode"),
        }
    }

    /// Resolves a destination operand location: register index or address.
    fn resolve_dst(&mut self, reg: usize, ad: u16, byte: bool) -> (u16, DstLoc, u32) {
        if ad == 0 {
            let v = self.regs[reg];
            (if byte { v & 0xFF } else { v }, DstLoc::Reg(reg), 0)
        } else {
            let x = self.fetch16();
            let addr = if reg == SR {
                x
            } else {
                self.regs[reg].wrapping_add(x)
            };
            (self.mem_read(addr, byte), DstLoc::Mem(addr), 3)
        }
    }

    fn write_dst(&mut self, loc: DstLoc, value: u16, byte: bool) {
        match loc {
            DstLoc::Reg(r) => self.regs[r] = if byte { value & 0xFF } else { value },
            DstLoc::Mem(a) => self.mem_write(a, value, byte),
        }
    }

    fn set_flags_logic(&mut self, result: u16, byte: bool, v: bool) {
        let msb = if byte { 0x80 } else { 0x8000 };
        let masked = if byte { result & 0xFF } else { result };
        let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N | FLAG_V);
        if masked == 0 {
            sr |= FLAG_Z;
        } else {
            sr |= FLAG_C; // MSP430: C = !Z for logic ops
        }
        if masked & msb != 0 {
            sr |= FLAG_N;
        }
        if v {
            sr |= FLAG_V;
        }
        self.regs[SR] = sr;
    }

    fn add_with_flags(&mut self, dst: u16, src: u16, carry_in: u16, byte: bool) -> u16 {
        let mask: u32 = if byte { 0xFF } else { 0xFFFF };
        let msb: u32 = if byte { 0x80 } else { 0x8000 };
        let d = u32::from(dst) & mask;
        let s = u32::from(src) & mask;
        let c = u32::from(carry_in);
        let full = d + s + c;
        let result = full & mask;
        let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N | FLAG_V);
        if full > mask {
            sr |= FLAG_C;
        }
        if result == 0 {
            sr |= FLAG_Z;
        }
        if result & msb != 0 {
            sr |= FLAG_N;
        }
        if (d ^ result) & (s ^ result) & msb != 0 {
            sr |= FLAG_V;
        }
        self.regs[SR] = sr;
        result as u16
    }

    fn dadd_with_flags(&mut self, dst: u16, src: u16, byte: bool) -> u16 {
        // BCD addition, digit at a time, including incoming carry.
        let digits = if byte { 2 } else { 4 };
        let mut carry = u16::from(self.regs[SR] & FLAG_C != 0);
        let mut result: u16 = 0;
        for i in 0..digits {
            let shift = 4 * i;
            let a = (dst >> shift) & 0xF;
            let b = (src >> shift) & 0xF;
            let mut sum = a + b + carry;
            carry = if sum > 9 {
                sum -= 10;
                1
            } else {
                0
            };
            result |= sum << shift;
        }
        let msb = if byte { 0x80 } else { 0x8000 };
        let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N);
        if carry != 0 {
            sr |= FLAG_C;
        }
        if result == 0 {
            sr |= FLAG_Z;
        }
        if result & msb != 0 {
            sr |= FLAG_N;
        }
        self.regs[SR] = sr;
        result
    }

    fn execute(&mut self, word: u16) -> Option<u32> {
        let top = word >> 12;
        if top == 0x1 {
            return self.execute_format2(word);
        }
        if top >> 1 == 0x1 {
            // 0x2000..=0x3FFF: jumps.
            let cond = Condition::from_bits((word >> 10) & 0x7);
            let mut offset = i32::from(word & 0x3FF);
            if offset & 0x200 != 0 {
                offset -= 0x400;
            }
            if cond.taken(self.regs[SR]) {
                self.regs[PC] = self.regs[PC].wrapping_add((2 * offset) as u16);
            }
            return Some(2);
        }
        let op = Format1Op::from_opcode(top)?;
        let src_reg = usize::from((word >> 8) & 0xF);
        let ad = (word >> 7) & 1;
        let byte = (word >> 6) & 1 != 0;
        let as_mode = (word >> 4) & 0x3;
        let dst_reg = usize::from(word & 0xF);

        let (src, _, src_cycles) = self.resolve_src(src_reg, as_mode, byte);
        let (dst, loc, dst_cycles) = self.resolve_dst(dst_reg, ad, byte);

        let carry = u16::from(self.regs[SR] & FLAG_C != 0);
        let result = match op {
            Format1Op::Mov => src,
            Format1Op::Add => self.add_with_flags(dst, src, 0, byte),
            Format1Op::Addc => self.add_with_flags(dst, src, carry, byte),
            Format1Op::Sub => self.add_with_flags(dst, !src, 1, byte),
            Format1Op::Subc => self.add_with_flags(dst, !src, carry, byte),
            Format1Op::Cmp => {
                self.add_with_flags(dst, !src, 1, byte);
                dst
            }
            Format1Op::Dadd => self.dadd_with_flags(dst, src, byte),
            Format1Op::Bit => {
                let r = src & dst;
                self.set_flags_logic(r, byte, false);
                dst
            }
            Format1Op::Bic => dst & !src,
            Format1Op::Bis => dst | src,
            Format1Op::Xor => {
                let msb = if byte { 0x80 } else { 0x8000 };
                let v = (src & msb != 0) && (dst & msb != 0);
                let r = src ^ dst;
                self.set_flags_logic(r, byte, v);
                r
            }
            Format1Op::And => {
                let r = src & dst;
                self.set_flags_logic(r, byte, false);
                r
            }
        };
        if op.writes_back() {
            self.write_dst(loc, result, byte);
        }
        let mut cycles = 1 + src_cycles + dst_cycles;
        if matches!(loc, DstLoc::Reg(0)) && op.writes_back() {
            cycles += 1; // writing the PC costs an extra cycle
        }
        Some(cycles)
    }

    fn execute_format2(&mut self, word: u16) -> Option<u32> {
        let opbits = (word >> 7) & 0x7;
        let op = Format2Op::from_bits(opbits)?;
        if op == Format2Op::Reti {
            self.regs[SR] = self.pop();
            self.regs[PC] = self.pop();
            return Some(5);
        }
        let byte = (word >> 6) & 1 != 0;
        let as_mode = (word >> 4) & 0x3;
        let reg = usize::from(word & 0xF);
        let (value, addr, src_cycles) = self.resolve_src(reg, as_mode, byte);
        let write = |cpu: &mut Self, v: u16| {
            if let Some(a) = addr {
                cpu.mem_write(a, v, byte);
            } else {
                cpu.regs[reg] = if byte { v & 0xFF } else { v };
            }
        };
        let msb = if byte { 0x80u16 } else { 0x8000 };
        match op {
            Format2Op::Rrc => {
                let carry_in = self.regs[SR] & FLAG_C != 0;
                let carry_out = value & 1 != 0;
                let mut r = value >> 1;
                if byte {
                    r &= 0x7F;
                }
                if carry_in {
                    r |= msb;
                }
                let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N | FLAG_V);
                if carry_out {
                    sr |= FLAG_C;
                }
                if r == 0 {
                    sr |= FLAG_Z;
                }
                if r & msb != 0 {
                    sr |= FLAG_N;
                }
                self.regs[SR] = sr;
                write(self, r);
                Some(1 + src_cycles)
            }
            Format2Op::Rra => {
                let carry_out = value & 1 != 0;
                let sign = value & msb;
                let mut r = (value >> 1) | sign;
                if byte {
                    r &= 0xFF;
                }
                let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N | FLAG_V);
                if carry_out {
                    sr |= FLAG_C;
                }
                if r == 0 {
                    sr |= FLAG_Z;
                }
                if r & msb != 0 {
                    sr |= FLAG_N;
                }
                self.regs[SR] = sr;
                write(self, r);
                Some(1 + src_cycles)
            }
            Format2Op::Swpb => {
                let r = value.rotate_left(8);
                write(self, r);
                Some(1 + src_cycles)
            }
            Format2Op::Sxt => {
                let r = if value & 0x80 != 0 {
                    value | 0xFF00
                } else {
                    value & 0x00FF
                };
                self.set_flags_logic(r, false, false);
                write(self, r);
                Some(1 + src_cycles)
            }
            Format2Op::Push => {
                self.push(value);
                Some(3 + src_cycles)
            }
            Format2Op::Call => {
                self.push(self.regs[PC]);
                self.regs[PC] = value;
                Some(4 + src_cycles)
            }
            Format2Op::Reti => unreachable!("handled above"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum DstLoc {
    Reg(usize),
    Mem(u16),
}

impl Default for Mcu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn boot(src: &str) -> Mcu {
        let image = assemble(src).expect("test program must assemble");
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        mcu
    }

    fn run_steps(mcu: &mut Mcu, n: usize) {
        for _ in 0..n {
            if !matches!(mcu.step(), StepResult::Ran { .. }) {
                break;
            }
        }
    }

    #[test]
    fn mov_immediate_and_register() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x1234, r4
        mov r4, r5
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(4), 0x1234);
        assert_eq!(mcu.register(5), 0x1234);
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0xFFFF, r4
        add #1, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 2);
        assert_eq!(mcu.register(4), 0);
        assert_ne!(mcu.register(2) & FLAG_C, 0);
        assert_ne!(mcu.register(2) & FLAG_Z, 0);
        assert_eq!(mcu.register(2) & FLAG_V, 0);
    }

    #[test]
    fn signed_overflow_detected() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x7FFF, r4
        add #1, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 2);
        assert_eq!(mcu.register(4), 0x8000);
        assert_ne!(mcu.register(2) & FLAG_V, 0);
        assert_ne!(mcu.register(2) & FLAG_N, 0);
    }

    #[test]
    fn sub_and_cmp_borrow_semantics() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #5, r4
        sub #3, r4
        cmp #2, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(4), 2);
        // CMP equal: Z set, C set (no borrow).
        assert_ne!(mcu.register(2) & FLAG_Z, 0);
        assert_ne!(mcu.register(2) & FLAG_C, 0);
    }

    #[test]
    fn byte_ops_clear_high_byte_in_registers() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0xABCD, r4
        mov.b #0x12, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 2);
        assert_eq!(mcu.register(4), 0x0012);
    }

    #[test]
    fn memory_indexed_and_absolute() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0200, r4
        mov #0xBEEF, 2(r4)
        mov &0x0202, r5
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(5), 0xBEEF);
        assert_eq!(mcu.read_mem16(0x0202), 0xBEEF);
    }

    #[test]
    fn autoincrement_walks_a_table() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #table, r4
        mov @r4+, r5
        mov @r4+, r6
halt:   jmp halt
table:  .word 0x1111
        .word 0x2222
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(5), 0x1111);
        assert_eq!(mcu.register(6), 0x2222);
    }

    #[test]
    fn loop_with_jnz() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #10, r4
        mov #0, r5
loop:   add #3, r5
        dec r4
        jnz loop
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 100);
        assert_eq!(mcu.register(5), 30);
        assert_eq!(mcu.register(4), 0);
    }

    #[test]
    fn call_and_ret() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        call #sub
        mov #1, r6
halt:   jmp halt
sub:    mov #42, r5
        ret
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 6);
        assert_eq!(mcu.register(5), 42);
        assert_eq!(mcu.register(6), 1);
    }

    #[test]
    fn push_pop_stack_discipline() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0x1111, r4
        push r4
        mov #0x2222, r4
        pop r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 5);
        assert_eq!(mcu.register(4), 0x1111);
        assert_eq!(mcu.register(1), 0x0A00);
    }

    #[test]
    fn rra_rrc_swpb_sxt() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x8004, r4
        rra r4
        mov #0x0001, r5
        rrc r5
        mov #0x1234, r6
        swpb r6
        mov #0x0080, r7
        sxt r7
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 8);
        assert_eq!(mcu.register(4), 0xC002); // arithmetic shift keeps sign
                                             // RRC shifted the old C (0) in; C now holds the shifted-out 1.
        assert_eq!(mcu.register(5), 0x0000);
        assert_ne!(mcu.register(2) & FLAG_C, 0);
        assert_eq!(mcu.register(6), 0x3412);
        assert_eq!(mcu.register(7), 0xFF80);
    }

    #[test]
    fn dadd_bcd_arithmetic() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  clrc
        mov #0x0199, r4
        dadd #0x0001, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(4), 0x0200); // BCD 199 + 1 = 200
    }

    #[test]
    fn constant_generators_cost_nothing_extra() {
        // #4 and #8 come from R2, #0/#1/#2/#-1 from R3 — no extension word.
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #4, r4
        mov #8, r5
        mov #-1, r6
halt:   jmp halt
        .vector reset, start
        "#,
        );
        let pc0 = mcu.register(0);
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(4), 4);
        assert_eq!(mcu.register(5), 8);
        assert_eq!(mcu.register(6), 0xFFFF);
        // Three single-word instructions: PC advanced 6 bytes.
        assert_eq!(mcu.register(0), pc0.wrapping_add(6));
    }

    #[test]
    fn interrupt_enters_and_returns() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0, r5
        eint
loop:   jmp loop
isr:    mov #99, r5
        reti
        .vector reset, start
        .vector port1, isr
        "#,
        );
        run_steps(&mut mcu, 5);
        mcu.raise(Irq::Port1);
        run_steps(&mut mcu, 4); // enter ISR, mov, reti
        assert_eq!(mcu.register(5), 99);
        // Back in the loop with GIE restored.
        assert_ne!(mcu.register(2) & FLAG_GIE, 0);
    }

    #[test]
    fn interrupt_requires_gie() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0, r5
loop:   jmp loop
isr:    mov #99, r5
        reti
        .vector reset, start
        .vector port1, isr
        "#,
        );
        run_steps(&mut mcu, 3);
        mcu.raise(Irq::Port1);
        run_steps(&mut mcu, 5);
        assert_eq!(mcu.register(5), 0, "ISR must not run with GIE clear");
    }

    #[test]
    fn lpm3_sleep_and_wake() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0, r5
        bis #0x00D8, r2      ; LPM3 + GIE: CPUOFF|SCG1|SCG0|GIE
        mov #1, r6           ; runs only after wake + ISR clears LPM
done:   jmp done
isr:    mov #7, r5
        bic #0x00F0, 0(r1)   ; clear LPM bits in the saved SR
        reti
        .vector reset, start
        .vector port1, isr
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.mode(), OperatingMode::Lpm3);
        assert!(matches!(
            mcu.step(),
            StepResult::Sleeping(OperatingMode::Lpm3)
        ));
        // Time passes; nothing happens.
        assert_eq!(mcu.sleep(1_000_000), 1_000_000);
        // External wake (the SP12's 6-second interrupt line).
        mcu.drive_p1(0, true);
        // The pin change has no IE bit set in this minimal program, so
        // raise directly as the board would through a latched line.
        mcu.raise(Irq::Port1);
        run_steps(&mut mcu, 10);
        assert_eq!(mcu.register(5), 7);
        assert_eq!(mcu.mode(), OperatingMode::Active);
        assert_eq!(mcu.register(6), 1);
    }

    #[test]
    fn sleep_mode_current_draws_differ() {
        let mcu = Mcu::new();
        let active = mcu.power_model().current(OperatingMode::Active);
        let lpm3 = mcu.power_model().current(OperatingMode::Lpm3);
        let lpm4 = mcu.power_model().current(OperatingMode::Lpm4);
        assert!(active.value() / lpm3.value() > 100.0);
        assert!(lpm3 > lpm4);
    }

    #[test]
    fn illegal_instruction_faults_and_sticks() {
        let mut mcu = Mcu::new();
        // Memory is zero: opcode 0x0000 is undecodable.
        mcu.set_register(0, 0x0200);
        let r = mcu.step();
        assert!(matches!(r, StepResult::IllegalInstruction { word: 0, .. }));
        assert!(matches!(mcu.step(), StepResult::IllegalInstruction { .. }));
    }

    #[test]
    fn gpio_visible_to_board() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov.b #0xFF, &0x0022  ; P1DIR all out
        mov.b #0x05, &0x0021  ; P1OUT
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 2);
        assert_eq!(mcu.p1_output(), 0x05);
    }

    #[test]
    fn spi_roundtrip_through_firmware() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov.b #0x41, &0x0040  ; SPITX
wait:   bit.b #1, &0x0042     ; SPISTAT busy?
        jnz wait
        mov.b &0x0041, r5     ; SPIRX
halt:   jmp halt
        .vector reset, start
        "#,
        );
        mcu.attach_spi(Box::new(|mosi: u8| mosi ^ 0xFF));
        run_steps(&mut mcu, 50);
        assert_eq!(mcu.register(5) & 0xFF, 0xBE);
    }

    #[test]
    fn cycle_counts_are_plausible() {
        // reg→reg MOV costs 1 cycle; immediate→reg costs 2.
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov r4, r5
        mov #0x1234, r6
halt:   jmp halt
        .vector reset, start
        "#,
        );
        let StepResult::Ran { cycles: c1 } = mcu.step() else {
            panic!("step 1")
        };
        let StepResult::Ran { cycles: c2 } = mcu.step() else {
            panic!("step 2")
        };
        assert_eq!(c1, 1);
        assert_eq!(c2, 2);
    }

    #[test]
    fn timer_wakes_lpm3_via_sleep() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0, r5
        mov #32, &0x0062      ; TACCR0 = 32 ACLK ticks (~1 ms)
        mov.b #3, &0x0060     ; TACTL: run + interrupt
        bis #0x00D8, r2       ; LPM3 + GIE
        mov #1, r6
done:   jmp done
isr:    mov #5, r5
        bic #0x00F0, 0(r1)
        reti
        .vector reset, start
        .vector timera, isr
        "#,
        );
        run_steps(&mut mcu, 5);
        assert_eq!(mcu.mode(), OperatingMode::Lpm3);
        // ~32 ACLK ticks ≈ 977 µs ≈ 977 cycles at 1 MHz.
        let slept = mcu.sleep(10_000);
        assert!(slept < 10_000, "timer should cut the sleep short");
        run_steps(&mut mcu, 10);
        assert_eq!(mcu.register(5), 5);
        assert_eq!(mcu.register(6), 1);
    }
}
