//! The MSP430-subset CPU: fetch/decode/execute with cycle accounting.

use crate::isa::{Condition, Format1Op, Format2Op};
use crate::memory::{FlatMemory, Image};
use crate::peripherals::{Irq, Peripherals, SpiDevice};
use crate::power_model::{McuPowerModel, OperatingMode};

/// Carry flag bit in `SR`.
pub const FLAG_C: u16 = 0x0001;
/// Zero flag bit in `SR`.
pub const FLAG_Z: u16 = 0x0002;
/// Negative flag bit in `SR`.
pub const FLAG_N: u16 = 0x0004;
/// Global interrupt enable bit in `SR`.
pub const FLAG_GIE: u16 = 0x0008;
/// CPU-off bit (all LPMs).
pub const FLAG_CPUOFF: u16 = 0x0010;
/// Oscillator-off bit (LPM4).
pub const FLAG_OSCOFF: u16 = 0x0020;
/// System clock generator 0 off.
pub const FLAG_SCG0: u16 = 0x0040;
/// System clock generator 1 off.
pub const FLAG_SCG1: u16 = 0x0080;
/// Overflow flag bit in `SR`.
pub const FLAG_V: u16 = 0x0100;

const PC: usize = 0;
const SP: usize = 1;
const SR: usize = 2;

/// What one [`Mcu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Executed an instruction (or serviced an interrupt) costing the given
    /// MCLK cycles.
    Ran {
        /// Cycles consumed.
        cycles: u32,
    },
    /// The core is in a low-power mode with no pending enabled interrupt.
    Sleeping(OperatingMode),
    /// The core fetched an opcode it cannot decode (treated as a fault; PC
    /// stops advancing).
    IllegalInstruction {
        /// The undecodable word.
        word: u16,
        /// Address it was fetched from.
        at: u16,
    },
}

/// Why a [`Mcu::run_segment`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentStop {
    /// The cycle or instruction budget ran out.
    Budget,
    /// A board-observable output changed — GPIO output pins, SPI engine
    /// activity, or the operating mode — so the caller must re-sample the
    /// world before executing further.
    Observable,
    /// The core is parked in a low-power mode with no serviceable
    /// interrupt (the [`StepResult::Sleeping`] condition).
    Sleeping(OperatingMode),
    /// The core latched an illegal-instruction fault. Cycle deltas for
    /// instructions that ran before the fault are still recorded.
    Fault {
        /// The undecodable word.
        word: u16,
        /// Address it was fetched from.
        at: u16,
    },
}

/// The emulated microcontroller: core, memory, peripherals and clock.
pub struct Mcu {
    regs: [u16; 16],
    mem: FlatMemory,
    periph: Peripherals,
    power: McuPowerModel,
    cycles: u64,
    /// Latched interrupt requests, one bit per [`Irq`] priority rank
    /// (bit 0 = highest). Dispatch takes the lowest set bit.
    pending: u8,
    halted_on_fault: bool,
    /// Pre-decoded micro-op stream for the loaded image, shared across
    /// cores running identical firmware.
    uops: Option<std::sync::Arc<crate::uops::UopCache>>,
    /// Whether the decoded path may be used. Cleared on any write into
    /// the cached flash span (self-modifying code falls back to the
    /// interpreter for the rest of the run).
    uops_on: bool,
    /// Latched by the self-modifying-code guard: some write landed in the
    /// cached flash span, so the cache no longer matches memory.
    flash_dirty: bool,
}

impl core::fmt::Debug for Mcu {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Mcu")
            .field("pc", &format_args!("{:#06x}", self.regs[PC]))
            .field("sr", &format_args!("{:#06x}", self.regs[SR]))
            .field("cycles", &self.cycles)
            .finish_non_exhaustive()
    }
}

impl Mcu {
    /// A fresh core with zeroed memory and the default F1222 power model.
    pub fn new() -> Self {
        Self::with_power_model(McuPowerModel::msp430f1222())
    }

    /// A fresh core with a custom power model.
    pub fn with_power_model(power: McuPowerModel) -> Self {
        Self {
            regs: [0; 16],
            mem: FlatMemory::new(),
            periph: Peripherals::new(),
            power,
            cycles: 0,
            pending: 0,
            halted_on_fault: false,
            uops: None,
            uops_on: false,
            flash_dirty: false,
        }
    }

    /// Loads a program image into memory and pre-decodes it into the
    /// translation cache. Loading a second image replaces the cache, so
    /// only the most recent image executes through the decoded path.
    pub fn load(&mut self, image: &Image) {
        self.mem.load(image);
        // Every decoded instruction lies wholly inside the image's segments,
        // which this load just (re)wrote, so any earlier dirtying is moot.
        self.uops = Some(crate::uops::cache_for(image));
        self.uops_on = true;
        self.flash_dirty = false;
    }

    /// Enables or disables the pre-decoded translation cache (testing /
    /// benchmarking hook; both paths are bit-identical). Re-enabling
    /// after a write into cached flash is unsupported — the cache would
    /// be stale — so `true` only takes effect while the image is intact.
    pub fn set_translation(&mut self, on: bool) {
        if on {
            self.uops_on = self.uops.is_some() && !self.flash_dirty;
        } else {
            self.uops_on = false;
        }
    }

    /// Applies the reset vector: PC from `0xFFFE`, SR cleared, cycle
    /// counter zeroed (power-on reset).
    pub fn reset(&mut self) {
        self.warm_reset();
        self.cycles = 0;
    }

    /// Reset without clearing the cycle counter: what a supply supervisor's
    /// reset release looks like mid-simulation (brown-out recovery).
    pub fn warm_reset(&mut self) {
        self.regs = [0; 16];
        self.regs[PC] = self.mem.read16(crate::memory::vectors::RESET);
        self.pending = 0;
        self.halted_on_fault = false;
    }

    /// Drops all latched interrupt requests (the node uses this while the
    /// supervisor holds the part in reset during a brown-out).
    pub fn clear_pending_irqs(&mut self) {
        self.pending = 0;
    }

    /// Attaches an SPI slave.
    pub fn attach_spi(&mut self, device: Box<dyn SpiDevice>) {
        self.periph.attach_spi(device);
    }

    /// Reads a register (0 = PC, 1 = SP, 2 = SR).
    pub fn register(&self, n: usize) -> u16 {
        self.regs[n]
    }

    /// Writes a register (testing / scenario setup).
    pub fn set_register(&mut self, n: usize, value: u16) {
        self.regs[n] = value;
    }

    /// Total MCLK cycles elapsed (including slept cycles).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Reads a memory byte (board-side view; routes through peripherals).
    pub fn read_mem8(&self, addr: u16) -> u8 {
        if Peripherals::owns(addr) {
            self.periph.read(addr)
        } else {
            self.mem.read8(addr)
        }
    }

    /// Reads a memory word.
    pub fn read_mem16(&self, addr: u16) -> u16 {
        u16::from(self.read_mem8(addr & !1)) | (u16::from(self.read_mem8((addr & !1) + 1)) << 8)
    }

    /// Writes a memory byte (board-side view).
    pub fn write_mem8(&mut self, addr: u16, value: u8) {
        if Peripherals::owns(addr) {
            self.periph.write(addr, value);
        } else {
            self.invalidate_uops(addr);
            self.mem.write8(addr, value);
        }
    }

    /// Self-modifying-code guard: a write into the cached flash span makes
    /// the pre-decoded stream stale, so the core permanently drops back to
    /// the interpreter (which reads memory as written).
    #[inline]
    fn invalidate_uops(&mut self, addr: u16) {
        if self.uops_on && self.uops.as_ref().is_some_and(|c| c.covers(addr)) {
            self.uops_on = false;
            self.flash_dirty = true;
        }
    }

    /// The present operating mode per the SR low-power bits.
    pub fn mode(&self) -> OperatingMode {
        let sr = self.regs[SR];
        if sr & FLAG_CPUOFF == 0 {
            OperatingMode::Active
        } else if sr & FLAG_OSCOFF != 0 {
            OperatingMode::Lpm4
        } else if sr & FLAG_SCG1 != 0 {
            OperatingMode::Lpm3
        } else {
            OperatingMode::Lpm0
        }
    }

    /// Supply current in the present mode.
    pub fn current_draw(&self) -> picocube_units::Amps {
        self.power.current(self.mode())
    }

    /// The power model in force.
    pub fn power_model(&self) -> &McuPowerModel {
        &self.power
    }

    /// Whether the SPI engine is mid-transfer (board-side visibility).
    pub fn spi_busy(&self) -> bool {
        self.periph.spi_busy()
    }

    /// Board-side GPIO: port 1 output pins.
    pub fn p1_output(&self) -> u8 {
        self.periph.p1_output()
    }

    /// Board-side GPIO: port 2 output pins.
    pub fn p2_output(&self) -> u8 {
        self.periph.p2_output()
    }

    /// Drives a port-1 input pin; may latch a pin-change interrupt.
    pub fn drive_p1(&mut self, bit: u8, high: bool) {
        if let Some(irq) = self.periph.set_p1_input(bit, high) {
            self.raise(irq);
        }
    }

    /// Drives a port-2 input pin; may latch a pin-change interrupt.
    pub fn drive_p2(&mut self, bit: u8, high: bool) {
        if let Some(irq) = self.periph.set_p2_input(bit, high) {
            self.raise(irq);
        }
    }

    /// Latches an interrupt request. Latching an already-pending request
    /// is idempotent (the bit is simply set again).
    pub fn raise(&mut self, irq: Irq) {
        self.pending |= irq.mask();
    }

    /// Whether any interrupt is latched.
    pub fn has_pending_irq(&self) -> bool {
        self.pending != 0
    }

    /// Executes one instruction, services one interrupt, or reports sleep.
    pub fn step(&mut self) -> StepResult {
        if self.halted_on_fault {
            return StepResult::IllegalInstruction {
                word: 0,
                at: self.regs[PC],
            };
        }
        // Interrupt dispatch: GIE must be set (an interrupt also wakes any
        // LPM, clearing the low-power bits for the ISR's duration). The
        // lowest set bit of the pending mask is the highest-priority
        // request — same order the sorted-vector queue used to dispatch.
        if self.pending != 0 && self.regs[SR] & FLAG_GIE != 0 {
            for irq in Irq::PRIORITY {
                if self.pending & irq.mask() != 0 {
                    self.pending &= !irq.mask();
                    let cycles = self.enter_interrupt(irq);
                    self.tick_peripherals(cycles);
                    return StepResult::Ran { cycles };
                }
            }
        }
        if self.regs[SR] & FLAG_CPUOFF != 0 {
            return StepResult::Sleeping(self.mode());
        }
        // Decoded fast path: firmware is immutable after load, so the
        // pre-decoded micro-op (when one exists for this PC) replays the
        // interpreter bit-identically without refetching or redecoding.
        if self.uops_on {
            let pc = self.regs[PC];
            if let Some(u) = self.uops.as_ref().and_then(|c| c.lookup(pc)) {
                let cycles = self.exec_uop(u);
                self.tick_peripherals(cycles);
                return StepResult::Ran { cycles };
            }
        }
        let at = self.regs[PC];
        let word = self.fetch16();
        let cycles = match self.execute(word) {
            Some(c) => c,
            None => {
                self.halted_on_fault = true;
                self.regs[PC] = at;
                return StepResult::IllegalInstruction { word, at };
            }
        };
        self.tick_peripherals(cycles);
        StepResult::Ran { cycles }
    }

    /// Runs until the core sleeps, faults, or `max_cycles` elapse. Returns
    /// the cycles consumed.
    ///
    /// Streams through decoded basic blocks where it can: between block
    /// boundaries (branches, calls, `reti`, SR writes) the SR cannot
    /// change, so only a freshly latched interrupt needs re-checking per
    /// instruction; everything else re-enters the full [`Mcu::step`]
    /// dispatch.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycles;
        while self.cycles - start < max_cycles {
            if self.uops_on && !self.halted_on_fault {
                let sr = self.regs[SR];
                let mut gie = sr & FLAG_GIE != 0;
                if sr & FLAG_CPUOFF == 0 && (!gie || self.pending == 0) {
                    let cache = self.uops.clone();
                    let mut advanced = false;
                    if let Some(cache) = cache {
                        while self.uops_on && self.cycles - start < max_cycles {
                            let Some(u) = cache.lookup(self.regs[PC]) else {
                                break;
                            };
                            let cycles = self.exec_uop(u);
                            self.tick_peripherals(cycles);
                            advanced = true;
                            if gie && self.pending != 0 {
                                break;
                            }
                            if u.ends_block {
                                // Only SR-writing forms end blocks, so the
                                // hoisted GIE/CPUOFF state is refreshed here
                                // and streaming continues across the jump.
                                let sr = self.regs[SR];
                                if sr & FLAG_CPUOFF != 0 {
                                    break;
                                }
                                gie = sr & FLAG_GIE != 0;
                                if gie && self.pending != 0 {
                                    break;
                                }
                            }
                        }
                    }
                    if advanced {
                        continue;
                    }
                }
            }
            match self.step() {
                StepResult::Ran { .. } => {}
                _ => break,
            }
        }
        self.cycles - start
    }

    /// Externally observable state: GPIO output pins, SPI engine activity,
    /// and the operating mode — everything a board can react to between
    /// instructions.
    #[inline]
    fn observables(&self) -> (u8, u8, bool, OperatingMode) {
        (
            self.periph.p1_output(),
            self.periph.p2_output(),
            self.periph.spi_busy(),
            self.mode(),
        )
    }

    /// Runs a *segment*: a maximal run of instructions across which nothing
    /// board-observable changes, recording each instruction's cycle cost in
    /// `deltas`.
    ///
    /// Semantically this is exactly a sequence of [`Mcu::step`] calls — same
    /// interrupt dispatch, same decoded-path/interpreter split, same fault
    /// latching — stopping *after* the first step that changes an observable
    /// (GPIO output pins, SPI activity, operating mode — the
    /// [`SegmentStop::Observable`] set), *before* a step that would exceed the
    /// budget, or when the core reports sleep or faults. The caller can
    /// therefore integrate power over the whole segment from `deltas` and
    /// re-inspect pins/SPI/mode once at the boundary instead of after every
    /// instruction.
    ///
    /// `limit_cycles` is an *absolute* cycle count: no instruction starts
    /// once `self.cycles() >= limit_cycles` (matching a caller loop of the
    /// form `while cycles < limit { step() }`). `max_insns` bounds how many
    /// entries are appended to `deltas`.
    pub fn run_segment(
        &mut self,
        limit_cycles: u64,
        max_insns: usize,
        deltas: &mut Vec<u32>,
    ) -> SegmentStop {
        let base = self.observables();
        loop {
            if self.cycles >= limit_cycles || deltas.len() >= max_insns {
                return SegmentStop::Budget;
            }
            if self.halted_on_fault {
                return SegmentStop::Fault {
                    word: 0,
                    at: self.regs[PC],
                };
            }
            let sr = self.regs[SR];
            if self.pending != 0 && sr & FLAG_GIE != 0 {
                for irq in Irq::PRIORITY {
                    if self.pending & irq.mask() != 0 {
                        self.pending &= !irq.mask();
                        let cycles = self.enter_interrupt(irq);
                        self.tick_peripherals(cycles);
                        deltas.push(cycles);
                        break;
                    }
                }
                if self.observables() != base {
                    return SegmentStop::Observable;
                }
                continue;
            }
            if sr & FLAG_CPUOFF != 0 {
                return SegmentStop::Sleeping(self.mode());
            }
            // Decoded fast path: stream micro-ops without leaving the loop.
            // Unlike [`Mcu::run`]'s per-block streaming this continues
            // straight through basic-block boundaries, re-reading SR at each
            // one (only SR-writing instructions end blocks, so between
            // boundaries the hoisted GIE/CPUOFF state cannot go stale).
            if self.uops_on {
                let cache = self.uops.clone();
                if let Some(cache) = cache {
                    let mut gie = sr & FLAG_GIE != 0;
                    let mut advanced = false;
                    while self.uops_on && self.cycles < limit_cycles && deltas.len() < max_insns {
                        let Some(u) = cache.lookup(self.regs[PC]) else {
                            break;
                        };
                        if u.spin_spi && self.periph.spi_busy() {
                            advanced = true;
                            match self.exec_spi_spin(&u, limit_cycles, max_insns, deltas, gie) {
                                Some(stop) => return stop,
                                None => break, // re-check through the outer loop
                            }
                        }
                        let cycles = self.exec_uop(u);
                        self.tick_peripherals(cycles);
                        deltas.push(cycles);
                        advanced = true;
                        if self.observables() != base {
                            return SegmentStop::Observable;
                        }
                        if gie && self.pending != 0 {
                            break; // dispatch through the outer loop
                        }
                        if u.ends_block {
                            let sr = self.regs[SR];
                            if sr & FLAG_CPUOFF != 0 {
                                break; // sleeping: outer loop reports it
                            }
                            gie = sr & FLAG_GIE != 0;
                            if gie && self.pending != 0 {
                                break;
                            }
                        }
                    }
                    if advanced {
                        continue;
                    }
                }
            }
            // Interpreter fallback (translation disabled, or a decode hole /
            // self-modified span): one full fetch-decode-execute step.
            let at = self.regs[PC];
            let word = self.fetch16();
            match self.execute(word) {
                Some(c) => {
                    self.tick_peripherals(c);
                    deltas.push(c);
                    if self.observables() != base {
                        return SegmentStop::Observable;
                    }
                }
                None => {
                    self.halted_on_fault = true;
                    self.regs[PC] = at;
                    return SegmentStop::Fault { word, at };
                }
            }
        }
    }

    /// Fast-forwards the two-instruction SPI busy-wait idiom
    /// (`bit.b #1, &SPISTAT; jnz`) inside a segment without per-iteration
    /// dispatch. Each half-iteration replays the exact per-instruction
    /// semantics: the poll reads `SPISTAT` (a constant 1 while the engine
    /// is busy), sets the logic flags from `1 & 1`, and ticks its cycle
    /// cost; the `jnz` (always taken — Z is clear) jumps back and ticks 2
    /// cycles, the constant [`UOp::Jump`] cost.
    ///
    /// Called only while the engine is busy. Nothing observable can change
    /// mid-spin except the SPI completion itself (no memory writes, no SR
    /// mode bits, GPIO untouched), so the per-instruction observable check
    /// reduces to "did `spi_busy` flip". Returns `Some(stop)` to end the
    /// segment, or `None` when a freshly latched enabled interrupt needs
    /// the outer dispatch loop. The PC is always left exactly where the
    /// unfused loop would have left it.
    fn exec_spi_spin(
        &mut self,
        u: &crate::uops::UInsn,
        limit_cycles: u64,
        max_insns: usize,
        deltas: &mut Vec<u32>,
        gie: bool,
    ) -> Option<SegmentStop> {
        let spin_pc = self.regs[PC];
        loop {
            // --- bit.b #1, &SPISTAT (engine busy: reads 1) ---
            if self.cycles >= limit_cycles || deltas.len() >= max_insns {
                return Some(SegmentStop::Budget);
            }
            if !self.periph.spi_busy() {
                // Engine already idle (only reachable on re-entry edge
                // cases): run the poll through the generic path instead.
                return None;
            }
            // Bulk fast-forward: `k` whole iterations are event-free when
            // the engine stays busy past them (completion is the only
            // observable), every stepwise budget check inside them passes,
            // and — under GIE — no enabled timer fire lands inside the
            // span. The flag write is idempotent, the peripheral
            // arithmetic is a plain sum, and PC ends back at the spin
            // head, so one bulk tick plus the same per-instruction deltas
            // reproduces the stepwise loop exactly; the boundary
            // iterations then run stepwise below.
            const LPM4_BITS: u16 = FLAG_CPUOFF | FLAG_OSCOFF;
            let aclk_alive = self.regs[SR] & LPM4_BITS != LPM4_BITS;
            let per = u64::from(u.cycles) + 2;
            let mut k = (u64::from(self.periph.spi_busy_remaining()) - 1) / per;
            k = k.min(limit_cycles.saturating_sub(self.cycles) / per);
            k = k.min(((max_insns - deltas.len()) / 2) as u64);
            if gie {
                if let Some(fire) = self.periph.cycles_until_timer_fire(aclk_alive) {
                    k = k.min(fire.saturating_sub(1) / per);
                }
            }
            if k > 0 {
                self.set_flags_logic(1, true, false);
                let total = k * per;
                self.cycles += total;
                if let Some(irq) = self.periph.tick_bulk(total, aclk_alive) {
                    self.raise(irq);
                }
                for _ in 0..k {
                    deltas.push(u.cycles);
                    deltas.push(2);
                }
                continue;
            }
            self.regs[PC] = u.next_pc;
            self.set_flags_logic(1, true, false);
            self.tick_peripherals(u.cycles);
            deltas.push(u.cycles);
            if !self.periph.spi_busy() {
                return Some(SegmentStop::Observable);
            }
            if gie && self.pending != 0 {
                return None;
            }
            // --- jnz back to the poll (Z clear: always taken) ---
            if self.cycles >= limit_cycles || deltas.len() >= max_insns {
                return Some(SegmentStop::Budget);
            }
            self.regs[PC] = spin_pc;
            self.tick_peripherals(2);
            deltas.push(2);
            if !self.periph.spi_busy() {
                return Some(SegmentStop::Observable);
            }
            if gie && self.pending != 0 {
                return None;
            }
        }
    }

    /// Fast-forwards through a low-power period: advances the clock by up
    /// to `max_cycles` without executing instructions, ticking the timer
    /// (when its clock domain is alive) and stopping early the moment an
    /// interrupt is latched. Returns the cycles actually slept.
    ///
    /// External events (pin changes) must be injected by the caller between
    /// calls; this only models time passing.
    pub fn sleep(&mut self, max_cycles: u64) -> u64 {
        let aclk_alive = self.mode() != OperatingMode::Lpm4;
        let mut slept = 0u64;
        while slept < max_cycles {
            if self.pending != 0 && self.regs[SR] & FLAG_GIE != 0 {
                break;
            }
            // Bound the quantum by the next timer match so wake timing is
            // cycle-exact rather than overshooting into the batch.
            let mut quantum = max_cycles - slept;
            if let Some(c) = self.periph.cycles_until_timer_fire(aclk_alive) {
                quantum = quantum.min(c.max(1));
            }
            let quantum = quantum.min(u64::from(u32::MAX / 2)) as u32;
            self.cycles += u64::from(quantum);
            slept += u64::from(quantum);
            if let Some(irq) = self.periph.tick(quantum, aclk_alive) {
                self.raise(irq);
                break;
            }
        }
        slept
    }

    #[inline]
    fn tick_peripherals(&mut self, cycles: u32) {
        self.cycles += u64::from(cycles);
        if !self.periph.needs_tick() {
            return; // SPI idle and timer stopped: nothing can change
        }
        // ACLK dies only in LPM4, i.e. CPUOFF and OSCOFF both set; testing
        // the bits directly skips the full mode decode on this per-
        // instruction path.
        const LPM4_BITS: u16 = FLAG_CPUOFF | FLAG_OSCOFF;
        let aclk_alive = self.regs[SR] & LPM4_BITS != LPM4_BITS;
        if let Some(irq) = self.periph.tick(cycles, aclk_alive) {
            self.raise(irq);
        }
    }

    fn enter_interrupt(&mut self, irq: Irq) -> u32 {
        // MSP430 sequence: push PC, push SR, clear GIE and the LPM bits (the
        // ISR runs active), vector.
        self.push(self.regs[PC]);
        self.push(self.regs[SR]);
        self.regs[SR] &= !(FLAG_GIE | FLAG_CPUOFF | FLAG_OSCOFF | FLAG_SCG0 | FLAG_SCG1);
        self.regs[PC] = self.mem.read16(irq.vector());
        if irq == Irq::Spi {
            self.periph.clear_spi_ifg();
        }
        6
    }

    fn push(&mut self, value: u16) {
        self.regs[SP] = self.regs[SP].wrapping_sub(2);
        self.mem_write16(self.regs[SP], value);
    }

    fn pop(&mut self) -> u16 {
        let v = self.mem_read16(self.regs[SP]);
        self.regs[SP] = self.regs[SP].wrapping_add(2);
        v
    }

    fn fetch16(&mut self) -> u16 {
        let w = self.mem.read16(self.regs[PC]);
        self.regs[PC] = self.regs[PC].wrapping_add(2);
        w
    }

    fn mem_read16(&self, addr: u16) -> u16 {
        if Peripherals::owns(addr) {
            u16::from(self.periph.read(addr)) | (u16::from(self.periph.read(addr + 1)) << 8)
        } else {
            self.mem.read16(addr)
        }
    }

    fn mem_write16(&mut self, addr: u16, value: u16) {
        if Peripherals::owns(addr) {
            self.periph.write(addr, value as u8);
            self.periph.write(addr + 1, (value >> 8) as u8);
        } else {
            self.invalidate_uops(addr);
            self.mem.write16(addr, value);
        }
    }

    fn mem_read(&self, addr: u16, byte: bool) -> u16 {
        if byte {
            u16::from(if Peripherals::owns(addr) {
                self.periph.read(addr)
            } else {
                self.mem.read8(addr)
            })
        } else {
            self.mem_read16(addr)
        }
    }

    fn mem_write(&mut self, addr: u16, value: u16, byte: bool) {
        if byte {
            if Peripherals::owns(addr) {
                self.periph.write(addr, value as u8);
            } else {
                self.invalidate_uops(addr);
                self.mem.write8(addr, value as u8);
            }
        } else {
            self.mem_write16(addr, value);
        }
    }

    /// Resolves a source operand. Returns `(value, write_back_addr, extra_cycles)`.
    fn resolve_src(&mut self, reg: usize, as_mode: u16, byte: bool) -> (u16, Option<u16>, u32) {
        match (reg, as_mode) {
            // Constant generators.
            (SR, 0b10) => (4, None, 0),
            (SR, 0b11) => (8, None, 0),
            (3, 0b00) => (0, None, 0),
            (3, 0b01) => (1, None, 0),
            (3, 0b10) => (2, None, 0),
            (3, 0b11) => (0xFFFF, None, 0),
            // Register direct.
            (r, 0b00) => {
                let v = self.regs[r];
                (if byte { v & 0xFF } else { v }, None, 0)
            }
            // Absolute &ADDR (SR with indexed mode).
            (SR, 0b01) => {
                let addr = self.fetch16();
                (self.mem_read(addr, byte), Some(addr), 2)
            }
            // Indexed X(Rn) — including symbolic X(PC), where the base is
            // the PC at the extension word.
            (r, 0b01) => {
                let base = self.regs[r];
                let x = self.fetch16();
                let addr = base.wrapping_add(x);
                (self.mem_read(addr, byte), Some(addr), 2)
            }
            // Indirect @Rn.
            (r, 0b10) => {
                let addr = self.regs[r];
                (self.mem_read(addr, byte), Some(addr), 1)
            }
            // Immediate #N (@PC+).
            (PC, 0b11) => {
                let v = self.fetch16();
                (if byte { v & 0xFF } else { v }, None, 1)
            }
            // Indirect autoincrement @Rn+.
            (r, 0b11) => {
                let addr = self.regs[r];
                self.regs[r] = self.regs[r].wrapping_add(if byte { 1 } else { 2 });
                (self.mem_read(addr, byte), Some(addr), 1)
            }
            _ => unreachable!("2-bit addressing mode"),
        }
    }

    /// Resolves a destination operand location: register index or address.
    fn resolve_dst(&mut self, reg: usize, ad: u16, byte: bool) -> (u16, DstLoc, u32) {
        if ad == 0 {
            let v = self.regs[reg];
            (if byte { v & 0xFF } else { v }, DstLoc::Reg(reg), 0)
        } else {
            let x = self.fetch16();
            let addr = if reg == SR {
                x
            } else {
                self.regs[reg].wrapping_add(x)
            };
            (self.mem_read(addr, byte), DstLoc::Mem(addr), 3)
        }
    }

    fn write_dst(&mut self, loc: DstLoc, value: u16, byte: bool) {
        match loc {
            DstLoc::Reg(r) => self.regs[r] = if byte { value & 0xFF } else { value },
            DstLoc::Mem(a) => self.mem_write(a, value, byte),
        }
    }

    fn set_flags_logic(&mut self, result: u16, byte: bool, v: bool) {
        let msb = if byte { 0x80 } else { 0x8000 };
        let masked = if byte { result & 0xFF } else { result };
        let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N | FLAG_V);
        if masked == 0 {
            sr |= FLAG_Z;
        } else {
            sr |= FLAG_C; // MSP430: C = !Z for logic ops
        }
        if masked & msb != 0 {
            sr |= FLAG_N;
        }
        if v {
            sr |= FLAG_V;
        }
        self.regs[SR] = sr;
    }

    fn add_with_flags(&mut self, dst: u16, src: u16, carry_in: u16, byte: bool) -> u16 {
        let mask: u32 = if byte { 0xFF } else { 0xFFFF };
        let msb: u32 = if byte { 0x80 } else { 0x8000 };
        let d = u32::from(dst) & mask;
        let s = u32::from(src) & mask;
        let c = u32::from(carry_in);
        let full = d + s + c;
        let result = full & mask;
        let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N | FLAG_V);
        if full > mask {
            sr |= FLAG_C;
        }
        if result == 0 {
            sr |= FLAG_Z;
        }
        if result & msb != 0 {
            sr |= FLAG_N;
        }
        if (d ^ result) & (s ^ result) & msb != 0 {
            sr |= FLAG_V;
        }
        self.regs[SR] = sr;
        result as u16
    }

    fn dadd_with_flags(&mut self, dst: u16, src: u16, byte: bool) -> u16 {
        // BCD addition, digit at a time, including incoming carry.
        let digits = if byte { 2 } else { 4 };
        let mut carry = u16::from(self.regs[SR] & FLAG_C != 0);
        let mut result: u16 = 0;
        for i in 0..digits {
            let shift = 4 * i;
            let a = (dst >> shift) & 0xF;
            let b = (src >> shift) & 0xF;
            let mut sum = a + b + carry;
            carry = if sum > 9 {
                sum -= 10;
                1
            } else {
                0
            };
            result |= sum << shift;
        }
        let msb = if byte { 0x80 } else { 0x8000 };
        let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N);
        if carry != 0 {
            sr |= FLAG_C;
        }
        if result == 0 {
            sr |= FLAG_Z;
        }
        if result & msb != 0 {
            sr |= FLAG_N;
        }
        self.regs[SR] = sr;
        result
    }

    fn execute(&mut self, word: u16) -> Option<u32> {
        let top = word >> 12;
        if top == 0x1 {
            return self.execute_format2(word);
        }
        if top >> 1 == 0x1 {
            // 0x2000..=0x3FFF: jumps.
            let cond = Condition::from_bits((word >> 10) & 0x7);
            let mut offset = i32::from(word & 0x3FF);
            if offset & 0x200 != 0 {
                offset -= 0x400;
            }
            if cond.taken(self.regs[SR]) {
                self.regs[PC] = self.regs[PC].wrapping_add((2 * offset) as u16);
            }
            return Some(2);
        }
        let op = Format1Op::from_opcode(top)?;
        let src_reg = usize::from((word >> 8) & 0xF);
        let ad = (word >> 7) & 1;
        let byte = (word >> 6) & 1 != 0;
        let as_mode = (word >> 4) & 0x3;
        let dst_reg = usize::from(word & 0xF);

        let (src, _, src_cycles) = self.resolve_src(src_reg, as_mode, byte);
        let (dst, loc, dst_cycles) = self.resolve_dst(dst_reg, ad, byte);

        let result = self.format1_result(op, src, dst, byte);
        if op.writes_back() {
            self.write_dst(loc, result, byte);
        }
        let mut cycles = 1 + src_cycles + dst_cycles;
        if matches!(loc, DstLoc::Reg(0)) && op.writes_back() {
            cycles += 1; // writing the PC costs an extra cycle
        }
        Some(cycles)
    }

    /// The format-I ALU: computes the result and sets flags. Shared by the
    /// interpreter and the decoded path so their semantics cannot drift.
    fn format1_result(&mut self, op: Format1Op, src: u16, dst: u16, byte: bool) -> u16 {
        let carry = u16::from(self.regs[SR] & FLAG_C != 0);
        match op {
            Format1Op::Mov => src,
            Format1Op::Add => self.add_with_flags(dst, src, 0, byte),
            Format1Op::Addc => self.add_with_flags(dst, src, carry, byte),
            Format1Op::Sub => self.add_with_flags(dst, !src, 1, byte),
            Format1Op::Subc => self.add_with_flags(dst, !src, carry, byte),
            Format1Op::Cmp => {
                self.add_with_flags(dst, !src, 1, byte);
                dst
            }
            Format1Op::Dadd => self.dadd_with_flags(dst, src, byte),
            Format1Op::Bit => {
                let r = src & dst;
                self.set_flags_logic(r, byte, false);
                dst
            }
            Format1Op::Bic => dst & !src,
            Format1Op::Bis => dst | src,
            Format1Op::Xor => {
                let msb = if byte { 0x80 } else { 0x8000 };
                let v = (src & msb != 0) && (dst & msb != 0);
                let r = src ^ dst;
                self.set_flags_logic(r, byte, v);
                r
            }
            Format1Op::And => {
                let r = src & dst;
                self.set_flags_logic(r, byte, false);
                r
            }
        }
    }

    fn execute_format2(&mut self, word: u16) -> Option<u32> {
        let opbits = (word >> 7) & 0x7;
        let op = Format2Op::from_bits(opbits)?;
        if op == Format2Op::Reti {
            self.regs[SR] = self.pop();
            self.regs[PC] = self.pop();
            return Some(5);
        }
        let byte = (word >> 6) & 1 != 0;
        let as_mode = (word >> 4) & 0x3;
        let reg = usize::from(word & 0xF);
        let (value, addr, src_cycles) = self.resolve_src(reg, as_mode, byte);
        self.format2_apply(op, value, byte, addr, reg);
        let base = match op {
            Format2Op::Push => 3,
            Format2Op::Call => 4,
            _ => 1,
        };
        Some(base + src_cycles)
    }

    /// The format-II operation body: flags, result and writeback. Shared by
    /// the interpreter and the decoded path so their semantics cannot
    /// drift. `addr` is the operand's writeback address when it had one;
    /// otherwise the result lands in `regs[reg]` (including the
    /// constant-generator quirk of writing R2/R3).
    fn format2_apply(
        &mut self,
        op: Format2Op,
        value: u16,
        byte: bool,
        addr: Option<u16>,
        reg: usize,
    ) {
        let msb = if byte { 0x80u16 } else { 0x8000 };
        match op {
            Format2Op::Rrc => {
                let carry_in = self.regs[SR] & FLAG_C != 0;
                let carry_out = value & 1 != 0;
                let mut r = value >> 1;
                if byte {
                    r &= 0x7F;
                }
                if carry_in {
                    r |= msb;
                }
                let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N | FLAG_V);
                if carry_out {
                    sr |= FLAG_C;
                }
                if r == 0 {
                    sr |= FLAG_Z;
                }
                if r & msb != 0 {
                    sr |= FLAG_N;
                }
                self.regs[SR] = sr;
                self.write_operand(addr, reg, r, byte);
            }
            Format2Op::Rra => {
                let carry_out = value & 1 != 0;
                let sign = value & msb;
                let mut r = (value >> 1) | sign;
                if byte {
                    r &= 0xFF;
                }
                let mut sr = self.regs[SR] & !(FLAG_C | FLAG_Z | FLAG_N | FLAG_V);
                if carry_out {
                    sr |= FLAG_C;
                }
                if r == 0 {
                    sr |= FLAG_Z;
                }
                if r & msb != 0 {
                    sr |= FLAG_N;
                }
                self.regs[SR] = sr;
                self.write_operand(addr, reg, r, byte);
            }
            Format2Op::Swpb => {
                let r = value.rotate_left(8);
                self.write_operand(addr, reg, r, byte);
            }
            Format2Op::Sxt => {
                let r = if value & 0x80 != 0 {
                    value | 0xFF00
                } else {
                    value & 0x00FF
                };
                self.set_flags_logic(r, false, false);
                self.write_operand(addr, reg, r, byte);
            }
            Format2Op::Push => {
                self.push(value);
            }
            Format2Op::Call => {
                self.push(self.regs[PC]);
                self.regs[PC] = value;
            }
            Format2Op::Reti => unreachable!("dispatched before operand resolution"),
        }
    }

    /// Format-II writeback: to the resolved address when there was one,
    /// else to the raw register field.
    fn write_operand(&mut self, addr: Option<u16>, reg: usize, v: u16, byte: bool) {
        if let Some(a) = addr {
            self.mem_write(a, v, byte);
        } else {
            self.regs[reg] = if byte { v & 0xFF } else { v };
        }
    }

    /// Executes one pre-decoded micro-op. Mirrors the interpreter exactly:
    /// PC-dependent operands were folded at decode time (so the PC can be
    /// bumped up front), memory operands stay dynamic, and the ALU/flag
    /// bodies are the same functions the interpreter calls.
    fn exec_uop(&mut self, u: crate::uops::UInsn) -> u32 {
        use crate::uops::UOp;
        match u.op {
            UOp::Fmt1 { op, byte, src, dst } => {
                self.regs[PC] = u.next_pc;
                let src_val = self.read_src_uop(src, byte);
                let (dst_val, loc) = self.read_dst_uop(dst, byte);
                let result = self.format1_result(op, src_val, dst_val, byte);
                if op.writes_back() {
                    self.write_dst(loc, result, byte);
                }
                u.cycles
            }
            UOp::Fmt2 { op, byte, reg, src } => {
                self.regs[PC] = u.next_pc;
                let (value, addr) = self.read_src_addr_uop(src, byte);
                self.format2_apply(op, value, byte, addr, usize::from(reg));
                u.cycles
            }
            UOp::Jump { cond, target } => {
                self.regs[PC] = if cond.taken(self.regs[SR]) {
                    target
                } else {
                    u.next_pc
                };
                2
            }
            UOp::Reti => {
                self.regs[SR] = self.pop();
                self.regs[PC] = self.pop();
                5
            }
        }
    }

    /// Reads a pre-decoded source operand (value only).
    #[inline]
    fn read_src_uop(&mut self, src: crate::uops::SrcOp, byte: bool) -> u16 {
        use crate::uops::SrcOp;
        match src {
            SrcOp::Const(v) => v,
            SrcOp::Reg(r) => {
                let v = self.regs[usize::from(r)];
                if byte {
                    v & 0xFF
                } else {
                    v
                }
            }
            SrcOp::Abs(a) => self.mem_read(a, byte),
            SrcOp::Indexed(r, x) => {
                let a = self.regs[usize::from(r)].wrapping_add(x);
                self.mem_read(a, byte)
            }
            SrcOp::Indirect(r) => self.mem_read(self.regs[usize::from(r)], byte),
            SrcOp::AutoInc(r, bump) => {
                let a = self.regs[usize::from(r)];
                self.regs[usize::from(r)] = a.wrapping_add(u16::from(bump));
                self.mem_read(a, byte)
            }
        }
    }

    /// Reads a pre-decoded source operand plus its writeback address (the
    /// format-II shape; matches `resolve_src`'s `Option<u16>`).
    #[inline]
    fn read_src_addr_uop(&mut self, src: crate::uops::SrcOp, byte: bool) -> (u16, Option<u16>) {
        use crate::uops::SrcOp;
        match src {
            SrcOp::Const(v) => (v, None),
            SrcOp::Reg(r) => {
                let v = self.regs[usize::from(r)];
                (if byte { v & 0xFF } else { v }, None)
            }
            SrcOp::Abs(a) => (self.mem_read(a, byte), Some(a)),
            SrcOp::Indexed(r, x) => {
                let a = self.regs[usize::from(r)].wrapping_add(x);
                (self.mem_read(a, byte), Some(a))
            }
            SrcOp::Indirect(r) => {
                let a = self.regs[usize::from(r)];
                (self.mem_read(a, byte), Some(a))
            }
            SrcOp::AutoInc(r, bump) => {
                let a = self.regs[usize::from(r)];
                self.regs[usize::from(r)] = a.wrapping_add(u16::from(bump));
                (self.mem_read(a, byte), Some(a))
            }
        }
    }

    /// Reads a pre-decoded destination operand: current value + location.
    #[inline]
    fn read_dst_uop(&mut self, dst: crate::uops::DstOp, byte: bool) -> (u16, DstLoc) {
        use crate::uops::DstOp;
        match dst {
            DstOp::Reg(r) => {
                let v = self.regs[usize::from(r)];
                (if byte { v & 0xFF } else { v }, DstLoc::Reg(usize::from(r)))
            }
            // Destination PC register-direct: the read value was folded at
            // decode time (byte-masked there when applicable).
            DstOp::PcReg(v) => (v, DstLoc::Reg(0)),
            DstOp::Mem(a) => (self.mem_read(a, byte), DstLoc::Mem(a)),
            DstOp::Indexed(r, x) => {
                let a = self.regs[usize::from(r)].wrapping_add(x);
                (self.mem_read(a, byte), DstLoc::Mem(a))
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum DstLoc {
    Reg(usize),
    Mem(u16),
}

impl Default for Mcu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn boot(src: &str) -> Mcu {
        let image = assemble(src).expect("test program must assemble");
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();
        mcu
    }

    fn run_steps(mcu: &mut Mcu, n: usize) {
        for _ in 0..n {
            if !matches!(mcu.step(), StepResult::Ran { .. }) {
                break;
            }
        }
    }

    #[test]
    fn mov_immediate_and_register() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x1234, r4
        mov r4, r5
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(4), 0x1234);
        assert_eq!(mcu.register(5), 0x1234);
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0xFFFF, r4
        add #1, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 2);
        assert_eq!(mcu.register(4), 0);
        assert_ne!(mcu.register(2) & FLAG_C, 0);
        assert_ne!(mcu.register(2) & FLAG_Z, 0);
        assert_eq!(mcu.register(2) & FLAG_V, 0);
    }

    #[test]
    fn signed_overflow_detected() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x7FFF, r4
        add #1, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 2);
        assert_eq!(mcu.register(4), 0x8000);
        assert_ne!(mcu.register(2) & FLAG_V, 0);
        assert_ne!(mcu.register(2) & FLAG_N, 0);
    }

    #[test]
    fn sub_and_cmp_borrow_semantics() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #5, r4
        sub #3, r4
        cmp #2, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(4), 2);
        // CMP equal: Z set, C set (no borrow).
        assert_ne!(mcu.register(2) & FLAG_Z, 0);
        assert_ne!(mcu.register(2) & FLAG_C, 0);
    }

    #[test]
    fn byte_ops_clear_high_byte_in_registers() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0xABCD, r4
        mov.b #0x12, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 2);
        assert_eq!(mcu.register(4), 0x0012);
    }

    #[test]
    fn memory_indexed_and_absolute() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0200, r4
        mov #0xBEEF, 2(r4)
        mov &0x0202, r5
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(5), 0xBEEF);
        assert_eq!(mcu.read_mem16(0x0202), 0xBEEF);
    }

    #[test]
    fn autoincrement_walks_a_table() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #table, r4
        mov @r4+, r5
        mov @r4+, r6
halt:   jmp halt
table:  .word 0x1111
        .word 0x2222
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(5), 0x1111);
        assert_eq!(mcu.register(6), 0x2222);
    }

    #[test]
    fn loop_with_jnz() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #10, r4
        mov #0, r5
loop:   add #3, r5
        dec r4
        jnz loop
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 100);
        assert_eq!(mcu.register(5), 30);
        assert_eq!(mcu.register(4), 0);
    }

    #[test]
    fn call_and_ret() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        call #sub
        mov #1, r6
halt:   jmp halt
sub:    mov #42, r5
        ret
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 6);
        assert_eq!(mcu.register(5), 42);
        assert_eq!(mcu.register(6), 1);
    }

    #[test]
    fn push_pop_stack_discipline() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0x1111, r4
        push r4
        mov #0x2222, r4
        pop r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 5);
        assert_eq!(mcu.register(4), 0x1111);
        assert_eq!(mcu.register(1), 0x0A00);
    }

    #[test]
    fn rra_rrc_swpb_sxt() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x8004, r4
        rra r4
        mov #0x0001, r5
        rrc r5
        mov #0x1234, r6
        swpb r6
        mov #0x0080, r7
        sxt r7
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 8);
        assert_eq!(mcu.register(4), 0xC002); // arithmetic shift keeps sign
                                             // RRC shifted the old C (0) in; C now holds the shifted-out 1.
        assert_eq!(mcu.register(5), 0x0000);
        assert_ne!(mcu.register(2) & FLAG_C, 0);
        assert_eq!(mcu.register(6), 0x3412);
        assert_eq!(mcu.register(7), 0xFF80);
    }

    #[test]
    fn dadd_bcd_arithmetic() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  clrc
        mov #0x0199, r4
        dadd #0x0001, r4
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(4), 0x0200); // BCD 199 + 1 = 200
    }

    #[test]
    fn constant_generators_cost_nothing_extra() {
        // #4 and #8 come from R2, #0/#1/#2/#-1 from R3 — no extension word.
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #4, r4
        mov #8, r5
        mov #-1, r6
halt:   jmp halt
        .vector reset, start
        "#,
        );
        let pc0 = mcu.register(0);
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.register(4), 4);
        assert_eq!(mcu.register(5), 8);
        assert_eq!(mcu.register(6), 0xFFFF);
        // Three single-word instructions: PC advanced 6 bytes.
        assert_eq!(mcu.register(0), pc0.wrapping_add(6));
    }

    #[test]
    fn interrupt_enters_and_returns() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0, r5
        eint
loop:   jmp loop
isr:    mov #99, r5
        reti
        .vector reset, start
        .vector port1, isr
        "#,
        );
        run_steps(&mut mcu, 5);
        mcu.raise(Irq::Port1);
        run_steps(&mut mcu, 4); // enter ISR, mov, reti
        assert_eq!(mcu.register(5), 99);
        // Back in the loop with GIE restored.
        assert_ne!(mcu.register(2) & FLAG_GIE, 0);
    }

    #[test]
    fn multi_pending_interrupts_dispatch_in_priority_order() {
        // Latch all four requests out of order (plus a duplicate): dispatch
        // must drain them highest-priority first — TimerA, SPI, Port1,
        // Port2 — one per step, exactly as the sorted queue used to.
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        eint
loop:   jmp loop
tisr:   add #1, r4
        reti
sisr:   add #1, r5
        reti
p1isr:  add #1, r6
        reti
p2isr:  add #1, r7
        reti
        .vector reset, start
        .vector timera, tisr
        .vector spi, sisr
        .vector port1, p1isr
        .vector port2, p2isr
        "#,
        );
        run_steps(&mut mcu, 3);
        mcu.raise(Irq::Port2);
        mcu.raise(Irq::TimerA);
        mcu.raise(Irq::Port1);
        mcu.raise(Irq::Spi);
        mcu.raise(Irq::Port1); // duplicate: must latch once
        let order = |mcu: &Mcu| {
            (
                mcu.register(4),
                mcu.register(5),
                mcu.register(6),
                mcu.register(7),
            )
        };
        // Each ISR is enter + add + reti = 3 steps.
        run_steps(&mut mcu, 3);
        assert_eq!(order(&mcu), (1, 0, 0, 0), "TimerA first");
        run_steps(&mut mcu, 3);
        assert_eq!(order(&mcu), (1, 1, 0, 0), "then SPI");
        run_steps(&mut mcu, 3);
        assert_eq!(order(&mcu), (1, 1, 1, 0), "then Port1");
        run_steps(&mut mcu, 3);
        assert_eq!(order(&mcu), (1, 1, 1, 1), "then Port2");
        assert!(!mcu.has_pending_irq(), "duplicate raise latched only once");
    }

    #[test]
    fn interrupt_requires_gie() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0, r5
loop:   jmp loop
isr:    mov #99, r5
        reti
        .vector reset, start
        .vector port1, isr
        "#,
        );
        run_steps(&mut mcu, 3);
        mcu.raise(Irq::Port1);
        run_steps(&mut mcu, 5);
        assert_eq!(mcu.register(5), 0, "ISR must not run with GIE clear");
    }

    #[test]
    fn lpm3_sleep_and_wake() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0, r5
        bis #0x00D8, r2      ; LPM3 + GIE: CPUOFF|SCG1|SCG0|GIE
        mov #1, r6           ; runs only after wake + ISR clears LPM
done:   jmp done
isr:    mov #7, r5
        bic #0x00F0, 0(r1)   ; clear LPM bits in the saved SR
        reti
        .vector reset, start
        .vector port1, isr
        "#,
        );
        run_steps(&mut mcu, 3);
        assert_eq!(mcu.mode(), OperatingMode::Lpm3);
        assert!(matches!(
            mcu.step(),
            StepResult::Sleeping(OperatingMode::Lpm3)
        ));
        // Time passes; nothing happens.
        assert_eq!(mcu.sleep(1_000_000), 1_000_000);
        // External wake (the SP12's 6-second interrupt line).
        mcu.drive_p1(0, true);
        // The pin change has no IE bit set in this minimal program, so
        // raise directly as the board would through a latched line.
        mcu.raise(Irq::Port1);
        run_steps(&mut mcu, 10);
        assert_eq!(mcu.register(5), 7);
        assert_eq!(mcu.mode(), OperatingMode::Active);
        assert_eq!(mcu.register(6), 1);
    }

    #[test]
    fn sleep_mode_current_draws_differ() {
        let mcu = Mcu::new();
        let active = mcu.power_model().current(OperatingMode::Active);
        let lpm3 = mcu.power_model().current(OperatingMode::Lpm3);
        let lpm4 = mcu.power_model().current(OperatingMode::Lpm4);
        assert!(active.value() / lpm3.value() > 100.0);
        assert!(lpm3 > lpm4);
    }

    #[test]
    fn illegal_instruction_faults_and_sticks() {
        let mut mcu = Mcu::new();
        // Memory is zero: opcode 0x0000 is undecodable.
        mcu.set_register(0, 0x0200);
        let r = mcu.step();
        assert!(matches!(r, StepResult::IllegalInstruction { word: 0, .. }));
        assert!(matches!(mcu.step(), StepResult::IllegalInstruction { .. }));
    }

    #[test]
    fn gpio_visible_to_board() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov.b #0xFF, &0x0022  ; P1DIR all out
        mov.b #0x05, &0x0021  ; P1OUT
halt:   jmp halt
        .vector reset, start
        "#,
        );
        run_steps(&mut mcu, 2);
        assert_eq!(mcu.p1_output(), 0x05);
    }

    #[test]
    fn spi_roundtrip_through_firmware() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov.b #0x41, &0x0040  ; SPITX
wait:   bit.b #1, &0x0042     ; SPISTAT busy?
        jnz wait
        mov.b &0x0041, r5     ; SPIRX
halt:   jmp halt
        .vector reset, start
        "#,
        );
        mcu.attach_spi(Box::new(|mosi: u8| mosi ^ 0xFF));
        run_steps(&mut mcu, 50);
        assert_eq!(mcu.register(5) & 0xFF, 0xBE);
    }

    #[test]
    fn cycle_counts_are_plausible() {
        // reg→reg MOV costs 1 cycle; immediate→reg costs 2.
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov r4, r5
        mov #0x1234, r6
halt:   jmp halt
        .vector reset, start
        "#,
        );
        let StepResult::Ran { cycles: c1 } = mcu.step() else {
            panic!("step 1")
        };
        let StepResult::Ran { cycles: c2 } = mcu.step() else {
            panic!("step 2")
        };
        assert_eq!(c1, 1);
        assert_eq!(c2, 2);
    }

    #[test]
    fn timer_wakes_lpm3_via_sleep() {
        let mut mcu = boot(
            r#"
            .org 0xF000
start:  mov #0x0A00, r1
        mov #0, r5
        mov #32, &0x0062      ; TACCR0 = 32 ACLK ticks (~1 ms)
        mov.b #3, &0x0060     ; TACTL: run + interrupt
        bis #0x00D8, r2       ; LPM3 + GIE
        mov #1, r6
done:   jmp done
isr:    mov #5, r5
        bic #0x00F0, 0(r1)
        reti
        .vector reset, start
        .vector timera, isr
        "#,
        );
        run_steps(&mut mcu, 5);
        assert_eq!(mcu.mode(), OperatingMode::Lpm3);
        // ~32 ACLK ticks ≈ 977 µs ≈ 977 cycles at 1 MHz.
        let slept = mcu.sleep(10_000);
        assert!(slept < 10_000, "timer should cut the sleep short");
        run_steps(&mut mcu, 10);
        assert_eq!(mcu.register(5), 5);
        assert_eq!(mcu.register(6), 1);
    }
}
