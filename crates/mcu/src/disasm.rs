//! Disassembler for the MSP430 subset — the inverse of [`asm`](crate::asm).
//!
//! Renders instructions in exactly the syntax the assembler accepts, so
//! `assemble(disassemble(code))` reproduces the original bytes for any
//! image the assembler produced (constant-generator immediates included).
//! Used by the firmware tests as a round-trip oracle and handy when
//! debugging emulated programs.

use crate::isa::{Condition, Format1Op, Format2Op};
use crate::memory::FlatMemory;

/// One decoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Address the instruction was fetched from.
    pub address: u16,
    /// Total size in bytes (2, 4, or 6).
    pub size: u16,
    /// Assembler-syntax rendering (`mov #0x1234, r4`).
    pub text: String,
}

/// Errors from [`decode_one`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndecodableWord {
    /// The word that did not decode.
    pub word: u16,
    /// Where it was fetched from.
    pub at: u16,
}

impl core::fmt::Display for UndecodableWord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "undecodable word {:#06x} at {:#06x}", self.word, self.at)
    }
}

impl std::error::Error for UndecodableWord {}

fn reg_name(r: u16) -> String {
    match r {
        0 => "pc".into(),
        1 => "sp".into(),
        2 => "sr".into(),
        n => format!("r{n}"),
    }
}

fn mnemonic1(op: Format1Op) -> &'static str {
    match op {
        Format1Op::Mov => "mov",
        Format1Op::Add => "add",
        Format1Op::Addc => "addc",
        Format1Op::Subc => "subc",
        Format1Op::Sub => "sub",
        Format1Op::Cmp => "cmp",
        Format1Op::Dadd => "dadd",
        Format1Op::Bit => "bit",
        Format1Op::Bic => "bic",
        Format1Op::Bis => "bis",
        Format1Op::Xor => "xor",
        Format1Op::And => "and",
    }
}

fn mnemonic2(op: Format2Op) -> &'static str {
    match op {
        Format2Op::Rrc => "rrc",
        Format2Op::Swpb => "swpb",
        Format2Op::Rra => "rra",
        Format2Op::Sxt => "sxt",
        Format2Op::Push => "push",
        Format2Op::Call => "call",
        Format2Op::Reti => "reti",
    }
}

fn cond_name(c: Condition) -> &'static str {
    match c {
        Condition::Jnz => "jnz",
        Condition::Jz => "jz",
        Condition::Jnc => "jnc",
        Condition::Jc => "jc",
        Condition::Jn => "jn",
        Condition::Jge => "jge",
        Condition::Jl => "jl",
        Condition::Jmp => "jmp",
    }
}

/// Renders a source operand; returns `(text, extension words consumed)`.
fn render_src(mem: &FlatMemory, pc_ext: u16, reg: u16, as_mode: u16) -> (String, u16) {
    match (reg, as_mode) {
        // Constant generators round-trip through the `#k` syntax.
        (2, 0b10) => ("#4".into(), 0),
        (2, 0b11) => ("#8".into(), 0),
        (3, 0b00) => ("#0".into(), 0),
        (3, 0b01) => ("#1".into(), 0),
        (3, 0b10) => ("#2".into(), 0),
        (3, 0b11) => ("#-1".into(), 0),
        (r, 0b00) => (reg_name(r), 0),
        (2, 0b01) => (format!("&{:#06x}", mem.read16(pc_ext)), 1),
        (r, 0b01) => (format!("{:#06x}({})", mem.read16(pc_ext), reg_name(r)), 1),
        (r, 0b10) => (format!("@{}", reg_name(r)), 0),
        (0, 0b11) => (format!("#{:#06x}", mem.read16(pc_ext)), 1),
        (r, 0b11) => (format!("@{}+", reg_name(r)), 0),
        _ => unreachable!("2-bit field"),
    }
}

/// Decodes the instruction at `addr`.
///
/// # Errors
///
/// Returns [`UndecodableWord`] for words outside the implemented subset.
pub fn decode_one(mem: &FlatMemory, addr: u16) -> Result<Decoded, UndecodableWord> {
    let word = mem.read16(addr);
    let top = word >> 12;

    // Jumps.
    if top >> 1 == 0x1 {
        let cond = Condition::from_bits((word >> 10) & 0x7);
        let mut offset = i32::from(word & 0x3FF);
        if offset & 0x200 != 0 {
            offset -= 0x400;
        }
        let target = addr.wrapping_add(2).wrapping_add((2 * offset) as u16);
        return Ok(Decoded {
            address: addr,
            size: 2,
            text: format!("{} {:#06x}", cond_name(cond), target),
        });
    }

    // Format II.
    if top == 0x1 {
        let op =
            Format2Op::from_bits((word >> 7) & 0x7).ok_or(UndecodableWord { word, at: addr })?;
        if op == Format2Op::Reti {
            return Ok(Decoded {
                address: addr,
                size: 2,
                text: "reti".into(),
            });
        }
        let byte = (word >> 6) & 1 != 0;
        let as_mode = (word >> 4) & 0x3;
        let reg = word & 0xF;
        let (operand, ext) = render_src(mem, addr.wrapping_add(2), reg, as_mode);
        let suffix = if byte { ".b" } else { "" };
        return Ok(Decoded {
            address: addr,
            size: 2 + 2 * ext,
            text: format!("{}{} {}", mnemonic2(op), suffix, operand),
        });
    }

    // Format I.
    let op = Format1Op::from_opcode(top).ok_or(UndecodableWord { word, at: addr })?;
    let src_reg = (word >> 8) & 0xF;
    let ad = (word >> 7) & 1;
    let byte = (word >> 6) & 1 != 0;
    let as_mode = (word >> 4) & 0x3;
    let dst_reg = word & 0xF;

    let (src_text, src_ext) = render_src(mem, addr.wrapping_add(2), src_reg, as_mode);
    let dst_ext_addr = addr.wrapping_add(2).wrapping_add(2 * src_ext);
    let (dst_text, dst_ext) = if ad == 0 {
        (reg_name(dst_reg), 0)
    } else if dst_reg == 2 {
        (format!("&{:#06x}", mem.read16(dst_ext_addr)), 1)
    } else {
        (
            format!("{:#06x}({})", mem.read16(dst_ext_addr), reg_name(dst_reg)),
            1,
        )
    };
    let suffix = if byte { ".b" } else { "" };
    Ok(Decoded {
        address: addr,
        size: 2 + 2 * (src_ext + dst_ext),
        text: format!("{}{} {}, {}", mnemonic1(op), suffix, src_text, dst_text),
    })
}

/// Disassembles `[start, start + len)` into a listing. Stops early at an
/// undecodable word, returning what was decoded plus the error.
pub fn disassemble_range(
    mem: &FlatMemory,
    start: u16,
    len: u16,
) -> (Vec<Decoded>, Option<UndecodableWord>) {
    let mut out = Vec::new();
    let mut addr = start;
    let end = start.wrapping_add(len);
    while addr < end {
        match decode_one(mem, addr) {
            Ok(d) => {
                addr = addr.wrapping_add(d.size);
                out.push(d);
            }
            Err(e) => return (out, Some(e)),
        }
    }
    (out, None)
}

/// Renders a listing back into assembler-acceptable source, prefixed by an
/// `.org` for the start address.
pub fn to_source(listing: &[Decoded]) -> String {
    let mut src = String::new();
    if let Some(first) = listing.first() {
        src.push_str(&format!(".org {:#06x}\n", first.address));
    }
    for d in listing {
        src.push_str(&d.text);
        src.push('\n');
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn memory_with(src: &str) -> FlatMemory {
        let img = assemble(src).expect("test source assembles");
        let mut mem = FlatMemory::new();
        mem.load(&img);
        mem
    }

    #[test]
    fn decodes_the_basic_forms() {
        let mem = memory_with(
            ".org 0xF000\n\
             mov #0x1234, r4\n\
             add.b @r5+, r6\n\
             cmp 2(r4), &0x0200\n\
             push r7\n\
             call #0xF100\n\
             reti\n\
             jnz 0xF000\n",
        );
        let (listing, err) = disassemble_range(&mem, 0xF000, 22);
        assert!(err.is_none(), "{err:?}");
        let texts: Vec<&str> = listing.iter().map(|d| d.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "mov #0x1234, r4",
                "add.b @r5+, r6",
                "cmp 0x0002(r4), &0x0200",
                "push r7",
                "call #0xf100",
                "reti",
                "jnz 0xf000",
            ]
        );
    }

    #[test]
    fn constant_generators_render_as_immediates() {
        let mem = memory_with(".org 0xF000\nmov #0, r4\nmov #1, r4\nmov #2, r4\nmov #4, r4\nmov #8, r4\nmov #-1, r4\n");
        let (listing, _) = disassemble_range(&mem, 0xF000, 12);
        let texts: Vec<&str> = listing.iter().map(|d| d.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "mov #0, r4",
                "mov #1, r4",
                "mov #2, r4",
                "mov #4, r4",
                "mov #8, r4",
                "mov #-1, r4"
            ]
        );
    }

    #[test]
    fn firmware_round_trips_bit_exact() {
        // The canonical oracle: disassemble the stock firmware's code
        // segment, reassemble the listing, compare bytes.
        for image in [
            crate::firmware::tpms_app(0x42).unwrap(),
            crate::firmware::motion_app(7).unwrap(),
        ] {
            let code = image
                .segments()
                .iter()
                .find(|(org, _)| *org == 0xF000)
                .expect("firmware code segment");
            let mut mem = FlatMemory::new();
            mem.load(&image);
            let (listing, err) = disassemble_range(&mem, 0xF000, code.1.len() as u16);
            assert!(err.is_none(), "firmware must fully decode: {err:?}");
            let src = to_source(&listing);
            let rebuilt = assemble(&src).expect("disassembly must reassemble");
            let rebuilt_code = rebuilt
                .segments()
                .iter()
                .find(|(org, _)| *org == 0xF000)
                .expect("rebuilt code segment");
            assert_eq!(rebuilt_code.1, code.1, "round-trip must be bit-exact");
        }
    }

    #[test]
    fn undecodable_word_reported_with_address() {
        let mem = FlatMemory::new(); // all zeros: opcode 0 is invalid
        let e = decode_one(&mem, 0x0200).unwrap_err();
        assert_eq!(e.word, 0);
        assert_eq!(e.at, 0x0200);
        assert!(format!("{e}").contains("0x0200"));
    }

    #[test]
    fn jump_targets_resolve_backwards_and_forwards() {
        let mem = memory_with(".org 0xF000\nstart: nop\njmp start\njmp fwd\nfwd: nop\n");
        let (listing, _) = disassemble_range(&mem, 0xF000, 8);
        assert_eq!(listing[1].text, "jmp 0xf000");
        assert_eq!(listing[2].text, "jmp 0xf006");
    }

    #[test]
    fn sizes_account_for_extension_words() {
        let mem = memory_with(".org 0xF000\nmov 2(r4), 4(r5)\n");
        let d = decode_one(&mem, 0xF000).unwrap();
        assert_eq!(d.size, 6);
    }
}
