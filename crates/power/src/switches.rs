//! Power-gating switches and level shifters.
//!
//! The switch board (§4.5) gates both radio supplies: the 1.0 V shunt
//! output is switched for a clean rising edge, and the 0.65 V PA supply is
//! switched at its input (to kill quiescent loss) and a short time later at
//! its output (for the clean edge). The radio board carries level
//! converters "in tiny CSP packages" that shift the controller's 2.1–3.6 V
//! signals down to the radio logic's 1.0 V domain.

use crate::{PowerError, Result};
use picocube_units::{Amps, Farads, Hertz, Ohms, Volts, Watts};

/// A solid-state power-gating switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSwitch {
    rds_on: Ohms,
    leakage_off: Amps,
    closed: bool,
}

impl PowerSwitch {
    /// Creates a switch with the given on-resistance and off-state leakage.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for negative parameters.
    pub fn new(rds_on: Ohms, leakage_off: Amps) -> Result<Self> {
        if rds_on.value() < 0.0 || leakage_off.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "negative switch parameter",
            });
        }
        Ok(Self {
            rds_on,
            leakage_off,
            closed: false,
        })
    }

    /// The switch-board load switch: 0.5 Ω on, 10 nA off-leakage.
    pub fn load_switch() -> Self {
        Self {
            rds_on: Ohms::new(0.5),
            leakage_off: Amps::from_nano(10.0),
            closed: false,
        }
    }

    /// Whether the switch is conducting.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Closes (turns on) or opens (turns off) the switch.
    pub fn set_closed(&mut self, closed: bool) {
        self.closed = closed;
    }

    /// Voltage across the switch while carrying `i`.
    pub fn drop_at(&self, i: Amps) -> Volts {
        if self.closed {
            i * self.rds_on
        } else {
            Volts::ZERO // no current path; the drop is across the open switch
        }
    }

    /// Power dissipated: conduction when closed, leakage against the rail
    /// when open.
    pub fn dissipation(&self, rail: Volts, i: Amps) -> Watts {
        if self.closed {
            self.rds_on.conduction_loss(i)
        } else {
            rail * self.leakage_off
        }
    }

    /// Off-state leakage current.
    pub fn leakage(&self) -> Amps {
        self.leakage_off
    }
}

/// Timing of the PA-rail double gating (§4.5): input switch first (to build
/// the supply behind the regulator), output switch a fixed delay later (for
/// a clean, overshoot-free rising edge at the PA).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateSequence {
    /// Delay between input-switch close and output-switch close.
    pub input_to_output_delay: picocube_units::Seconds,
}

impl GateSequence {
    /// The paper's sequencing: 100 µs between input and output enables.
    pub fn paper() -> Self {
        Self {
            input_to_output_delay: picocube_units::Seconds::new(100e-6),
        }
    }
}

/// A CSP level shifter translating controller-domain logic (2.1–3.6 V) to
/// the radio's 1.0 V domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelShifter {
    /// Effective switched capacitance per transition.
    c_eff: Farads,
    /// Static supply leakage while powered.
    static_leakage: Amps,
    /// Output (low) domain supply.
    vout_domain: Volts,
}

impl LevelShifter {
    /// Creates a level shifter.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for negative parameters or a
    /// non-positive output domain.
    pub fn new(c_eff: Farads, static_leakage: Amps, vout_domain: Volts) -> Result<Self> {
        if c_eff.value() < 0.0 || static_leakage.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "negative level-shifter parameter",
            });
        }
        if vout_domain.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "output domain must be positive",
            });
        }
        Ok(Self {
            c_eff,
            static_leakage,
            vout_domain,
        })
    }

    /// The radio-board CSP part: 5 pF effective, 50 nA static, 1.0 V out.
    pub fn radio_board() -> Self {
        Self {
            c_eff: Farads::new(5e-12),
            static_leakage: Amps::from_nano(50.0),
            vout_domain: Volts::new(1.0),
        }
    }

    /// Dynamic power while toggling at `rate` (SPI clock or TX data rate):
    /// `C·V²·f` against the high-side domain.
    pub fn dynamic_power(&self, vhigh: Volts, rate: Hertz) -> Watts {
        Watts::new(self.c_eff.value() * vhigh.value() * vhigh.value() * rate.value())
    }

    /// Static power while idle but powered.
    pub fn static_power(&self, vhigh: Volts) -> Watts {
        vhigh * self.static_leakage
    }

    /// Total power at the given toggle rate.
    pub fn power(&self, vhigh: Volts, rate: Hertz) -> Watts {
        self.dynamic_power(vhigh, rate) + self.static_power(vhigh)
    }

    /// Output-domain supply voltage.
    pub fn output_domain(&self) -> Volts {
        self.vout_domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_switch_conducts_with_ir_drop() {
        let mut sw = PowerSwitch::load_switch();
        sw.set_closed(true);
        let drop = sw.drop_at(Amps::from_milli(2.0));
        assert!((drop.milli() - 1.0).abs() < 1e-9); // 2 mA × 0.5 Ω
    }

    #[test]
    fn open_switch_only_leaks() {
        let sw = PowerSwitch::load_switch();
        assert!(!sw.is_closed());
        let p = sw.dissipation(Volts::new(1.2), Amps::ZERO);
        // 10 nA × 1.2 V = 12 nW.
        assert!((p.nano() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn conduction_loss_when_closed() {
        let mut sw = PowerSwitch::load_switch();
        sw.set_closed(true);
        let p = sw.dissipation(Volts::new(0.65), Amps::from_milli(2.0));
        // (2 mA)² × 0.5 Ω = 2 µW.
        assert!((p.micro() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gating_beats_ldo_quiescent_by_orders_of_magnitude() {
        // The reason the switch board exists: an open gate leaks 12 nW where
        // the un-gated LT3020 would burn 144 µW.
        let sw = PowerSwitch::load_switch();
        let gate_leak = sw.dissipation(Volts::new(1.2), Amps::ZERO);
        let ldo_idle = Volts::new(1.2) * Amps::from_micro(120.0);
        assert!(ldo_idle.value() / gate_leak.value() > 1_000.0);
    }

    #[test]
    fn level_shifter_dynamic_power_scales_with_rate() {
        let ls = LevelShifter::radio_board();
        let p1 = ls.dynamic_power(Volts::new(2.4), Hertz::from_kilo(330.0));
        let p2 = ls.dynamic_power(Volts::new(2.4), Hertz::from_kilo(660.0));
        assert!((p2.value() / p1.value() - 2.0).abs() < 1e-9);
        // At the full 330 kbps: 5 pF × (2.4 V)² × 330 kHz ≈ 9.5 µW.
        assert!((p1.micro() - 9.504).abs() < 0.01);
    }

    #[test]
    fn level_shifter_total_includes_static() {
        let ls = LevelShifter::radio_board();
        let total = ls.power(Volts::new(2.4), Hertz::ZERO);
        assert_eq!(total, ls.static_power(Volts::new(2.4)));
    }

    #[test]
    fn gate_sequence_default_delay() {
        let seq = GateSequence::paper();
        assert!((seq.input_to_output_delay.value() - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn constructor_validation() {
        assert!(PowerSwitch::new(Ohms::new(-1.0), Amps::ZERO).is_err());
        assert!(LevelShifter::new(Farads::ZERO, Amps::ZERO, Volts::ZERO).is_err());
    }
}
