//! AC-to-DC rectification at the harvester interface.
//!
//! The built Cube uses a full-bridge diode rectifier on the storage board
//! (§4.5); the §7.1 power interface IC replaces the junction diodes with
//! comparator-controlled transistors — a synchronous rectifier that reaches
//! **96 % of the efficiency of an ideal rectifier at 450 µW input**. Both
//! are modeled here against the same [`Rectifier`] interface, plus the ideal
//! reference they are compared to.
//!
//! The harvester delivers a pulsed AC waveform (an electromagnetic shaker
//! produces bursts as the proof mass passes the coil). For DC efficiency
//! accounting the models work at the envelope level: input power `Pin` with
//! a conduction duty factor `d` (fraction of the period during which current
//! actually flows), charging a storage element held at `vbat`.

use crate::{PowerError, Result};
use picocube_units::{Amps, Ohms, Volts, Watts};

/// Common interface for rectifier models.
pub trait Rectifier {
    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// Average DC power delivered into a storage element held at `vbat`
    /// when the harvester supplies `pin` of AC input power.
    ///
    /// Returns zero when the input cannot overcome the rectifier's
    /// conduction threshold.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `pin` is negative or
    /// `vbat` is non-positive.
    fn deliver(&self, pin: Watts, vbat: Volts) -> Result<Watts>;

    /// Conversion efficiency `Pout / Pin` at this operating point.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`deliver`](Self::deliver).
    fn efficiency(&self, pin: Watts, vbat: Volts) -> Result<f64> {
        if pin.value() <= 0.0 {
            return Ok(0.0);
        }
        Ok((self.deliver(pin, vbat)?.value() / pin.value()).clamp(0.0, 1.0))
    }

    /// Efficiency relative to an ideal (lossless) rectifier, the metric the
    /// paper quotes (96 % at 450 µW).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`deliver`](Self::deliver).
    fn efficiency_vs_ideal(&self, pin: Watts, vbat: Volts) -> Result<f64> {
        self.efficiency(pin, vbat)
    }
}

fn validate(pin: Watts, vbat: Volts) -> Result<()> {
    if pin.value() < 0.0 || !pin.is_finite() {
        return Err(PowerError::InvalidParameter {
            what: "input power must be non-negative",
        });
    }
    if vbat.value() <= 0.0 || !vbat.is_finite() {
        return Err(PowerError::InvalidParameter {
            what: "storage voltage must be positive",
        });
    }
    Ok(())
}

/// A lossless reference rectifier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealRectifier;

impl Rectifier for IdealRectifier {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn deliver(&self, pin: Watts, vbat: Volts) -> Result<Watts> {
        validate(pin, vbat)?;
        Ok(pin)
    }
}

/// The full-bridge junction-diode rectifier of the built storage board.
///
/// Two diodes conduct in series on each half cycle, so the storage element
/// at `vbat` is charged through a `2·Vf` headroom tax: of every joule the
/// harvester supplies, the fraction `vbat / (vbat + 2·Vf)` reaches storage.
/// Schottky diodes (`Vf ≈ 0.25 V`) are assumed by default — with silicon
/// diodes a 1.2 V NiMH cell would lose over half the harvest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeBridge {
    forward_drop: Volts,
}

impl DiodeBridge {
    /// Creates a bridge from the per-diode forward drop.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the drop is negative.
    pub fn new(forward_drop: Volts) -> Result<Self> {
        if forward_drop.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "diode drop must be non-negative",
            });
        }
        Ok(Self { forward_drop })
    }

    /// Schottky bridge with 0.25 V per-diode drop (the storage-board part).
    pub fn schottky() -> Self {
        Self {
            forward_drop: Volts::from_milli(250.0),
        }
    }

    /// Silicon junction bridge with 0.6 V per-diode drop (worst case the
    /// synchronous rectifier is motivated against).
    pub fn silicon() -> Self {
        Self {
            forward_drop: Volts::from_milli(600.0),
        }
    }

    /// Per-diode forward drop.
    pub fn forward_drop(&self) -> Volts {
        self.forward_drop
    }
}

impl Rectifier for DiodeBridge {
    fn name(&self) -> &'static str {
        "diode bridge"
    }

    fn deliver(&self, pin: Watts, vbat: Volts) -> Result<Watts> {
        validate(pin, vbat)?;
        // The source must develop vbat + 2Vf before any current flows; the
        // delivered fraction is the voltage divider between storage and the
        // two conducting drops.
        let total = vbat + self.forward_drop * 2.0;
        Ok(pin * (vbat / total))
    }
}

/// The §7.1 comparator-controlled synchronous rectifier.
///
/// Transistors replace the junction diodes, exchanging the `2·Vf` headroom
/// tax for an `I²·R` conduction loss plus a constant comparator/control
/// overhead. Defaults are calibrated so that the model reproduces the
/// paper's measured point: **96 % of ideal at 450 µW input** into a 1.2 V
/// cell, with the characteristic efficiency roll-off below ~100 µW (control
/// power dominates) and the gentle decline at high input (conduction grows
/// as `Pin²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynchronousRectifier {
    /// On-resistance of each of the two conducting transistors.
    rds_on: Ohms,
    /// Constant comparator + gate-control power while rectifying.
    control_power: Watts,
    /// Fraction of each cycle during which current flows (pulsed harvester
    /// waveforms concentrate the same average current into a shorter
    /// conduction window, raising the RMS-to-average ratio).
    conduction_duty: f64,
}

impl SynchronousRectifier {
    /// Creates a synchronous rectifier model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `rds_on` or
    /// `control_power` is negative, or `conduction_duty` is outside
    /// `(0, 1]`.
    pub fn new(rds_on: Ohms, control_power: Watts, conduction_duty: f64) -> Result<Self> {
        if rds_on.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "rds_on must be non-negative",
            });
        }
        if control_power.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "control power must be non-negative",
            });
        }
        if !(0.0..=1.0).contains(&conduction_duty) || conduction_duty == 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "conduction duty must be in (0, 1]",
            });
        }
        Ok(Self {
            rds_on,
            control_power,
            conduction_duty,
        })
    }

    /// The paper-calibrated instance: 10 Ω switches, 6 µW of comparator and
    /// gate-drive overhead, 25 % conduction duty (shaker pulse waveform).
    pub fn paper() -> Self {
        Self {
            rds_on: Ohms::new(10.0),
            control_power: Watts::from_micro(6.0),
            conduction_duty: 0.25,
        }
    }

    /// Conduction loss at an average charging current `i_avg` into `vbat`.
    fn conduction_loss(&self, i_avg: Amps) -> Watts {
        // Pulsed conduction: I_rms² = I_avg² / duty; two devices in series.
        let i_sq = i_avg.value() * i_avg.value() / self.conduction_duty;
        Watts::new(i_sq * 2.0 * self.rds_on.value())
    }

    /// The input power at which efficiency peaks, `√(P_ctrl·V²·d / 2R)`.
    pub fn peak_efficiency_input(&self, vbat: Volts) -> Watts {
        let v2 = vbat.value() * vbat.value();
        Watts::new(
            (self.control_power.value() * v2 * self.conduction_duty / (2.0 * self.rds_on.value()))
                .sqrt(),
        )
    }
}

impl Rectifier for SynchronousRectifier {
    fn name(&self) -> &'static str {
        "synchronous rectifier"
    }

    fn deliver(&self, pin: Watts, vbat: Volts) -> Result<Watts> {
        validate(pin, vbat)?;
        if pin.value() == 0.0 {
            return Ok(Watts::ZERO);
        }
        let i_avg: Amps = pin / vbat;
        let loss = self.conduction_loss(i_avg) + self.control_power;
        Ok(Watts::new((pin - loss).value().max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_96_percent_at_450_uw() {
        let sync = SynchronousRectifier::paper();
        let eff = sync
            .efficiency_vs_ideal(Watts::from_micro(450.0), Volts::new(1.2))
            .unwrap();
        assert!((eff - 0.96).abs() < 0.01, "expected ~96 %, got {:.3}", eff);
    }

    #[test]
    fn sync_beats_schottky_bridge_at_operating_point() {
        let sync = SynchronousRectifier::paper();
        let bridge = DiodeBridge::schottky();
        let pin = Watts::from_micro(450.0);
        let v = Volts::new(1.2);
        let e_sync = sync.efficiency(pin, v).unwrap();
        let e_bridge = bridge.efficiency(pin, v).unwrap();
        assert!(
            e_sync > e_bridge,
            "sync {e_sync:.3} vs bridge {e_bridge:.3}"
        );
        // The Schottky bridge loses vbat/(vbat+0.5) -> ~70.6 %.
        assert!((e_bridge - 1.2 / 1.7).abs() < 1e-9);
    }

    #[test]
    fn silicon_bridge_loses_half() {
        let bridge = DiodeBridge::silicon();
        let eff = bridge
            .efficiency(Watts::from_micro(450.0), Volts::new(1.2))
            .unwrap();
        assert!((eff - 0.5).abs() < 1e-9);
    }

    #[test]
    fn efficiency_peaks_near_half_milliwatt() {
        let sync = SynchronousRectifier::paper();
        let peak = sync.peak_efficiency_input(Volts::new(1.2));
        assert!(
            peak > Watts::from_micro(200.0) && peak < Watts::from_micro(600.0),
            "peak at {peak:?}"
        );
        // Efficiency at the analytic peak beats efficiency 10x away on
        // either side.
        let at = |p: Watts| sync.efficiency(p, Volts::new(1.2)).unwrap();
        assert!(at(peak) > at(peak * 0.1));
        assert!(at(peak) > at(peak * 10.0));
    }

    #[test]
    fn control_power_dominates_at_low_input() {
        let sync = SynchronousRectifier::paper();
        // Below the control overhead nothing is delivered.
        let out = sync
            .deliver(Watts::from_micro(5.0), Volts::new(1.2))
            .unwrap();
        assert_eq!(out, Watts::ZERO);
    }

    #[test]
    fn ideal_rectifier_is_lossless() {
        let pin = Watts::from_micro(123.0);
        assert_eq!(IdealRectifier.deliver(pin, Volts::new(1.2)).unwrap(), pin);
        assert_eq!(
            IdealRectifier.efficiency(pin, Volts::new(1.2)).unwrap(),
            1.0
        );
    }

    #[test]
    fn zero_input_zero_everything() {
        let sync = SynchronousRectifier::paper();
        assert_eq!(
            sync.deliver(Watts::ZERO, Volts::new(1.2)).unwrap(),
            Watts::ZERO
        );
        assert_eq!(sync.efficiency(Watts::ZERO, Volts::new(1.2)).unwrap(), 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let sync = SynchronousRectifier::paper();
        assert!(sync.deliver(Watts::new(-1.0), Volts::new(1.2)).is_err());
        assert!(sync.deliver(Watts::new(1.0), Volts::ZERO).is_err());
        assert!(SynchronousRectifier::new(Ohms::new(1.0), Watts::ZERO, 0.0).is_err());
        assert!(DiodeBridge::new(Volts::new(-0.1)).is_err());
    }

    #[test]
    fn bridge_efficiency_improves_with_storage_voltage() {
        // The 2·Vf tax is relatively smaller against a higher vbat — one of
        // the considerations in storage-element choice.
        let bridge = DiodeBridge::schottky();
        let pin = Watts::from_micro(100.0);
        let low = bridge.efficiency(pin, Volts::new(1.2)).unwrap();
        let high = bridge.efficiency(pin, Volts::new(2.4)).unwrap();
        assert!(high > low);
    }
}
