//! The shunt regulator feeding the 1.0 V radio digital rail.
//!
//! §4.3: "the radio digital section demands so little power that a
//! controller I/O signal fed through a shunt regulator is sufficient", and
//! §4.5: its output is switched "to ensure a clean rising edge with no
//! overshoot". A GPIO pin at VDD drives a series resistor into a shunt
//! element that clamps the rail at 1.0 V — crude, lossy, but nearly free in
//! parts and only live during the transmit burst.

use crate::{Conversion, PowerError, Result};
use picocube_units::{Amps, Ohms, Volts};

/// A series-resistor + shunt-clamp regulator driven from a GPIO pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShuntRegulator {
    vout_set: Volts,
    series: Ohms,
    shunt_min_bias: Amps,
}

impl ShuntRegulator {
    /// Creates a shunt regulator with the given clamp voltage, series
    /// resistance and minimum shunt bias current (the clamp needs a floor
    /// current to regulate).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive setpoint or
    /// series resistance, or negative bias.
    pub fn new(vout_set: Volts, series: Ohms, shunt_min_bias: Amps) -> Result<Self> {
        if vout_set.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "clamp voltage must be positive",
            });
        }
        if series.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "series resistance must be positive",
            });
        }
        if shunt_min_bias.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "negative shunt bias",
            });
        }
        Ok(Self {
            vout_set,
            series,
            shunt_min_bias,
        })
    }

    /// The switch-board part: 1.0 V clamp, 2.2 kΩ series resistor, 20 µA
    /// minimum shunt bias. Sized for the radio digital section's ~300 µA.
    pub fn radio_digital_rail() -> Self {
        Self {
            vout_set: Volts::new(1.0),
            series: Ohms::new(2_200.0),
            shunt_min_bias: Amps::from_micro(20.0),
        }
    }

    /// Clamp voltage.
    pub fn setpoint(&self) -> Volts {
        self.vout_set
    }

    /// Maximum load current available from a GPIO at `vin`: what the series
    /// resistor passes minus the shunt's bias floor.
    pub fn max_load(&self, vin: Volts) -> Amps {
        let through = Amps::new(((vin - self.vout_set) / self.series).value().max(0.0));
        Amps::new((through - self.shunt_min_bias).value().max(0.0))
    }

    /// Solves the DC operating point for a load `iout` fed from a GPIO pin
    /// at `vin`.
    ///
    /// The GPIO always sources the full series current
    /// `(vin − vout) / R`; whatever the load does not take, the shunt burns.
    ///
    /// # Errors
    ///
    /// * [`PowerError::DropoutViolation`] if `vin` cannot push the bias
    ///   floor through the series resistor.
    /// * [`PowerError::OverCurrent`] if the load starves the shunt below its
    ///   bias floor.
    pub fn convert(&self, vin: Volts, iout: Amps) -> Result<Conversion> {
        if iout.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "load current must be non-negative",
            });
        }
        let required = self.vout_set + self.series * (iout + self.shunt_min_bias);
        if vin < required {
            if iout.value() == 0.0 || vin < self.vout_set {
                return Err(PowerError::DropoutViolation { vin, required });
            }
            return Err(PowerError::OverCurrent {
                demanded: iout,
                limit: self.max_load(vin),
            });
        }
        let iin = Amps::new(((vin - self.vout_set) / self.series).value());
        Ok(Conversion::from_terminals(vin, iin, self.vout_set, iout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_at_one_volt() {
        let shunt = ShuntRegulator::radio_digital_rail();
        let op = shunt
            .convert(Volts::new(2.4), Amps::from_micro(300.0))
            .unwrap();
        assert_eq!(op.vout, Volts::new(1.0));
    }

    #[test]
    fn gpio_current_is_fixed_by_series_resistor() {
        let shunt = ShuntRegulator::radio_digital_rail();
        let op = shunt
            .convert(Volts::new(2.4), Amps::from_micro(300.0))
            .unwrap();
        // (2.4 − 1.0) / 2.2 kΩ ≈ 636 µA regardless of the load split.
        assert!((op.iin.micro() - 636.36).abs() < 0.1);
        let op2 = shunt
            .convert(Volts::new(2.4), Amps::from_micro(100.0))
            .unwrap();
        assert_eq!(op.iin, op2.iin);
    }

    #[test]
    fn efficiency_is_poor_by_design() {
        // ~1.0 V × 300 µA out of 2.4 V × 636 µA ≈ 20 % — acceptable only
        // because the rail is on for ~1 ms per 6 s cycle (§4.3: "efficiency
        // is less important than size").
        let shunt = ShuntRegulator::radio_digital_rail();
        let op = shunt
            .convert(Volts::new(2.4), Amps::from_micro(300.0))
            .unwrap();
        assert!(op.efficiency() < 0.25, "η = {:.3}", op.efficiency());
    }

    #[test]
    fn starved_shunt_is_rejected() {
        let shunt = ShuntRegulator::radio_digital_rail();
        let max = shunt.max_load(Volts::new(2.4));
        assert!(matches!(
            shunt.convert(Volts::new(2.4), max + Amps::from_micro(10.0)),
            Err(PowerError::OverCurrent { .. })
        ));
    }

    #[test]
    fn insufficient_gpio_voltage_rejected() {
        let shunt = ShuntRegulator::radio_digital_rail();
        assert!(matches!(
            shunt.convert(Volts::new(1.0), Amps::ZERO),
            Err(PowerError::DropoutViolation { .. })
        ));
    }

    #[test]
    fn max_load_scales_with_vin() {
        let shunt = ShuntRegulator::radio_digital_rail();
        assert!(shunt.max_load(Volts::new(3.0)) > shunt.max_load(Volts::new(2.1)));
        assert_eq!(shunt.max_load(Volts::new(0.5)), Amps::ZERO);
    }

    #[test]
    fn constructor_validation() {
        assert!(ShuntRegulator::new(Volts::ZERO, Ohms::new(1.0), Amps::ZERO).is_err());
        assert!(ShuntRegulator::new(Volts::new(1.0), Ohms::ZERO, Amps::ZERO).is_err());
        assert!(ShuntRegulator::new(Volts::new(1.0), Ohms::new(1.0), Amps::new(-1.0)).is_err());
    }
}
