//! Bias and voltage references of the §7.1 power interface IC.
//!
//! "A self biased current source (reference) supplies bias current to the
//! chip via a current mirror. It is biased at 18 nA independent of VDD and
//! mildly dependent on temperature. An ultralow-power sampled bandgap
//! reference provides a reference voltage to both the converter feedback
//! circuitry and the linear regulators."

use crate::{PowerError, Result};
use picocube_units::{Amps, Celsius, Joules, Seconds, Volts, Watts};

/// The self-biased 18 nA current reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentReference {
    nominal: Amps,
    /// Fractional drift per °C away from the 25 °C calibration point.
    temp_coefficient: f64,
    /// Supply sensitivity: fractional change per volt of VDD deviation from
    /// nominal (≈ 0 — "independent of VDD").
    supply_sensitivity: f64,
    nominal_vdd: Volts,
    /// Total mirrored copies distributed to the chip's analog blocks.
    mirror_branches: u32,
}

impl CurrentReference {
    /// Creates a current reference.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive nominal
    /// current or zero mirror branches.
    pub fn new(
        nominal: Amps,
        temp_coefficient: f64,
        supply_sensitivity: f64,
        nominal_vdd: Volts,
        mirror_branches: u32,
    ) -> Result<Self> {
        if nominal.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "nominal current must be positive",
            });
        }
        if mirror_branches == 0 {
            return Err(PowerError::InvalidParameter {
                what: "at least one mirror branch",
            });
        }
        Ok(Self {
            nominal,
            temp_coefficient,
            supply_sensitivity,
            nominal_vdd,
            mirror_branches,
        })
    }

    /// The paper's instance: 18 nA, mild temperature dependence
    /// (+0.2 %/°C), VDD-independent to first order, five mirror branches.
    pub fn paper() -> Self {
        Self {
            nominal: Amps::from_nano(18.0),
            temp_coefficient: 0.002,
            supply_sensitivity: 0.001,
            nominal_vdd: Volts::new(1.2),
            mirror_branches: 5,
        }
    }

    /// Reference current at temperature `t` and supply `vdd`.
    pub fn current_at(&self, t: Celsius, vdd: Volts) -> Amps {
        let dt = t.value() - 25.0;
        let dv = vdd.value() - self.nominal_vdd.value();
        self.nominal * (1.0 + self.temp_coefficient * dt) * (1.0 + self.supply_sensitivity * dv)
    }

    /// Total standing current including all mirror branches.
    pub fn total_bias(&self, t: Celsius, vdd: Volts) -> Amps {
        self.current_at(t, vdd) * f64::from(self.mirror_branches)
    }

    /// Standing power of the bias network.
    pub fn power(&self, t: Celsius, vdd: Volts) -> Watts {
        vdd * self.total_bias(t, vdd)
    }
}

/// The ultralow-power *sampled* bandgap reference.
///
/// Rather than burning continuous bias, the bandgap wakes at a low duty
/// cycle, settles, samples its output onto a hold capacitor, and powers
/// down; the feedback comparators then reference the held voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledBandgap {
    vref: Volts,
    /// Energy burned per refresh (startup + settle + sample).
    energy_per_sample: Joules,
    /// Refresh interval.
    refresh_interval: Seconds,
    /// Droop rate of the held voltage between refreshes (V/s, leakage on
    /// the hold cap).
    droop_rate: f64,
}

impl SampledBandgap {
    /// Creates a sampled bandgap.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive reference
    /// voltage, energy, or interval, or negative droop.
    pub fn new(
        vref: Volts,
        energy_per_sample: Joules,
        refresh_interval: Seconds,
        droop_rate: f64,
    ) -> Result<Self> {
        if vref.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "vref must be positive",
            });
        }
        if energy_per_sample.value() <= 0.0 || refresh_interval.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "sample energy/interval must be positive",
            });
        }
        if droop_rate < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "negative droop rate",
            });
        }
        Ok(Self {
            vref,
            energy_per_sample,
            refresh_interval,
            droop_rate,
        })
    }

    /// The paper-class instance: 0.6 V reference, 10 nJ per refresh every
    /// 100 ms, 10 µV/s droop.
    pub fn paper() -> Self {
        Self {
            vref: Volts::from_milli(600.0),
            energy_per_sample: Joules::from_nano(10.0),
            refresh_interval: Seconds::new(0.1),
            droop_rate: 10e-6,
        }
    }

    /// Nominal reference voltage.
    pub fn vref(&self) -> Volts {
        self.vref
    }

    /// Average power of the duty-cycled reference.
    pub fn average_power(&self) -> Watts {
        self.energy_per_sample / self.refresh_interval
    }

    /// Held voltage a time `since_refresh` after the last refresh.
    pub fn held_voltage(&self, since_refresh: Seconds) -> Volts {
        let droop = self.droop_rate * since_refresh.value().max(0.0);
        Volts::new((self.vref.value() - droop).max(0.0))
    }

    /// Worst-case droop just before the next refresh, as a fraction of vref.
    pub fn worst_case_error(&self) -> f64 {
        self.droop_rate * self.refresh_interval.value() / self.vref.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_18_na_at_room_temperature() {
        let r = CurrentReference::paper();
        let i = r.current_at(Celsius::new(25.0), Volts::new(1.2));
        assert!((i.nano() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn mild_temperature_dependence() {
        let r = CurrentReference::paper();
        // −40 °C to +85 °C (automotive TPMS range) moves the current by
        // roughly ±13 % — "mildly dependent on temperature".
        let cold = r.current_at(Celsius::new(-40.0), Volts::new(1.2));
        let hot = r.current_at(Celsius::new(85.0), Volts::new(1.2));
        assert!(cold < Amps::from_nano(18.0) && hot > Amps::from_nano(18.0));
        assert!((hot.nano() / 18.0 - 1.0) < 0.15);
        assert!((1.0 - cold.nano() / 18.0) < 0.15);
    }

    #[test]
    fn vdd_independence_to_first_order() {
        let r = CurrentReference::paper();
        let lo = r.current_at(Celsius::new(25.0), Volts::new(1.0));
        let hi = r.current_at(Celsius::new(25.0), Volts::new(1.4));
        assert!((hi.value() / lo.value() - 1.0).abs() < 0.001);
    }

    #[test]
    fn bias_network_power_is_nanowatts() {
        let r = CurrentReference::paper();
        let p = r.power(Celsius::new(25.0), Volts::new(1.2));
        // 5 branches × 18 nA × 1.2 V = 108 nW: negligible in the 6 µW budget.
        assert!((p.nano() - 108.0).abs() < 1.0);
    }

    #[test]
    fn sampled_bandgap_average_power_is_sub_microwatt() {
        let bg = SampledBandgap::paper();
        assert!((bg.average_power().nano() - 100.0).abs() < 1e-6);
        assert!(bg.average_power() < Watts::from_micro(1.0));
    }

    #[test]
    fn droop_between_refreshes_is_tiny() {
        let bg = SampledBandgap::paper();
        let held = bg.held_voltage(Seconds::new(0.1));
        assert!(held < bg.vref());
        assert!(bg.worst_case_error() < 1e-5);
    }

    #[test]
    fn held_voltage_never_negative() {
        let bg = SampledBandgap::paper();
        assert_eq!(bg.held_voltage(Seconds::new(1e12)).value(), 0.0);
        assert_eq!(bg.held_voltage(Seconds::new(-5.0)), bg.vref());
    }

    #[test]
    fn constructor_validation() {
        assert!(CurrentReference::new(Amps::ZERO, 0.0, 0.0, Volts::new(1.2), 1).is_err());
        assert!(
            CurrentReference::new(Amps::from_nano(18.0), 0.0, 0.0, Volts::new(1.2), 0).is_err()
        );
        assert!(
            SampledBandgap::new(Volts::ZERO, Joules::from_nano(1.0), Seconds::new(0.1), 0.0)
                .is_err()
        );
        assert!(SampledBandgap::new(
            Volts::new(0.6),
            Joules::from_nano(1.0),
            Seconds::new(0.1),
            -1.0
        )
        .is_err());
    }
}
