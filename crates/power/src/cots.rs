//! The COTS power chain of the built PicoCube (Fig. 1).
//!
//! Storage-board bridge rectifier → NiMH bus → TPS60313 charge pump
//! (always-on controller/sensor rail) + gated LT3020 (0.65 V radio RF) +
//! GPIO-fed shunt regulator (1.0 V radio digital), with load switches.
//! This chain is what produced the measured 6 µW average; the integrated
//! IC of [`converter_ic`](crate::converter_ic) is its §7.1 successor.

use crate::charge_pump::ChargePump;
use crate::linear::LinearRegulator;
use crate::rectifier::{DiodeBridge, Rectifier};
use crate::shunt::ShuntRegulator;
use crate::switches::PowerSwitch;
use crate::{Conversion, Result};
use picocube_units::{Amps, Volts, Watts};

/// The discrete power chain on the storage, sensor and switch boards.
#[derive(Debug, Clone)]
pub struct CotsPowerChain {
    rectifier: DiodeBridge,
    pump: ChargePump,
    rf_ldo: LinearRegulator,
    digital_shunt: ShuntRegulator,
    rf_input_switch: PowerSwitch,
    rf_output_switch: PowerSwitch,
    digital_switch: PowerSwitch,
}

/// Sleep-state battery draw decomposed by contributor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepBudget {
    /// Charge-pump snooze quiescent, at the battery.
    pub pump_quiescent: Amps,
    /// Gated LT3020 shutdown current.
    pub ldo_shutdown: Amps,
    /// Off-state leakage of the three load switches.
    pub switch_leakage: Amps,
    /// Battery current reflected from the always-on VDD loads (MCU sleep +
    /// sensor timer), through the pump's 2× charge reflection.
    pub reflected_load: Amps,
}

impl SleepBudget {
    /// Total battery current in sleep.
    pub fn total(&self) -> Amps {
        self.pump_quiescent + self.ldo_shutdown + self.switch_leakage + self.reflected_load
    }

    /// Total sleep power at the given battery voltage.
    pub fn power(&self, vbat: Volts) -> Watts {
        vbat * self.total()
    }
}

impl CotsPowerChain {
    /// Builds the as-built chain with datasheet-class parameters.
    pub fn paper() -> Self {
        Self {
            rectifier: DiodeBridge::schottky(),
            pump: ChargePump::tps60313(),
            rf_ldo: LinearRegulator::lt3020_rf_rail(),
            digital_shunt: ShuntRegulator::radio_digital_rail(),
            rf_input_switch: PowerSwitch::load_switch(),
            rf_output_switch: PowerSwitch::load_switch(),
            digital_switch: PowerSwitch::load_switch(),
        }
    }

    /// The storage-board rectifier.
    pub fn rectifier(&self) -> &DiodeBridge {
        &self.rectifier
    }

    /// The charge pump behind the always-on rail.
    pub fn pump(&self) -> &ChargePump {
        &self.pump
    }

    /// DC power delivered into the battery from `pin` of harvester power.
    ///
    /// # Errors
    ///
    /// Propagates rectifier parameter errors.
    pub fn harvest(&self, pin: Watts, vbat: Volts) -> Result<Watts> {
        self.rectifier.deliver(pin, vbat)
    }

    /// Solves the always-on controller/sensor rail at load `iout`.
    ///
    /// # Errors
    ///
    /// Propagates charge-pump operating-point errors.
    pub fn supply_mcu(&self, vbat: Volts, iout: Amps) -> Result<Conversion> {
        self.pump.convert(vbat, iout)
    }

    /// Solves the gated 0.65 V radio RF rail at load `iout`. The path is
    /// battery → input switch → LT3020 → output switch, so the delivered
    /// voltage sags by both switch drops.
    ///
    /// # Errors
    ///
    /// Propagates LDO operating-point errors.
    pub fn supply_radio_rf(&self, vbat: Volts, iout: Amps) -> Result<Conversion> {
        let mut input_sw = self.rf_input_switch;
        input_sw.set_closed(true);
        let mut output_sw = self.rf_output_switch;
        output_sw.set_closed(true);
        let vin_ldo = vbat - input_sw.drop_at(iout);
        let mut ldo = self.rf_ldo;
        ldo.set_enabled(true);
        let op = ldo.convert(vin_ldo, iout)?;
        let vout = op.vout - output_sw.drop_at(iout);
        Ok(Conversion::from_terminals(vbat, op.iin, vout, iout))
    }

    /// Solves the 1.0 V radio digital rail, fed from a controller GPIO at
    /// `vdd` through the shunt regulator and its series switch.
    ///
    /// # Errors
    ///
    /// Propagates shunt operating-point errors.
    pub fn supply_radio_digital(&self, vdd: Volts, iout: Amps) -> Result<Conversion> {
        let mut sw = self.digital_switch;
        sw.set_closed(true);
        let op = self.digital_shunt.convert(vdd, iout)?;
        let vout = op.vout - sw.drop_at(iout);
        Ok(Conversion::from_terminals(vdd, op.iin, vout, iout))
    }

    /// Decomposes the sleep-state battery draw given the always-on VDD load
    /// (MCU deep sleep plus sensor timer) on the pump output.
    pub fn sleep_budget(&self, vdd_sleep_load: Amps) -> SleepBudget {
        SleepBudget {
            pump_quiescent: self.pump.quiescent(crate::charge_pump::PumpMode::Snooze),
            ldo_shutdown: {
                let mut ldo = self.rf_ldo;
                ldo.set_enabled(false);
                // The gated LDO's shutdown current is itself blocked by the
                // open input switch; only switch leakage flows.
                Amps::ZERO.max(ldo.quiescent().min(self.rf_input_switch.leakage()))
            },
            switch_leakage: self.rf_input_switch.leakage()
                + self.rf_output_switch.leakage()
                + self.digital_switch.leakage(),
            reflected_load: vdd_sleep_load * self.pump.gain(),
        }
    }
}

impl Default for CotsPowerChain {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VBAT: Volts = Volts::new(1.2);

    #[test]
    fn sleep_floor_is_about_3_microwatts() {
        // With ~1 µA of always-on VDD load (MSP430 LPM3 + SP12 timer), the
        // battery sees ≈ 2.5 µA → ≈ 3 µW: half the 6 µW average before the
        // node does any work, which is the §6 "dominated by quiescent
        // losses" observation.
        let chain = CotsPowerChain::paper();
        let budget = chain.sleep_budget(Amps::from_micro(1.0));
        let p = budget.power(VBAT);
        assert!(
            p > Watts::from_micro(2.5) && p < Watts::from_micro(4.0),
            "sleep floor {:.3} µW",
            p.micro()
        );
    }

    #[test]
    fn sleep_budget_components_sum() {
        let chain = CotsPowerChain::paper();
        let b = chain.sleep_budget(Amps::from_micro(1.0));
        let sum = b.pump_quiescent + b.ldo_shutdown + b.switch_leakage + b.reflected_load;
        assert_eq!(sum, b.total());
    }

    #[test]
    fn mcu_rail_within_2v1_to_3v6() {
        let chain = CotsPowerChain::paper();
        let op = chain.supply_mcu(VBAT, Amps::from_micro(500.0)).unwrap();
        assert!(op.vout >= Volts::new(2.1) && op.vout <= Volts::new(3.6));
    }

    #[test]
    fn rf_rail_lands_close_to_0_65() {
        let chain = CotsPowerChain::paper();
        let op = chain.supply_radio_rf(VBAT, Amps::from_milli(2.0)).unwrap();
        // 0.65 V minus one 0.5 Ω output-switch drop at 2 mA = 1 mV.
        assert!((op.vout.milli() - 649.0).abs() < 0.5, "vout {}", op.vout);
    }

    #[test]
    fn digital_rail_from_gpio() {
        let chain = CotsPowerChain::paper();
        let op = chain
            .supply_radio_digital(Volts::new(2.4), Amps::from_micro(300.0))
            .unwrap();
        assert!((op.vout.value() - 1.0).abs() < 0.01);
    }

    #[test]
    fn harvest_through_schottky_bridge() {
        let chain = CotsPowerChain::paper();
        let out = chain.harvest(Watts::from_micro(450.0), VBAT).unwrap();
        // vbat/(vbat+0.5) ≈ 70.6 % — visibly worse than the §7.1
        // synchronous rectifier's 96 %.
        assert!((out.value() / 450e-6 - 0.7059).abs() < 0.001);
    }

    #[test]
    fn rf_rail_efficiency_reflects_ldo_ceiling() {
        let chain = CotsPowerChain::paper();
        let op = chain.supply_radio_rf(VBAT, Amps::from_milli(2.0)).unwrap();
        // η ≤ vout/vin ≈ 54 %, degraded slightly by the 120 µA ground pin.
        assert!(op.efficiency() > 0.45 && op.efficiency() < 0.55);
    }
}
