//! Power-management models for the PicoCube.
//!
//! The paper's §4.3 observation — *"since at least one supply is always on,
//! the contribution that management makes to the total system power can be
//! dominant"* — is the thesis this crate exists to reproduce. It provides
//! electrical models, faithful to the published operating points, for every
//! block in the node's power train:
//!
//! * [`rectifier`] — the full-bridge diode rectifier on the storage board
//!   and the actively-controlled synchronous rectifier of the §7.1 power
//!   interface IC (96 % of ideal at 450 µW input).
//! * [`charge_pump`] — the TPS60313-class doubler with its low-power snooze
//!   mode that generates the always-on microcontroller/sensor supply.
//! * [`linear`] — the LT3020-class low-dropout regulator for the 0.65 V
//!   radio RF rail, gated on both input and output.
//! * [`shunt`] — the controller-I/O-fed shunt regulator for the 1.0 V radio
//!   digital rail.
//! * [`sc`] — switched-capacitor DC-DC converters in the Seeman–Sanders
//!   SSL/FSL output-impedance framework, instantiated as the Fig. 10 1:2
//!   and 3:2 topologies (> 84 % efficient).
//! * [`references`] — the 18 nA self-biased current reference and the
//!   ultralow-power sampled bandgap.
//! * [`switches`] — power-gating switches and level shifters.
//! * [`converter_ic`] — the Fig. 9 power interface IC assembled from the
//!   above, with its ≈ 6.5 µA leakage budget.
//! * [`cots`] — the COTS power chain of the built Cube (charge pump +
//!   LT3020 + shunt + gates), for the integrated-vs-COTS ablation.
//!
//! All converters expose the same [`Conversion`] operating-point result so
//! efficiency accounting composes across the train.
//!
//! # Examples
//!
//! ```
//! use picocube_power::sc::ScConverter;
//! use picocube_units::{Volts, Amps};
//!
//! // The Fig. 10(a) doubler feeding the 2.1 V microcontroller rail, run at
//! // its efficiency-optimal switching frequency.
//! let doubler = ScConverter::paper_1to2();
//! let op = doubler.convert_optimal(Volts::new(1.2), Amps::from_micro(200.0))?;
//! assert!(op.vout > Volts::new(2.1));
//! assert!(op.efficiency() > 0.8);
//! # Ok::<(), picocube_power::PowerError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod charge_pump;
pub mod converter_ic;
pub mod cots;
pub mod linear;
pub mod rectifier;
pub mod references;
pub mod sc;
pub mod sc_ratio;
pub mod shunt;
pub mod switches;

mod conversion;
mod error;

pub use conversion::Conversion;
pub use error::PowerError;

/// Convenience result alias for power-train operations.
pub type Result<T> = core::result::Result<T, PowerError>;
