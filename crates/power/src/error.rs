//! Error type for power-train operating-point violations.

use picocube_units::{Amps, Volts};

/// An invalid or unreachable converter operating point.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// The input voltage is outside the block's rated range.
    InputOutOfRange {
        /// Applied input voltage.
        vin: Volts,
        /// Minimum rated input.
        min: Volts,
        /// Maximum rated input.
        max: Volts,
    },
    /// The demanded load current exceeds what the block can deliver.
    OverCurrent {
        /// Demanded load current.
        demanded: Amps,
        /// Maximum deliverable current at this operating point.
        limit: Amps,
    },
    /// A linear regulator cannot maintain regulation because the input is
    /// below `vout + dropout`.
    DropoutViolation {
        /// Applied input voltage.
        vin: Volts,
        /// Minimum input required for regulation.
        required: Volts,
    },
    /// The converter's output impedance collapses the output below zero at
    /// this load — no valid DC solution.
    OutputCollapsed {
        /// Demanded load current.
        demanded: Amps,
    },
    /// A parameter passed to a model constructor is unphysical.
    InvalidParameter {
        /// Description of the offending parameter.
        what: &'static str,
    },
}

impl core::fmt::Display for PowerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InputOutOfRange { vin, min, max } => {
                write!(f, "input {vin:.3} outside rated range [{min:.3}, {max:.3}]")
            }
            Self::OverCurrent { demanded, limit } => write!(
                f,
                "load current {:.1} µA exceeds limit {:.1} µA",
                demanded.micro(),
                limit.micro()
            ),
            Self::DropoutViolation { vin, required } => {
                write!(f, "input {vin:.3} below dropout requirement {required:.3}")
            }
            Self::OutputCollapsed { demanded } => write!(
                f,
                "no DC solution: output collapses at {:.1} µA load",
                demanded.micro()
            ),
            Self::InvalidParameter { what } => write!(f, "invalid model parameter: {what}"),
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = PowerError::DropoutViolation {
            vin: Volts::new(0.7),
            required: Volts::new(0.8),
        };
        let msg = format!("{e}");
        assert!(msg.starts_with("input"));
        assert!(msg.contains("0.700"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<PowerError>();
    }
}
