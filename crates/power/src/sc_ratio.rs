//! Arbitrary-ratio and variable-ratio switched-capacitor conversion — the
//! §7.1 extension: "large-ratio conversions are possible through topologies
//! in \[13\]. In addition, variable-ratio inverters can be used to both
//! efficiently create an AC waveform and to also efficiently rectify a
//! varying waveform from an energy scavenger."
//!
//! The series-parallel family generalizes the Fig. 10 pair: `1:n` step-up
//! (n−1 flying capacitors charged in parallel, discharged in series) and
//! `(n−1):n`-style fractional step-down. A [`VariableRatioConverter`] holds
//! a bank of such gears and, like an automatic transmission, picks the
//! ratio that minimizes intrinsic (ratio-mismatch) loss for each operating
//! point — which is exactly what efficient rectification of a varying
//! scavenger waveform needs.

use crate::sc::{ScConverter, ScTopology};
use crate::{Conversion, PowerError, Result};
use picocube_units::{Amps, Farads, Ohms, Volts};

/// Builds a `1:n` series-parallel step-up topology from a per-capacitor
/// budget (total flying capacitance is split evenly).
///
/// Charge multipliers: each of the `n−1` flying capacitors delivers the
/// full output charge (`a_c = 1`); roughly `3(n−1) + 1` switches carry it.
///
/// # Errors
///
/// Returns [`PowerError::InvalidParameter`] if `n < 2` or the budgets are
/// non-positive.
pub fn series_parallel_step_up(
    n: u32,
    total_capacitance: Farads,
    switch_resistance: Ohms,
) -> Result<ScTopology> {
    if n < 2 {
        return Err(PowerError::InvalidParameter {
            what: "step-up ratio needs n >= 2",
        });
    }
    if total_capacitance.value() <= 0.0 || switch_resistance.value() <= 0.0 {
        return Err(PowerError::InvalidParameter {
            what: "capacitance/resistance must be positive",
        });
    }
    let stages = (n - 1) as usize;
    let per_cap = total_capacitance / stages as f64;
    let switches = 3 * stages + 1;
    ScTopology::new(
        format!("1:{n} series-parallel"),
        f64::from(n),
        vec![(1.0, per_cap); stages],
        vec![(1.0, switch_resistance); switches],
        vec![(Farads::new(0.4e-12), Volts::new(1.2 * f64::from(n))); switches],
        0.01,
        1.0,
    )
}

/// Builds an `n:(n−1)`-ratio (fractional) step-down topology:
/// `vout = (n−1)/n · vin`, the generalization of the Fig. 10(b) 3:2.
///
/// # Errors
///
/// Returns [`PowerError::InvalidParameter`] if `n < 2` or the budgets are
/// non-positive.
pub fn series_parallel_step_down(
    n: u32,
    total_capacitance: Farads,
    switch_resistance: Ohms,
) -> Result<ScTopology> {
    if n < 2 {
        return Err(PowerError::InvalidParameter {
            what: "step-down ratio needs n >= 2",
        });
    }
    if total_capacitance.value() <= 0.0 || switch_resistance.value() <= 0.0 {
        return Err(PowerError::InvalidParameter {
            what: "capacitance/resistance must be positive",
        });
    }
    let stages = (n - 1) as usize;
    let per_cap = total_capacitance / stages as f64;
    let a = 1.0 / f64::from(n);
    let switches = 2 * stages + 3;
    ScTopology::new(
        format!("{n}:{} series-parallel", n - 1),
        f64::from(n - 1) / f64::from(n),
        vec![(a, per_cap); stages],
        vec![(a, switch_resistance); switches],
        vec![(Farads::new(0.5e-12), Volts::new(1.2)); switches],
        0.01,
        a,
    )
}

/// Builds a `1:n` Dickson (charge-pump) step-up topology.
///
/// The Dickson ladder trades the series-parallel topology's capacitor
/// friendliness for switch friendliness: every capacitor carries the full
/// output charge (`a_c = 1`) but capacitor `i` is charged to `i·vin`
/// (rising stress), while every switch blocks only `~1·vin`. Reference
/// \[13\]'s comparison: SP wins the SSL (capacitor-limited) regime, Dickson
/// wins the FSL (switch-limited) regime.
///
/// # Errors
///
/// Returns [`PowerError::InvalidParameter`] if `n < 2` or the budgets are
/// non-positive.
pub fn dickson_step_up(
    n: u32,
    total_capacitance: Farads,
    switch_resistance: Ohms,
) -> Result<ScTopology> {
    if n < 2 {
        return Err(PowerError::InvalidParameter {
            what: "step-up ratio needs n >= 2",
        });
    }
    if total_capacitance.value() <= 0.0 || switch_resistance.value() <= 0.0 {
        return Err(PowerError::InvalidParameter {
            what: "capacitance/resistance must be positive",
        });
    }
    let stages = (n - 1) as usize;
    let per_cap = total_capacitance / stages as f64;
    let switches = 2 * stages + 2;
    let topo = ScTopology::new(
        format!("1:{n} Dickson"),
        f64::from(n),
        vec![(1.0, per_cap); stages],
        vec![(1.0, switch_resistance); switches],
        vec![(Farads::new(0.4e-12), Volts::new(2.4)); switches],
        0.01,
        1.0,
    )?;
    // Capacitor i floats at i·vin; switches block ~1·vin (the Dickson
    // advantage — compare the SP step-up, whose output switches block up
    // to (n−1)·vin).
    let cap_stress = (1..=stages).map(|i| i as f64).collect();
    let switch_stress = vec![1.0; switches];
    topo.with_stress(cap_stress, switch_stress)
}

/// Annotated stress variant of [`series_parallel_step_up`], for the
/// figure-of-merit comparison (caps at `1·vin`, output-side switches at up
/// to `(n−1)·vin`).
///
/// # Errors
///
/// Propagates construction errors from the unannotated builder.
pub fn series_parallel_step_up_stressed(
    n: u32,
    total_capacitance: Farads,
    switch_resistance: Ohms,
) -> Result<ScTopology> {
    let topo = series_parallel_step_up(n, total_capacitance, switch_resistance)?;
    let stages = (n - 1) as usize;
    let switches = 3 * stages + 1;
    let cap_stress = vec![1.0; stages];
    // One third of the switches sit on the series (output) side and block
    // the stacked voltage; the rest see ~1·vin.
    let switch_stress: Vec<f64> = (0..switches)
        .map(|i| {
            if i % 3 == 2 {
                f64::from(n - 1).max(1.0)
            } else {
                1.0
            }
        })
        .collect();
    topo.with_stress(cap_stress, switch_stress)
}

/// A bank of SC "gears" with automatic ratio selection.
#[derive(Debug, Clone)]
pub struct VariableRatioConverter {
    gears: Vec<ScConverter>,
}

impl VariableRatioConverter {
    /// Creates a converter from a set of gears.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the bank is empty.
    pub fn new(gears: Vec<ScConverter>) -> Result<Self> {
        if gears.is_empty() {
            return Err(PowerError::InvalidParameter {
                what: "need at least one gear",
            });
        }
        Ok(Self { gears })
    }

    /// The §7.1 rectifier-interface bank: fractional and integer ratios
    /// from 1/3 up to 4, suitable for squeezing a 0.4–4 V scavenger swing
    /// onto the 1.2 V cell.
    ///
    /// # Errors
    ///
    /// Propagates topology-construction errors (none for these parameters).
    pub fn scavenger_bank() -> Result<Self> {
        let c = Farads::from_nano(4.0);
        let r = Ohms::new(3.0);
        let iq = Amps::from_micro(1.0);
        let mut gears = Vec::new();
        // Step-down gears for high scavenger peaks: 1/3, 1/2, 2/3, 3/4.
        for topo in [
            inverse_ratio(3, c, r)?, // 1/3
            inverse_ratio(2, c, r)?, // 1/2
            series_parallel_step_down(3, c, r)?,
            series_parallel_step_down(4, c, r)?,
        ] {
            gears.push(ScConverter::new(topo, iq)?);
        }
        // Unity "gear" (pass-through with switch losses).
        gears.push(ScConverter::new(unity_gear(c, r)?, iq)?);
        // Step-up gears for low-voltage sources: 2, 3, 4.
        for n in [2, 3, 4] {
            gears.push(ScConverter::new(series_parallel_step_up(n, c, r)?, iq)?);
        }
        Self::new(gears)
    }

    /// Number of gears in the bank.
    pub fn gear_count(&self) -> usize {
        self.gears.len()
    }

    /// The gear whose ideal ratio most closely reaches `vout_target` from
    /// `vin` *from above* (SC converters can only lose voltage off their
    /// ideal ratio; a ratio below target is unreachable).
    pub fn best_gear(&self, vin: Volts, vout_target: Volts) -> Option<&ScConverter> {
        self.gears
            .iter()
            .filter(|g| g.topology().ratio() * vin.value() > vout_target.value())
            .min_by(|a, b| {
                let ka = a.topology().ratio() * vin.value() - vout_target.value();
                let kb = b.topology().ratio() * vin.value() - vout_target.value();
                ka.total_cmp(&kb)
            })
    }

    /// Converts `vin → vout_target` at `iout`, selecting the best gear and
    /// regulating it by frequency.
    ///
    /// # Errors
    ///
    /// * [`PowerError::InputOutOfRange`] if no gear's ratio reaches the
    ///   target from this input.
    /// * Propagates the gear's regulation errors.
    pub fn convert(&self, vin: Volts, vout_target: Volts, iout: Amps) -> Result<Conversion> {
        let gear = self
            .best_gear(vin, vout_target)
            .ok_or(PowerError::InputOutOfRange {
                vin,
                min: Volts::new(vout_target.value() / self.max_ratio()),
                max: Volts::new(f64::INFINITY),
            })?;
        gear.regulate(vin, vout_target, iout)
    }

    /// The largest ideal ratio in the bank.
    pub fn max_ratio(&self) -> f64 {
        self.gears
            .iter()
            .map(|g| g.topology().ratio())
            .fold(0.0, f64::max)
    }
}

/// A 1:1 "gear": one bypass capacitor and two series switches.
fn unity_gear(c: Farads, r: Ohms) -> Result<ScTopology> {
    ScTopology::new(
        "1:1 pass-through",
        1.0,
        vec![(0.05, c)], // small ripple charge through the holdup cap
        vec![(1.0, r), (1.0, r)],
        vec![(Farads::new(0.4e-12), Volts::new(1.2)); 2],
        0.01,
        0.1,
    )
}

/// A `1/n` step-down built as the mirror of the 1:n step-up.
fn inverse_ratio(n: u32, c: Farads, r: Ohms) -> Result<ScTopology> {
    if n < 2 {
        return Err(PowerError::InvalidParameter {
            what: "inverse ratio needs n >= 2",
        });
    }
    let stages = (n - 1) as usize;
    // Mirrored step-up: output charge multipliers scale with the ratio.
    let a = 1.0 / f64::from(n);
    ScTopology::new(
        format!("{n}:1 step-down"),
        1.0 / f64::from(n),
        vec![(a, c / stages as f64); stages],
        vec![(a, r); 3 * stages + 1],
        vec![(Farads::new(0.4e-12), Volts::new(1.2)); 3 * stages + 1],
        0.01,
        a,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Farads = Farads::new(4e-9);
    const R: Ohms = Ohms::new(3.0);

    #[test]
    fn step_up_ratios_are_integral() {
        for n in 2..=5 {
            let topo = series_parallel_step_up(n, C, R).unwrap();
            assert!((topo.ratio() - f64::from(n)).abs() < 1e-12);
        }
    }

    #[test]
    fn fig10_topologies_are_family_members() {
        // The paper's 1:2 is series_parallel_step_up(2); its 3:2 is
        // series_parallel_step_down(3). Ratios must agree.
        assert_eq!(series_parallel_step_up(2, C, R).unwrap().ratio(), 2.0);
        assert!((series_parallel_step_down(3, C, R).unwrap().ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn large_ratio_conversion_works_but_costs_efficiency() {
        // §7.1: "large-ratio conversions are possible" — a 1:4 gear can
        // make 4.4 V from the 1.2 V cell, at lower efficiency than the 1:2
        // (more charge-multiplier squared per output charge).
        let double = ScConverter::new(
            series_parallel_step_up(2, C, R).unwrap(),
            Amps::from_micro(1.0),
        )
        .unwrap();
        let quad = ScConverter::new(
            series_parallel_step_up(4, C, R).unwrap(),
            Amps::from_micro(1.0),
        )
        .unwrap();
        let load = Amps::from_micro(200.0);
        let e2 = double.convert_optimal(Volts::new(1.2), load).unwrap();
        let e4 = quad.convert_optimal(Volts::new(1.2), load).unwrap();
        assert!(e4.vout > Volts::new(4.0), "1:4 vout {}", e4.vout);
        assert!(
            e4.efficiency() > 0.6,
            "large ratio still works: {:.2}",
            e4.efficiency()
        );
        assert!(e2.efficiency() > e4.efficiency());
    }

    #[test]
    fn gear_selection_tracks_input_voltage() {
        let bank = VariableRatioConverter::scavenger_bank().unwrap();
        // Charging a 1.25 V cell from a swinging scavenger voltage.
        let target = Volts::new(1.25);
        let expect = [
            (0.5, 3.0),
            (0.8, 2.0),
            (1.5, 1.0),
            (1.75, 0.75),
            (2.0, 2.0 / 3.0),
            (2.8, 0.5),
            (4.0, 1.0 / 3.0),
        ];
        for (vin, want_ratio) in expect {
            let gear = bank
                .best_gear(Volts::new(vin), target)
                .expect("gear exists");
            assert!(
                (gear.topology().ratio() - want_ratio).abs() < 1e-9,
                "vin {vin}: picked {} (ratio {}), wanted {want_ratio}",
                gear.topology().name(),
                gear.topology().ratio()
            );
        }
    }

    #[test]
    fn variable_ratio_beats_fixed_gear_across_a_swing() {
        // The §7.1 claim behind variable-ratio rectification: across a
        // scavenger's voltage swing, switching gears preserves efficiency
        // where a fixed doubler must burn the mismatch.
        let bank = VariableRatioConverter::scavenger_bank().unwrap();
        let fixed = ScConverter::new(
            series_parallel_step_up(2, C, R).unwrap(),
            Amps::from_micro(1.0),
        )
        .unwrap();
        let target = Volts::new(1.25);
        let load = Amps::from_milli(1.0);
        let mut bank_eff = Vec::new();
        let mut fixed_eff = Vec::new();
        for vin_v in [0.7, 0.9, 1.1, 1.5, 2.0, 3.0] {
            let vin = Volts::new(vin_v);
            bank_eff.push(
                bank.convert(vin, target, load)
                    .map(|c| c.efficiency())
                    .unwrap_or(0.0),
            );
            fixed_eff.push(
                fixed
                    .regulate(vin, target, load)
                    .map(|c| c.efficiency())
                    .unwrap_or(0.0),
            );
        }
        let bank_avg: f64 = bank_eff.iter().sum::<f64>() / bank_eff.len() as f64;
        let fixed_avg: f64 = fixed_eff.iter().sum::<f64>() / fixed_eff.len() as f64;
        assert!(
            bank_avg > fixed_avg + 0.1,
            "bank {bank_avg:.2} vs fixed doubler {fixed_avg:.2}"
        );
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let bank = VariableRatioConverter::scavenger_bank().unwrap();
        // 6 V from 1.2 V exceeds the largest (1:4) gear.
        assert!(matches!(
            bank.convert(Volts::new(1.2), Volts::new(6.0), Amps::from_micro(10.0)),
            Err(PowerError::InputOutOfRange { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(series_parallel_step_up(1, C, R).is_err());
        assert!(series_parallel_step_down(1, C, R).is_err());
        assert!(series_parallel_step_up(2, Farads::ZERO, R).is_err());
        assert!(VariableRatioConverter::new(vec![]).is_err());
    }

    #[test]
    fn dickson_vs_series_parallel_figures_of_merit() {
        // Reference [13]'s headline comparison, regenerated: at ratio 1:4,
        // series-parallel is the better capacitor user (lower SSL FoM),
        // Dickson the better switch user (lower FSL FoM).
        let sp = series_parallel_step_up_stressed(4, C, R).unwrap();
        let dickson = dickson_step_up(4, C, R).unwrap();
        assert!(
            sp.ssl_figure_of_merit() < dickson.ssl_figure_of_merit(),
            "SP SSL {} vs Dickson {}",
            sp.ssl_figure_of_merit(),
            dickson.ssl_figure_of_merit()
        );
        assert!(
            dickson.fsl_figure_of_merit() < sp.fsl_figure_of_merit(),
            "Dickson FSL {} vs SP {}",
            dickson.fsl_figure_of_merit(),
            sp.fsl_figure_of_merit()
        );
    }

    #[test]
    fn fom_gap_grows_with_ratio() {
        // The trade sharpens at larger ratios — the regime where the
        // "large-ratio conversions" of §7.1 live.
        let gap = |n: u32| {
            let sp = series_parallel_step_up_stressed(n, C, R).unwrap();
            let d = dickson_step_up(n, C, R).unwrap();
            d.ssl_figure_of_merit() / sp.ssl_figure_of_merit()
        };
        assert!(gap(5) > gap(3));
    }

    #[test]
    fn dickson_converts_like_its_ratio() {
        let conv =
            ScConverter::new(dickson_step_up(3, C, R).unwrap(), Amps::from_micro(1.0)).unwrap();
        let op = conv
            .convert_optimal(Volts::new(1.2), Amps::from_micro(100.0))
            .unwrap();
        assert!(op.vout > Volts::new(3.3) && op.vout < Volts::new(3.6));
        assert!(op.efficiency() > 0.7);
    }

    #[test]
    fn stress_vector_validation() {
        // A 1:2 series-parallel has one flying cap and 3·1+1 = 4 switches.
        let topo = series_parallel_step_up(2, C, R).unwrap();
        assert!(topo.clone().with_stress(vec![1.0], vec![1.0; 4]).is_ok());
        assert!(topo
            .clone()
            .with_stress(vec![1.0, 1.0], vec![1.0; 4])
            .is_err());
        assert!(topo.with_stress(vec![-1.0], vec![1.0; 4]).is_err());
    }

    #[test]
    fn regulation_through_the_bank_hits_target() {
        let bank = VariableRatioConverter::scavenger_bank().unwrap();
        let op = bank
            .convert(Volts::new(2.0), Volts::new(1.25), Amps::from_micro(500.0))
            .unwrap();
        assert!((op.vout.value() - 1.25).abs() < 2e-3, "vout {}", op.vout);
        assert!(op.efficiency() > 0.6);
    }
}
