//! The Fig. 9 power interface IC: the §7.1 integrated replacement for the
//! COTS power chain.
//!
//! One 2 mm × 2 mm die in 0.13 µm CMOS carries the synchronous rectifier,
//! the 1:2 and 3:2 switched-capacitor converters, a linear post-regulator
//! for the radio rail, the 18 nA current reference and the sampled bandgap.
//! Measured leakage was ≈ 6.5 µA, "partially attributable to the pad ring".

use crate::linear::LinearRegulator;
use crate::rectifier::{Rectifier, SynchronousRectifier};
use crate::references::{CurrentReference, SampledBandgap};
use crate::sc::ScConverter;
use crate::{Conversion, Result};
use picocube_units::{Amps, Celsius, Volts, Watts};

/// The assembled power interface IC of Fig. 9.
#[derive(Debug, Clone)]
pub struct PowerInterfaceIc {
    rectifier: SynchronousRectifier,
    mcu_converter: ScConverter,
    radio_converter: ScConverter,
    post_regulator: LinearRegulator,
    current_ref: CurrentReference,
    bandgap: SampledBandgap,
    /// Die leakage not attributable to any functional block (pad ring etc.).
    pad_leakage: Amps,
}

/// Power drawn from the battery bus by one radio-rail operating point,
/// decomposed by stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioRailOperatingPoint {
    /// 3:2 converter stage operating point (battery → ~0.8 V).
    pub sc_stage: Conversion,
    /// Post-regulator stage (≈0.8 V → 0.65 V).
    pub ldo_stage: Conversion,
}

impl RadioRailOperatingPoint {
    /// Cascaded efficiency of both stages.
    pub fn efficiency(&self) -> f64 {
        self.sc_stage.efficiency() * self.ldo_stage.efficiency()
    }

    /// Battery current drawn for this radio load.
    pub fn battery_current(&self) -> Amps {
        self.sc_stage.iin
    }

    /// Delivered radio-rail voltage.
    pub fn vout(&self) -> Volts {
        self.ldo_stage.vout
    }
}

impl PowerInterfaceIc {
    /// Builds the paper-calibrated IC.
    pub fn paper() -> Self {
        Self {
            rectifier: SynchronousRectifier::paper(),
            mcu_converter: ScConverter::paper_1to2(),
            radio_converter: ScConverter::paper_3to2_down(),
            post_regulator: LinearRegulator::ic_post_regulator(),
            current_ref: CurrentReference::paper(),
            bandgap: SampledBandgap::paper(),
            pad_leakage: Amps::from_micro(6.0),
        }
    }

    /// The synchronous rectifier block.
    pub fn rectifier(&self) -> &SynchronousRectifier {
        &self.rectifier
    }

    /// The 1:2 converter feeding the microcontroller/sensor rail.
    pub fn mcu_converter(&self) -> &ScConverter {
        &self.mcu_converter
    }

    /// The 3:2 converter feeding the radio post-regulator.
    pub fn radio_converter(&self) -> &ScConverter {
        &self.radio_converter
    }

    /// DC power delivered into the battery from `pin` of harvester power.
    ///
    /// # Errors
    ///
    /// Propagates rectifier parameter errors.
    pub fn harvest(&self, pin: Watts, vbat: Volts) -> Result<Watts> {
        self.rectifier.deliver(pin, vbat)
    }

    /// Solves the microcontroller/sensor rail (battery → ≥2.1 V) at the
    /// load current `iout`, running the converter at its optimal frequency.
    ///
    /// # Errors
    ///
    /// Propagates SC-converter operating-point errors.
    pub fn supply_mcu(&self, vbat: Volts, iout: Amps) -> Result<Conversion> {
        self.mcu_converter.convert_optimal(vbat, iout)
    }

    /// Solves the radio RF rail (battery → 3:2 → post-regulator → 0.65 V)
    /// at the load current `iout`.
    ///
    /// # Errors
    ///
    /// Propagates converter and regulator operating-point errors.
    pub fn supply_radio(&self, vbat: Volts, iout: Amps) -> Result<RadioRailOperatingPoint> {
        // The LDO passes the load current straight through; its input
        // current (load + its 1 µA ground current) is the SC stage's load.
        let ldo_iin = iout + Amps::from_micro(1.0);
        let sc_stage = self
            .radio_converter
            .regulate(vbat, self.post_regulator.min_input(), ldo_iin)
            .or_else(|_| self.radio_converter.convert_optimal(vbat, ldo_iin))?;
        let ldo_stage = self.post_regulator.convert(sc_stage.vout, iout)?;
        Ok(RadioRailOperatingPoint {
            sc_stage,
            ldo_stage,
        })
    }

    /// Standing battery current with all loads asleep: pad-ring leakage
    /// plus the always-on references.
    pub fn standby_current(&self, t: Celsius, vbat: Volts) -> Amps {
        let refs = self.current_ref.total_bias(t, vbat);
        let bandgap = Amps::new(self.bandgap.average_power().value() / vbat.value());
        self.pad_leakage + refs + bandgap
    }

    /// Standing battery power with all loads asleep.
    pub fn standby_power(&self, t: Celsius, vbat: Volts) -> Watts {
        vbat * self.standby_current(t, vbat)
    }
}

impl Default for PowerInterfaceIc {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VBAT: Volts = Volts::new(1.2);

    #[test]
    fn leakage_matches_paper_6_5_ua() {
        let ic = PowerInterfaceIc::paper();
        let standby = ic.standby_current(Celsius::new(25.0), VBAT);
        // 6 µA pad leakage + 90 nA references + ~83 nA bandgap ≈ 6.2 µA;
        // the paper reports "approximately 6.5 µA".
        assert!(
            standby > Amps::from_micro(6.0) && standby < Amps::from_micro(7.0),
            "standby {:.3} µA",
            standby.micro()
        );
    }

    #[test]
    fn mcu_rail_meets_spec() {
        let ic = PowerInterfaceIc::paper();
        let op = ic.supply_mcu(VBAT, Amps::from_micro(300.0)).unwrap();
        assert!(op.vout >= Volts::new(2.1));
        assert!(op.efficiency() > 0.84);
    }

    #[test]
    fn radio_rail_delivers_0_65v() {
        let ic = PowerInterfaceIc::paper();
        let op = ic.supply_radio(VBAT, Amps::from_milli(2.0)).unwrap();
        assert_eq!(op.vout(), Volts::from_milli(650.0));
        // Cascaded efficiency: >84 % SC × ~93 % LDO ≳ 70 %.
        assert!(op.efficiency() > 0.7, "cascade η = {:.3}", op.efficiency());
    }

    #[test]
    fn radio_rail_regulates_to_minimum_headroom() {
        // Regulated operation should hold the SC output just at the LDO's
        // dropout requirement rather than running flat out.
        let ic = PowerInterfaceIc::paper();
        let op = ic.supply_radio(VBAT, Amps::from_milli(2.0)).unwrap();
        assert!(
            (op.sc_stage.vout.value() - 0.7).abs() < 5e-3,
            "SC stage at {}",
            op.sc_stage.vout
        );
    }

    #[test]
    fn harvest_uses_synchronous_rectifier() {
        let ic = PowerInterfaceIc::paper();
        let out = ic.harvest(Watts::from_micro(450.0), VBAT).unwrap();
        assert!((out.value() / 450e-6 - 0.96).abs() < 0.01);
    }

    #[test]
    fn battery_current_reflects_cascade() {
        let ic = PowerInterfaceIc::paper();
        let op = ic.supply_radio(VBAT, Amps::from_milli(2.0)).unwrap();
        // Pout = 0.65 V × 2 mA = 1.3 mW; at ~75 % cascade efficiency the
        // battery sees ≈ 1.44 mA.
        let expected = 1.3e-3 / op.efficiency() / 1.2;
        assert!((op.battery_current().value() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn standby_power_sets_sleep_floor() {
        let ic = PowerInterfaceIc::paper();
        let p = ic.standby_power(Celsius::new(25.0), VBAT);
        // ≈ 7.5 µW — the §7.1 IC's leakage exceeds the COTS chain's sleep
        // floor; the paper notes it is "partially attributable to the pad
        // ring" (a packaging artifact, not the architecture).
        assert!(p > Watts::from_micro(7.0) && p < Watts::from_micro(8.5));
    }
}
