//! Switched-capacitor DC-DC converters in the Seeman–Sanders framework.
//!
//! §7.1 of the paper (and its reference \[13\], Seeman & Sanders, *Analysis
//! and Optimization of Switched-Capacitor DC-DC Converters*, IEEE TPEL
//! 2008) models an SC converter as an ideal transformer of ratio `n` with a
//! series output impedance `R_out` that interpolates between two asymptotes:
//!
//! * the **slow switching limit** (SSL), where impedance is set by charge
//!   transfer into the flying capacitors:
//!   `R_SSL = Σ a_{c,i}² / (C_i · f_sw)`;
//! * the **fast switching limit** (FSL), where it is set by switch and
//!   interconnect resistance: `R_FSL = 2 · Σ a_{r,i}² · R_i`.
//!
//! `a_{c,i}` and `a_{r,i}` are the topology's *charge multipliers*: the
//! charge through capacitor/switch `i` per unit of output charge. The
//! combined impedance is approximated as
//! `R_out = √(R_SSL² + R_FSL²)`, accurate to a few percent.
//!
//! Efficiency then follows from four loss terms: conduction (`R_out·I²`),
//! gate drive (`f·Σ C_g V_g²`), bottom-plate parasitics
//! (`f·α·Σ C_i V_swing²`), and the controller's quiescent current. The
//! Fig. 10 topologies — the 1:2 doubler for the 2.1 V rail and the 3:2
//! step-down for the radio — are provided as calibrated instances whose
//! peak efficiencies reproduce the paper's **> 84 %** claim.

use crate::{Conversion, PowerError, Result};
use picocube_units::{Amps, Farads, Hertz, Ohms, Volts, Watts};

/// A switched-capacitor topology: conversion ratio plus charge-multiplier
/// vectors for its capacitors and switches.
#[derive(Debug, Clone, PartialEq)]
pub struct ScTopology {
    name: String,
    /// Unloaded conversion ratio `vout / vin`.
    ratio: f64,
    /// `(charge multiplier, capacitance)` per flying capacitor.
    caps: Vec<(f64, Farads)>,
    /// `(charge multiplier, on-resistance)` per switch.
    switches: Vec<(f64, Ohms)>,
    /// `(gate capacitance, gate swing)` per switch, for drive loss.
    gates: Vec<(Farads, Volts)>,
    /// Bottom-plate parasitic capacitance as a fraction of each flying cap.
    bottom_plate_alpha: f64,
    /// Bottom-plate voltage swing as a fraction of `vin`.
    bottom_plate_swing: f64,
    /// Steady-state voltage across each flying capacitor, as a multiple of
    /// `vin` (device-rating stress; defaults to 1.0 per capacitor).
    cap_stress: Vec<f64>,
    /// Blocking voltage each switch must withstand, as a multiple of `vin`
    /// (defaults to 1.0 per switch).
    switch_stress: Vec<f64>,
}

impl ScTopology {
    /// Creates a topology description.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive ratio,
    /// empty capacitor list, or out-of-range parasitic fractions.
    pub fn new(
        name: impl Into<String>,
        ratio: f64,
        caps: Vec<(f64, Farads)>,
        switches: Vec<(f64, Ohms)>,
        gates: Vec<(Farads, Volts)>,
        bottom_plate_alpha: f64,
        bottom_plate_swing: f64,
    ) -> Result<Self> {
        if ratio <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "ratio must be positive",
            });
        }
        if caps.is_empty() {
            return Err(PowerError::InvalidParameter {
                what: "topology needs flying capacitors",
            });
        }
        if caps.iter().any(|&(_, c)| c.value() <= 0.0) {
            return Err(PowerError::InvalidParameter {
                what: "capacitances must be positive",
            });
        }
        if switches.iter().any(|&(_, r)| r.value() < 0.0) {
            return Err(PowerError::InvalidParameter {
                what: "negative switch resistance",
            });
        }
        if !(0.0..=1.0).contains(&bottom_plate_alpha) || !(0.0..=1.0).contains(&bottom_plate_swing)
        {
            return Err(PowerError::InvalidParameter {
                what: "parasitic fractions out of range",
            });
        }
        let cap_stress = vec![1.0; caps.len()];
        let switch_stress = vec![1.0; switches.len()];
        Ok(Self {
            name: name.into(),
            ratio,
            caps,
            switches,
            gates,
            bottom_plate_alpha,
            bottom_plate_swing,
            cap_stress,
            switch_stress,
        })
    }

    /// Annotates the topology with device voltage stresses (multiples of
    /// `vin`), enabling the Seeman–Sanders figure-of-merit comparison of
    /// reference \[13\].
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the vectors do not match
    /// the capacitor/switch counts or contain non-positive entries.
    pub fn with_stress(mut self, cap_stress: Vec<f64>, switch_stress: Vec<f64>) -> Result<Self> {
        if cap_stress.len() != self.caps.len() || switch_stress.len() != self.switches.len() {
            return Err(PowerError::InvalidParameter {
                what: "stress vector length mismatch",
            });
        }
        if cap_stress.iter().chain(&switch_stress).any(|&s| s <= 0.0) {
            return Err(PowerError::InvalidParameter {
                what: "stress must be positive",
            });
        }
        self.cap_stress = cap_stress;
        self.switch_stress = switch_stress;
        Ok(self)
    }

    /// The Seeman–Sanders slow-switching-limit figure of merit,
    /// `(Σ |a_c,i| · v_c,i(rated)/vin)²`: for a fixed total capacitor
    /// *energy* budget, `R_SSL` is proportional to this number — lower is
    /// better. Reference \[13\], eq. (10)-class metric.
    pub fn ssl_figure_of_merit(&self) -> f64 {
        let s: f64 = self
            .caps
            .iter()
            .zip(&self.cap_stress)
            .map(|(&(a, _), &v)| a.abs() * v)
            .sum();
        s * s
    }

    /// The fast-switching-limit figure of merit,
    /// `(Σ |a_r,i| · v_sw,i(rated)/vin)²`: for a fixed total switch
    /// conductance×voltage budget, `R_FSL` is proportional to this — lower
    /// is better.
    pub fn fsl_figure_of_merit(&self) -> f64 {
        let s: f64 = self
            .switches
            .iter()
            .zip(&self.switch_stress)
            .map(|(&(a, _), &v)| a.abs() * v)
            .sum();
        s * s
    }

    /// Topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unloaded conversion ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Slow-switching-limit output impedance at `f_sw`.
    pub fn r_ssl(&self, f_sw: Hertz) -> Ohms {
        let sum: f64 = self.caps.iter().map(|&(a, c)| a * a / c.value()).sum();
        Ohms::new(sum / f_sw.value())
    }

    /// Fast-switching-limit output impedance.
    pub fn r_fsl(&self) -> Ohms {
        let sum: f64 = self.switches.iter().map(|&(a, r)| a * a * r.value()).sum();
        Ohms::new(2.0 * sum)
    }

    /// Combined output impedance `√(R_SSL² + R_FSL²)`.
    pub fn r_out(&self, f_sw: Hertz) -> Ohms {
        let ssl = self.r_ssl(f_sw).value();
        let fsl = self.r_fsl().value();
        Ohms::new((ssl * ssl + fsl * fsl).sqrt())
    }

    /// Gate-drive loss at `f_sw`: `f · Σ C_g · V_g²`.
    pub fn gate_loss(&self, f_sw: Hertz) -> Watts {
        let per_cycle: f64 = self
            .gates
            .iter()
            .map(|&(c, v)| c.value() * v.value() * v.value())
            .sum();
        Watts::new(per_cycle * f_sw.value())
    }

    /// Bottom-plate parasitic loss at `f_sw` with input `vin`:
    /// `f · α · Σ C_i · (swing · vin)²`.
    pub fn bottom_plate_loss(&self, f_sw: Hertz, vin: Volts) -> Watts {
        let c_total: f64 = self.caps.iter().map(|&(_, c)| c.value()).sum();
        let v_swing = self.bottom_plate_swing * vin.value();
        Watts::new(self.bottom_plate_alpha * c_total * v_swing * v_swing * f_sw.value())
    }

    /// The crossover frequency where `R_SSL = R_FSL` — the knee beyond
    /// which raising `f_sw` buys little impedance but keeps adding
    /// switching loss.
    pub fn crossover_frequency(&self) -> Hertz {
        let sum: f64 = self.caps.iter().map(|&(a, c)| a * a / c.value()).sum();
        Hertz::new(sum / self.r_fsl().value())
    }

    /// The Fig. 10(a) 1:2 doubler that generates the ≥ 2.1 V
    /// microcontroller/sensor rail from the 1.2 V cell.
    ///
    /// Single flying capacitor (`a_c = 1`), four switches (`a_r = 1`),
    /// on-chip high-density capacitors (the 0.13 µm ST process provides
    /// them, §7.1) with ~1 % bottom plate swinging the full input.
    pub fn paper_1to2() -> Self {
        Self {
            name: "1:2 doubler (fig 10a)".into(),
            ratio: 2.0,
            caps: vec![(1.0, Farads::from_nano(2.0))],
            switches: vec![
                (1.0, Ohms::new(4.0)),
                (1.0, Ohms::new(4.0)),
                (1.0, Ohms::new(4.0)),
                (1.0, Ohms::new(4.0)),
            ],
            gates: vec![(Farads::new(0.4e-12), Volts::new(2.4)); 4],
            bottom_plate_alpha: 0.01,
            bottom_plate_swing: 1.0,
            cap_stress: vec![1.0],
            switch_stress: vec![1.0; 4],
        }
    }

    /// The Fig. 10(b) 3:2 step-down that generates the ~0.8 V feed for the
    /// radio's 0.65 V post-regulated rail from the 1.2 V cell.
    ///
    /// Two flying capacitors in a series-parallel arrangement
    /// (`a_c = 1/3` each), seven switches, bottom plates swinging `vin/3`.
    pub fn paper_3to2_down() -> Self {
        let third = 1.0 / 3.0;
        Self {
            name: "3:2 step-down (fig 10b)".into(),
            ratio: 2.0 / 3.0,
            caps: vec![
                (third, Farads::from_nano(3.0)),
                (third, Farads::from_nano(3.0)),
            ],
            switches: vec![(third, Ohms::new(3.0)); 7],
            gates: vec![(Farads::new(0.5e-12), Volts::new(1.2)); 7],
            bottom_plate_alpha: 0.01,
            bottom_plate_swing: third,
            cap_stress: vec![third; 2],
            switch_stress: vec![third; 7],
        }
    }
}

/// A complete SC converter: a topology plus its control overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct ScConverter {
    topology: ScTopology,
    iq_control: Amps,
}

impl ScConverter {
    /// Wraps a topology with a controller drawing `iq_control` from the
    /// input rail.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `iq_control` is negative.
    pub fn new(topology: ScTopology, iq_control: Amps) -> Result<Self> {
        if iq_control.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "negative control current",
            });
        }
        Ok(Self {
            topology,
            iq_control,
        })
    }

    /// The Fig. 10(a) doubler with its 2 µA controller.
    pub fn paper_1to2() -> Self {
        Self {
            topology: ScTopology::paper_1to2(),
            iq_control: Amps::from_micro(2.0),
        }
    }

    /// The Fig. 10(b) 3:2 step-down with its 2 µA controller.
    pub fn paper_3to2_down() -> Self {
        Self {
            topology: ScTopology::paper_3to2_down(),
            iq_control: Amps::from_micro(2.0),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &ScTopology {
        &self.topology
    }

    /// Solves the DC operating point at a fixed switching frequency.
    ///
    /// # Errors
    ///
    /// * [`PowerError::InvalidParameter`] for non-positive `vin`/`f_sw` or
    ///   negative `iout`.
    /// * [`PowerError::OutputCollapsed`] if `R_out·iout` exceeds the ideal
    ///   output voltage.
    pub fn convert(&self, vin: Volts, iout: Amps, f_sw: Hertz) -> Result<Conversion> {
        if vin.value() <= 0.0 || !vin.is_finite() {
            return Err(PowerError::InvalidParameter {
                what: "input voltage must be positive",
            });
        }
        if f_sw.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "switching frequency must be positive",
            });
        }
        if iout.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "load current must be non-negative",
            });
        }
        let t = &self.topology;
        let r_out = t.r_out(f_sw);
        let vout = Volts::new(t.ratio * vin.value()) - r_out * iout;
        if vout.value() <= 0.0 {
            return Err(PowerError::OutputCollapsed { demanded: iout });
        }
        let conduction = r_out.conduction_loss(iout);
        let gate = t.gate_loss(f_sw);
        let bottom = t.bottom_plate_loss(f_sw, vin);
        let control = vin * self.iq_control;
        let loss = conduction + gate + bottom + control;
        let pout = vout * iout;
        let iin = (pout + loss) / vin;
        Ok(Conversion {
            vin,
            iin,
            vout,
            iout,
            loss,
        })
    }

    /// Finds the switching frequency that maximizes efficiency for a load,
    /// by golden-section search over a log-frequency window spanning the
    /// SSL/FSL crossover.
    ///
    /// # Errors
    ///
    /// Propagates operating-point errors from [`convert`](Self::convert).
    pub fn best_frequency(&self, vin: Volts, iout: Amps) -> Result<Hertz> {
        let fx = self.topology.crossover_frequency().value().max(1.0);
        let (mut lo, mut hi) = ((fx * 1e-4).ln(), (fx * 1e2).ln());
        let eff_at = |f_ln: f64| -> f64 {
            self.convert(vin, iout, Hertz::new(f_ln.exp()))
                .map(|c| c.efficiency())
                .unwrap_or(0.0)
        };
        const PHI: f64 = 0.618_033_988_749_895;
        let mut a = hi - PHI * (hi - lo);
        let mut b = lo + PHI * (hi - lo);
        let (mut fa, mut fb) = (eff_at(a), eff_at(b));
        for _ in 0..80 {
            if fa < fb {
                lo = a;
                a = b;
                fa = fb;
                b = lo + PHI * (hi - lo);
                fb = eff_at(b);
            } else {
                hi = b;
                b = a;
                fb = fa;
                a = hi - PHI * (hi - lo);
                fa = eff_at(a);
            }
        }
        let f = Hertz::new(((lo + hi) / 2.0).exp());
        // Validate the operating point actually solves.
        self.convert(vin, iout, f)?;
        Ok(f)
    }

    /// Solves the operating point at the efficiency-optimal frequency.
    ///
    /// # Errors
    ///
    /// Propagates operating-point errors from [`convert`](Self::convert).
    pub fn convert_optimal(&self, vin: Volts, iout: Amps) -> Result<Conversion> {
        let f = self.best_frequency(vin, iout)?;
        self.convert(vin, iout, f)
    }

    /// Regulates the output to `vout_target` by modulating `f_sw`
    /// (frequency-hysteretic control, as the §7.1 IC does). Returns the
    /// operating point at the lowest frequency that reaches the target.
    ///
    /// # Errors
    ///
    /// * [`PowerError::OverCurrent`] if the target is unreachable even in
    ///   the fast switching limit.
    /// * Propagates operating-point errors from [`convert`](Self::convert).
    pub fn regulate(&self, vin: Volts, vout_target: Volts, iout: Amps) -> Result<Conversion> {
        let t = &self.topology;
        let v_ideal = t.ratio * vin.value();
        let v_fsl = v_ideal - t.r_fsl().value() * iout.value();
        if vout_target.value() >= v_fsl {
            let limit = if vout_target.value() < v_ideal {
                Amps::new((v_ideal - vout_target.value()) / t.r_fsl().value())
            } else {
                Amps::ZERO
            };
            return Err(PowerError::OverCurrent {
                demanded: iout,
                limit,
            });
        }
        // vout(f) is monotonically increasing in f; bisect in log space.
        let fx = t.crossover_frequency().value().max(1.0);
        let (mut lo, mut hi) = ((fx * 1e-6).ln(), (fx * 1e3).ln());
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            let v = t.ratio * vin.value() - t.r_out(Hertz::new(mid.exp())).value() * iout.value();
            if v < vout_target.value() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.convert(vin, iout, Hertz::new(hi.exp()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VBAT: Volts = Volts::new(1.2);

    #[test]
    fn ssl_scales_inversely_with_frequency() {
        let t = ScTopology::paper_1to2();
        let r1 = t.r_ssl(Hertz::from_kilo(100.0));
        let r2 = t.r_ssl(Hertz::from_kilo(200.0));
        assert!((r1.value() / r2.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fsl_is_frequency_independent_floor() {
        let t = ScTopology::paper_1to2();
        let fsl = t.r_fsl();
        // 2 · 4 switches · 1² · 4 Ω = 32 Ω.
        assert!((fsl.value() - 32.0).abs() < 1e-9);
        // r_out approaches the FSL floor at high frequency.
        let high = t.r_out(Hertz::from_mega(1000.0));
        assert!((high.value() - fsl.value()) / fsl.value() < 0.01);
    }

    #[test]
    fn crossover_frequency_equalizes_limits() {
        let t = ScTopology::paper_3to2_down();
        let fx = t.crossover_frequency();
        let ratio = t.r_ssl(fx).value() / t.r_fsl().value();
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn doubler_supplies_mcu_rail_above_2v1() {
        let conv = ScConverter::paper_1to2();
        let op = conv.convert_optimal(VBAT, Amps::from_micro(200.0)).unwrap();
        assert!(op.vout > Volts::new(2.1), "vout {}", op.vout);
        assert!(op.vout < Volts::new(2.4));
    }

    #[test]
    fn paper_efficiency_exceeds_84_percent() {
        // §7.1: "the converters exceed 84 % efficiency".
        let doubler = ScConverter::paper_1to2();
        let op = doubler
            .convert_optimal(VBAT, Amps::from_micro(200.0))
            .unwrap();
        assert!(op.efficiency() > 0.84, "1:2 η = {:.3}", op.efficiency());

        let down = ScConverter::paper_3to2_down();
        let op = down.convert_optimal(VBAT, Amps::from_milli(2.0)).unwrap();
        assert!(op.efficiency() > 0.84, "3:2 η = {:.3}", op.efficiency());
    }

    #[test]
    fn three_to_two_reaches_radio_post_regulator_input() {
        let down = ScConverter::paper_3to2_down();
        // The radio RF rail needs 0.65 V + 50 mV post-regulator dropout.
        let op = down.convert_optimal(VBAT, Amps::from_milli(2.0)).unwrap();
        assert!(op.vout > Volts::from_milli(700.0), "vout {}", op.vout);
    }

    #[test]
    fn efficiency_has_interior_optimum_in_frequency() {
        let conv = ScConverter::paper_1to2();
        let iout = Amps::from_micro(200.0);
        let best = conv.best_frequency(VBAT, iout).unwrap();
        let at = |f: Hertz| conv.convert(VBAT, iout, f).unwrap().efficiency();
        assert!(at(best) >= at(Hertz::new(best.value() * 0.1)));
        assert!(at(best) >= at(Hertz::new(best.value() * 10.0)));
    }

    #[test]
    fn regulation_hits_target_from_above() {
        let conv = ScConverter::paper_1to2();
        let op = conv
            .regulate(VBAT, Volts::new(2.1), Amps::from_micro(500.0))
            .unwrap();
        assert!((op.vout.value() - 2.1).abs() < 1e-3, "vout {}", op.vout);
    }

    #[test]
    fn regulation_rejects_unreachable_target() {
        let conv = ScConverter::paper_1to2();
        // 2.4 V is the unloaded ideal; with load it is unreachable.
        let r = conv.regulate(VBAT, Volts::new(2.4), Amps::from_micro(100.0));
        assert!(matches!(r, Err(PowerError::OverCurrent { .. })));
    }

    #[test]
    fn output_collapse_detected() {
        let conv = ScConverter::paper_1to2();
        let r = conv.convert(VBAT, Amps::new(1.0), Hertz::from_kilo(1.0));
        assert!(matches!(r, Err(PowerError::OutputCollapsed { .. })));
    }

    #[test]
    fn light_load_efficiency_degrades_gracefully() {
        // At 1 µA load the 2 µA controller dominates: efficiency drops but
        // the converter still functions — the regime where the paper's
        // "efficiently over large load ranges by varying the switching
        // frequency" claim is tested.
        let conv = ScConverter::paper_1to2();
        let op = conv.convert_optimal(VBAT, Amps::from_micro(1.0)).unwrap();
        assert!(op.efficiency() > 0.2 && op.efficiency() < 0.84);
    }

    #[test]
    fn energy_balance_is_exact() {
        let conv = ScConverter::paper_3to2_down();
        let op = conv
            .convert(VBAT, Amps::from_milli(1.0), Hertz::from_mega(1.0))
            .unwrap();
        let balance = op.input_power().value() - op.output_power().value() - op.loss.value();
        assert!(balance.abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ScTopology::new(
            "x",
            0.0,
            vec![(1.0, Farads::from_nano(1.0))],
            vec![],
            vec![],
            0.0,
            0.0
        )
        .is_err());
        assert!(ScTopology::new("x", 1.0, vec![], vec![], vec![], 0.0, 0.0).is_err());
        assert!(ScTopology::new(
            "x",
            1.0,
            vec![(1.0, Farads::ZERO)],
            vec![],
            vec![],
            0.0,
            0.0
        )
        .is_err());
        assert!(ScConverter::new(ScTopology::paper_1to2(), Amps::new(-1.0)).is_err());
        let conv = ScConverter::paper_1to2();
        assert!(conv
            .convert(Volts::ZERO, Amps::ZERO, Hertz::from_kilo(1.0))
            .is_err());
        assert!(conv.convert(VBAT, Amps::ZERO, Hertz::ZERO).is_err());
    }
}
