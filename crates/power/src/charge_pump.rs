//! The COTS charge pump generating the always-on controller/sensor supply.
//!
//! The built Cube uses a TI TPS60313-class switched-capacitor doubler on the
//! sensor board (§4.3): it steps the 1.2 V NiMH bus up to the 2.1–3.6 V the
//! MSP430 and SP12 require, and its defining feature for this application is
//! a *snooze* mode with sub-µA quiescent current — this supply can never be
//! turned off (sleep circuitry and timers hang from it), so its quiescent
//! draw is a permanent floor under the whole node's power budget.

use crate::{Conversion, PowerError, Result};
use picocube_units::{Amps, Ohms, Volts, Watts};

/// Operating mode of the charge pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpMode {
    /// Full-performance mode: fast switching, high quiescent current.
    Active,
    /// Low-power "snooze" mode: burst switching for light loads, very low
    /// quiescent current. The Cube lives here.
    Snooze,
}

/// A fixed-gain switched-capacitor charge pump (TPS60313 class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargePump {
    gain: f64,
    vin_min: Volts,
    vin_max: Volts,
    rout: Ohms,
    iq_active: Amps,
    iq_snooze: Amps,
    snooze_current_limit: Amps,
}

impl ChargePump {
    /// Creates a charge pump model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive gain or
    /// input range, or negative impedance/quiescent parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        gain: f64,
        vin_min: Volts,
        vin_max: Volts,
        rout: Ohms,
        iq_active: Amps,
        iq_snooze: Amps,
        snooze_current_limit: Amps,
    ) -> Result<Self> {
        if gain <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "gain must be positive",
            });
        }
        if vin_min.value() <= 0.0 || vin_max < vin_min {
            return Err(PowerError::InvalidParameter {
                what: "invalid input voltage range",
            });
        }
        if rout.value() < 0.0 || iq_active.value() < 0.0 || iq_snooze.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "negative impedance or quiescent",
            });
        }
        if snooze_current_limit.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "snooze limit must be positive",
            });
        }
        Ok(Self {
            gain,
            vin_min,
            vin_max,
            rout,
            iq_active,
            iq_snooze,
            snooze_current_limit,
        })
    }

    /// The TPS60313-class part on the PicoCube sensor board: a voltage
    /// doubler accepting 0.9–1.8 V, with 0.5 µA snooze quiescent, 45 µA
    /// active quiescent, and ~25 Ω open-loop output impedance.
    pub fn tps60313() -> Self {
        Self {
            gain: 2.0,
            vin_min: Volts::new(0.9),
            vin_max: Volts::new(1.8),
            rout: Ohms::new(25.0),
            iq_active: Amps::from_micro(45.0),
            iq_snooze: Amps::from_micro(0.5),
            snooze_current_limit: Amps::from_milli(2.0),
        }
    }

    /// Voltage multiplication ratio.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The mode the pump selects for a given load: snooze whenever the load
    /// fits under the snooze current limit.
    pub fn mode_for(&self, iout: Amps) -> PumpMode {
        if iout <= self.snooze_current_limit {
            PumpMode::Snooze
        } else {
            PumpMode::Active
        }
    }

    /// Quiescent current in the given mode.
    pub fn quiescent(&self, mode: PumpMode) -> Amps {
        match mode {
            PumpMode::Active => self.iq_active,
            PumpMode::Snooze => self.iq_snooze,
        }
    }

    /// Solves the DC operating point for a demanded load current.
    ///
    /// # Errors
    ///
    /// * [`PowerError::InputOutOfRange`] if `vin` is outside the rated range.
    /// * [`PowerError::OverCurrent`] if the load collapses the output.
    pub fn convert(&self, vin: Volts, iout: Amps) -> Result<Conversion> {
        if vin < self.vin_min || vin > self.vin_max {
            return Err(PowerError::InputOutOfRange {
                vin,
                min: self.vin_min,
                max: self.vin_max,
            });
        }
        if iout.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "load current must be non-negative",
            });
        }
        let vout = Volts::new(self.gain * vin.value()) - self.rout * iout;
        if vout.value() <= 0.0 {
            return Err(PowerError::OverCurrent {
                demanded: iout,
                limit: Amps::new(self.gain * vin.value() / self.rout.value()),
            });
        }
        // A charge pump reflects load current to the input multiplied by the
        // gain (charge conservation), plus its own quiescent draw.
        let iq = self.quiescent(self.mode_for(iout));
        let iin = Amps::new(self.gain * iout.value()) + iq;
        Ok(Conversion::from_terminals(vin, iin, vout, iout))
    }

    /// The standing input power burned when the output is unloaded — the
    /// term that shows up in the Cube's sleep floor.
    pub fn sleep_floor(&self, vin: Volts) -> Watts {
        vin * self.iq_snooze
    }
}

impl Default for ChargePump {
    fn default() -> Self {
        Self::tps60313()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_the_battery_bus() {
        let pump = ChargePump::tps60313();
        let op = pump
            .convert(Volts::new(1.2), Amps::from_micro(100.0))
            .unwrap();
        // 2.4 V minus a small IR drop, comfortably above the 2.1 V floor.
        assert!(op.vout > Volts::new(2.1) && op.vout < Volts::new(2.4));
    }

    #[test]
    fn input_current_is_gain_times_load_plus_quiescent() {
        let pump = ChargePump::tps60313();
        let op = pump
            .convert(Volts::new(1.2), Amps::from_micro(100.0))
            .unwrap();
        assert!((op.iin.micro() - (200.0 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn efficiency_near_vout_over_gain_vin_under_load() {
        let pump = ChargePump::tps60313();
        let op = pump
            .convert(Volts::new(1.2), Amps::from_milli(1.0))
            .unwrap();
        // Linear-extrinsic SC efficiency bound: vout / (gain · vin).
        let bound = op.vout.value() / (2.0 * 1.2);
        assert!((op.efficiency() - bound).abs() < 0.05);
        assert!(op.efficiency() > 0.9);
    }

    #[test]
    fn snooze_mode_below_limit_active_above() {
        let pump = ChargePump::tps60313();
        assert_eq!(pump.mode_for(Amps::from_micro(100.0)), PumpMode::Snooze);
        assert_eq!(pump.mode_for(Amps::from_milli(5.0)), PumpMode::Active);
    }

    #[test]
    fn sleep_floor_is_sub_microwatt() {
        // 0.5 µA at 1.2 V = 0.6 µW: a tenth of the node's 6 µW average by
        // itself, which is the paper's "quiescent losses dominate" point.
        let floor = ChargePump::tps60313().sleep_floor(Volts::new(1.2));
        assert!((floor.micro() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn light_load_efficiency_depends_on_mode() {
        // At 10 µA load, the snooze pump wastes only 0.5 µA of quiescent;
        // a pump stuck in active mode would burn 45 µA and crater.
        let pump = ChargePump::tps60313();
        let op = pump
            .convert(Volts::new(1.2), Amps::from_micro(10.0))
            .unwrap();
        assert!(
            op.efficiency() > 0.9,
            "snooze efficiency {:.3}",
            op.efficiency()
        );
        let active_iin = 2.0 * 10.0 + 45.0; // µA
        let active_eff = (op.vout.value() * 10.0) / (1.2 * active_iin);
        assert!(active_eff < 0.35);
    }

    #[test]
    fn rejects_out_of_range_input() {
        let pump = ChargePump::tps60313();
        assert!(matches!(
            pump.convert(Volts::new(0.5), Amps::ZERO),
            Err(PowerError::InputOutOfRange { .. })
        ));
        assert!(matches!(
            pump.convert(Volts::new(2.5), Amps::ZERO),
            Err(PowerError::InputOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_collapsing_load() {
        let pump = ChargePump::tps60313();
        let r = pump.convert(Volts::new(1.2), Amps::new(1.0));
        assert!(matches!(r, Err(PowerError::OverCurrent { .. })));
    }

    #[test]
    fn constructor_validation() {
        assert!(ChargePump::new(
            0.0,
            Volts::new(1.0),
            Volts::new(2.0),
            Ohms::new(1.0),
            Amps::ZERO,
            Amps::ZERO,
            Amps::new(1.0)
        )
        .is_err());
        assert!(ChargePump::new(
            2.0,
            Volts::new(2.0),
            Volts::new(1.0),
            Ohms::new(1.0),
            Amps::ZERO,
            Amps::ZERO,
            Amps::new(1.0)
        )
        .is_err());
    }
}
