//! Low-dropout linear regulator for the 0.65 V radio RF rail.
//!
//! The built Cube uses an LT3020-class LDO (§4.3) "gated on both input and
//! output by solid state switches": the radio supplies are only live for the
//! ~millisecond transmit burst, so the LDO's comparatively large ground
//! current is tolerable while its low noise and tight regulation are exactly
//! what the FBAR oscillator and PA need. The §7.1 IC keeps a (much smaller)
//! linear regulator as a post-regulator that trims the 3:2 SC converter's
//! 0.8 V output down to a clean 0.65 V.

use crate::{Conversion, PowerError, Result};
use picocube_units::{Amps, Volts};

/// A low-dropout linear regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegulator {
    vout_set: Volts,
    dropout: Volts,
    iq_on: Amps,
    iq_shutdown: Amps,
    i_limit: Amps,
    enabled: bool,
}

impl LinearRegulator {
    /// Creates an LDO model with the given setpoint, dropout, quiescent
    /// currents and current limit.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive setpoint or
    /// current limit, or negative dropout/quiescent values.
    pub fn new(
        vout_set: Volts,
        dropout: Volts,
        iq_on: Amps,
        iq_shutdown: Amps,
        i_limit: Amps,
    ) -> Result<Self> {
        if vout_set.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "setpoint must be positive",
            });
        }
        if dropout.value() < 0.0 || iq_on.value() < 0.0 || iq_shutdown.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "negative dropout or quiescent",
            });
        }
        if i_limit.value() <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "current limit must be positive",
            });
        }
        Ok(Self {
            vout_set,
            dropout,
            iq_on,
            iq_shutdown,
            i_limit,
            enabled: true,
        })
    }

    /// The LT3020-class part on the switch board, set to 0.65 V: 100 mV
    /// dropout at radio loads, 120 µA operating ground current (hence the
    /// gating), 2 µA in shutdown, 100 mA limit.
    pub fn lt3020_rf_rail() -> Self {
        Self {
            vout_set: Volts::from_milli(650.0),
            dropout: Volts::from_milli(100.0),
            iq_on: Amps::from_micro(120.0),
            iq_shutdown: Amps::from_micro(2.0),
            i_limit: Amps::from_milli(100.0),
            enabled: true,
        }
    }

    /// The on-chip post-regulator of the §7.1 power interface IC: trims
    /// 0.8 V from the 3:2 converter to 0.65 V with only 1 µA of ground
    /// current and 50 mV dropout.
    pub fn ic_post_regulator() -> Self {
        Self {
            vout_set: Volts::from_milli(650.0),
            dropout: Volts::from_milli(50.0),
            iq_on: Amps::from_micro(1.0),
            iq_shutdown: Amps::from_nano(50.0),
            i_limit: Amps::from_milli(10.0),
            enabled: true,
        }
    }

    /// Regulation setpoint.
    pub fn setpoint(&self) -> Volts {
        self.vout_set
    }

    /// Whether the regulator is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables (gates) the regulator.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Minimum input voltage that sustains regulation.
    pub fn min_input(&self) -> Volts {
        self.vout_set + self.dropout
    }

    /// Quiescent (ground-pin) current in the present state.
    pub fn quiescent(&self) -> Amps {
        if self.enabled {
            self.iq_on
        } else {
            self.iq_shutdown
        }
    }

    /// Solves the DC operating point.
    ///
    /// A disabled regulator draws only its shutdown current and delivers
    /// nothing (demanding load current from a disabled LDO is an error).
    ///
    /// # Errors
    ///
    /// * [`PowerError::DropoutViolation`] if `vin < vout + dropout`.
    /// * [`PowerError::OverCurrent`] if the load exceeds the current limit,
    ///   or any load is demanded while disabled.
    pub fn convert(&self, vin: Volts, iout: Amps) -> Result<Conversion> {
        if iout.value() < 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "load current must be non-negative",
            });
        }
        if !self.enabled {
            if iout.value() > 0.0 {
                return Err(PowerError::OverCurrent {
                    demanded: iout,
                    limit: Amps::ZERO,
                });
            }
            return Ok(Conversion {
                vin,
                iin: self.iq_shutdown,
                vout: Volts::ZERO,
                iout: Amps::ZERO,
                loss: vin * self.iq_shutdown,
            });
        }
        if vin < self.min_input() {
            return Err(PowerError::DropoutViolation {
                vin,
                required: self.min_input(),
            });
        }
        if iout > self.i_limit {
            return Err(PowerError::OverCurrent {
                demanded: iout,
                limit: self.i_limit,
            });
        }
        // Series-pass element: the full load current flows from input to
        // output; the (vin − vout) headroom plus the ground current burn.
        let iin = iout + self.iq_on;
        Ok(Conversion::from_terminals(vin, iin, self.vout_set, iout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_units::Watts;

    #[test]
    fn regulates_to_setpoint() {
        let ldo = LinearRegulator::lt3020_rf_rail();
        let op = ldo.convert(Volts::new(1.2), Amps::from_milli(2.0)).unwrap();
        assert_eq!(op.vout, Volts::from_milli(650.0));
    }

    #[test]
    fn efficiency_is_vout_over_vin_for_heavy_load() {
        // Linear regulator ceiling: η → vout/vin as load ≫ Iq.
        let ldo = LinearRegulator::lt3020_rf_rail();
        let op = ldo
            .convert(Volts::new(1.2), Amps::from_milli(50.0))
            .unwrap();
        assert!((op.efficiency() - 0.65 / 1.2).abs() < 0.01);
    }

    #[test]
    fn dropout_enforced() {
        let ldo = LinearRegulator::lt3020_rf_rail();
        let r = ldo.convert(Volts::from_milli(700.0), Amps::from_milli(1.0));
        assert!(matches!(r, Err(PowerError::DropoutViolation { .. })));
        // 0.75 V exactly meets vout + dropout.
        assert!(ldo
            .convert(Volts::from_milli(750.0), Amps::from_milli(1.0))
            .is_ok());
    }

    #[test]
    fn gating_kills_quiescent() {
        let mut ldo = LinearRegulator::lt3020_rf_rail();
        assert_eq!(ldo.quiescent(), Amps::from_micro(120.0));
        ldo.set_enabled(false);
        assert_eq!(ldo.quiescent(), Amps::from_micro(2.0));
        let op = ldo.convert(Volts::new(1.2), Amps::ZERO).unwrap();
        assert_eq!(op.vout, Volts::ZERO);
        assert!((op.loss.micro() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn disabled_regulator_rejects_load() {
        let mut ldo = LinearRegulator::lt3020_rf_rail();
        ldo.set_enabled(false);
        assert!(matches!(
            ldo.convert(Volts::new(1.2), Amps::from_milli(1.0)),
            Err(PowerError::OverCurrent { .. })
        ));
    }

    #[test]
    fn current_limit_enforced() {
        let ldo = LinearRegulator::lt3020_rf_rail();
        assert!(matches!(
            ldo.convert(Volts::new(1.2), Amps::from_milli(150.0)),
            Err(PowerError::OverCurrent { .. })
        ));
    }

    #[test]
    fn why_the_cube_gates_this_part() {
        // Left enabled between transmissions, the LT3020 alone would burn
        // 120 µA × 1.2 V = 144 µW — 24× the whole node's 6 µW average.
        let ldo = LinearRegulator::lt3020_rf_rail();
        let idle_burn = Volts::new(1.2) * ldo.quiescent();
        assert!(idle_burn > Watts::from_micro(100.0));
    }

    #[test]
    fn post_regulator_trims_sc_output() {
        let post = LinearRegulator::ic_post_regulator();
        let op = post
            .convert(Volts::from_milli(800.0), Amps::from_milli(2.0))
            .unwrap();
        assert_eq!(op.vout, Volts::from_milli(650.0));
        // 0.65/0.8 ≈ 81 % — the price of ripple smoothing after the 3:2.
        assert!((op.efficiency() - 0.8122).abs() < 0.01);
    }

    #[test]
    fn constructor_validation() {
        assert!(LinearRegulator::new(
            Volts::ZERO,
            Volts::ZERO,
            Amps::ZERO,
            Amps::ZERO,
            Amps::new(1.0)
        )
        .is_err());
        assert!(LinearRegulator::new(
            Volts::new(1.0),
            Volts::new(-0.1),
            Amps::ZERO,
            Amps::ZERO,
            Amps::new(1.0)
        )
        .is_err());
    }
}
