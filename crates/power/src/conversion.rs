//! The common operating-point result all converter models return.

use picocube_units::{Amps, Volts, Watts};

/// One DC operating point of a power converter.
///
/// Converters in this crate are *load-driven*: callers specify the input
/// voltage and the output current demanded by the load, and the model solves
/// for the delivered output voltage, the input current drawn, and the loss
/// breakdown. Chaining converters is then just feeding one stage's `iin`
/// into the previous stage's load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conversion {
    /// Delivered output voltage.
    pub vout: Volts,
    /// Output current (echo of the demanded load current).
    pub iout: Amps,
    /// Current drawn from the input source, including quiescent overhead.
    pub iin: Amps,
    /// Input voltage (echo of the applied source voltage).
    pub vin: Volts,
    /// Power dissipated inside the converter.
    pub loss: Watts,
}

impl Conversion {
    /// Output power `vout × iout`.
    #[inline]
    pub fn output_power(&self) -> Watts {
        self.vout * self.iout
    }

    /// Input power `vin × iin`.
    #[inline]
    pub fn input_power(&self) -> Watts {
        self.vin * self.iin
    }

    /// Power efficiency `Pout / Pin` in `[0, 1]`. Zero-input operating
    /// points (no load, no quiescent) report zero.
    #[inline]
    pub fn efficiency(&self) -> f64 {
        let pin = self.input_power().value();
        if pin <= 0.0 {
            0.0
        } else {
            (self.output_power().value() / pin).clamp(0.0, 1.0)
        }
    }

    /// Builds a conversion from terminal quantities, deriving the loss as
    /// `Pin − Pout` (clamped at zero against rounding).
    pub fn from_terminals(vin: Volts, iin: Amps, vout: Volts, iout: Amps) -> Self {
        let loss = Watts::new((vin * iin - vout * iout).value().max(0.0));
        Self {
            vin,
            iin,
            vout,
            iout,
            loss,
        }
    }
}

impl core::fmt::Display for Conversion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.3} @ {:.1} µA -> {:.3} @ {:.1} µA (η={:.1} %, loss {:.2} µW)",
            self.vin,
            self.iin.micro(),
            self.vout,
            self.iout.micro(),
            self.efficiency() * 100.0,
            self.loss.micro()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_from_terminals() {
        let c = Conversion::from_terminals(
            Volts::new(1.2),
            Amps::from_micro(500.0),
            Volts::new(2.4),
            Amps::from_micro(225.0),
        );
        // Pin = 600 µW, Pout = 540 µW -> 90 %.
        assert!((c.efficiency() - 0.9).abs() < 1e-9);
        assert!((c.loss.micro() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn zero_input_is_zero_efficiency() {
        let c =
            Conversion::from_terminals(Volts::new(1.2), Amps::ZERO, Volts::new(1.0), Amps::ZERO);
        assert_eq!(c.efficiency(), 0.0);
    }

    #[test]
    fn display_shows_percent() {
        let c = Conversion::from_terminals(
            Volts::new(1.2),
            Amps::from_micro(100.0),
            Volts::new(1.0),
            Amps::from_micro(100.0),
        );
        assert!(format!("{c}").contains('%'));
    }
}
