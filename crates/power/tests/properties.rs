//! Property-based tests for the power-train models: physical invariants
//! that must hold at every operating point, not just the calibrated ones.

use picocube_power::charge_pump::ChargePump;
use picocube_power::linear::LinearRegulator;
use picocube_power::rectifier::{DiodeBridge, Rectifier, SynchronousRectifier};
use picocube_power::sc::{ScConverter, ScTopology};
use picocube_units::{Amps, Hertz, Volts, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sc_energy_balance_holds_everywhere(
        vin in 0.8f64..2.0,
        iout_ua in 1.0f64..2_000.0,
        f_khz in 50.0f64..5_000.0,
    ) {
        for conv in [ScConverter::paper_1to2(), ScConverter::paper_3to2_down()] {
            if let Ok(op) = conv.convert(
                Volts::new(vin),
                Amps::from_micro(iout_ua),
                Hertz::from_kilo(f_khz),
            ) {
                let balance = op.input_power().value() - op.output_power().value() - op.loss.value();
                prop_assert!(balance.abs() < 1e-12, "energy imbalance {balance}");
                prop_assert!((0.0..=1.0).contains(&op.efficiency()));
                // Output never exceeds the ideal transformer ratio.
                prop_assert!(op.vout.value() <= conv.topology().ratio() * vin + 1e-12);
            }
        }
    }

    #[test]
    fn sc_output_impedance_is_monotone_in_frequency(
        f1 in 10.0f64..10_000.0,
        k in 1.1f64..100.0,
    ) {
        let topo = ScTopology::paper_1to2();
        let r_low = topo.r_out(Hertz::from_kilo(f1));
        let r_high = topo.r_out(Hertz::from_kilo(f1 * k));
        prop_assert!(r_high <= r_low, "impedance must not rise with frequency");
        prop_assert!(r_high >= topo.r_fsl(), "FSL is the floor");
    }

    #[test]
    fn sc_regulation_never_exceeds_target_error(
        iout_ua in 10.0f64..900.0,
        target in 2.05f64..2.2,
    ) {
        let conv = ScConverter::paper_1to2();
        if let Ok(op) = conv.regulate(Volts::new(1.2), Volts::new(target), Amps::from_micro(iout_ua)) {
            prop_assert!((op.vout.value() - target).abs() < 5e-3,
                "regulated to {} for target {target}", op.vout.value());
        }
    }

    #[test]
    fn rectifiers_never_create_energy(
        pin_uw in 0.0f64..10_000.0,
        vbat in 0.8f64..1.6,
    ) {
        let pin = Watts::from_micro(pin_uw);
        let v = Volts::new(vbat);
        for r in [
            &SynchronousRectifier::paper() as &dyn Rectifier,
            &DiodeBridge::schottky(),
            &DiodeBridge::silicon(),
        ] {
            let out = r.deliver(pin, v).unwrap();
            prop_assert!(out <= pin, "{} output {out:?} exceeds input {pin:?}", r.name());
            prop_assert!(out.value() >= 0.0);
        }
    }

    #[test]
    fn pump_conservation_and_bounds(
        vin in 0.9f64..1.8,
        iout_ua in 0.0f64..2_000.0,
    ) {
        let pump = ChargePump::tps60313();
        if let Ok(op) = pump.convert(Volts::new(vin), Amps::from_micro(iout_ua)) {
            // Charge conservation: input at least gain × output current.
            prop_assert!(op.iin.value() >= 2.0 * op.iout.value() - 1e-15);
            prop_assert!(op.vout.value() <= 2.0 * vin + 1e-12);
            prop_assert!((0.0..=1.0).contains(&op.efficiency()));
        }
    }

    #[test]
    fn ldo_current_conservation(
        vin in 0.75f64..3.6,
        iout_ma in 0.0f64..100.0,
    ) {
        let ldo = LinearRegulator::lt3020_rf_rail();
        if let Ok(op) = ldo.convert(Volts::new(vin), Amps::from_milli(iout_ma)) {
            // Series pass: iin = iout + Iq exactly.
            prop_assert!((op.iin.value() - op.iout.value() - 120e-6).abs() < 1e-12);
            prop_assert_eq!(op.vout, Volts::from_milli(650.0));
        }
    }

    #[test]
    fn optimal_frequency_is_no_worse_than_probes(
        iout_ua in 5.0f64..1_000.0,
        probe_khz in 20.0f64..20_000.0,
    ) {
        let conv = ScConverter::paper_1to2();
        let vin = Volts::new(1.2);
        let iout = Amps::from_micro(iout_ua);
        let best = conv.convert_optimal(vin, iout).unwrap().efficiency();
        if let Ok(op) = conv.convert(vin, iout, Hertz::from_kilo(probe_khz)) {
            prop_assert!(best >= op.efficiency() - 1e-6,
                "probe at {probe_khz} kHz beats 'optimal': {} > {best}", op.efficiency());
        }
    }

    #[test]
    fn sync_rectifier_efficiency_is_unimodal_in_input(
        lo in 10.0f64..200.0,
        mid_scale in 1.1f64..3.0,
        hi_scale in 1.1f64..3.0,
    ) {
        // Sample three increasing points around the analytic optimum: the
        // middle point closest to it must not be the worst of the three.
        let sync = SynchronousRectifier::paper();
        let v = Volts::new(1.2);
        let peak = sync.peak_efficiency_input(v).micro();
        let a = lo;
        let b = lo * mid_scale;
        let c = lo * mid_scale * hi_scale;
        let eff = |uw: f64| sync.efficiency(Watts::from_micro(uw), v).unwrap();
        // Unimodality check: if b is between a and c in distance-to-peak,
        // its efficiency is at least min(eff(a), eff(c)).
        let closest = |x: f64| (x - peak).abs();
        if closest(b) <= closest(a) && closest(b) <= closest(c) {
            prop_assert!(eff(b) + 1e-9 >= eff(a).min(eff(c)));
        }
    }
}
