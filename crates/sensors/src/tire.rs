//! Tire physics: the environment behind the SP12's channels.

use crate::sp12::TireSample;
use picocube_harvest::DriveCycle;
use picocube_units::{Celsius, Kilopascals, Meters, Seconds, Volts};

/// Atmospheric pressure used for gauge/absolute conversions.
const ATMOSPHERE_KPA: f64 = 101.325;

/// A rolling tire: pressure, temperature, and rim acceleration driven by a
/// [`DriveCycle`].
///
/// * Temperature relaxes toward `ambient + k·v` (flexing friction) with a
///   first-order time constant — highway driving warms a tire by tens of
///   degrees over ~10 minutes.
/// * Pressure follows the isochoric gas law `P_abs ∝ T_abs`, optionally
///   minus a slow leak (the fault TPMS exists to catch).
/// * Rim acceleration is centripetal, `v²/r` — hundreds of g at speed.
#[derive(Debug, Clone)]
pub struct TireEnvironment {
    cycle: DriveCycle,
    wheel_radius: Meters,
    ambient: Celsius,
    /// Steady-state warm-up per (m/s) of speed.
    warmup_per_mps: f64,
    /// First-order thermal time constant.
    thermal_tau: Seconds,
    /// Cold inflation (gauge) at ambient.
    cold_pressure: Kilopascals,
    /// Gauge-pressure loss per hour (puncture model).
    leak_per_hour: Kilopascals,
    /// Supply rail the SP12 reports (updated by the node).
    supply: Volts,
    // State.
    time: Seconds,
    temperature: Celsius,
    leaked: Kilopascals,
}

impl TireEnvironment {
    /// A passenger-car tire: 0.3 m wheel, 220 kPa cold at 20 °C ambient,
    /// +0.9 °C steady-state per m/s, 5-minute thermal time constant.
    pub fn passenger_car(cycle: DriveCycle) -> Self {
        Self {
            cycle,
            wheel_radius: Meters::new(0.3),
            ambient: Celsius::new(20.0),
            warmup_per_mps: 0.9,
            thermal_tau: Seconds::new(300.0),
            cold_pressure: Kilopascals::new(220.0),
            leak_per_hour: Kilopascals::ZERO,
            supply: Volts::new(2.4),
            time: Seconds::ZERO,
            temperature: Celsius::new(20.0),
            leaked: Kilopascals::ZERO,
        }
    }

    /// Adds a slow leak (gauge kPa lost per hour).
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative.
    pub fn with_leak(mut self, per_hour: Kilopascals) -> Self {
        assert!(per_hour.value() >= 0.0, "leak rate must be non-negative");
        self.leak_per_hour = per_hour;
        self
    }

    /// Sets the supply voltage the SP12 will report.
    pub fn set_supply(&mut self, supply: Volts) {
        self.supply = supply;
    }

    /// Elapsed scenario time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Advances the physics by `dt` and returns the new sensor-visible
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn step(&mut self, dt: Seconds) -> TireSample {
        assert!(dt.value() >= 0.0, "negative time step");
        let v = self.cycle.speed_at(self.time);
        // First-order relaxation toward the speed-dependent setpoint.
        let target = self.ambient.value() + self.warmup_per_mps * v.value();
        let alpha = 1.0 - (-dt.value() / self.thermal_tau.value()).exp();
        self.temperature =
            Celsius::new(self.temperature.value() + alpha * (target - self.temperature.value()));
        self.leaked += self.leak_per_hour * (dt.value() / 3600.0);
        self.time += dt;
        self.sample()
    }

    /// The present sensor-visible sample without advancing time.
    pub fn sample(&self) -> TireSample {
        let v = self.cycle.speed_at(self.time);
        // Isochoric: gauge+atm scales with absolute temperature relative to
        // the cold (ambient) fill.
        let p_cold_abs = self.cold_pressure.value() + ATMOSPHERE_KPA;
        let p_abs = p_cold_abs * self.temperature.kelvin() / self.ambient.kelvin();
        let gauge = (p_abs - ATMOSPHERE_KPA - self.leaked.value()).max(0.0);
        TireSample {
            pressure: Kilopascals::new(gauge),
            temperature: self.temperature,
            acceleration: v.centripetal_at_radius(self.wheel_radius).to_gs(),
            supply: self.supply,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_units::Gs;

    #[test]
    fn parked_tire_stays_cold_at_fill_pressure() {
        let mut tire = TireEnvironment::passenger_car(DriveCycle::parked());
        let s = tire.step(Seconds::HOUR);
        assert!((s.pressure.value() - 220.0).abs() < 0.5);
        assert!((s.temperature.value() - 20.0).abs() < 0.1);
        assert_eq!(s.acceleration, Gs::ZERO);
    }

    #[test]
    fn highway_driving_warms_and_pressurizes() {
        let mut tire = TireEnvironment::passenger_car(DriveCycle::highway());
        let mut s = TireSample::parked();
        for _ in 0..120 {
            s = tire.step(Seconds::new(10.0)); // 20 minutes
        }
        // ~110 km/h ≈ 30.6 m/s: target ≈ 20 + 27.5 °C.
        assert!(s.temperature.value() > 40.0, "temp {:?}", s.temperature);
        // Warmer gas pushes the gauge up ~8 %/25 °C.
        assert!(s.pressure.value() > 240.0, "pressure {:?}", s.pressure);
    }

    #[test]
    fn rim_acceleration_is_hundreds_of_g() {
        let mut tire = TireEnvironment::passenger_car(DriveCycle::highway());
        let s = tire.step(Seconds::new(1.0));
        assert!(s.acceleration.value() > 200.0, "accel {:?}", s.acceleration);
    }

    #[test]
    fn warmup_is_first_order() {
        let mut tire = TireEnvironment::passenger_car(DriveCycle::highway());
        // One time constant: ~63 % of the way to the target.
        let mut temp_tau = 0.0;
        for _ in 0..30 {
            temp_tau = tire.step(Seconds::new(10.0)).temperature.value();
        }
        let target = 20.0 + 0.9 * (110.0 / 3.6);
        let frac = (temp_tau - 20.0) / (target - 20.0);
        assert!((frac - 0.63).abs() < 0.05, "relaxation fraction {frac:.2}");
    }

    #[test]
    fn leak_deflates_over_hours() {
        let mut tire =
            TireEnvironment::passenger_car(DriveCycle::parked()).with_leak(Kilopascals::new(10.0));
        let mut last = TireSample::parked();
        for _ in 0..5 {
            last = tire.step(Seconds::HOUR);
        }
        assert!(
            (last.pressure.value() - 170.0).abs() < 1.0,
            "pressure {:?}",
            last.pressure
        );
    }

    #[test]
    fn pressure_never_goes_negative() {
        let mut tire =
            TireEnvironment::passenger_car(DriveCycle::parked()).with_leak(Kilopascals::new(100.0));
        for _ in 0..10 {
            tire.step(Seconds::HOUR);
        }
        assert_eq!(tire.sample().pressure.value(), 0.0);
    }

    #[test]
    fn supply_passthrough() {
        let mut tire = TireEnvironment::passenger_car(DriveCycle::parked());
        tire.set_supply(Volts::new(2.17));
        assert_eq!(tire.sample().supply, Volts::new(2.17));
    }

    #[test]
    fn cooldown_after_stopping() {
        // Urban cycle: the tire's temperature must track below the pure
        // highway steady state because of the idle fraction.
        let mut urban = TireEnvironment::passenger_car(DriveCycle::urban());
        let mut hw = TireEnvironment::passenger_car(DriveCycle::highway());
        for _ in 0..360 {
            urban.step(Seconds::new(10.0));
            hw.step(Seconds::new(10.0));
        }
        assert!(urban.sample().temperature < hw.sample().temperature);
    }
}
