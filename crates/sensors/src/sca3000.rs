//! The VTI SCA3000-E01 3-axis accelerometer (the second sensor board).
//!
//! §6: "for each axis, a threshold can be set that, when exceeded, causes
//! an interrupt to the controller. If the Cube is sitting motionless on a
//! table it is in deep sleep mode."

use picocube_units::{Amps, Gs};

/// Operating mode of the part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sca3000Mode {
    /// Continuous measurement (~120 µA): full-rate XYZ output.
    Measurement,
    /// Motion-detection (~10 µA): only the threshold comparators run; the
    /// demo's standby state.
    MotionDetect,
}

/// One three-axis sample in g.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AxisSample {
    /// X-axis acceleration.
    pub x: Gs,
    /// Y-axis acceleration.
    pub y: Gs,
    /// Z-axis acceleration (gravity shows up here at rest).
    pub z: Gs,
}

impl AxisSample {
    /// At rest, flat on the table: 1 g on Z.
    pub fn at_rest() -> Self {
        Self {
            x: Gs::ZERO,
            y: Gs::ZERO,
            z: Gs::new(1.0),
        }
    }
}

/// SPI protocol constants.
pub mod protocol {
    /// Axis read request base: `0x10 | axis` (0 = X, 1 = Y, 2 = Z).
    pub const CMD_READ_AXIS: u8 = 0x10;
    /// Read selected-axis high byte.
    pub const CMD_READ_HI: u8 = 0xF1;
    /// Read selected-axis low byte.
    pub const CMD_READ_LO: u8 = 0xF2;
}

/// The accelerometer model: ±3 g, 13-bit signed codes (SCA3000 format).
#[derive(Debug, Clone)]
pub struct Sca3000 {
    mode: Sca3000Mode,
    sample: AxisSample,
    threshold: Gs,
    latched: u16,
    interrupt_pending: bool,
}

/// Codes are signed 13-bit two's complement at 1333 counts/g (±3 g range).
const COUNTS_PER_G: f64 = 1333.0;

impl Sca3000 {
    /// A fresh part in motion-detect mode with a 1.3 g wake threshold
    /// (rest reads 1 g on Z; handling the cube exceeds the margin).
    pub fn new() -> Self {
        Self {
            mode: Sca3000Mode::MotionDetect,
            sample: AxisSample::at_rest(),
            threshold: Gs::new(1.3),
            latched: 0,
            interrupt_pending: false,
        }
    }

    /// Current operating mode.
    pub fn mode(&self) -> Sca3000Mode {
        self.mode
    }

    /// Switches mode.
    pub fn set_mode(&mut self, mode: Sca3000Mode) {
        self.mode = mode;
    }

    /// Sets the per-axis motion threshold (applies to |value| on any axis).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative.
    pub fn set_threshold(&mut self, threshold: Gs) {
        assert!(threshold.value() >= 0.0, "threshold must be non-negative");
        self.threshold = threshold;
    }

    /// Applies a new physical acceleration. In motion-detect mode an
    /// excursion beyond the threshold latches an interrupt; returns `true`
    /// when the interrupt line should assert (rising edge).
    pub fn update(&mut self, sample: AxisSample) -> bool {
        self.sample = sample;
        let exceeded = [sample.x, sample.y, sample.z]
            .iter()
            .any(|a| a.abs() > self.threshold);
        if exceeded && !self.interrupt_pending {
            self.interrupt_pending = true;
            return true;
        }
        false
    }

    /// Clears the interrupt latch (done by firmware reading the part).
    pub fn clear_interrupt(&mut self) {
        self.interrupt_pending = false;
    }

    /// Whether the interrupt line is asserted.
    pub fn interrupt_pending(&self) -> bool {
        self.interrupt_pending
    }

    /// Encodes an acceleration as the part's signed 13-bit code.
    pub fn encode(value: Gs) -> u16 {
        let counts = (value.value() * COUNTS_PER_G)
            .round()
            .clamp(-4096.0, 4095.0) as i16;
        (counts as u16) & 0x1FFF
    }

    /// Decodes a 13-bit code back to g.
    pub fn decode(code: u16) -> Gs {
        let raw = (code & 0x1FFF) as i16;
        // Sign-extend 13 bits.
        let signed = (raw << 3) >> 3;
        Gs::new(f64::from(signed) / COUNTS_PER_G)
    }

    /// One SPI byte exchange.
    pub fn spi(&mut self, mosi: u8) -> u8 {
        use protocol::*;
        match mosi {
            m if m & 0xFC == CMD_READ_AXIS && m & 0x03 < 3 => {
                let axis = match m & 0x03 {
                    0 => self.sample.x,
                    1 => self.sample.y,
                    _ => self.sample.z,
                };
                self.latched = Self::encode(axis);
                self.clear_interrupt();
                0x00
            }
            CMD_READ_HI => (self.latched >> 8) as u8,
            CMD_READ_LO => self.latched as u8,
            _ => 0x00,
        }
    }

    /// Supply current in the present mode.
    pub fn current_draw(&self) -> Amps {
        match self.mode {
            Sca3000Mode::Measurement => Amps::from_micro(120.0),
            Sca3000Mode::MotionDetect => Amps::from_micro(10.0),
        }
    }
}

impl Default for Sca3000 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_does_not_trigger() {
        let mut acc = Sca3000::new();
        assert!(!acc.update(AxisSample::at_rest()));
        assert!(!acc.interrupt_pending());
    }

    #[test]
    fn pickup_triggers_once_until_cleared() {
        let mut acc = Sca3000::new();
        let moving = AxisSample {
            x: Gs::new(0.8),
            y: Gs::new(1.1),
            z: Gs::new(1.6),
        };
        assert!(acc.update(moving));
        // Still moving: level-triggered latch does not re-edge.
        assert!(!acc.update(moving));
        acc.clear_interrupt();
        assert!(acc.update(moving));
    }

    #[test]
    fn negative_excursions_count() {
        let mut acc = Sca3000::new();
        assert!(acc.update(AxisSample {
            x: Gs::new(-2.0),
            y: Gs::ZERO,
            z: Gs::new(1.0)
        }));
    }

    #[test]
    fn code_round_trip() {
        for g in [-3.0, -1.0, -0.001, 0.0, 0.5, 1.0, 2.99] {
            let code = Sca3000::encode(Gs::new(g));
            let back = Sca3000::decode(code);
            assert!((back.value() - g).abs() < 1.0 / COUNTS_PER_G, "{g}");
        }
    }

    #[test]
    fn spi_reads_latched_axis() {
        let mut acc = Sca3000::new();
        acc.update(AxisSample {
            x: Gs::new(1.5),
            y: Gs::ZERO,
            z: Gs::new(1.0),
        });
        acc.spi(0x10); // select X
        let hi = acc.spi(0xF1);
        let lo = acc.spi(0xF2);
        let g = Sca3000::decode(u16::from(hi) << 8 | u16::from(lo));
        assert!((g.value() - 1.5).abs() < 0.01);
        // Reading cleared the interrupt latch.
        assert!(!acc.interrupt_pending());
    }

    #[test]
    fn motion_detect_mode_draws_less() {
        let mut acc = Sca3000::new();
        let md = acc.current_draw();
        acc.set_mode(Sca3000Mode::Measurement);
        assert!(acc.current_draw() > md);
    }

    #[test]
    fn threshold_is_adjustable() {
        let mut acc = Sca3000::new();
        acc.set_threshold(Gs::new(0.5));
        // Rest now exceeds the threshold (1 g on Z).
        assert!(acc.update(AxisSample::at_rest()));
    }

    #[test]
    fn saturates_at_range_limits() {
        let code = Sca3000::encode(Gs::new(10.0));
        assert!((Sca3000::decode(code).value() - 3.07).abs() < 0.01);
    }
}
