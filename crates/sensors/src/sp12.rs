//! The Sensonor SP12 TPMS sensor (two bare dice, chip-on-board).
//!
//! §4.5: "This device has sensors for tire pressure, temperature,
//! acceleration, and supply voltage. […] The digital die generates an
//! interrupt every six seconds — between events, only an internal timer is
//! running and the MSP430 controller is in deep sleep mode."

use crate::adc::AdcChannel;
use picocube_units::{Amps, Celsius, Gs, Kilopascals, Seconds, Volts};

/// The four measurement channels, in the firmware's channel order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sp12Channel {
    /// Tire gauge pressure, 0–450 kPa on 12 bits.
    Pressure,
    /// Die temperature, −40…125 °C on 12 bits.
    Temperature,
    /// Radial acceleration, 0–500 g on 12 bits (the rim sees hundreds of g
    /// at highway speed; the channel doubles as a rotation detector).
    Acceleration,
    /// Supply voltage, 0–3.6 V on 12 bits.
    Voltage,
}

impl Sp12Channel {
    /// Channel index as used on the SPI command byte (`0xA0 | index`).
    pub fn index(self) -> u8 {
        match self {
            Self::Pressure => 0,
            Self::Temperature => 1,
            Self::Acceleration => 2,
            Self::Voltage => 3,
        }
    }

    /// Channel from a command index.
    pub fn from_index(i: u8) -> Option<Self> {
        Some(match i {
            0 => Self::Pressure,
            1 => Self::Temperature,
            2 => Self::Acceleration,
            3 => Self::Voltage,
            _ => return None,
        })
    }
}

/// One snapshot of the quantities the SP12 digitizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TireSample {
    /// Gauge pressure inside the tire.
    pub pressure: Kilopascals,
    /// Sensor die temperature.
    pub temperature: Celsius,
    /// Radial (centripetal) acceleration at the rim.
    pub acceleration: Gs,
    /// Supply voltage at the sensor.
    pub supply: Volts,
}

impl TireSample {
    /// A parked, cold tire at the recommended 220 kPa with a healthy rail.
    pub fn parked() -> Self {
        Self {
            pressure: Kilopascals::new(220.0),
            temperature: Celsius::new(20.0),
            acceleration: Gs::ZERO,
            supply: Volts::new(2.4),
        }
    }
}

/// SPI protocol constants (the firmware's view of the part).
pub mod protocol {
    /// Start-conversion command base: `0xA0 | channel`.
    pub const CMD_CONVERT: u8 = 0xA0;
    /// Status request; response bit 0 = conversion ready.
    pub const CMD_STATUS: u8 = 0xF0;
    /// Read result high byte.
    pub const CMD_READ_HI: u8 = 0xF1;
    /// Read result low byte.
    pub const CMD_READ_LO: u8 = 0xF2;
}

/// The SP12 behavioural model.
#[derive(Debug, Clone)]
pub struct Sp12 {
    sample: TireSample,
    channels: [AdcChannel; 4],
    /// Conversion time modeled as status polls before ready: with the
    /// firmware's ~0.5 ms poll loop this yields the SP12's ~3 ms
    /// per-channel conversion, and in aggregate the ~14 ms cycle of §4.5.
    polls_until_ready: u8,
    polls_seen: u8,
    result: u16,
    converting: Option<Sp12Channel>,
    wake_interval: Seconds,
    rng: picocube_sim::SimRng,
    noisy: bool,
}

impl Sp12 {
    /// A part with nominal calibration and noiseless conversions.
    pub fn new() -> Self {
        Self {
            sample: TireSample::parked(),
            channels: [
                AdcChannel::new(12, 0.0, 450.0, 0.5),   // kPa
                AdcChannel::new(12, -40.0, 125.0, 0.5), // °C
                AdcChannel::new(12, 0.0, 500.0, 0.5),   // g
                AdcChannel::new(12, 0.0, 3.6, 0.5),     // V
            ],
            polls_until_ready: 6,
            polls_seen: 0,
            result: 0,
            converting: None,
            wake_interval: Seconds::new(6.0),
            rng: picocube_sim::SimRng::seed_from(0x5012),
            noisy: false,
        }
    }

    /// Enables ADC noise, seeded for reproducibility.
    pub fn with_noise(mut self, seed: u64) -> Self {
        self.rng = picocube_sim::SimRng::seed_from(seed);
        self.noisy = true;
        self
    }

    /// Reprograms the digital die's wake interval (the part is one-time
    /// programmable at test; design-space sweeps use this).
    ///
    /// # Panics
    ///
    /// Panics if the interval is not strictly positive.
    pub fn with_wake_interval(mut self, interval: Seconds) -> Self {
        assert!(interval.value() > 0.0, "wake interval must be positive");
        self.wake_interval = interval;
        self
    }

    /// The digital die's wake-interrupt period (§4.5: six seconds).
    pub fn wake_interval(&self) -> Seconds {
        self.wake_interval
    }

    /// Updates the physical quantities the next conversion will digitize.
    pub fn set_sample(&mut self, sample: TireSample) {
        self.sample = sample;
    }

    /// The currently applied physical sample.
    pub fn sample(&self) -> TireSample {
        self.sample
    }

    /// Performs a complete conversion directly (bench-test path; the SPI
    /// protocol below is what firmware uses). Returns `(code, physical)`.
    pub fn convert(&mut self, channel: Sp12Channel) -> (u16, f64) {
        let value = match channel {
            Sp12Channel::Pressure => self.sample.pressure.value(),
            Sp12Channel::Temperature => self.sample.temperature.value(),
            Sp12Channel::Acceleration => self.sample.acceleration.value(),
            Sp12Channel::Voltage => self.sample.supply.value(),
        };
        let ch = &self.channels[channel.index() as usize];
        let code = if self.noisy {
            ch.quantize(value, &mut self.rng)
        } else {
            ch.quantize_noiseless(value)
        };
        (code, value)
    }

    /// Decodes a 12-bit code back to physical units for a channel.
    pub fn decode(&self, channel: Sp12Channel, code: u16) -> f64 {
        self.channels[channel.index() as usize].dequantize(code)
    }

    /// Encodes a physical value as the channel's 12-bit code (what firmware
    /// thresholds — e.g. a low-pressure alarm level — must be expressed in).
    pub fn encode(&self, channel: Sp12Channel, value: f64) -> u16 {
        self.channels[channel.index() as usize].quantize_noiseless(value)
    }

    /// One SPI byte exchange (the analog/digital die pair's protocol).
    pub fn spi(&mut self, mosi: u8) -> u8 {
        use protocol::*;
        match mosi {
            m if m & 0xFC == CMD_CONVERT => {
                if let Some(ch) = Sp12Channel::from_index(m & 0x03) {
                    self.converting = Some(ch);
                    self.polls_seen = 0;
                    let (code, _) = self.convert(ch);
                    self.result = code;
                }
                0x00
            }
            CMD_STATUS => {
                if self.converting.is_some() {
                    self.polls_seen = self.polls_seen.saturating_add(1);
                    u8::from(self.polls_seen >= self.polls_until_ready)
                } else {
                    0x01 // idle counts as ready
                }
            }
            CMD_READ_HI => (self.result >> 8) as u8,
            CMD_READ_LO => {
                self.converting = None;
                self.result as u8
            }
            _ => 0x00,
        }
    }

    /// Supply current: the digital die's timer ticks in sleep; a conversion
    /// burns the analog die's bias.
    pub fn current_draw(&self) -> Amps {
        if self.converting.is_some() {
            Amps::from_micro(350.0)
        } else {
            Amps::from_nano(300.0)
        }
    }
}

impl Default for Sp12 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_interval_is_six_seconds() {
        assert_eq!(Sp12::new().wake_interval(), Seconds::new(6.0));
    }

    #[test]
    fn conversion_round_trips_through_codes() {
        let mut sp12 = Sp12::new();
        sp12.set_sample(TireSample {
            pressure: Kilopascals::new(230.0),
            temperature: Celsius::new(35.0),
            acceleration: Gs::new(120.0),
            supply: Volts::new(2.35),
        });
        for (ch, expect) in [
            (Sp12Channel::Pressure, 230.0),
            (Sp12Channel::Temperature, 35.0),
            (Sp12Channel::Acceleration, 120.0),
            (Sp12Channel::Voltage, 2.35),
        ] {
            let (code, _) = sp12.convert(ch);
            let back = sp12.decode(ch, code);
            assert!((back - expect).abs() < 0.2, "{ch:?}: {back} vs {expect}");
        }
    }

    #[test]
    fn spi_protocol_full_conversation() {
        let mut sp12 = Sp12::new();
        sp12.set_sample(TireSample::parked());
        // Trigger channel 0 (pressure).
        sp12.spi(0xA0);
        // Not ready for the first five polls.
        for _ in 0..5 {
            assert_eq!(sp12.spi(0xF0) & 1, 0);
        }
        assert_eq!(sp12.spi(0xF0) & 1, 1);
        let hi = sp12.spi(0xF1);
        let lo = sp12.spi(0xF2);
        let code = u16::from(hi) << 8 | u16::from(lo);
        let kpa = sp12.decode(Sp12Channel::Pressure, code);
        assert!((kpa - 220.0).abs() < 0.2);
    }

    #[test]
    fn status_idle_reads_ready() {
        let mut sp12 = Sp12::new();
        assert_eq!(sp12.spi(0xF0) & 1, 1);
    }

    #[test]
    fn conversion_current_exceeds_sleep_current() {
        let mut sp12 = Sp12::new();
        let asleep = sp12.current_draw();
        sp12.spi(0xA1);
        let converting = sp12.current_draw();
        assert!(converting.value() / asleep.value() > 1000.0);
        // Reading the low byte ends the conversion.
        sp12.spi(0xF1);
        sp12.spi(0xF2);
        assert_eq!(sp12.current_draw(), asleep);
    }

    #[test]
    fn sleep_current_is_sub_microamp() {
        // The "only an internal timer is running" state.
        assert!(Sp12::new().current_draw() < Amps::from_micro(1.0));
    }

    #[test]
    fn unknown_commands_are_harmless() {
        let mut sp12 = Sp12::new();
        assert_eq!(sp12.spi(0x55), 0);
        assert_eq!(sp12.spi(0xFF), 0);
    }

    #[test]
    fn noisy_part_dithers_within_spec() {
        let mut sp12 = Sp12::new().with_noise(7);
        sp12.set_sample(TireSample::parked());
        let codes: Vec<u16> = (0..100)
            .map(|_| sp12.convert(Sp12Channel::Pressure).0)
            .collect();
        let min = *codes.iter().min().unwrap();
        let max = *codes.iter().max().unwrap();
        assert!(max > min);
        // 0.5-LSB RMS noise: total spread stays within a few LSBs.
        assert!(max - min <= 6, "spread {}", max - min);
    }

    #[test]
    fn channel_index_round_trip() {
        for ch in [
            Sp12Channel::Pressure,
            Sp12Channel::Temperature,
            Sp12Channel::Acceleration,
            Sp12Channel::Voltage,
        ] {
            assert_eq!(Sp12Channel::from_index(ch.index()), Some(ch));
        }
        assert_eq!(Sp12Channel::from_index(4), None);
    }
}
