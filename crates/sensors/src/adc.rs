//! Generic ADC channel: linear mapping, quantization, and noise.

/// A linear ADC channel mapping a physical range onto an n-bit code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcChannel {
    bits: u8,
    min: f64,
    max: f64,
    /// RMS input-referred noise, in LSBs.
    noise_lsb: f64,
}

impl AdcChannel {
    /// Creates a channel quantizing `[min, max]` onto `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16, `min >= max`, or the noise
    /// is negative.
    pub fn new(bits: u8, min: f64, max: f64, noise_lsb: f64) -> Self {
        assert!(bits > 0 && bits <= 16, "bits must be in 1..=16");
        assert!(min < max, "range must be non-empty");
        assert!(noise_lsb >= 0.0, "noise must be non-negative");
        Self {
            bits,
            min,
            max,
            noise_lsb,
        }
    }

    /// Resolution in codes.
    pub fn full_scale(&self) -> u16 {
        ((1u32 << self.bits) - 1) as u16
    }

    /// The physical value of one LSB.
    pub fn lsb(&self) -> f64 {
        (self.max - self.min) / f64::from(self.full_scale())
    }

    /// Quantizes a physical value (clamped to the range), adding Gaussian
    /// noise drawn from `rng`.
    pub fn quantize(&self, value: f64, rng: &mut picocube_sim::SimRng) -> u16 {
        let noisy = value + rng.normal(0.0, self.noise_lsb) * self.lsb();
        self.quantize_noiseless(noisy)
    }

    /// Quantizes without noise (deterministic helper).
    pub fn quantize_noiseless(&self, value: f64) -> u16 {
        let clamped = value.clamp(self.min, self.max);
        let frac = (clamped - self.min) / (self.max - self.min);
        (frac * f64::from(self.full_scale())).round() as u16
    }

    /// The physical value corresponding to a code (mid-tread).
    pub fn dequantize(&self, code: u16) -> f64 {
        let code = code.min(self.full_scale());
        self.min + f64::from(code) / f64::from(self.full_scale()) * (self.max - self.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_sim::SimRng;

    #[test]
    fn endpoints_map_to_code_extremes() {
        let ch = AdcChannel::new(12, 0.0, 450.0, 0.0);
        assert_eq!(ch.quantize_noiseless(0.0), 0);
        assert_eq!(ch.quantize_noiseless(450.0), 4095);
        assert_eq!(ch.quantize_noiseless(-10.0), 0); // clamped
        assert_eq!(ch.quantize_noiseless(500.0), 4095);
    }

    #[test]
    fn round_trip_within_one_lsb() {
        let ch = AdcChannel::new(10, -40.0, 125.0, 0.0);
        for v in [-40.0, -7.5, 0.0, 25.0, 99.9, 125.0] {
            let back = ch.dequantize(ch.quantize_noiseless(v));
            assert!((back - v).abs() <= ch.lsb(), "{v} -> {back}");
        }
    }

    #[test]
    fn noise_spreads_codes() {
        let ch = AdcChannel::new(12, 0.0, 1.0, 2.0);
        let mut rng = SimRng::seed_from(9);
        let codes: Vec<u16> = (0..200).map(|_| ch.quantize(0.5, &mut rng)).collect();
        let min = codes.iter().min().unwrap();
        let max = codes.iter().max().unwrap();
        assert!(max > min, "2-LSB noise must dither the code");
        assert!(i32::from(*max) - i32::from(*min) < 20);
    }

    #[test]
    fn dequantize_clamps_code() {
        let ch = AdcChannel::new(8, 0.0, 10.0, 0.0);
        assert_eq!(ch.dequantize(9999), 10.0);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn empty_range_rejected() {
        AdcChannel::new(8, 1.0, 1.0, 0.0);
    }
}
