//! Sensor models and the physical environments that drive them.
//!
//! The Cube has two sensor boards (§4.5):
//!
//! * [`Sp12`] — the Sensonor SP12 TPMS device (chip-on-board bare dice):
//!   pressure, temperature, acceleration and supply-voltage channels, plus
//!   the digital die whose internal timer "generates an interrupt every six
//!   seconds" while the MSP430 sleeps.
//! * [`Sca3000`] — the VTI SCA3000-E01 3-axis accelerometer with per-axis
//!   motion thresholds that interrupt the controller, the basis of the §6
//!   retreat demo.
//!
//! Sensors are driven by *environment* models rather than canned values:
//! [`TireEnvironment`] turns a drive cycle into pressure/temperature/
//! acceleration physics (isochoric pressure-temperature coupling, friction
//! warm-up, centripetal acceleration at the rim), and [`MotionScenario`]
//! scripts the pick-up/put-down motion of the demo table.
//!
//! # Examples
//!
//! ```
//! use picocube_sensors::{Sp12, TireEnvironment};
//! use picocube_harvest::DriveCycle;
//! use picocube_units::Seconds;
//!
//! let mut tire = TireEnvironment::passenger_car(DriveCycle::highway());
//! let sample = tire.step(Seconds::new(600.0)); // ten minutes of driving
//! assert!(sample.temperature.value() > 21.0);  // friction warm-up
//!
//! let mut sp12 = Sp12::new();
//! sp12.set_sample(sample);
//! let (code, _) = sp12.convert(picocube_sensors::Sp12Channel::Pressure);
//! assert!(code > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adc;
mod motion;
mod sca3000;
mod sp12;
mod tire;

pub use adc::AdcChannel;
pub use motion::{MotionPhase, MotionScenario};
pub use sca3000::{AxisSample, Sca3000, Sca3000Mode};
pub use sp12::{Sp12, Sp12Channel, TireSample};
pub use tire::TireEnvironment;
