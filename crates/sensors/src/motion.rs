//! The §6 retreat-demo motion script: a cube on a table that visitors pick
//! up, wave around, and put back down.

use crate::sca3000::AxisSample;
use picocube_sim::SimRng;
use picocube_units::{Gs, Seconds};

/// What the cube is doing at a given moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MotionPhase {
    /// Flat on the table: 1 g on Z, no interrupts, deep sleep.
    AtRest,
    /// In a visitor's hand: acceleration excursions on all axes.
    Handled,
}

/// A scripted alternation of rest and handling periods with stochastic
/// in-hand acceleration.
#[derive(Debug, Clone)]
pub struct MotionScenario {
    rest: Seconds,
    handled: Seconds,
    /// RMS handling acceleration per axis.
    vigor: Gs,
    rng: SimRng,
}

impl MotionScenario {
    /// Creates a scenario alternating `rest` and `handled` spans, with the
    /// given per-axis RMS handling acceleration, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if either span is non-positive or the vigor is negative.
    pub fn new(rest: Seconds, handled: Seconds, vigor: Gs, seed: u64) -> Self {
        assert!(
            rest.value() > 0.0 && handled.value() > 0.0,
            "spans must be positive"
        );
        assert!(vigor.value() >= 0.0, "vigor must be non-negative");
        Self {
            rest,
            handled,
            vigor,
            rng: SimRng::seed_from(seed),
        }
    }

    /// The retreat-table default: 20 s of rest, 8 s of handling at 1.2 g
    /// RMS (a cube being waved around, not gently slid).
    pub fn retreat_table(seed: u64) -> Self {
        Self::new(Seconds::new(20.0), Seconds::new(8.0), Gs::new(1.2), seed)
    }

    /// The scenario's repeat period.
    pub fn period(&self) -> Seconds {
        self.rest + self.handled
    }

    /// The phase at time `t`.
    pub fn phase_at(&self, t: Seconds) -> MotionPhase {
        let cycle = t.value().rem_euclid(self.period().value());
        if cycle < self.rest.value() {
            MotionPhase::AtRest
        } else {
            MotionPhase::Handled
        }
    }

    /// Samples the acceleration at time `t`. Handling draws fresh noise
    /// from the scenario RNG (call in time order for reproducible runs).
    pub fn sample_at(&mut self, t: Seconds) -> AxisSample {
        match self.phase_at(t) {
            MotionPhase::AtRest => AxisSample::at_rest(),
            MotionPhase::Handled => {
                let v = self.vigor.value();
                AxisSample {
                    x: Gs::new(self.rng.normal(0.0, v)),
                    y: Gs::new(self.rng.normal(0.0, v)),
                    z: Gs::new(1.0 + self.rng.normal(0.0, v)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_alternate_on_schedule() {
        let s = MotionScenario::retreat_table(1);
        assert_eq!(s.phase_at(Seconds::new(5.0)), MotionPhase::AtRest);
        assert_eq!(s.phase_at(Seconds::new(21.0)), MotionPhase::Handled);
        assert_eq!(s.phase_at(Seconds::new(29.0)), MotionPhase::AtRest); // wrapped
    }

    #[test]
    fn rest_sample_is_exactly_gravity() {
        let mut s = MotionScenario::retreat_table(1);
        let a = s.sample_at(Seconds::new(1.0));
        assert_eq!(a, AxisSample::at_rest());
    }

    #[test]
    fn handling_moves_the_axes() {
        let mut s = MotionScenario::retreat_table(1);
        let a = s.sample_at(Seconds::new(25.0));
        let energy = a.x.value().abs() + a.y.value().abs() + (a.z.value() - 1.0).abs();
        assert!(energy > 0.1, "handling should perturb the axes");
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut a = MotionScenario::retreat_table(42);
        let mut b = MotionScenario::retreat_table(42);
        for i in 0..50 {
            let t = Seconds::new(i as f64);
            assert_eq!(a.sample_at(t), b.sample_at(t));
        }
    }

    #[test]
    fn handling_triggers_the_sca3000_most_of_the_time() {
        let mut s = MotionScenario::retreat_table(3);
        let mut acc = crate::Sca3000::new();
        let mut triggers = 0;
        for i in 0..100 {
            // Sample inside handling windows only.
            let t = Seconds::new(20.0 + 28.0 * i as f64 + 2.0);
            if acc.update(s.sample_at(t)) {
                triggers += 1;
                acc.clear_interrupt();
            }
        }
        assert!(triggers > 50, "triggers {triggers}");
    }
}
