//! Property-based tests for framing, modulation accounting and the link
//! error model.

use picocube_radio::packet::{decode, encode, from_bits, to_bits, Checksum};
use picocube_radio::{ook_ber, OokTransmitter};
use picocube_units::Db;
use proptest::prelude::*;

proptest! {
    #[test]
    fn frame_round_trips(node_id in any::<u8>(), payload in prop::collection::vec(any::<u8>(), 0..64)) {
        for checksum in [Checksum::Xor, Checksum::Crc8] {
            let frame = encode(node_id, &payload, checksum);
            let decoded = decode(&frame, checksum).expect("clean frame decodes");
            prop_assert_eq!(decoded.node_id, node_id);
            prop_assert_eq!(&decoded.payload, &payload);
        }
    }

    #[test]
    fn single_bit_flips_in_payload_are_always_detected(
        payload in prop::collection::vec(any::<u8>(), 1..32),
        flip_byte in 0usize..32,
        flip_bit in 0u8..8,
    ) {
        let flip_byte = flip_byte % payload.len();
        for checksum in [Checksum::Xor, Checksum::Crc8] {
            let mut frame = encode(0x42, &payload, checksum);
            // Flip inside the payload region (after preamble+sync+id).
            let idx = 4 + flip_byte;
            frame[idx] ^= 1 << flip_bit;
            let r = decode(&frame, checksum);
            prop_assert!(r.is_err(), "{checksum:?} missed a single-bit flip");
        }
    }

    #[test]
    fn bits_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(from_bits(&to_bits(&bytes)), bytes);
    }

    #[test]
    fn ones_fraction_matches_popcount(bytes in prop::collection::vec(any::<u8>(), 1..64)) {
        let tx = OokTransmitter::picocube();
        let t = tx.transmit(&bytes);
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let expected = f64::from(ones) / (bytes.len() * 8) as f64;
        prop_assert!((t.ones_fraction - expected).abs() < 1e-12);
        // Energy is linear in the number of one-bits at fixed rate.
        let dc_on = tx.dc_power_on().value();
        let expected_energy = dc_on * f64::from(ones) / tx.data_rate().value();
        prop_assert!((t.energy.value() - expected_energy).abs() < 1e-15 + 1e-9 * expected_energy);
    }

    #[test]
    fn transmission_duration_is_bits_over_rate(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let tx = OokTransmitter::picocube();
        let t = tx.transmit(&bytes);
        let expected = (bytes.len() * 8) as f64 / tx.data_rate().value();
        prop_assert!((t.duration.value() - expected).abs() < 1e-15);
    }

    #[test]
    fn ber_is_monotone_in_snr(a in -30.0f64..60.0, delta in 0.0f64..30.0) {
        let low = ook_ber(Db::new(a));
        let high = ook_ber(Db::new(a + delta));
        prop_assert!(high <= low + 1e-18);
        prop_assert!((0.0..=0.5).contains(&low));
    }

    #[test]
    fn duplicated_payload_doubles_energy(bytes in prop::collection::vec(any::<u8>(), 1..32)) {
        let tx = OokTransmitter::picocube();
        let single = tx.transmit(&bytes);
        let doubled: Vec<u8> = bytes.iter().chain(bytes.iter()).copied().collect();
        let double = tx.transmit(&doubled);
        prop_assert!((double.energy.value() - 2.0 * single.energy.value()).abs() < 1e-15);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..80)) {
        // Any byte soup must produce Ok or a typed error, never a panic.
        let _ = decode(&bytes, Checksum::Xor);
        let _ = decode(&bytes, Checksum::Crc8);
    }
}
