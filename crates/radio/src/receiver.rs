//! The demo receiver: the BWRC superregenerative transceiver of reference
//! \[12\] (Otis et al., ISSCC 2005 — 400 µW receive, 1.6 mW transmit),
//! "another BWRC research radio" used on the custom receiver board in §6.

use crate::channel::{ook_ber, Link};
use crate::packet::{self, Checksum, Frame};
use picocube_units::{Dbm, Hertz, Meters, Watts};

/// A superregenerative OOK receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperRegenReceiver {
    /// Receive-mode power draw.
    rx_power: Watts,
    /// Quench rate: the oscillator is periodically quenched and restarted;
    /// one sample per quench bounds the data rate.
    quench_rate: Hertz,
    /// Sensitivity: received power for BER = 1e-3.
    sensitivity: Dbm,
}

impl SuperRegenReceiver {
    /// Creates a receiver.
    ///
    /// # Panics
    ///
    /// Panics if power or quench rate is non-positive.
    pub fn new(rx_power: Watts, quench_rate: Hertz, sensitivity: Dbm) -> Self {
        assert!(rx_power.value() > 0.0, "rx power must be positive");
        assert!(quench_rate.value() > 0.0, "quench rate must be positive");
        Self {
            rx_power,
            quench_rate,
            sensitivity,
        }
    }

    /// The reference-\[12\] part: 400 µW receiving, 1 MHz quench,
    /// −90 dBm sensitivity at 1e-3 BER.
    pub fn bwrc_issc05() -> Self {
        Self::new(
            Watts::from_micro(400.0),
            Hertz::from_mega(1.0),
            Dbm::new(-90.0),
        )
    }

    /// Receive-mode power.
    pub fn rx_power(&self) -> Watts {
        self.rx_power
    }

    /// Sensitivity (BER = 1e-3 input level).
    pub fn sensitivity(&self) -> Dbm {
        self.sensitivity
    }

    /// Quench (sampling) rate.
    pub fn quench_rate(&self) -> Hertz {
        self.quench_rate
    }

    /// Maximum OOK data rate: a few quenches per bit.
    pub fn max_data_rate(&self) -> Hertz {
        Hertz::new(self.quench_rate.value() / 3.0)
    }

    /// Effective BER given a received level: the receiver's own noise sets
    /// an SNR of `received − (sensitivity − margin@1e-3)`.
    pub fn ber(&self, received: Dbm) -> f64 {
        // At sensitivity, BER = 1e-3 ⇒ the implied noise reference sits
        // ~14 dB below sensitivity (see `ook_ber_reference_snr`).
        let noise_ref = self.sensitivity - crate::channel::ook_ber_reference_snr();
        ook_ber(received - noise_ref)
    }

    /// Attempts to receive one frame transmitted over `link` at range.
    /// Bit errors are drawn from `rng`; the frame is then decoded exactly
    /// as the demo receiver board does.
    ///
    /// # Errors
    ///
    /// Returns the decode failure when the frame was corrupted or lost.
    pub fn receive(
        &self,
        link: &Link,
        distance: Meters,
        frame_bytes: &[u8],
        checksum: Checksum,
        rng: &mut picocube_sim::SimRng,
    ) -> Result<Frame, packet::DecodeError> {
        let shadow = link.channel.shadowing(rng);
        let budget = link.budget_with_shadowing(distance, shadow);
        let ber = self.ber(budget.received).max(budget.ber);
        let mut bits = packet::to_bits(frame_bytes);
        for bit in &mut bits {
            if rng.bernoulli(ber) {
                *bit = !*bit;
            }
        }
        packet::decode(&packet::from_bits(&bits), checksum)
    }

    /// Full physical-layer reception: synthesizes the quench-sampled
    /// envelope waveform implied by the link budget and runs the
    /// bit-level [`demod`](crate::demod) chain on it — the path the §6
    /// receiver board implements in hardware, and an independent check on
    /// the closed-form [`receive`](Self::receive) model.
    ///
    /// # Errors
    ///
    /// Returns the demodulation failure when the frame cannot be
    /// recovered.
    ///
    /// # Panics
    ///
    /// Panics if `data_rate` exceeds [`max_data_rate`](Self::max_data_rate).
    pub fn receive_waveform(
        &self,
        link: &Link,
        distance: Meters,
        frame_bytes: &[u8],
        data_rate: Hertz,
        checksum: Checksum,
        rng: &mut picocube_sim::SimRng,
    ) -> Result<Frame, crate::demod::DemodError> {
        assert!(
            data_rate <= self.max_data_rate(),
            "data rate exceeds the quench limit"
        );
        let spb = (self.quench_rate.value() / data_rate.value())
            .floor()
            .max(2.0) as usize;
        let shadow = link.channel.shadowing(rng);
        let budget = link.budget_with_shadowing(distance, shadow);
        // Normalize the on-bit envelope to 1.0 and derive the per-quench
        // noise deviation from the effective bit SNR (the same reference
        // the closed-form BER model uses), undoing the spb-sample
        // averaging gain.
        let noise_ref = self.sensitivity - crate::channel::ook_ber_reference_snr();
        let snr_bit = (budget.received - noise_ref).to_ratio().max(1e-6);
        let sigma = (spb as f64 / (2.0 * snr_bit)).sqrt();
        let lead_in = rng.index(3 * spb) + 1;
        let wf = crate::demod::modulate(frame_bytes, spb, 1.0, sigma, lead_in, rng);
        crate::demod::Demodulator::new(spb).receive_frame(&wf, checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use picocube_sim::SimRng;
    use picocube_units::Db;

    fn demo_link() -> Link {
        Link {
            tx_power: Dbm::new(0.8),
            tx_gain: crate::PatchAntenna::as_built().gain_dbi(Hertz::new(1.863e9)),
            rx_gain: Db::new(0.0),
            orientation_loss: Db::new(2.0),
            channel: Channel::demo_room(),
        }
    }

    #[test]
    fn reference_12_numbers() {
        let rx = SuperRegenReceiver::bwrc_issc05();
        assert_eq!(rx.rx_power(), Watts::from_micro(400.0));
        assert!(rx.max_data_rate() >= Hertz::from_kilo(330.0));
    }

    #[test]
    fn ber_at_sensitivity_is_1e3() {
        let rx = SuperRegenReceiver::bwrc_issc05();
        let ber = rx.ber(rx.sensitivity());
        assert!((ber - 1e-3).abs() / 1e-3 < 0.05, "ber {ber:.2e}");
    }

    #[test]
    fn table_distance_reception_succeeds() {
        let rx = SuperRegenReceiver::bwrc_issc05();
        let frame = packet::encode(0x42, &[1, 2, 3, 4, 5, 6], Checksum::Xor);
        let mut rng = SimRng::seed_from(11);
        let ok = (0..100)
            .filter(|_| {
                rx.receive(
                    &demo_link(),
                    Meters::new(1.0),
                    &frame,
                    Checksum::Xor,
                    &mut rng,
                )
                .is_ok()
            })
            .count();
        assert!(ok > 95, "1 m reception {ok}/100");
    }

    #[test]
    fn reception_fails_far_away() {
        let rx = SuperRegenReceiver::bwrc_issc05();
        let frame = packet::encode(0x42, &[1, 2, 3, 4, 5, 6], Checksum::Xor);
        let mut rng = SimRng::seed_from(12);
        let ok = (0..100)
            .filter(|_| {
                rx.receive(
                    &demo_link(),
                    Meters::new(300.0),
                    &frame,
                    Checksum::Xor,
                    &mut rng,
                )
                .is_ok()
            })
            .count();
        assert!(ok < 5, "300 m reception {ok}/100");
    }

    #[test]
    fn stronger_signal_never_hurts() {
        let rx = SuperRegenReceiver::bwrc_issc05();
        assert!(rx.ber(Dbm::new(-60.0)) < rx.ber(Dbm::new(-85.0)));
    }

    #[test]
    fn waveform_path_decodes_at_the_demo_table() {
        let rx = SuperRegenReceiver::bwrc_issc05();
        let frame = packet::encode(0x42, &[9, 8, 7, 6, 5, 4], Checksum::Crc8);
        let mut rng = SimRng::seed_from(21);
        let ok = (0..40)
            .filter(|_| {
                rx.receive_waveform(
                    &demo_link(),
                    Meters::new(1.0),
                    &frame,
                    Hertz::from_kilo(100.0),
                    Checksum::Crc8,
                    &mut rng,
                )
                .is_ok()
            })
            .count();
        assert!(ok >= 39, "waveform path at 1 m: {ok}/40");
    }

    #[test]
    fn waveform_and_analytic_paths_agree_on_the_success_region() {
        // The two independent implementations of reception — closed-form
        // BER vs quench-sampled envelope demodulation — must agree about
        // where the link works and where it dies.
        let rx = SuperRegenReceiver::bwrc_issc05();
        let frame = packet::encode(0x42, &[1, 2, 3, 4, 5, 6], Checksum::Crc8);
        let mut rng = SimRng::seed_from(22);
        for (distance, expect_good) in [
            (Meters::new(0.5), true),
            (Meters::new(1.0), true),
            (Meters::new(400.0), false),
        ] {
            let trials = 30;
            let analytic = (0..trials)
                .filter(|_| {
                    rx.receive(&demo_link(), distance, &frame, Checksum::Crc8, &mut rng)
                        .is_ok()
                })
                .count();
            let waveform = (0..trials)
                .filter(|_| {
                    rx.receive_waveform(
                        &demo_link(),
                        distance,
                        &frame,
                        Hertz::from_kilo(100.0),
                        Checksum::Crc8,
                        &mut rng,
                    )
                    .is_ok()
                })
                .count();
            if expect_good {
                assert!(
                    analytic >= 28 && waveform >= 28,
                    "at {distance}: {analytic}/{waveform}"
                );
            } else {
                assert!(
                    analytic <= 2 && waveform <= 2,
                    "at {distance}: {analytic}/{waveform}"
                );
            }
        }
    }

    #[test]
    fn corrupted_frames_are_rejected_not_garbled() {
        // At an edge-of-range distance, failures must surface as decode
        // errors (checksum), never as silently wrong payloads.
        let rx = SuperRegenReceiver::bwrc_issc05();
        let frame = packet::encode(0x42, &[10, 20, 30, 40, 50, 60], Checksum::Crc8);
        let mut rng = SimRng::seed_from(13);
        let mut bad_payloads = 0;
        for _ in 0..300 {
            if let Ok(f) = rx.receive(
                &demo_link(),
                Meters::new(60.0),
                &frame,
                Checksum::Crc8,
                &mut rng,
            ) {
                if f.payload != vec![10, 20, 30, 40, 50, 60] || f.node_id != 0x42 {
                    bad_payloads += 1;
                }
            }
        }
        // CRC-8 misses ~1/256 of corruptions; allow a whisker.
        assert!(bad_payloads <= 2, "undetected corruptions: {bad_payloads}");
    }
}
