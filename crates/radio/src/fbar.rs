//! The film bulk acoustic resonator, in the Butterworth–Van Dyke model.
//!
//! §4.6: "An FBAR is a MEMS device that behaves like a capacitor except at
//! resonance, where it has Q > 1000." The BVD equivalent circuit is a
//! series RLC (motional) branch in parallel with a plate capacitance `C0`.
//! Its extremely high Q at GHz frequencies is what lets the transmitter
//! gate the *oscillator itself* per OOK bit: start-up takes microseconds
//! instead of the milliseconds a quartz reference would need.

use picocube_units::{Farads, Hertz, Ohms, Seconds};

/// A Butterworth–Van Dyke resonator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fbar {
    /// Motional resistance.
    rm: Ohms,
    /// Motional inductance (henries).
    lm_h: f64,
    /// Motional capacitance.
    cm: Farads,
    /// Plate (static) capacitance.
    c0: Farads,
}

impl Fbar {
    /// Creates a resonator from BVD parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not strictly positive.
    // picocube-lint: allow(L1) motional inductance in henries; no Henries quantity in picocube-units yet
    pub fn new(rm: Ohms, lm_h: f64, cm: Farads, c0: Farads) -> Self {
        assert!(
            rm.value() > 0.0 && lm_h > 0.0,
            "motional branch must be positive"
        );
        assert!(
            cm.value() > 0.0 && c0.value() > 0.0,
            "capacitances must be positive"
        );
        Self { rm, lm_h, cm, c0 }
    }

    /// The transmitter's resonator: series resonance at 1.863 GHz with
    /// Q ≈ 1200 and a typical FBAR plate capacitance around 1 pF.
    pub fn picocube() -> Self {
        // Choose Lm, then Cm for fs = 1.863 GHz and Rm for Q = 1200:
        // Q = (1/Rm)·√(Lm/Cm), fs = 1/(2π√(Lm·Cm)).
        let fs = 1.863e9;
        let lm_h = 80e-9;
        let cm = 1.0 / ((2.0 * core::f64::consts::PI * fs).powi(2) * lm_h);
        let q = 1200.0;
        let rm = (lm_h / cm).sqrt() / q;
        Self::new(Ohms::new(rm), lm_h, Farads::new(cm), Farads::new(1e-12))
    }

    /// Series (motional) resonance frequency.
    pub fn series_resonance(&self) -> Hertz {
        Hertz::new(1.0 / (2.0 * core::f64::consts::PI * (self.lm_h * self.cm.value()).sqrt()))
    }

    /// Parallel (anti-) resonance: `fs·√(1 + Cm/C0)`.
    pub fn parallel_resonance(&self) -> Hertz {
        Hertz::new(
            self.series_resonance().value() * (1.0 + self.cm.value() / self.c0.value()).sqrt(),
        )
    }

    /// Quality factor of the motional branch.
    pub fn q_factor(&self) -> f64 {
        (self.lm_h / self.cm.value()).sqrt() / self.rm.value()
    }

    /// Magnitude of the resonator impedance at `f` (BVD network).
    pub fn impedance_at(&self, f: Hertz) -> Ohms {
        let w = 2.0 * core::f64::consts::PI * f.value();
        // Motional branch: Rm + j(wLm − 1/wCm).
        let xm = w * self.lm_h - 1.0 / (w * self.cm.value());
        let (rm, xm) = (self.rm.value(), xm);
        // Plate branch: 1/(jwC0) in parallel.
        let xc0 = -1.0 / (w * self.c0.value());
        // Parallel combination of Zm = rm + j·xm and Zc = j·xc0.
        let (a, b) = (rm, xm); // Zm
        let (c, d) = (0.0, xc0); // Zc
                                 // Zp = Zm·Zc / (Zm + Zc)
        let num_re = a * c - b * d;
        let num_im = a * d + b * c;
        let den_re = a + c;
        let den_im = b + d;
        let den_sq = den_re * den_re + den_im * den_im;
        let re = (num_re * den_re + num_im * den_im) / den_sq;
        let im = (num_im * den_re - num_re * den_im) / den_sq;
        Ohms::new((re * re + im * im).sqrt())
    }

    /// Oscillator start-up time: the envelope grows with time constant
    /// `2Q_eff/ω`. The start-up circuit overdrives the negative resistance
    /// (lowering the effective Q during growth), so ~3.5 effective time
    /// constants reach switching amplitude — microseconds, against the
    /// milliseconds a quartz reference would need.
    pub fn startup_time(&self) -> Seconds {
        let w = 2.0 * core::f64::consts::PI * self.series_resonance().value();
        Seconds::new(3.5 * 2.0 * self.q_factor() / w)
    }

    /// The highest OOK bit rate at which start-up occupies at most a
    /// quarter of the bit period — the oscillator-gating speed limit.
    pub fn max_ook_rate(&self) -> Hertz {
        Hertz::new(0.25 / self.startup_time().value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonates_at_1_863_ghz_with_high_q() {
        let fbar = Fbar::picocube();
        assert!((fbar.series_resonance().value() - 1.863e9).abs() / 1.863e9 < 1e-9);
        assert!(fbar.q_factor() > 1000.0, "Q = {:.0}", fbar.q_factor());
    }

    #[test]
    fn behaves_like_a_capacitor_off_resonance() {
        // §4.6's description: "behaves like a capacitor except at
        // resonance". Well below resonance the motional branch is also
        // capacitive, so the device looks like C0 + Cm.
        let fbar = Fbar::picocube();
        let f = Hertz::new(1.0e9);
        let z = fbar.impedance_at(f).value();
        let c_eff = 1e-12 + 9.12e-14;
        let zc = 1.0 / (2.0 * core::f64::consts::PI * f.value() * c_eff);
        assert!((z / zc - 1.0).abs() < 0.05, "z {z:.1} vs C-like {zc:.1}");
    }

    #[test]
    fn impedance_collapses_at_series_resonance() {
        let fbar = Fbar::picocube();
        let at_res = fbar.impedance_at(fbar.series_resonance());
        let off_res = fbar.impedance_at(Hertz::new(1.80e9));
        assert!(at_res.value() < off_res.value() / 20.0);
        // Near the motional resistance (a couple of ohms for this Q).
        assert!(at_res.value() < 5.0);
    }

    #[test]
    fn impedance_peaks_at_parallel_resonance() {
        let fbar = Fbar::picocube();
        let fp = fbar.parallel_resonance();
        let at_fp = fbar.impedance_at(fp).value();
        let nearby = fbar.impedance_at(Hertz::new(fp.value() * 1.01)).value();
        assert!(at_fp > 5.0 * nearby, "fp {at_fp:.0} vs nearby {nearby:.0}");
    }

    #[test]
    fn startup_is_microseconds_enabling_per_bit_gating() {
        let fbar = Fbar::picocube();
        let t = fbar.startup_time();
        assert!(t.value() > 0.5e-6 && t.value() < 5e-6, "startup {t:?}");
        // The paper's 330 kbps works: a bit lasts 3 µs, startup fits.
        assert!(fbar.max_ook_rate() > Hertz::from_kilo(100.0));
    }

    #[test]
    fn parallel_above_series() {
        let fbar = Fbar::picocube();
        assert!(fbar.parallel_resonance() > fbar.series_resonance());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parameters_rejected() {
        Fbar::new(Ohms::ZERO, 1e-9, Farads::new(1e-15), Farads::new(1e-12));
    }
}
