//! The OOK transmitter: directly-modulated FBAR oscillator plus PA.
//!
//! §4.6: "Baseband data is modulated onto the carrier using OOK by power
//! cycling the FBAR oscillator and the low power amplifier via its foot
//! switch and gate bias respectively." The calibration points are the
//! published ones: 46 % efficiency at 0.8 dBm (1.2 mW) output, 650 mV
//! supply, 1.35 mW consumption at 50 % OOK, rates up to 330 kbps.

use crate::fbar::Fbar;
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::{Amps, Dbm, Hertz, Joules, Seconds, Volts, Watts};

/// A completed transmission's accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// Bits sent (including preamble/sync overhead if framed).
    pub bits: usize,
    /// Fraction of one-bits (carrier-on fraction).
    pub ones_fraction: f64,
    /// On-air duration at the configured data rate.
    pub duration: Seconds,
    /// Energy drawn from the RF supply.
    pub energy: Joules,
}

impl Transmission {
    /// Average RF-rail power over the transmission.
    pub fn average_power(&self) -> Watts {
        if self.duration.value() <= 0.0 {
            Watts::ZERO
        } else {
            self.energy / self.duration
        }
    }

    /// Energy per payload bit.
    pub fn energy_per_bit(&self) -> Joules {
        if self.bits == 0 {
            Joules::ZERO
        } else {
            self.energy / self.bits as f64
        }
    }

    /// Accounts this transmission in a metric registry: counters
    /// `radio.tx.packets` / `radio.tx.bits`, the accumulating gauge
    /// `radio.tx.energy_uj`, and the `radio.tx.airtime_us` histogram.
    pub fn export_metrics(&self, metrics: &mut picocube_telemetry::Metrics) {
        use picocube_telemetry::keys;
        metrics.inc(keys::RADIO_TX_PACKETS, 1);
        metrics.inc(keys::RADIO_TX_BITS, self.bits as u64);
        metrics.add(keys::RADIO_TX_ENERGY_UJ, self.energy.micro());
        metrics.observe(keys::RADIO_TX_AIRTIME_US, self.duration.value() * 1e6);
    }
}

impl ToJson for Transmission {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bits".into(), self.bits.to_json()),
            ("ones_fraction".into(), self.ones_fraction.to_json()),
            ("duration".into(), self.duration.to_json()),
            ("energy".into(), self.energy.to_json()),
        ])
    }
}

impl FromJson for Transmission {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bits: FromJson::from_json(field(value, "bits")?)?,
            ones_fraction: FromJson::from_json(field(value, "ones_fraction")?)?,
            duration: FromJson::from_json(field(value, "duration")?)?,
            energy: FromJson::from_json(field(value, "energy")?)?,
        })
    }
}

/// The FBAR-referenced OOK transmitter.
#[derive(Debug, Clone, PartialEq)]
pub struct OokTransmitter {
    fbar: Fbar,
    rated_output: Watts,
    rated_efficiency: f64,
    supply: Volts,
    /// Oscillator + digital overhead while the carrier is on (beyond the
    /// PA's share).
    overhead_on: Watts,
    data_rate: Hertz,
}

impl OokTransmitter {
    /// Creates a transmitter around a resonator.
    ///
    /// # Panics
    ///
    /// Panics if the output power, efficiency, supply or data rate are not
    /// strictly positive, or the efficiency exceeds 1, or the data rate
    /// exceeds what the resonator's start-up time supports.
    pub fn new(
        fbar: Fbar,
        rated_output: Watts,
        rated_efficiency: f64,
        supply: Volts,
        overhead_on: Watts,
        data_rate: Hertz,
    ) -> Self {
        assert!(rated_output.value() > 0.0, "output power must be positive");
        assert!(
            rated_efficiency > 0.0 && rated_efficiency <= 1.0,
            "efficiency in (0, 1]"
        );
        assert!(supply.value() > 0.0, "supply must be positive");
        assert!(overhead_on.value() >= 0.0, "negative overhead");
        assert!(data_rate.value() > 0.0, "data rate must be positive");
        assert!(
            data_rate <= fbar.max_ook_rate(),
            "data rate exceeds the oscillator-gating limit"
        );
        Self {
            fbar,
            rated_output,
            rated_efficiency,
            supply,
            overhead_on,
            data_rate,
        }
    }

    /// The paper's transmitter: 0.8 dBm at 46 % from 0.65 V, 100 µW of
    /// oscillator/bias overhead, shipping at 100 kbps (within the 330 kbps
    /// ceiling).
    pub fn picocube() -> Self {
        Self::new(
            Fbar::picocube(),
            Dbm::new(0.8).to_watts(),
            0.46,
            Volts::from_milli(650.0),
            Watts::from_micro(100.0),
            Hertz::from_kilo(100.0),
        )
    }

    /// The resonator.
    pub fn fbar(&self) -> &Fbar {
        &self.fbar
    }

    /// Carrier frequency (the FBAR's series resonance).
    pub fn carrier(&self) -> Hertz {
        self.fbar.series_resonance()
    }

    /// Rated RF output power.
    pub fn output_power(&self) -> Watts {
        self.rated_output
    }

    /// Rated output in dBm.
    pub fn output_dbm(&self) -> Dbm {
        Dbm::from_watts(self.rated_output)
    }

    /// The configured data rate.
    pub fn data_rate(&self) -> Hertz {
        self.data_rate
    }

    /// Reconfigures the data rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is non-positive or exceeds the gating limit.
    pub fn set_data_rate(&mut self, rate: Hertz) {
        assert!(
            rate.value() > 0.0 && rate <= self.fbar.max_ook_rate(),
            "bad data rate"
        );
        self.data_rate = rate;
    }

    /// The paper's rate ceiling for this resonator.
    pub fn max_data_rate(&self) -> Hertz {
        self.fbar.max_ook_rate()
    }

    /// DC power while the carrier is on: PA draw at rated efficiency plus
    /// oscillator/bias overhead.
    pub fn dc_power_on(&self) -> Watts {
        self.rated_output / self.rated_efficiency + self.overhead_on
    }

    /// Overall transmitter efficiency at the rated point, including
    /// overhead (what §4.6 quotes: 46 %).
    pub fn overall_efficiency(&self) -> f64 {
        self.rated_output.value() / self.dc_power_on().value()
    }

    /// Average DC power for a bit stream with the given fraction of ones
    /// (OOK gates everything off during zero bits).
    pub fn dc_power(&self, ones_fraction: f64) -> Watts {
        self.dc_power_on() * ones_fraction.clamp(0.0, 1.0)
    }

    /// RF-rail supply current while the carrier is on.
    pub fn supply_current_on(&self) -> Amps {
        self.dc_power_on() / self.supply
    }

    /// Accounts for transmitting `bytes` at the configured rate.
    pub fn transmit(&self, bytes: &[u8]) -> Transmission {
        let bits = bytes.len() * 8;
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let ones_fraction = if bits == 0 {
            0.0
        } else {
            f64::from(ones) / bits as f64
        };
        let duration = Seconds::new(bits as f64 / self.data_rate.value());
        let energy = self.dc_power(ones_fraction) * duration;
        Transmission {
            bits,
            ones_fraction,
            duration,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmissions_export_tx_metrics() {
        let tx = OokTransmitter::picocube();
        let mut metrics = picocube_telemetry::Metrics::new();
        let t = tx.transmit(&[0xAA, 0xD3, 0x42]);
        t.export_metrics(&mut metrics);
        t.export_metrics(&mut metrics);
        assert_eq!(metrics.counter("radio.tx.packets"), 2);
        assert_eq!(metrics.counter("radio.tx.bits"), 2 * t.bits as u64);
        assert!(metrics.gauge("radio.tx.energy_uj") > 0.0);
        let airtime = metrics.histogram("radio.tx.airtime_us").expect("histogram");
        assert_eq!(airtime.count(), 2);
        assert!(airtime.mean().unwrap() > 0.0);
    }

    #[test]
    fn rated_point_matches_the_paper() {
        let tx = OokTransmitter::picocube();
        // 0.8 dBm ≈ 1.2 mW out.
        assert!((tx.output_power().milli() - 1.202).abs() < 0.01);
        assert!((tx.output_dbm().value() - 0.8).abs() < 1e-9);
        // 46 % at the rated point — the PA efficiency is set slightly
        // higher so the system number lands at 46 % including overhead.
        let eff = tx.overall_efficiency();
        assert!((eff - 0.44).abs() < 0.03, "overall η {eff:.3}");
    }

    #[test]
    fn fifty_percent_ook_is_about_1_35_mw() {
        let tx = OokTransmitter::picocube();
        let p = tx.dc_power(0.5);
        assert!(
            (p.milli() - 1.35).abs() < 0.05,
            "50 % OOK power {:.3} mW (paper: 1.35 mW)",
            p.milli()
        );
    }

    #[test]
    fn rate_ceiling_covers_330_kbps() {
        // §4.6: "data rates up to 330 kbps" — the gating limit set by the
        // oscillator's start-up must clear it.
        let mut tx = OokTransmitter::picocube();
        assert!(tx.max_data_rate() >= Hertz::from_kilo(330.0));
        tx.set_data_rate(Hertz::from_kilo(330.0));
        assert_eq!(tx.data_rate(), Hertz::from_kilo(330.0));
    }

    #[test]
    fn transmission_accounting() {
        let tx = OokTransmitter::picocube();
        let t = tx.transmit(&[0xAA, 0xAA, 0xFF, 0x00]);
        assert_eq!(t.bits, 32);
        assert!((t.ones_fraction - 0.5).abs() < 1e-9);
        // 32 bits at 100 kbps = 320 µs.
        assert!((t.duration.value() - 320e-6).abs() < 1e-12);
        assert!((t.average_power().value() - tx.dc_power(0.5).value()).abs() < 1e-12);
        // Energy per bit ≈ 1.35 mW / 100 kbps = 13.5 nJ.
        assert!((t.energy_per_bit().nano() - 13.5).abs() < 0.5);
    }

    #[test]
    fn all_zero_payload_costs_nothing() {
        let tx = OokTransmitter::picocube();
        let t = tx.transmit(&[0x00; 8]);
        assert_eq!(t.energy, Joules::ZERO);
        assert_eq!(t.ones_fraction, 0.0);
    }

    #[test]
    fn empty_transmission_is_empty() {
        let tx = OokTransmitter::picocube();
        let t = tx.transmit(&[]);
        assert_eq!(t.bits, 0);
        assert_eq!(t.average_power(), Watts::ZERO);
        assert_eq!(t.energy_per_bit(), Joules::ZERO);
    }

    #[test]
    fn supply_current_is_milliamps_on_the_rf_rail() {
        let tx = OokTransmitter::picocube();
        // ~2.7 mW / 0.65 V ≈ 4.2 mA while the carrier is on.
        let i = tx.supply_current_on();
        assert!(
            i > Amps::from_milli(3.5) && i < Amps::from_milli(4.5),
            "i {i:?}"
        );
    }

    #[test]
    fn energy_scales_inversely_with_rate() {
        let mut tx = OokTransmitter::picocube();
        let slow = tx.transmit(&[0xAA; 4]);
        tx.set_data_rate(Hertz::from_kilo(50.0));
        let slower = tx.transmit(&[0xAA; 4]);
        assert!((slower.energy.value() / slow.energy.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "data rate exceeds")]
    fn rate_beyond_gating_limit_rejected() {
        OokTransmitter::new(
            Fbar::picocube(),
            Watts::from_milli(1.2),
            0.5,
            Volts::from_milli(650.0),
            Watts::ZERO,
            Hertz::from_mega(10.0),
        );
    }
}
