//! The PicoCube radio: FBAR-referenced OOK transmitter, patch antenna,
//! channel, and the receivers used to demonstrate and extend the node.
//!
//! §4.6: "The Cube uses a 0.8 dBm transmitter based on Film Bulk Acoustic
//! Resonator (FBAR) technology for RF carrier generation. […] Transmitter
//! properties include a 1.863 GHz channel, 46 % efficiency @ 1.2 mW
//! transmit power, 650 mV supply, and direct modulation. […] With 50 %
//! on-off keying (OOK), power consumption is 1.35 mW at data rates up to
//! 330 kbps. […] Transmitted signal strength is about −60 dBm at 1 meter."
//!
//! Every number above is an *output* of the models here:
//!
//! * [`Fbar`] — Butterworth–Van Dyke resonator (Q > 1000 at 1.863 GHz),
//!   whose high Q is what makes microsecond oscillator start-up — and
//!   therefore per-bit carrier gating — possible.
//! * [`OokTransmitter`] — the PA/oscillator pair with the measured
//!   efficiency point and direct OOK modulation.
//! * [`PatchAntenna`] — the top-metal-layer patch, with the §4.6 design
//!   story (70 mil target vs 50 mil as-built) as an efficiency model.
//! * [`Channel`] / [`Link`] — Friis path loss at 1.863 GHz with log-normal
//!   shadowing and the noncoherent-OOK error model.
//! * [`packet`] — the preamble/sync/id/payload/checksum framing shared
//!   with the firmware, plus encode/decode.
//! * [`SuperRegenReceiver`] — the BWRC research receiver used in the §6
//!   demo (reference \[12\]).
//! * [`WakeupReceiver`] — the §7.3 always-on wakeup radio extension.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod demod;
pub mod packet;

mod antenna;
mod channel;
mod fbar;
mod receiver;
mod transmitter;
mod wakeup;

pub use antenna::PatchAntenna;
pub use channel::{ook_ber, Channel, Link, LinkBudget};
pub use fbar::Fbar;
pub use receiver::SuperRegenReceiver;
pub use transmitter::{OokTransmitter, Transmission};
pub use wakeup::WakeupReceiver;
