//! Packet framing shared between the firmware and the receivers.
//!
//! Frames are `AA AA D3 <id> <payload…> <checksum>`: an OOK-friendly
//! alternating preamble, a sync byte, the node id, a payload whose length
//! the application fixes, and a XOR checksum over the payload. A CRC-8
//! variant is provided for the extension experiments.

/// Preamble byte (alternating pattern for the envelope detector's AGC).
pub const PREAMBLE: u8 = 0xAA;
/// Number of preamble bytes.
pub const PREAMBLE_LEN: usize = 2;
/// Start-of-frame sync byte.
pub const SYNC: u8 = 0xD3;

/// Checksum algorithm used by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checksum {
    /// Single-byte XOR over the payload (what the stock firmware computes —
    /// cheap on an MSP430).
    Xor,
    /// CRC-8/ATM (poly 0x07) over the payload.
    Crc8,
}

impl Checksum {
    /// Computes the check byte over a payload.
    pub fn compute(self, payload: &[u8]) -> u8 {
        match self {
            Self::Xor => payload.iter().fold(0, |a, b| a ^ b),
            Self::Crc8 => {
                let mut crc: u8 = 0;
                for &byte in payload {
                    crc ^= byte;
                    for _ in 0..8 {
                        crc = if crc & 0x80 != 0 {
                            (crc << 1) ^ 0x07
                        } else {
                            crc << 1
                        };
                    }
                }
                crc
            }
        }
    }
}

/// A decoded application frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Transmitting node's id byte.
    pub node_id: u8,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// Fewer bytes than the minimal frame.
    Truncated,
    /// The sync byte was not found after the preamble.
    NoSync,
    /// The checksum over the payload did not verify.
    BadChecksum {
        /// Checksum carried by the frame.
        got: u8,
        /// Checksum recomputed over the payload.
        expected: u8,
    },
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame shorter than header + checksum"),
            Self::NoSync => write!(f, "sync byte not found"),
            Self::BadChecksum { got, expected } => {
                write!(
                    f,
                    "checksum mismatch: got {got:#04x}, expected {expected:#04x}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Builds a frame around a payload.
pub fn encode(node_id: u8, payload: &[u8], checksum: Checksum) -> Vec<u8> {
    let mut out = Vec::with_capacity(PREAMBLE_LEN + 2 + payload.len() + 1);
    out.extend_from_slice(&[PREAMBLE; PREAMBLE_LEN]);
    out.push(SYNC);
    out.push(node_id);
    out.extend_from_slice(payload);
    out.push(checksum.compute(payload));
    out
}

/// Parses a frame from a received byte stream (which may carry leading
/// noise before the preamble), verifying the checksum.
///
/// The payload length is whatever sits between the id byte and the final
/// checksum byte; callers knowing the expected length should verify it.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, missing sync, or checksum
/// mismatch.
pub fn decode(bytes: &[u8], checksum: Checksum) -> Result<Frame, DecodeError> {
    // Hunt for the sync byte; tolerate noise/partial preamble before it.
    let sync_pos = bytes
        .iter()
        .position(|&b| b == SYNC)
        .ok_or(DecodeError::NoSync)?;
    let rest = &bytes[sync_pos + 1..];
    if rest.len() < 2 {
        return Err(DecodeError::Truncated);
    }
    let node_id = rest[0];
    let payload = rest[1..rest.len() - 1].to_vec();
    let got = rest[rest.len() - 1];
    let expected = checksum.compute(&payload);
    if got != expected {
        return Err(DecodeError::BadChecksum { got, expected });
    }
    Ok(Frame { node_id, payload })
}

/// Expands bytes into OOK symbols (MSB first), the physical bit stream.
pub fn to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| b & (1 << i) != 0))
        .collect()
}

/// Packs OOK symbols back into bytes (MSB first). Trailing partial bytes
/// are dropped.
pub fn from_bits(bits: &[bool]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for checksum in [Checksum::Xor, Checksum::Crc8] {
            let frame = encode(0x42, &[1, 2, 3, 4, 5, 6, 7, 8], checksum);
            let decoded = decode(&frame, checksum).unwrap();
            assert_eq!(decoded.node_id, 0x42);
            assert_eq!(decoded.payload, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        }
    }

    #[test]
    fn frame_layout_matches_firmware() {
        let frame = encode(0x42, &[0xDE, 0xAD], Checksum::Xor);
        assert_eq!(frame, vec![0xAA, 0xAA, 0xD3, 0x42, 0xDE, 0xAD, 0xDE ^ 0xAD]);
    }

    #[test]
    fn leading_noise_is_tolerated() {
        let mut stream = vec![0x00, 0x5A, 0xAA];
        stream.extend(encode(7, &[9, 9], Checksum::Xor));
        let decoded = decode(&stream, Checksum::Xor).unwrap();
        assert_eq!(decoded.node_id, 7);
    }

    #[test]
    fn corruption_is_detected() {
        let mut frame = encode(1, &[10, 20, 30], Checksum::Xor);
        frame[5] ^= 0x01; // flip a payload bit
        assert!(matches!(
            decode(&frame, Checksum::Xor),
            Err(DecodeError::BadChecksum { .. })
        ));
    }

    #[test]
    fn crc8_catches_swaps_that_xor_misses() {
        // XOR is order-insensitive; CRC-8 is not.
        let a = Checksum::Xor.compute(&[1, 2]);
        let b = Checksum::Xor.compute(&[2, 1]);
        assert_eq!(a, b);
        let c = Checksum::Crc8.compute(&[1, 2]);
        let d = Checksum::Crc8.compute(&[2, 1]);
        assert_ne!(c, d);
    }

    #[test]
    fn missing_sync_reported() {
        assert_eq!(
            decode(&[0xAA, 0xAA, 0x00], Checksum::Xor),
            Err(DecodeError::NoSync)
        );
    }

    #[test]
    fn truncated_reported() {
        assert_eq!(
            decode(&[0xD3, 0x42], Checksum::Xor),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn bits_round_trip() {
        let bytes = [0xAA, 0xD3, 0x00, 0xFF, 0x42];
        assert_eq!(from_bits(&to_bits(&bytes)), bytes.to_vec());
        // MSB first: 0xAA = 10101010.
        let bits = to_bits(&[0xAA]);
        assert_eq!(
            bits,
            vec![true, false, true, false, true, false, true, false]
        );
    }

    #[test]
    fn preamble_is_half_ones() {
        // The 50 % OOK duty the paper quotes holds for the preamble.
        let bits = to_bits(&[PREAMBLE; 4]);
        let ones = bits.iter().filter(|&&b| b).count();
        assert_eq!(ones * 2, bits.len());
    }
}
