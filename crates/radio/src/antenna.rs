//! The top-metal patch antenna and its §4.6 design story.
//!
//! At 1.863 GHz the wavelength is ~16 cm; a patch confined to a 1 cm board
//! is an electrically small antenna, so its radiation efficiency is set by
//! the substrate: the paper's design wanted εr > 10 at 70 mil thickness,
//! the bondable stack failed, and the as-built single 50 mil layer
//! "compromised efficiency". This model captures that trade — efficiency
//! grows with electrical thickness and falls as the high-εr substrate
//! concentrates fields — calibrated so the as-built antenna closes the
//! paper's measured link (−60 dBm at 1 m from a 0.8 dBm transmitter).

use picocube_units::{Db, Hertz, Millimeters};

/// A small patch antenna on a grounded dielectric slab.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatchAntenna {
    /// Substrate relative permittivity.
    epsilon_r: f64,
    /// Substrate thickness.
    thickness: Millimeters,
    /// Patch edge length.
    edge: Millimeters,
    /// Peak directivity of the (small) patch, linear.
    directivity: f64,
}

impl PatchAntenna {
    /// Creates a patch antenna.
    ///
    /// # Panics
    ///
    /// Panics if permittivity is below 1 or dimensions are non-positive.
    pub fn new(epsilon_r: f64, thickness: Millimeters, edge: Millimeters) -> Self {
        assert!(epsilon_r >= 1.0, "relative permittivity must be >= 1");
        assert!(
            thickness.value() > 0.0 && edge.value() > 0.0,
            "dimensions must be positive"
        );
        Self {
            epsilon_r,
            thickness,
            edge,
            directivity: 2.0,
        }
    }

    /// The as-built radio-board antenna: single 50 mil Rogers 3010 layer
    /// (εr = 10.2), ~7 mm patch.
    pub fn as_built() -> Self {
        Self::new(10.2, Millimeters::from_mils(50.0), Millimeters::new(7.0))
    }

    /// The original design target: 70 mil of εr > 10 dielectric (the stack
    /// that debonded during fabrication).
    pub fn design_target() -> Self {
        Self::new(10.2, Millimeters::from_mils(70.0), Millimeters::new(7.0))
    }

    /// Substrate thickness.
    pub fn thickness(&self) -> Millimeters {
        self.thickness
    }

    /// Substrate permittivity.
    pub fn epsilon_r(&self) -> f64 {
        self.epsilon_r
    }

    /// Radiation efficiency at frequency `f`.
    ///
    /// Electrically-small-patch scaling: efficiency grows linearly with
    /// substrate electrical thickness `h/λ0` and with the miniaturized
    /// radiating volume `(edge/λ_eff)²`; the constant is calibrated so the
    /// as-built antenna yields the paper's link numbers.
    pub fn efficiency(&self, f: Hertz) -> f64 {
        let lambda0_mm = 3e11 / f.value(); // mm
        let h_norm = self.thickness.value() / lambda0_mm;
        let lambda_eff = lambda0_mm / self.epsilon_r.sqrt();
        let size_norm = self.edge.value() / lambda_eff;
        // Calibration: as-built (h/λ = 0.0079, size = 0.139) → ~0.35 %.
        const K: f64 = 23.0;
        (K * h_norm * size_norm * size_norm).min(1.0)
    }

    /// Realized gain (efficiency × directivity) in dBi.
    pub fn gain_dbi(&self, f: Hertz) -> Db {
        Db::from_ratio(self.efficiency(f) * self.directivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Hertz = Hertz::new(1.863e9);

    #[test]
    fn as_built_efficiency_is_a_fraction_of_a_percent() {
        let eff = PatchAntenna::as_built().efficiency(F);
        assert!(eff > 0.002 && eff < 0.006, "η = {eff:.4}");
    }

    #[test]
    fn design_target_beats_as_built() {
        // The §4.6 compromise: dropping from 70 mil to 50 mil cost
        // efficiency. 70/50 = 1.4× in thickness → ~1.5 dB of gain.
        let built = PatchAntenna::as_built();
        let target = PatchAntenna::design_target();
        assert!(target.efficiency(F) > built.efficiency(F));
        let delta = target.gain_dbi(F) - built.gain_dbi(F);
        assert!((delta.value() - 1.46).abs() < 0.1, "delta {delta:?}");
    }

    #[test]
    fn gain_is_about_minus_20_dbi() {
        // What closes the measured link: 0.8 dBm − 20 dBi − 37.8 dB FSPL
        // − orientation ≈ −60 dBm at 1 m.
        let g = PatchAntenna::as_built().gain_dbi(F);
        assert!(g.value() > -23.0 && g.value() < -18.0, "gain {g:?}");
    }

    #[test]
    fn thicker_substrate_always_helps() {
        let thin = PatchAntenna::new(10.2, Millimeters::from_mils(20.0), Millimeters::new(7.0));
        let thick = PatchAntenna::new(10.2, Millimeters::from_mils(100.0), Millimeters::new(7.0));
        assert!(thick.efficiency(F) > 4.0 * thin.efficiency(F));
    }

    #[test]
    fn high_permittivity_is_required_for_acceptable_efficiency() {
        // §4.6: "the patch-ground layer needed a dielectric constant of
        // over 10" — high εr electrically enlarges the 7 mm patch, and a
        // low-εr substrate of the same size radiates worse.
        let high = PatchAntenna::new(10.2, Millimeters::from_mils(50.0), Millimeters::new(7.0));
        let low = PatchAntenna::new(4.0, Millimeters::from_mils(50.0), Millimeters::new(7.0));
        assert!(high.efficiency(F) > 2.0 * low.efficiency(F));
    }

    #[test]
    fn efficiency_saturates_at_unity() {
        let huge = PatchAntenna::new(1.0, Millimeters::new(100.0), Millimeters::new(80.0));
        assert_eq!(huge.efficiency(F), 1.0);
    }

    #[test]
    #[should_panic(expected = "permittivity")]
    fn sub_unity_permittivity_rejected() {
        PatchAntenna::new(0.5, Millimeters::new(1.0), Millimeters::new(7.0));
    }
}
