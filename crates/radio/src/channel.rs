//! The RF channel: Friis path loss, shadowing, noise, and the
//! noncoherent-OOK error model that turns a link budget into packet
//! success probabilities.

use picocube_units::{Db, Dbm, Hertz, Meters, Watts};

/// Speed of light, m/s (CODATA exact value), used by the §6 link budget's
/// Friis reference loss at 1 m.
const C: f64 = 299_792_458.0;

/// A propagation channel at a fixed carrier frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    carrier: Hertz,
    /// Path-loss exponent (2 = free space; indoor demo floors run 2.5–3).
    exponent: f64,
    /// Log-normal shadowing standard deviation.
    shadowing_sigma: Db,
    /// Receiver noise figure.
    noise_figure: Db,
    /// Receiver noise bandwidth.
    bandwidth: Hertz,
}

impl Channel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if the carrier or bandwidth is non-positive, or the exponent
    /// is below 1.
    pub fn new(
        carrier: Hertz,
        exponent: f64,
        shadowing_sigma: Db,
        noise_figure: Db,
        bandwidth: Hertz,
    ) -> Self {
        assert!(
            carrier.value() > 0.0 && bandwidth.value() > 0.0,
            "carrier/bandwidth positive"
        );
        assert!(exponent >= 1.0, "path-loss exponent must be >= 1");
        Self {
            carrier,
            exponent,
            shadowing_sigma,
            noise_figure,
            bandwidth,
        }
    }

    /// The §6 demo floor: 1.863 GHz indoors, exponent 2.4, 3 dB shadowing,
    /// 10 dB receiver noise figure, 500 kHz noise bandwidth.
    pub fn demo_room() -> Self {
        Self::new(
            Hertz::new(1.863e9),
            2.4,
            Db::new(3.0),
            Db::new(10.0),
            Hertz::from_kilo(500.0),
        )
    }

    /// Free-space variant (outdoor line of sight).
    pub fn free_space() -> Self {
        Self::new(
            Hertz::new(1.863e9),
            2.0,
            Db::new(0.0),
            Db::new(10.0),
            Hertz::from_kilo(500.0),
        )
    }

    /// Carrier frequency.
    pub fn carrier(&self) -> Hertz {
        self.carrier
    }

    /// Median path loss at `distance`: Friis at 1 m, then the exponent
    /// beyond.
    pub fn path_loss(&self, distance: Meters) -> Db {
        assert!(distance.value() > 0.0, "distance must be positive");
        let pl_1m = 20.0 * (4.0 * core::f64::consts::PI * self.carrier.value() / C).log10();
        Db::new(pl_1m + 10.0 * self.exponent * distance.value().log10())
    }

    /// Thermal noise floor (kTB + NF).
    pub fn noise_floor(&self) -> Dbm {
        let ktb_dbm = -174.0 + 10.0 * self.bandwidth.value().log10();
        Dbm::new(ktb_dbm) + self.noise_figure
    }

    /// A shadowing realization drawn from `rng`.
    pub fn shadowing(&self, rng: &mut picocube_sim::SimRng) -> Db {
        Db::new(rng.normal(0.0, self.shadowing_sigma.value()))
    }
}

/// The computed budget for one link geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Power at the receiver input.
    pub received: Dbm,
    /// Receiver noise floor.
    pub noise_floor: Dbm,
    /// `received − noise_floor`.
    pub snr: Db,
    /// Raw bit error rate for noncoherent OOK at this SNR.
    pub ber: f64,
}

/// A point-to-point OOK link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Transmit power at the PA output.
    pub tx_power: Dbm,
    /// Transmit antenna realized gain.
    pub tx_gain: Db,
    /// Receive antenna realized gain.
    pub rx_gain: Db,
    /// Extra orientation/polarization loss (the §6 "depending on
    /// orientation of the antenna" term).
    pub orientation_loss: Db,
    /// The propagation channel.
    pub channel: Channel,
}

impl Link {
    /// Budget at a given range with median shadowing.
    pub fn budget(&self, distance: Meters) -> LinkBudget {
        self.budget_with_shadowing(distance, Db::new(0.0))
    }

    /// Budget at a given range with an explicit shadowing realization.
    pub fn budget_with_shadowing(&self, distance: Meters, shadowing: Db) -> LinkBudget {
        let received = self.tx_power + self.tx_gain + self.rx_gain
            - self.channel.path_loss(distance)
            - self.orientation_loss
            - shadowing;
        let noise_floor = self.channel.noise_floor();
        let snr = received - noise_floor;
        LinkBudget {
            received,
            noise_floor,
            snr,
            ber: ook_ber(snr),
        }
    }

    /// Probability that an `n_bits` packet decodes error-free at range,
    /// with median shadowing.
    pub fn packet_success(&self, distance: Meters, n_bits: usize) -> f64 {
        let b = self.budget(distance);
        (1.0 - b.ber).powi(n_bits as i32)
    }

    /// Simulates one packet attempt with shadowing and per-bit errors drawn
    /// from `rng`. Returns `true` when all bits survive.
    pub fn try_packet(
        &self,
        distance: Meters,
        n_bits: usize,
        rng: &mut picocube_sim::SimRng,
    ) -> bool {
        let shadow = self.channel.shadowing(rng);
        let b = self.budget_with_shadowing(distance, shadow);
        if b.ber >= 0.5 {
            return false;
        }
        (0..n_bits).all(|_| !rng.bernoulli(b.ber))
    }

    /// The range at which packet success (median shadowing) crosses 50 %,
    /// by bisection over `[0.01 m, 100 m]`.
    pub fn half_success_range(&self, n_bits: usize) -> Meters {
        let (mut lo, mut hi) = (0.01f64, 100.0f64);
        if self.packet_success(Meters::new(hi), n_bits) > 0.5 {
            return Meters::new(hi);
        }
        if self.packet_success(Meters::new(lo), n_bits) < 0.5 {
            return Meters::new(lo);
        }
        for _ in 0..60 {
            let mid = (lo * hi).sqrt();
            if self.packet_success(Meters::new(mid), n_bits) > 0.5 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Meters::new((lo * hi).sqrt())
    }
}

/// The SNR at which [`ook_ber`] equals 1e-3 — the reference receivers use
/// to anchor their quoted sensitivity: `4·ln(500)` linear, ≈ 14 dB.
pub fn ook_ber_reference_snr() -> Db {
    Db::from_ratio(4.0 * 500.0f64.ln())
}

/// Bit error rate of noncoherent (envelope-detected) OOK at a given SNR:
/// `0.5·exp(−SNR/4)`, the standard approximation.
pub fn ook_ber(snr: Db) -> f64 {
    let snr_lin = snr.to_ratio();
    (0.5 * (-snr_lin / 4.0).exp()).clamp(0.0, 0.5)
}

impl LinkBudget {
    /// Received power as linear watts (for energy-detector models).
    pub fn received_watts(&self) -> Watts {
        self.received.to_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_sim::SimRng;

    fn paper_link() -> Link {
        Link {
            tx_power: Dbm::new(0.8),
            tx_gain: crate::PatchAntenna::as_built().gain_dbi(Hertz::new(1.863e9)),
            rx_gain: Db::new(0.0),
            orientation_loss: Db::new(2.0),
            channel: Channel::free_space(),
        }
    }

    #[test]
    fn free_space_loss_at_1m_is_37_8_db() {
        let ch = Channel::free_space();
        assert!((ch.path_loss(Meters::new(1.0)).value() - 37.85).abs() < 0.1);
    }

    #[test]
    fn received_power_at_1m_is_about_minus_60_dbm() {
        // §4.6: "Transmitted signal strength is about −60 dBm at 1 meter."
        let b = paper_link().budget(Meters::new(1.0));
        assert!(
            (b.received.value() + 60.0).abs() < 2.0,
            "received {:.1} dBm (paper ≈ −60)",
            b.received.value()
        );
    }

    #[test]
    fn noise_floor_is_about_minus_107_dbm() {
        let ch = Channel::demo_room();
        assert!((ch.noise_floor().value() + 107.0).abs() < 1.0);
    }

    #[test]
    fn one_meter_link_has_huge_margin() {
        let b = paper_link().budget(Meters::new(1.0));
        assert!(b.snr.value() > 40.0);
        assert!(b.ber < 1e-12);
    }

    #[test]
    fn ber_rises_with_range() {
        let link = paper_link();
        let near = link.budget(Meters::new(1.0)).ber;
        let mid = link.budget(Meters::new(30.0)).ber;
        let far = link.budget(Meters::new(80.0)).ber;
        assert!(near < mid && mid < far);
    }

    #[test]
    fn packet_success_has_a_cliff() {
        // OOK links fall off a cliff: find the 50 % range and check ±50 %
        // around it swings success from near-1 to near-0.
        let link = Link {
            channel: Channel::demo_room(),
            ..paper_link()
        };
        let r50 = link.half_success_range(104);
        assert!(r50 > Meters::new(1.0), "r50 {r50:.2}");
        assert!(link.packet_success(r50 / 2.0, 104) > 0.97);
        assert!(link.packet_success(r50 * 2.0, 104) < 0.05);
    }

    #[test]
    fn orientation_loss_shrinks_range() {
        let good = paper_link();
        let bad = Link {
            orientation_loss: Db::new(20.0),
            ..good
        };
        assert!(bad.half_success_range(104) < good.half_success_range(104));
    }

    #[test]
    fn try_packet_statistics_match_budget() {
        let link = Link {
            channel: Channel::free_space(),
            ..paper_link()
        };
        let mut rng = SimRng::seed_from(5);
        // At a range with effectively zero BER every attempt succeeds.
        let ok = (0..200)
            .filter(|_| link.try_packet(Meters::new(1.0), 104, &mut rng))
            .count();
        assert_eq!(ok, 200);
    }

    #[test]
    fn shadowing_randomizes_outcomes_at_the_edge() {
        let link = Link {
            channel: Channel::demo_room(),
            ..paper_link()
        };
        let r50 = link.half_success_range(104);
        let mut rng = SimRng::seed_from(6);
        let ok = (0..400)
            .filter(|_| link.try_packet(r50, 104, &mut rng))
            .count();
        assert!(ok > 40 && ok < 360, "edge-of-range successes {ok}/400");
    }

    #[test]
    fn ook_ber_limits() {
        assert!((ook_ber(Db::new(-100.0)) - 0.5).abs() < 1e-9);
        assert!(ook_ber(Db::new(30.0)) < 1e-100);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_rejected() {
        Channel::free_space().path_loss(Meters::ZERO);
    }
}
