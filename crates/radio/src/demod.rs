//! Bit-level OOK demodulation: the receiver board's baseband chain.
//!
//! The link-level models in [`channel`](crate::Link) work on closed-form
//! error rates; this module is the *signal-level* counterpart — the
//! envelope-detector → bit-slicer → sync-correlator pipeline the §6
//! receiver board implements in hardware (its "raw and processed baseband
//! signal" is what the demo oscilloscope displays in Fig. 8). It doubles
//! as a validation path: the bit errors measured here converge to the
//! noncoherent-OOK formula used by the link model.

use crate::packet::{self, Checksum, DecodeError, Frame};
use picocube_sim::SimRng;

/// A sampled envelope-detector output.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeWaveform {
    samples: Vec<f64>,
    samples_per_bit: usize,
}

impl EnvelopeWaveform {
    /// Wraps raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_bit` is zero.
    pub fn new(samples: Vec<f64>, samples_per_bit: usize) -> Self {
        assert!(samples_per_bit > 0, "need at least one sample per bit");
        Self {
            samples,
            samples_per_bit,
        }
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Oversampling factor.
    pub fn samples_per_bit(&self) -> usize {
        self.samples_per_bit
    }
}

/// Synthesizes the envelope waveform for a framed byte stream: carrier
/// amplitude `signal` during one-bits, zero during zero-bits, additive
/// Gaussian envelope noise of deviation `noise_sigma` (clamped at zero, as
/// a rectifying detector does), with `lead_in` samples of noise before the
/// first bit (unknown arrival time — what timing recovery must solve).
pub fn modulate(
    bytes: &[u8],
    samples_per_bit: usize,
    signal: f64,
    noise_sigma: f64,
    lead_in: usize,
    rng: &mut SimRng,
) -> EnvelopeWaveform {
    assert!(samples_per_bit > 0, "need at least one sample per bit");
    assert!(
        signal >= 0.0 && noise_sigma >= 0.0,
        "nonnegative amplitudes"
    );
    let bits = packet::to_bits(bytes);
    let mut samples = Vec::with_capacity(lead_in + bits.len() * samples_per_bit);
    let noisy = |level: f64, rng: &mut SimRng| (level + rng.normal(0.0, noise_sigma)).max(0.0);
    for _ in 0..lead_in {
        samples.push(noisy(0.0, rng));
    }
    for bit in bits {
        let level = if bit { signal } else { 0.0 };
        for _ in 0..samples_per_bit {
            samples.push(noisy(level, rng));
        }
    }
    EnvelopeWaveform {
        samples,
        samples_per_bit,
    }
}

/// The baseband receive chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demodulator {
    samples_per_bit: usize,
}

/// Demodulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DemodError {
    /// Not enough samples to train the slicer.
    TooShort,
    /// Bit decisions never produced the sync byte.
    Frame(DecodeError),
}

impl core::fmt::Display for DemodError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::TooShort => write!(f, "waveform shorter than the training window"),
            Self::Frame(e) => write!(f, "frame recovery failed: {e}"),
        }
    }
}

impl std::error::Error for DemodError {}

impl Demodulator {
    /// Creates a demodulator for the given oversampling factor.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_bit < 2` (timing recovery needs margin).
    pub fn new(samples_per_bit: usize) -> Self {
        assert!(samples_per_bit >= 2, "need at least 2 samples per bit");
        Self { samples_per_bit }
    }

    /// Recovers symbol timing: the bit-boundary offset (0..samples_per_bit)
    /// that maximizes adjacent-window contrast over the training span —
    /// the alternating preamble makes the metric sharp.
    pub fn recover_timing(&self, wf: &EnvelopeWaveform) -> usize {
        let spb = self.samples_per_bit;
        let windows = 24.min(wf.samples.len() / spb).max(2);
        let mut best = (0usize, f64::NEG_INFINITY);
        for offset in 0..spb {
            let mut score = 0.0;
            let mut prev: Option<f64> = None;
            for w in 0..windows {
                let start = offset + w * spb;
                if start + spb > wf.samples.len() {
                    break;
                }
                let avg: f64 = wf.samples[start..start + spb].iter().sum::<f64>() / spb as f64;
                if let Some(p) = prev {
                    score += (avg - p).abs();
                }
                prev = Some(avg);
            }
            if score > best.1 {
                best = (offset, score);
            }
        }
        best.0
    }

    /// Slices the waveform into bit decisions at a given timing offset,
    /// training the threshold on the first windows (preamble region).
    pub fn slice(&self, wf: &EnvelopeWaveform, offset: usize) -> Vec<bool> {
        let spb = self.samples_per_bit;
        let mut averages = Vec::new();
        let mut start = offset;
        while start + spb <= wf.samples.len() {
            averages.push(wf.samples[start..start + spb].iter().sum::<f64>() / spb as f64);
            start += spb;
        }
        if averages.is_empty() {
            return Vec::new();
        }
        // Train on the earliest windows: split into upper and lower halves
        // around the median and threshold at their midpoint.
        let train = averages.len().min(24);
        let mut sorted: Vec<f64> = averages[..train].to_vec();
        sorted.sort_by(f64::total_cmp);
        let lower = sorted[..train / 2].iter().sum::<f64>() / (train / 2).max(1) as f64;
        let upper = sorted[train.div_ceil(2)..].iter().sum::<f64>()
            / (train - train.div_ceil(2)).max(1) as f64;
        let threshold = 0.5 * (lower + upper);
        averages.into_iter().map(|a| a > threshold).collect()
    }

    /// Full chain: timing recovery → slicing → byte packing → frame sync
    /// and checksum verification.
    ///
    /// # Errors
    ///
    /// Returns [`DemodError`] when the waveform is too short or no valid
    /// frame emerges from the bit decisions.
    pub fn receive_frame(
        &self,
        wf: &EnvelopeWaveform,
        checksum: Checksum,
    ) -> Result<Frame, DemodError> {
        if wf.samples.len() < 4 * self.samples_per_bit {
            return Err(DemodError::TooShort);
        }
        let offset = self.recover_timing(wf);
        let bits = self.slice(wf, offset);
        // The lead-in produces noise bits before the preamble; scan all 8
        // bit alignments for a decodable frame.
        for align in 0..8.min(bits.len()) {
            let bytes = packet::from_bits(&bits[align..]);
            if let Ok(frame) = packet::decode(&bytes, checksum) {
                return Ok(frame);
            }
        }
        // Report the best-aligned failure for diagnostics.
        let bytes = packet::from_bits(&bits);
        Err(DemodError::Frame(
            packet::decode(&bytes, checksum).expect_err("loop would have returned Ok"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes() -> Vec<u8> {
        packet::encode(0x42, &[1, 2, 3, 4, 5, 6, 7, 8], Checksum::Crc8)
    }

    #[test]
    fn clean_waveform_decodes_exactly() {
        let mut rng = SimRng::seed_from(1);
        let wf = modulate(&frame_bytes(), 8, 1.0, 0.0, 0, &mut rng);
        let frame = Demodulator::new(8)
            .receive_frame(&wf, Checksum::Crc8)
            .unwrap();
        assert_eq!(frame.node_id, 0x42);
        assert_eq!(frame.payload, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn timing_offset_is_recovered() {
        let mut rng = SimRng::seed_from(2);
        for lead_in in [0, 1, 3, 7, 11, 20, 37] {
            let wf = modulate(&frame_bytes(), 8, 1.0, 0.05, lead_in, &mut rng);
            let frame = Demodulator::new(8)
                .receive_frame(&wf, Checksum::Crc8)
                .unwrap_or_else(|e| panic!("lead_in {lead_in}: {e}"));
            assert_eq!(frame.node_id, 0x42);
        }
    }

    #[test]
    fn moderate_noise_still_decodes() {
        let mut rng = SimRng::seed_from(3);
        let mut ok = 0;
        for _ in 0..50 {
            // SNR per sample = (1/0.2)² = 25 → per-bit (8 samples avg) huge.
            let wf = modulate(&frame_bytes(), 8, 1.0, 0.2, 13, &mut rng);
            if Demodulator::new(8)
                .receive_frame(&wf, Checksum::Crc8)
                .is_ok()
            {
                ok += 1;
            }
        }
        assert!(ok >= 48, "decoded {ok}/50 at comfortable SNR");
    }

    #[test]
    fn heavy_noise_fails_safely() {
        let mut rng = SimRng::seed_from(4);
        let mut ok = 0;
        for _ in 0..30 {
            let wf = modulate(&frame_bytes(), 4, 1.0, 1.5, 9, &mut rng);
            if Demodulator::new(4)
                .receive_frame(&wf, Checksum::Crc8)
                .is_ok()
            {
                ok += 1;
            }
        }
        assert!(ok <= 3, "heavy noise must not decode reliably ({ok}/30)");
    }

    #[test]
    fn measured_ber_tracks_the_analytic_model() {
        // Slice raw bits at a known SNR and compare against the link
        // model's noncoherent-OOK formula (same order of magnitude; the
        // simple averaging slicer gives up a little against the optimal
        // detector, and the preamble-trained threshold is not exact).
        let mut rng = SimRng::seed_from(5);
        let payload: Vec<u8> = (0..64).map(|_| rng.next_u64() as u8).collect();
        let spb = 4usize;
        let sigma = 0.42; // per-sample; after averaging, SNR_bit ≈ 9.1 dB
        let wf = modulate(&payload, spb, 1.0, sigma, 0, &mut rng);
        let demod = Demodulator::new(spb);
        let bits = demod.slice(&wf, 0);
        let sent = packet::to_bits(&payload);
        let errors = bits.iter().zip(&sent).filter(|(a, b)| a != b).count();
        let measured = errors as f64 / sent.len() as f64;
        // Effective per-bit envelope SNR after averaging spb samples:
        let snr_bit = (1.0 / sigma).powi(2) * spb as f64 / 2.0; // mean power / noise var on the mean, ±
        let analytic = 0.5 * (-snr_bit / 4.0).exp();
        assert!(
            measured < 30.0 * analytic + 0.02 && measured < 0.2,
            "measured {measured:.4} vs analytic {analytic:.4}"
        );
    }

    #[test]
    fn slicer_handles_inverted_duty_payloads() {
        // Frames whose payload is mostly ones (or mostly zeros) must still
        // slice correctly because the threshold trains on the preamble.
        let mut rng = SimRng::seed_from(6);
        for payload in [[0xFFu8; 8], [0x00u8; 8]] {
            let bytes = packet::encode(7, &payload, Checksum::Xor);
            let wf = modulate(&bytes, 8, 1.0, 0.1, 5, &mut rng);
            let frame = Demodulator::new(8)
                .receive_frame(&wf, Checksum::Xor)
                .unwrap();
            assert_eq!(frame.payload, payload.to_vec());
        }
    }

    #[test]
    fn too_short_waveform_is_rejected() {
        let wf = EnvelopeWaveform::new(vec![0.0; 8], 8);
        assert_eq!(
            Demodulator::new(8).receive_frame(&wf, Checksum::Xor),
            Err(DemodError::TooShort)
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn undersampled_demodulator_rejected() {
        Demodulator::new(1);
    }
}
