//! The §7.3 wakeup radio: "an extremely low-power receiver that listens
//! full-time for a wake-up signal, then starts a more complex (and more
//! power hungry) receiver for data transfer" (reference \[16\], Pletcher's
//! BWRC work).
//!
//! Its system-level value is a latency/power trade: a node without it must
//! either duty-cycle its main receiver (paying average power proportional
//! to the polling duty) or accept polling latency. This module models the
//! detector itself and provides the comparison maths for experiment E11.

use picocube_units::{Dbm, Hertz, Seconds, Watts};

/// An always-on wake-up signal detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeupReceiver {
    /// Continuous listening power.
    listen_power: Watts,
    /// Detection threshold (wake-up signals must arrive above this).
    sensitivity: Dbm,
    /// Time from signal start to wake assertion.
    latency: Seconds,
    /// False-wake rate (noise-triggered wakes per second).
    false_rate: Hertz,
}

impl WakeupReceiver {
    /// Creates a wakeup receiver.
    ///
    /// # Panics
    ///
    /// Panics if power or latency is non-positive, or the false rate is
    /// negative.
    pub fn new(listen_power: Watts, sensitivity: Dbm, latency: Seconds, false_rate: Hertz) -> Self {
        assert!(listen_power.value() > 0.0, "listen power must be positive");
        assert!(latency.value() > 0.0, "latency must be positive");
        assert!(false_rate.value() >= 0.0, "false rate must be non-negative");
        Self {
            listen_power,
            sensitivity,
            latency,
            false_rate,
        }
    }

    /// The reference-\[16\] class detector: 50 µW always-on, −50 dBm
    /// threshold (poor sensitivity is the price of the power), 100 µs
    /// latency, one false wake per hour.
    pub fn bwrc() -> Self {
        Self::new(
            Watts::from_micro(50.0),
            Dbm::new(-50.0),
            Seconds::new(100e-6),
            Hertz::new(1.0 / 3600.0),
        )
    }

    /// A correlating detector in the class Pible builds on (Fraternali et
    /// al., arXiv:1905.03851): an address-matched correlator buys ~20 dB of
    /// sensitivity over the reference-\[16\] envelope detector at roughly
    /// double the power and latency, and trades a higher noise-triggered
    /// false-wake rate. Sensitive enough (−72 dBm) to hear a PicoCube
    /// transmitter a few meters away — the preset the multi-hop mesh fits.
    pub fn mesh_correlator() -> Self {
        Self::new(
            Watts::from_micro(95.0),
            Dbm::new(-72.0),
            Seconds::new(300e-6),
            Hertz::new(1.0 / 600.0),
        )
    }

    /// Continuous listening power.
    pub fn listen_power(&self) -> Watts {
        self.listen_power
    }

    /// False-wake rate (noise-triggered wakes per second).
    pub fn false_rate(&self) -> Hertz {
        self.false_rate
    }

    /// Detection threshold.
    pub fn sensitivity(&self) -> Dbm {
        self.sensitivity
    }

    /// Wake latency.
    pub fn latency(&self) -> Seconds {
        self.latency
    }

    /// Whether a signal at `level` triggers a wake.
    pub fn detects(&self, level: Dbm) -> bool {
        level >= self.sensitivity
    }

    /// Average power of the wakeup approach, including the main receiver's
    /// energy for real events and false wakes.
    pub fn average_power(
        &self,
        event_rate: Hertz,
        main_rx_power: Watts,
        main_rx_on_time: Seconds,
    ) -> Watts {
        let wake_energy = main_rx_power * main_rx_on_time;
        let wakes_per_sec = (event_rate + self.false_rate).value();
        self.listen_power + wake_energy * wakes_per_sec / Seconds::new(1.0)
    }

    /// Average power of the *duty-cycled* alternative achieving the same
    /// worst-case latency: the main receiver must listen every
    /// `latency` for at least `on_time`.
    pub fn duty_cycled_equivalent(
        latency: Seconds,
        main_rx_power: Watts,
        on_time: Seconds,
    ) -> Watts {
        assert!(latency.value() > 0.0, "latency must be positive");
        let duty = (on_time.value() / latency.value()).min(1.0);
        main_rx_power * duty
    }

    /// The worst-case latency below which duty-cycling the main receiver
    /// costs more than this wakeup detector (the E11 crossover).
    pub fn crossover_latency(&self, main_rx_power: Watts, on_time: Seconds) -> Seconds {
        // duty-cycled power = P_rx·t_on/T == listen_power  ⇒  T*.
        Seconds::new(main_rx_power.value() * on_time.value() / self.listen_power.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_cost_is_50_uw() {
        let w = WakeupReceiver::bwrc();
        assert_eq!(w.listen_power(), Watts::from_micro(50.0));
    }

    #[test]
    fn detection_threshold() {
        let w = WakeupReceiver::bwrc();
        assert!(w.detects(Dbm::new(-45.0)));
        assert!(!w.detects(Dbm::new(-55.0)));
    }

    #[test]
    fn crossover_against_the_demo_receiver() {
        // Main RX: 400 µW, needs 5 ms per poll. Crossover latency:
        // 400 µW · 5 ms / 50 µW = 40 ms. Tighter latency demands favor the
        // wakeup radio; looser ones favor duty cycling.
        let w = WakeupReceiver::bwrc();
        let rx = Watts::from_micro(400.0);
        let on = Seconds::new(5e-3);
        let t_star = w.crossover_latency(rx, on);
        assert!((t_star.value() - 0.04).abs() < 1e-9);
        let tight = WakeupReceiver::duty_cycled_equivalent(Seconds::new(0.01), rx, on);
        assert!(tight > w.listen_power());
        let loose = WakeupReceiver::duty_cycled_equivalent(Seconds::new(1.0), rx, on);
        assert!(loose < w.listen_power());
    }

    #[test]
    fn average_power_includes_false_wakes() {
        let w = WakeupReceiver::bwrc();
        let rx = Watts::from_micro(400.0);
        let on = Seconds::new(5e-3);
        let idle = w.average_power(Hertz::ZERO, rx, on);
        // 50 µW + (400 µW × 5 ms)/3600 s ≈ 50.0006 µW.
        assert!(idle > w.listen_power());
        assert!((idle - w.listen_power()).nano() < 1.0);
        let busy = w.average_power(Hertz::new(1.0), rx, on);
        assert!((busy.micro() - 52.0).abs() < 0.1);
    }

    #[test]
    fn duty_cycle_saturates_at_continuous() {
        let p = WakeupReceiver::duty_cycled_equivalent(
            Seconds::new(1e-3),
            Watts::from_micro(400.0),
            Seconds::new(5e-3),
        );
        assert_eq!(p, Watts::from_micro(400.0));
    }

    #[test]
    fn latency_is_fast() {
        assert!(WakeupReceiver::bwrc().latency() < Seconds::new(1e-3));
    }

    #[test]
    fn mesh_correlator_trades_power_for_sensitivity() {
        let envelope = WakeupReceiver::bwrc();
        let correlator = WakeupReceiver::mesh_correlator();
        // More sensitive (hears weaker signals)...
        assert!(correlator.detects(Dbm::new(-70.0)));
        assert!(!envelope.detects(Dbm::new(-70.0)));
        // ...at a higher standing power and false-wake rate.
        assert!(correlator.listen_power() > envelope.listen_power());
        assert!(correlator.false_rate() > envelope.false_rate());
    }
}
