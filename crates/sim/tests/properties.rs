//! Property-based tests for the simulation kernel.

use picocube_sim::{EventQueue, PowerLedger, ScalarTrace, SimTime};
use picocube_units::{Amps, Volts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pops_in_nondecreasing_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn queue_is_fifo_within_equal_timestamps(
        groups in prop::collection::vec((0u64..100, 1usize..8), 1..30)
    ) {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.push(SimTime::from_nanos(t), seq);
                seq += 1;
            }
        }
        // Among events with the same timestamp, sequence numbers ascend.
        let mut per_time: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        while let Some((t, s)) = q.pop() {
            if let Some(&prev) = per_time.get(&t.as_nanos()) {
                prop_assert!(s > prev, "FIFO violated at t={t:?}");
            }
            per_time.insert(t.as_nanos(), s);
        }
    }

    #[test]
    fn ledger_energy_equals_hand_integration(
        schedule in prop::collection::vec((1u64..10_000, 0.0f64..5e-3), 1..50),
        voltage in 0.5f64..5.0,
    ) {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("r", Volts::new(voltage));
        let load = ledger.register_load(rail, "l").unwrap();
        let mut t = 0u64;
        let mut expected = 0.0;
        for &(dt_us, amps) in &schedule {
            ledger.set_load_current(load, Amps::new(amps)).unwrap();
            t += dt_us * 1_000;
            ledger.advance_to(SimTime::from_nanos(t));
            expected += voltage * amps * (dt_us as f64 * 1e-6);
        }
        let got = ledger.total_energy().value();
        prop_assert!((got - expected).abs() <= 1e-12 + 1e-9 * expected.abs(),
            "got {got}, expected {expected}");
    }

    #[test]
    fn ledger_average_power_is_bounded_by_extremes(
        currents in prop::collection::vec(0.0f64..1e-2, 2..20)
    ) {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("r", Volts::new(1.2));
        let load = ledger.register_load(rail, "l").unwrap();
        for (i, &a) in currents.iter().enumerate() {
            ledger.set_load_current(load, Amps::new(a)).unwrap();
            ledger.advance_to(SimTime::from_millis((i as u64 + 1) * 10));
        }
        let avg = ledger.average_power().value();
        let max = currents.iter().cloned().fold(0.0, f64::max) * 1.2;
        prop_assert!(avg >= -1e-15 && avg <= max + 1e-12);
    }

    #[test]
    fn trace_stats_bound_recorded_values(
        samples in prop::collection::vec((1u64..1_000, -100.0f64..100.0), 2..50)
    ) {
        let mut trace = ScalarTrace::new("x");
        let mut t = 0u64;
        for &(dt, v) in &samples {
            t += dt;
            trace.record(SimTime::from_nanos(t), v);
        }
        let stats = trace.stats().unwrap();
        prop_assert!(stats.min <= stats.mean + 1e-12);
        prop_assert!(stats.mean <= stats.max + 1e-12);
        for &(_, v) in &samples {
            prop_assert!(v >= stats.min - 1e-12 && v <= stats.max + 1e-12);
        }
    }

    #[test]
    fn trace_zero_order_hold_returns_some_recorded_value(
        samples in prop::collection::vec((1u64..1_000, -10.0f64..10.0), 1..30),
        probe in 0u64..40_000,
    ) {
        let mut trace = ScalarTrace::new("x");
        let mut t = 0u64;
        let mut recorded = Vec::new();
        for &(dt, v) in &samples {
            t += dt;
            trace.record(SimTime::from_nanos(t), v);
            recorded.push(v);
        }
        if let Some(v) = trace.value_at(SimTime::from_nanos(probe)) {
            prop_assert!(recorded.iter().any(|&r| (r - v).abs() < 1e-12));
        }
    }
}
