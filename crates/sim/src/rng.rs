//! Deterministic random numbers for stochastic device models.

use rand::{Rng, RngCore, SeedableRng};

/// A seedable RNG wrapper used by every stochastic model in the workspace.
///
/// All PicoCube models take a `SimRng` (or derive one via
/// [`fork`](Self::fork)) so experiments are reproducible bit-for-bit from a
/// single seed. Backed by [`rand::rngs::StdRng`].
///
/// # Examples
///
/// ```
/// use picocube_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: rand::rngs::StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self { inner: rand::rngs::StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child RNG. Forking lets subsystems consume
    /// randomness without perturbing each other's streams, so adding a model
    /// does not change the draws seen by existing ones.
    pub fn fork(&mut self) -> Self {
        Self::seed_from(self.inner.next_u64())
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "invalid uniform range");
        self.inner.gen_range(lo..hi)
    }

    /// A standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller: u1 in (0,1], u2 in [0,1).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "negative standard deviation");
        mean + sigma * self.standard_normal()
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// An exponential sample with the given rate (events per unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -u.ln() / rate
    }

    /// A raw `u64`, for callers that need bits rather than floats.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_parent_use() {
        let mut parent1 = SimRng::seed_from(7);
        let mut child1 = parent1.fork();
        let c1: Vec<u64> = (0..8).map(|_| child1.next_u64()).collect();

        let mut parent2 = SimRng::seed_from(7);
        let mut child2 = parent2.fork();
        // Use the parent *before* reading the child: child draws must not move.
        for _ in 0..100 {
            parent2.next_u64();
        }
        let c2: Vec<u64> = (0..8).map(|_| child2.next_u64()).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = SimRng::seed_from(3);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
        // Degenerate probabilities never panic.
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn index_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_bad_range() {
        SimRng::seed_from(0).uniform(1.0, 1.0);
    }
}
