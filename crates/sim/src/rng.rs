//! Deterministic random numbers for stochastic device models.
//!
//! Self-contained (no external crates): a xoshiro256++ core seeded through
//! splitmix64, the standard construction for turning a 64-bit seed into a
//! full 256-bit state without correlated lanes.

/// A seedable RNG used by every stochastic model in the workspace.
///
/// All PicoCube models take a `SimRng` (or derive one via
/// [`fork`](Self::fork) / [`stream`](Self::stream)) so experiments are
/// reproducible bit-for-bit from a single seed. Backed by a xoshiro256++
/// generator seeded via splitmix64.
///
/// # Examples
///
/// ```
/// use picocube_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives the seed of an independent numbered stream from a master
    /// seed.
    ///
    /// This is the workspace's **stream-derivation rule** (documented in
    /// `DESIGN.md`): `stream_seed(master, i) = splitmix64(master ⊕ φ·(i+1))`
    /// with φ the 64-bit golden-ratio constant. Consecutive stream indices
    /// land in unrelated splitmix64 trajectories, so per-node substreams in
    /// fleet simulations are statistically independent and — crucially —
    /// each node's stream depends only on `(master, i)`, never on how many
    /// draws any *other* node consumed. That independence is what lets the
    /// fleet engine simulate nodes on worker threads and still match the
    /// serial schedule bit-for-bit.
    pub fn stream_seed(master: u64, stream: u64) -> u64 {
        let mut s = master ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1));
        splitmix64(&mut s)
    }

    /// Creates the RNG for an independent numbered stream of a master seed
    /// (see [`stream_seed`](Self::stream_seed)).
    pub fn stream(master: u64, stream: u64) -> Self {
        Self::seed_from(Self::stream_seed(master, stream))
    }

    /// Fans a master seed into decorrelated whole-run seeds (Monte Carlo
    /// campaigns): seed `k` of the fan, with `fan_seed(master, 0) ==
    /// master` so the first run reproduces the un-fanned spec exactly.
    ///
    /// This is a Weyl sequence stepped by the 64-bit golden ratio — a
    /// deliberately *weaker* mix than [`stream_seed`](Self::stream_seed)
    /// (no splitmix64 finalizer) because each fanned seed is itself a
    /// master that [`seed_from`](Self::seed_from) scrambles; keeping `k =
    /// 0` an identity is the property campaigns rely on. Like the stream
    /// rule, it lives here so seed derivation has exactly one home (the
    /// L6 lint enforces this).
    pub fn fan_seed(master: u64, k: u64) -> u64 {
        master.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Derives an independent child RNG. Forking lets subsystems consume
    /// randomness without perturbing each other's streams, so adding a model
    /// does not change the draws seen by existing ones.
    pub fn fork(&mut self) -> Self {
        Self::seed_from(self.next_u64())
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "invalid uniform range"
        );
        let x = lo + self.unit_f64() * (hi - lo);
        // Rounding at the top of the span could land exactly on `hi`.
        if x >= hi {
            lo
        } else {
            x
        }
    }

    /// A standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller: u1 in (0,1], u2 in [0,1).
        let u1: f64 = 1.0 - self.unit_f64();
        let u2: f64 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "negative standard deviation");
        mean + sigma * self.standard_normal()
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit_f64() < p
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Multiply-shift bounded generation (Lemire): uniform enough for
        // simulation sampling and free of modulo bias hot spots.
        ((u128::from(self.next_u64()) * (n as u128)) >> 64) as usize
    }

    /// An exponential sample with the given rate (events per unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u: f64 = 1.0 - self.unit_f64();
        -u.ln() / rate
    }

    /// A raw `u64`, for callers that need bits rather than floats.
    pub fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019). The update is written as
        // a shadowing chain (same order as the reference's indexed form)
        // so the hot path carries no slice indexing at all.
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_parent_use() {
        let mut parent1 = SimRng::seed_from(7);
        let mut child1 = parent1.fork();
        let c1: Vec<u64> = (0..8).map(|_| child1.next_u64()).collect();

        let mut parent2 = SimRng::seed_from(7);
        let mut child2 = parent2.fork();
        // Use the parent *before* reading the child: child draws must not move.
        for _ in 0..100 {
            parent2.next_u64();
        }
        let c2: Vec<u64> = (0..8).map(|_| child2.next_u64()).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    fn numbered_streams_are_distinct_and_reproducible() {
        let a: Vec<u64> = {
            let mut r = SimRng::stream(42, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a_again: Vec<u64> = {
            let mut r = SimRng::stream(42, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::stream(42, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a_again);
        assert_ne!(a, b);
        // Distinct masters give distinct streams at the same index.
        assert_ne!(SimRng::stream_seed(1, 0), SimRng::stream_seed(2, 0));
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = SimRng::seed_from(3);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
        // Degenerate probabilities never panic.
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn index_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    fn bits_are_well_mixed() {
        // Cheap avalanche check: over many draws every bit position flips
        // roughly half the time.
        let mut rng = SimRng::seed_from(6);
        let n = 4096;
        let mut ones = [0u32; 64];
        for _ in 0..n {
            let x = rng.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((x >> bit) & 1) as u32;
            }
        }
        for (bit, &count) in ones.iter().enumerate() {
            let frac = f64::from(count) / f64::from(n);
            assert!((frac - 0.5).abs() < 0.05, "bit {bit} frac {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_bad_range() {
        SimRng::seed_from(0).uniform(1.0, 1.0);
    }
}
