//! Time-ordered, insertion-stable event queue.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic discrete-event queue.
///
/// Events pop in ascending time order; events scheduled for the same instant
/// pop in the order they were pushed (FIFO). This stability is what makes
/// whole-node simulations reproducible without per-event tie-break keys.
///
/// # Examples
///
/// ```
/// use picocube_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(6), "sp12 wake");
/// q.push(SimTime::from_millis(1), "boot");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "boot")));
/// assert_eq!(q.peek_time(), Some(SimTime::from_secs(6)));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    popped: u64,
    max_len: usize,
}

/// Lifetime statistics of an [`EventQueue`] — the scheduler-pressure
/// numbers the telemetry layer exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub pushed: u64,
    /// Events ever delivered (popped).
    pub popped: u64,
    /// High-water mark of pending events.
    pub max_len: usize,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
            max_len: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            popped: 0,
            max_len: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        self.max_len = self.max_len.max(self.heap.len());
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = self.heap.pop().map(|Reverse(e)| (e.time, e.event));
        self.popped += u64::from(popped.is_some());
        popped
    }

    /// Lifetime scheduling statistics (pushes, pops, high-water mark).
    /// `clear` and `retain` count dropped events as neither pushed back
    /// nor popped; `pushed - popped` can therefore exceed `len` after a
    /// cancellation.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.seq,
            popped: self.popped,
            max_len: self.max_len,
        }
    }

    /// Exports the queue statistics as counters under `prefix`
    /// (`<prefix>.pushed`, `<prefix>.popped`, `<prefix>.max_depth`).
    pub fn export_metrics(&self, metrics: &mut picocube_telemetry::Metrics, prefix: &str) {
        use picocube_telemetry::keys;
        let stats = self.stats();
        metrics.inc(&keys::queue_pushed(prefix), stats.pushed);
        metrics.inc(&keys::queue_popped(prefix), stats.popped);
        metrics.inc(&keys::queue_max_depth(prefix), stats.max_len as u64);
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drops every pending event for which `keep` returns `false`.
    ///
    /// Used to model cancellation (e.g. power-gating a block whose timer had
    /// a pending expiry). Relative order of surviving events is preserved.
    pub fn retain<F: FnMut(SimTime, &E) -> bool>(&mut self, mut keep: F) {
        let entries = std::mem::take(&mut self.heap);
        self.heap = entries
            .into_iter()
            .filter(|Reverse(e)| keep(e.time, &e.event))
            .collect();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_pushes_pops_and_depth() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.push(SimTime::from_secs(i), i);
        }
        q.pop();
        q.pop();
        let stats = q.stats();
        assert_eq!(stats.pushed, 5);
        assert_eq!(stats.popped, 2);
        assert_eq!(stats.max_len, 5);
        let mut metrics = picocube_telemetry::Metrics::new();
        q.export_metrics(&mut metrics, "sim.queue");
        assert_eq!(metrics.counter("sim.queue.pushed"), 5);
        assert_eq!(metrics.counter("sim.queue.popped"), 2);
        assert_eq!(metrics.counter("sim.queue.max_depth"), 5);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "later");
        assert_eq!(q.pop_due(SimTime::from_secs(9)), None);
        assert_eq!(
            q.pop_due(SimTime::from_secs(10)),
            Some((SimTime::from_secs(10), "later"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn retain_cancels_events() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.push(SimTime::from_secs(u64::from(i)), i);
        }
        q.retain(|_, &e| e % 2 == 0);
        assert_eq!(q.len(), 5);
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::with_capacity(16);
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_survives_interleaved_pops() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(t, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
