//! Integer-nanosecond simulation time.

use picocube_units::Seconds;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is a `u64`, giving a range of about 584 simulated years —
/// comfortably beyond the "decades in a building" deployment horizon the
/// paper motivates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: Self = Self(0);

    /// Creates an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates an instant from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates an instant from a floating-point [`Seconds`] value, rounding
    /// to the nearest nanosecond. Negative values clamp to zero.
    #[inline]
    pub fn from_seconds(s: Seconds) -> Self {
        Self((s.value().max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant as floating-point seconds since simulation start.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds::new(self.0 as f64 * 1e-9)
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`; use
    /// [`checked_duration_since`](Self::checked_duration_since) when the
    /// ordering is not known statically.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        self.checked_duration_since(earlier)
            // picocube-lint: allow(L2) documented `# Panics` API mirroring std::time::Instant; checked_duration_since is the total variant
            .expect("duration_since: earlier instant is after self")
    }

    /// The span from `earlier` to `self`, or `None` if `earlier > self`.
    #[inline]
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> Self {
        Self(self.0.saturating_add(d.0))
    }

    /// The instant `d` before `self`, or `None` if that would precede the
    /// start of the simulation. The total counterpart of the panicking
    /// `self - d` operator, mirroring
    /// [`checked_duration_since`](Self::checked_duration_since).
    #[inline]
    pub fn checked_sub(self, d: SimDuration) -> Option<Self> {
        self.0.checked_sub(d.0).map(Self)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: Self = Self(0);

    /// Creates a span from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a span from a floating-point [`Seconds`] value, rounding to
    /// the nearest nanosecond. Negative values clamp to zero.
    #[inline]
    pub fn from_seconds(s: Seconds) -> Self {
        Self((s.value().max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as floating-point seconds.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds::new(self.0 as f64 * 1e-9)
    }

    /// Whether the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Self {
        Self(self.0.saturating_mul(k))
    }
}

impl core::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl core::ops::Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl core::ops::Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t={:.9}s", self.0 as f64 * 1e-9)
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.9}s", self.0 as f64 * 1e-9)
    }
}

impl core::fmt::Debug for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SimTime({} ns)", self.0)
    }
}

impl core::fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SimDuration({} ns)", self.0)
    }
}

impl picocube_units::json::ToJson for SimTime {
    fn to_json(&self) -> picocube_units::json::Json {
        // Raw nanoseconds: u64 round-trips exactly, unlike f64 seconds.
        picocube_units::json::Json::UInt(self.0)
    }
}

impl picocube_units::json::FromJson for SimTime {
    fn from_json(
        value: &picocube_units::json::Json,
    ) -> Result<Self, picocube_units::json::JsonError> {
        Ok(Self(<u64 as picocube_units::json::FromJson>::from_json(
            value,
        )?))
    }
}

impl picocube_units::json::ToJson for SimDuration {
    fn to_json(&self) -> picocube_units::json::Json {
        picocube_units::json::Json::UInt(self.0)
    }
}

impl picocube_units::json::FromJson for SimDuration {
    fn from_json(
        value: &picocube_units::json::Json,
    ) -> Result<Self, picocube_units::json::JsonError> {
        Ok(Self(<u64 as picocube_units::json::FromJson>::from_json(
            value,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
    }

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_seconds(Seconds::new(14e-3));
        assert_eq!(t, SimTime::from_millis(14));
        assert!((t.as_seconds().value() - 14e-3).abs() < 1e-12);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_seconds(Seconds::new(-1.0)), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_seconds(Seconds::new(-1.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(6) + SimDuration::from_millis(14);
        assert_eq!(t.as_nanos(), 6_014_000_000);
        assert_eq!(t - SimTime::from_secs(6), SimDuration::from_millis(14));
        assert_eq!(t - SimDuration::from_millis(14), SimTime::from_secs(6));
    }

    #[test]
    fn checked_duration_since_handles_misordering() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::from_secs(1)));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    fn checked_sub_handles_underflow() {
        let t = SimTime::from_secs(2);
        assert_eq!(
            t.checked_sub(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(
            t.checked_sub(SimDuration::from_secs(2)),
            Some(SimTime::ZERO)
        );
        assert_eq!(t.checked_sub(SimDuration::from_secs(3)), None);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_misordered() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(6) * 1000;
        assert_eq!(d, SimDuration::from_secs(6));
        assert_eq!(d / 6, SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(14)), "t=0.014000000s");
        assert_eq!(format!("{}", SimDuration::from_micros(500)), "0.000500000s");
    }
}
