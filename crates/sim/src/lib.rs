//! Discrete-event simulation kernel for the PicoCube workspace.
//!
//! The kernel provides four things every subsystem model builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-nanosecond clock. Integer
//!   ticks keep multi-hour simulated horizons free of floating-point drift
//!   and make event ordering total and reproducible.
//! * [`EventQueue`] — a time-ordered, insertion-stable priority queue.
//!   Events scheduled for the same instant pop in the order they were
//!   pushed, so simulations are deterministic without tie-break hacks.
//! * [`PowerLedger`] and [`PowerTrace`] — rail-by-rail, load-by-load energy
//!   accounting. Components publish their instantaneous current draw; the
//!   ledger integrates piecewise-constant currents into per-load energies.
//!   The paper's Fig. 6 power profile and its 6 µW system average are
//!   *measurements* of this ledger, not analytic shortcuts.
//! * [`SimRng`] — a seedable RNG wrapper so every stochastic model in the
//!   workspace is reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use picocube_sim::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Wake, Sample }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_millis(6_000), Ev::Wake);
//! q.push(SimTime::from_millis(6_000), Ev::Sample); // same instant: FIFO
//! q.push(SimTime::from_millis(1), Ev::Wake);
//!
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(1), Ev::Wake));
//! assert_eq!(q.pop().unwrap().1, Ev::Wake);
//! assert_eq!(q.pop().unwrap().1, Ev::Sample);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod power;
mod queue;
mod rng;
mod time;
mod trace;

pub use power::{LedgerError, LoadId, PowerLedger, PowerReport, RailId, RailReport, SleepBatch};
pub use queue::{EventQueue, QueueStats};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{PowerTrace, ScalarTrace, TraceStats};
