//! Time-series capture: the instrument behind the paper's Fig. 6 scope shot.

use crate::SimTime;
use picocube_units::{Joules, Seconds, Watts};

/// A generic scalar-valued time series sampled at irregular instants.
///
/// Samples are interpreted as a zero-order hold: the recorded value holds
/// from its timestamp until the next sample. That matches how the power
/// ledger's piecewise-constant draws evolve.
#[derive(Debug, Clone, Default)]
pub struct ScalarTrace {
    label: String,
    samples: Vec<(SimTime, f64)>,
}

impl ScalarTrace {
    /// Creates an empty trace with a label used in CSV headers.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            samples: Vec::new(),
        }
    }

    /// The trace label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a sample. Out-of-order timestamps are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded sample.
    pub fn record(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t >= last, "trace samples must be recorded in time order");
        }
        // Zero-order-hold run-length compression: when the previous two
        // samples already hold `value`, the middle one carries no
        // information — the run is fully described by its first point and
        // this new endpoint. Drop the redundant endpoint and append,
        // rather than rewriting its timestamp in place: every retained
        // `(t, v)` pair is then one that was actually recorded, and a
        // run's leading edge (its first sample) is never touched.
        if let &[.., (_, a), (_, b)] = self.samples.as_slice() {
            if a == value && b == value {
                self.samples.pop();
            }
        }
        self.samples.push((t, value));
    }

    /// The recorded samples in time order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Value at time `t` under the zero-order-hold interpretation, or `None`
    /// before the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.samples.binary_search_by(|&(st, _)| st.cmp(&t)) {
            // Multiple samples can share a timestamp (an instantaneous
            // step); the last one wins.
            Ok(i) => self
                .samples
                .iter()
                .skip(i)
                .take_while(|&&(st, _)| st == t)
                .last()
                .map(|&(_, v)| v),
            Err(0) => None,
            Err(i) => self.samples.get(i - 1).map(|&(_, v)| v),
        }
    }

    /// Minimum, maximum, and time-weighted mean over the recorded span.
    /// Returns `None` for traces with fewer than one sample.
    pub fn stats(&self) -> Option<TraceStats> {
        let (&(t0, _), &(t_end, _)) = (self.samples.first()?, self.samples.last()?);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut weighted = 0.0;
        for (&(ta, va), &(tb, _)) in self.samples.iter().zip(self.samples.iter().skip(1)) {
            min = min.min(va);
            max = max.max(va);
            weighted += va * tb.duration_since(ta).as_seconds().value();
        }
        let (_, v_last) = *self.samples.last()?;
        min = min.min(v_last);
        max = max.max(v_last);
        let span = t_end.duration_since(t0).as_seconds().value();
        let mean = if span > 0.0 { weighted / span } else { v_last };
        Some(TraceStats {
            min,
            max,
            mean,
            span: Seconds::new(span),
        })
    }

    /// Serializes the trace as two-column CSV (`time_s,<label>`).
    pub fn to_csv(&self) -> String {
        let mut out = format!("time_s,{}\n", self.label);
        for &(t, v) in &self.samples {
            out.push_str(&format!("{:.9},{:.9e}\n", t.as_seconds().value(), v));
        }
        out
    }

    /// Resamples onto a uniform grid of `n` points across the recorded span
    /// (zero-order hold). Useful for plotting Fig. 6-style profiles.
    pub fn resample(&self, n: usize) -> Vec<(Seconds, f64)> {
        let (Some(&(first, _)), Some(&(last, _))) = (self.samples.first(), self.samples.last())
        else {
            return Vec::new();
        };
        if n == 0 {
            return Vec::new();
        }
        let t0 = first.as_nanos();
        let t1 = last.as_nanos();
        (0..n)
            .map(|i| {
                let frac = if n == 1 {
                    0.0
                } else {
                    i as f64 / (n - 1) as f64
                };
                let t = SimTime::from_nanos(t0 + ((t1 - t0) as f64 * frac) as u64);
                (t.as_seconds(), self.value_at(t).unwrap_or(0.0))
            })
            .collect()
    }
}

/// Summary statistics of a [`ScalarTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Time-weighted mean over the span.
    pub mean: f64,
    /// Duration between the first and last samples.
    pub span: Seconds,
}

/// A power-vs-time trace: a [`ScalarTrace`] with watt semantics plus energy
/// integration, the digital twin of the oscilloscope capture in Fig. 6.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    inner: ScalarTrace,
}

impl PowerTrace {
    /// Creates an empty power trace.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            inner: ScalarTrace::new(label),
        }
    }

    /// Records the instantaneous total power at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded sample.
    pub fn record(&mut self, t: SimTime, power: Watts) {
        self.inner.record(t, power.value());
    }

    /// Power at `t` (zero-order hold).
    pub fn power_at(&self, t: SimTime) -> Option<Watts> {
        self.inner.value_at(t).map(Watts::new)
    }

    /// Energy under the trace between its first and last samples.
    pub fn energy(&self) -> Joules {
        self.inner
            .stats()
            .map(|s| Watts::new(s.mean) * s.span)
            .unwrap_or(Joules::ZERO)
    }

    /// Time-weighted average power over the span.
    pub fn average(&self) -> Watts {
        Watts::new(self.inner.stats().map(|s| s.mean).unwrap_or(0.0))
    }

    /// Peak recorded power.
    pub fn peak(&self) -> Watts {
        Watts::new(self.inner.stats().map(|s| s.max).unwrap_or(0.0))
    }

    /// Access to the underlying scalar trace (samples, CSV, resampling).
    pub fn as_scalar(&self) -> &ScalarTrace {
        &self.inner
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_order_hold_lookup() {
        let mut tr = ScalarTrace::new("x");
        tr.record(SimTime::from_secs(1), 10.0);
        tr.record(SimTime::from_secs(2), 20.0);
        assert_eq!(tr.value_at(SimTime::ZERO), None);
        assert_eq!(tr.value_at(SimTime::from_secs(1)), Some(10.0));
        assert_eq!(tr.value_at(SimTime::from_millis(1500)), Some(10.0));
        assert_eq!(tr.value_at(SimTime::from_secs(3)), Some(20.0));
    }

    #[test]
    fn step_at_same_instant_takes_last_value() {
        let mut tr = ScalarTrace::new("x");
        tr.record(SimTime::from_secs(1), 1.0);
        tr.record(SimTime::from_secs(1), 2.0);
        assert_eq!(tr.value_at(SimTime::from_secs(1)), Some(2.0));
    }

    #[test]
    fn stats_time_weighted_mean() {
        let mut tr = ScalarTrace::new("p");
        tr.record(SimTime::ZERO, 1.0);
        tr.record(SimTime::from_secs(9), 11.0); // 1.0 held for 9 s
        tr.record(SimTime::from_secs(10), 11.0); // 11.0 held for 1 s
        let s = tr.stats().unwrap();
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 11.0);
    }

    #[test]
    fn power_trace_energy_and_average() {
        let mut p = PowerTrace::new("node");
        p.record(SimTime::ZERO, Watts::from_micro(1.0));
        p.record(SimTime::from_millis(14), Watts::from_milli(2.0)); // burst
        p.record(SimTime::from_millis(28), Watts::from_micro(1.0));
        p.record(SimTime::from_secs(6), Watts::from_micro(1.0));
        let avg = p.average();
        // 1µW for ~5.986 s + 2mW for 14 ms over 6 s ≈ 5.66 µW
        assert!(avg > Watts::from_micro(5.0) && avg < Watts::from_micro(6.0));
        assert!((p.energy().value() - avg.value() * 6.0).abs() < 1e-12);
        assert_eq!(p.peak(), Watts::from_milli(2.0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_panics() {
        let mut tr = ScalarTrace::new("x");
        tr.record(SimTime::from_secs(2), 1.0);
        tr.record(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn run_length_compression_keeps_edges() {
        let mut tr = ScalarTrace::new("x");
        tr.record(SimTime::from_secs(0), 5.0);
        tr.record(SimTime::from_secs(1), 5.0);
        tr.record(SimTime::from_secs(2), 5.0); // collapses into previous
        tr.record(SimTime::from_secs(3), 5.0);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.value_at(SimTime::from_secs(3)), Some(5.0));
        tr.record(SimTime::from_secs(4), 7.0); // edge must survive
        assert_eq!(tr.value_at(SimTime::from_millis(3_500)), Some(5.0));
        assert_eq!(tr.value_at(SimTime::from_secs(4)), Some(7.0));
    }

    #[test]
    fn three_equal_samples_then_step_preserve_hold() {
        // Regression: compaction across a run must not disturb the
        // zero-order hold on either side of the step that ends it.
        let mut tr = ScalarTrace::new("x");
        tr.record(SimTime::from_secs(0), 5.0);
        tr.record(SimTime::from_secs(1), 5.0);
        tr.record(SimTime::from_secs(2), 5.0);
        tr.record(SimTime::from_secs(3), 8.0);
        // The run keeps its leading edge and latest endpoint only.
        assert_eq!(
            tr.samples(),
            &[
                (SimTime::from_secs(0), 5.0),
                (SimTime::from_secs(2), 5.0),
                (SimTime::from_secs(3), 8.0),
            ]
        );
        for ms in [0u64, 500, 1_000, 1_500, 2_000, 2_500, 2_999] {
            assert_eq!(
                tr.value_at(SimTime::from_millis(ms)),
                Some(5.0),
                "at {ms} ms"
            );
        }
        assert_eq!(tr.value_at(SimTime::from_secs(3)), Some(8.0));
        let s = tr.stats().unwrap();
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 8.0);
        assert!(
            (s.mean - 5.0).abs() < 1e-12,
            "5.0 held for the whole span, mean {}",
            s.mean
        );
        assert_eq!(s.span, Seconds::new(3.0));
    }

    #[test]
    fn compaction_is_observationally_equivalent_to_uncompacted() {
        // Differential property: against an uncompacted reference trace,
        // value_at and stats must agree for random sequences including
        // equal-value runs and same-instant steps.
        let mut rng = crate::SimRng::seed_from(0xC0FFEE);
        for case in 0..2_000 {
            let mut tr = ScalarTrace::new("x");
            let mut raw_samples: Vec<(SimTime, f64)> = Vec::new();
            let mut t = 0u64;
            for _ in 0..rng.index(12) + 1 {
                t += rng.index(3) as u64; // 0 keeps the same instant: a step
                let v = rng.index(3) as f64;
                tr.record(SimTime::from_nanos(t), v);
                raw_samples.push((SimTime::from_nanos(t), v));
            }
            for probe in 0..=(2 * t + 2) {
                let probe = SimTime::from_nanos(probe);
                assert_eq!(
                    tr.value_at(probe),
                    reference_value_at(&raw_samples, probe),
                    "case {case} at {probe}"
                );
            }
            let s = tr.stats().unwrap();
            let r = reference_stats(&raw_samples);
            assert_eq!(s.min, r.0, "case {case}");
            assert_eq!(s.max, r.1, "case {case}");
            assert!(
                (s.mean - r.2).abs() < 1e-9,
                "case {case}: {} vs {}",
                s.mean,
                r.2
            );
        }
    }

    // The reference implementations deliberately repeat the ZOH definition
    // over the *uncompacted* sample list.
    fn reference_value_at(samples: &[(SimTime, f64)], t: SimTime) -> Option<f64> {
        samples
            .iter()
            .rev()
            .find(|&&(st, _)| st <= t)
            .map(|&(_, v)| v)
    }

    fn reference_stats(samples: &[(SimTime, f64)]) -> (f64, f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut weighted = 0.0;
        for w in samples.windows(2) {
            let (ta, va) = w[0];
            let (tb, _) = w[1];
            min = min.min(va);
            max = max.max(va);
            weighted += va * tb.duration_since(ta).as_seconds().value();
        }
        let (_, v_last) = *samples.last().unwrap();
        min = min.min(v_last);
        max = max.max(v_last);
        let span = samples
            .last()
            .unwrap()
            .0
            .duration_since(samples[0].0)
            .as_seconds()
            .value();
        let mean = if span > 0.0 { weighted / span } else { v_last };
        (min, max, mean)
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = ScalarTrace::new("power_w");
        tr.record(SimTime::ZERO, 1e-6);
        let csv = tr.to_csv();
        assert!(csv.starts_with("time_s,power_w\n"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn resample_uniform_grid() {
        let mut tr = ScalarTrace::new("x");
        tr.record(SimTime::ZERO, 0.0);
        tr.record(SimTime::from_secs(10), 10.0);
        let pts = tr.resample(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].1, 0.0);
        // Held at 0.0 until the final instant.
        assert_eq!(pts[5].1, 0.0);
        assert_eq!(pts[10].1, 10.0);
    }

    #[test]
    fn empty_trace_behaviour() {
        let tr = ScalarTrace::new("x");
        assert!(tr.is_empty());
        assert!(tr.stats().is_none());
        assert!(tr.resample(5).is_empty());
        let p = PowerTrace::new("p");
        assert_eq!(p.average(), Watts::ZERO);
        assert_eq!(p.energy(), Joules::ZERO);
    }
}
