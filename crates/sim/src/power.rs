//! Rail-by-rail, load-by-load power accounting.
//!
//! The PicoCube has three supply rails (2.1–3.6 V controller/sensor, 1.0 V
//! radio digital, 0.65 V radio RF) plus the 1.2 V battery bus. Every
//! component model registers one or more *loads* on a rail and publishes its
//! instantaneous current draw whenever it changes state. The ledger treats
//! draws as piecewise-constant between updates and integrates exact per-load
//! energies, which is what the paper's Fig. 6 profile and §6 power budget
//! measure on the bench.

use crate::{SimDuration, SimTime};
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::{Amps, Joules, Seconds, Volts, Watts};

/// A [`PowerLedger`] lookup was given a handle the ledger never issued
/// (a `RailId`/`LoadId` from a different ledger, or a corrupted one).
///
/// Handles are only obtainable from [`PowerLedger::add_rail`] and
/// [`PowerLedger::register_load`] and loads are never removed, so within
/// one ledger every issued handle stays valid for the ledger's lifetime;
/// this error is always a wiring bug in the caller, never a model
/// outcome. It is still surfaced as a `Result` (rather than a panic) so
/// a single mis-wired node degrades instead of aborting a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerError {
    /// The `RailId` does not name a rail of this ledger.
    UnknownRail,
    /// The `LoadId` does not name a load of this ledger.
    UnknownLoad,
}

impl core::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownRail => write!(f, "rail handle was not issued by this power ledger"),
            Self::UnknownLoad => write!(f, "load handle was not issued by this power ledger"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Identifies a supply rail registered with a [`PowerLedger`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RailId(usize);

/// Identifies a load registered on a rail.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LoadId {
    rail: usize,
    load: usize,
}

impl LoadId {
    /// The rail this load draws from.
    pub fn rail(self) -> RailId {
        RailId(self.rail)
    }
}

#[derive(Debug, Clone)]
struct Load {
    name: String,
    current: Amps,
    energy: Joules,
}

#[derive(Debug, Clone)]
struct Rail {
    name: String,
    voltage: Volts,
    loads: Vec<Load>,
}

/// Integrating energy meter over a set of named rails and loads.
///
/// # Examples
///
/// ```
/// use picocube_sim::{PowerLedger, SimTime};
/// use picocube_units::{Volts, Amps, Watts};
///
/// # fn main() -> Result<(), picocube_sim::LedgerError> {
/// let mut ledger = PowerLedger::new();
/// let vdd = ledger.add_rail("VDD", Volts::new(3.0));
/// let mcu = ledger.register_load(vdd, "MSP430")?;
///
/// ledger.set_load_current(mcu, Amps::from_micro(0.5))?; // deep sleep
/// ledger.advance_to(SimTime::from_secs(6));
/// assert!((ledger.total_energy().micro() - 9.0).abs() < 1e-9); // 3V*0.5µA*6s
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PowerLedger {
    rails: Vec<Rail>,
    now: SimTime,
    /// Grand total accumulated alongside the per-load integrals; the
    /// debug-build sanitizer cross-checks it against their sum.
    integrated_total: Joules,
    /// Registration-ordered `(rail, load)` indices of loads currently
    /// drawing nonzero current, rebuilt lazily after any current change.
    /// Purely an iteration shortcut for [`advance_to`](Self::advance_to):
    /// the visit order matches a full scan and zero-current loads
    /// contribute exactly `+0.0`, so the float accumulation sequence is
    /// bit-identical to walking every load.
    hot: Vec<(usize, usize)>,
    hot_dirty: bool,
    /// Scratch reused by [`advance_deltas`](Self::advance_deltas): the
    /// per-hot-load × per-cycle-count energy-delta table and the per-load
    /// energy accumulators. Pure caches — their contents never outlive one
    /// call.
    scratch_table: Vec<f64>,
    scratch_energy: Vec<f64>,
    scratch_watts: Vec<Watts>,
    /// Rows currently built in `scratch_table` (cycle counts `0..rows`).
    table_rows: usize,
    /// `draw_gen` value the table was built at; a mismatch means some
    /// voltage, current, or load registration happened since.
    table_gen: u64,
    /// Bumped on every voltage/current/registration change. Purely a
    /// cache-invalidation counter — never part of any result.
    draw_gen: u64,
}

impl PowerLedger {
    /// Creates an empty ledger at time zero.
    pub fn new() -> Self {
        Self {
            rails: Vec::new(),
            now: SimTime::ZERO,
            integrated_total: Joules::ZERO,
            hot: Vec::new(),
            hot_dirty: true,
            scratch_table: Vec::new(),
            scratch_energy: Vec::new(),
            scratch_watts: Vec::new(),
            table_rows: 0,
            table_gen: 0,
            draw_gen: 1,
        }
    }

    /// Registers a supply rail at the given nominal voltage.
    pub fn add_rail(&mut self, name: impl Into<String>, voltage: Volts) -> RailId {
        self.rails.push(Rail {
            name: name.into(),
            voltage,
            loads: Vec::new(),
        });
        RailId(self.rails.len() - 1)
    }

    /// Looks up a rail by handle.
    fn rail_slot(&self, rail: RailId) -> Result<&Rail, LedgerError> {
        self.rails.get(rail.0).ok_or(LedgerError::UnknownRail)
    }

    /// Looks up a rail by handle, mutably.
    fn rail_slot_mut(&mut self, rail: RailId) -> Result<&mut Rail, LedgerError> {
        self.rails.get_mut(rail.0).ok_or(LedgerError::UnknownRail)
    }

    /// Looks up a load by handle.
    fn load_slot(&self, load: LoadId) -> Result<&Load, LedgerError> {
        self.rails
            .get(load.rail)
            .and_then(|r| r.loads.get(load.load))
            .ok_or(LedgerError::UnknownLoad)
    }

    /// Looks up a load by handle, mutably.
    fn load_slot_mut(&mut self, load: LoadId) -> Result<&mut Load, LedgerError> {
        self.rails
            .get_mut(load.rail)
            .and_then(|r| r.loads.get_mut(load.load))
            .ok_or(LedgerError::UnknownLoad)
    }

    /// Registers a named load on `rail`, initially drawing zero current.
    ///
    /// Fails if `rail` was not issued by this ledger.
    pub fn register_load(
        &mut self,
        rail: RailId,
        name: impl Into<String>,
    ) -> Result<LoadId, LedgerError> {
        let r = self.rail_slot_mut(rail)?;
        r.loads.push(Load {
            name: name.into(),
            current: Amps::ZERO,
            energy: Joules::ZERO,
        });
        let load = r.loads.len() - 1;
        self.hot_dirty = true;
        self.draw_gen = self.draw_gen.wrapping_add(1);
        Ok(LoadId { rail: rail.0, load })
    }

    /// Current simulation time of the ledger.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Updates the instantaneous current drawn by `load`.
    ///
    /// The previous draw is assumed to have held since the last
    /// [`advance_to`](Self::advance_to); call `advance_to` *before* changing
    /// currents at an event boundary.
    pub fn set_load_current(&mut self, load: LoadId, current: Amps) -> Result<(), LedgerError> {
        self.load_slot_mut(load)?.current = current;
        self.hot_dirty = true;
        self.draw_gen = self.draw_gen.wrapping_add(1);
        Ok(())
    }

    /// Reads back the instantaneous current drawn by `load`.
    pub fn load_current(&self, load: LoadId) -> Result<Amps, LedgerError> {
        Ok(self.load_slot(load)?.current)
    }

    /// Updates the rail voltage (e.g. battery sag). Takes effect for energy
    /// integrated after the call.
    pub fn set_rail_voltage(&mut self, rail: RailId, voltage: Volts) -> Result<(), LedgerError> {
        self.rail_slot_mut(rail)?.voltage = voltage;
        self.draw_gen = self.draw_gen.wrapping_add(1);
        Ok(())
    }

    /// The present voltage of `rail`.
    pub fn rail_voltage(&self, rail: RailId) -> Result<Volts, LedgerError> {
        Ok(self.rail_slot(rail)?.voltage)
    }

    /// Instantaneous power drawn from `rail` (sum over its loads).
    pub fn rail_power(&self, rail: RailId) -> Result<Watts, LedgerError> {
        let r = self.rail_slot(rail)?;
        let total: Amps = r.loads.iter().map(|l| l.current).sum();
        Ok(r.voltage * total)
    }

    /// Instantaneous total power across all rails.
    pub fn total_power(&self) -> Watts {
        // Same per-rail visit and accumulation order as summing
        // `rail_power` over every issued handle.
        self.rails
            .iter()
            .map(|r| {
                let total: Amps = r.loads.iter().map(|l| l.current).sum();
                r.voltage * total
            })
            .sum()
    }

    /// Integrates all loads forward to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the ledger's current time.
    pub fn advance_to(&mut self, t: SimTime) {
        let dt: Seconds = t.duration_since(self.now).as_seconds();
        if dt.value() > 0.0 {
            // Skipping zero-current loads is bit-invisible: each would
            // contribute exactly +0.0, and `x + 0.0 == x` bit-for-bit
            // (energies only ever accumulate non-negative deltas, so no
            // -0.0 exists to be normalized). Most of a node's loads are
            // gated off at any instant, so the hot list is short.
            if self.hot_dirty {
                self.rebuild_hot();
            }
            for &(ri, li) in &self.hot {
                // The indices were rebuilt above from the live rails, so
                // the lookups cannot miss; `continue` keeps this panic-free
                // for the lint without costing the hot path anything.
                let Some(rail) = self.rails.get_mut(ri) else {
                    continue;
                };
                let voltage = rail.voltage;
                let Some(load) = rail.loads.get_mut(li) else {
                    continue;
                };
                let delta = voltage * load.current * dt;
                load.energy += delta;
                self.integrated_total += delta;
            }
        }
        self.now = t;
        self.debug_check_balance();
    }

    /// Rebuilds the hot list: registration-ordered indices of loads with
    /// nonzero current.
    fn rebuild_hot(&mut self) {
        self.hot.clear();
        for (ri, rail) in self.rails.iter().enumerate() {
            for (li, load) in rail.loads.iter().enumerate() {
                if load.current.value() != 0.0 {
                    self.hot.push((ri, li));
                }
            }
        }
        self.hot_dirty = false;
    }

    /// Integrates a run of per-instruction advances in one pass,
    /// bit-identically to calling [`advance_to`](Self::advance_to) once
    /// after each instruction with that instruction's cycle cost
    /// (1 µs per cycle).
    ///
    /// Voltages and currents cannot change between instructions of a run
    /// (nothing else executes), so each load contributes
    /// `watts * dt(cycles)` per instruction, where `watts = voltage *
    /// current` is exactly the first product `advance_to`'s left-to-right
    /// `voltage * current * dt` forms. Instruction costs are tiny integers
    /// (1–6 cycles), so each product takes only a handful of distinct
    /// values per load: they are computed once into a table and replayed,
    /// which preserves the exact f64 value of every per-instruction add —
    /// same operands, same operation, same accumulation order.
    pub fn advance_deltas(&mut self, deltas: &[u32]) {
        let Some(max) = deltas.iter().copied().max() else {
            return;
        };
        let nanos: u64 = deltas.iter().map(|&d| u64::from(d) * 1_000).sum();
        let end = SimTime::from_nanos(self.now.as_nanos() + nanos);
        if self.hot_dirty {
            self.rebuild_hot();
        }
        let stride = max as usize + 1;
        let mut table = core::mem::take(&mut self.scratch_table);
        let mut energy = core::mem::take(&mut self.scratch_energy);
        let mut watts_row = core::mem::take(&mut self.scratch_watts);
        energy.clear();
        for &(ri, li) in &self.hot {
            let Some(rail) = self.rails.get(ri) else {
                continue;
            };
            let Some(load) = rail.loads.get(li) else {
                continue;
            };
            energy.push(load.energy.value());
        }
        // The product table is a pure function of the hot loads' watts, so
        // it survives across calls until some draw changes (`draw_gen`
        // bumps) or a run needs more rows than are built. Rebuilding with
        // the same watts would reproduce the same bits; skipping it only
        // skips work. A floor of 8 rows covers every datasheet cycle cost
        // so stride growth alone almost never forces a rebuild.
        if self.table_gen != self.draw_gen || stride > self.table_rows {
            table.clear();
            watts_row.clear();
            for &(ri, li) in &self.hot {
                let Some(rail) = self.rails.get(ri) else {
                    continue;
                };
                let Some(load) = rail.loads.get(li) else {
                    continue;
                };
                watts_row.push(rail.voltage * load.current);
            }
            // Delta-major layout: each cycle count's per-load products sit
            // contiguously, so the replay walks one short row per
            // instruction.
            let rows = stride.max(8);
            for c in 0..rows {
                let dt = SimDuration::from_micros(c as u64).as_seconds();
                for &watts in &watts_row {
                    table.push((watts * dt).value());
                }
            }
            self.table_rows = rows;
            self.table_gen = self.draw_gen;
        }
        let n = energy.len();
        let mut total = self.integrated_total.value();
        for &d in deltas {
            if d == 0 {
                continue; // advance_to's `dt > 0` gate
            }
            // In-bounds by construction: `d <= max` so the slice ends at
            // or before `stride * n`, the table's length.
            let base = d as usize * n;
            let Some(row) = table.get(base..base + n) else {
                continue;
            };
            for (e, &delta) in energy.iter_mut().zip(row) {
                *e += delta;
                total += delta;
            }
        }
        for (&(ri, li), &e) in self.hot.iter().zip(&energy) {
            if let Some(load) = self.rails.get_mut(ri).and_then(|r| r.loads.get_mut(li)) {
                load.energy = Joules::new(e);
            }
        }
        self.integrated_total = Joules::new(total);
        self.now = end;
        self.scratch_table = table;
        self.scratch_energy = energy;
        self.scratch_watts = watts_row;
        self.debug_check_balance();
    }

    /// Stages this ledger's pending advance to `t` into a cross-ledger
    /// [`SleepBatch`] pass, returning the span handle to later
    /// [`commit_sleep`](Self::commit_sleep) with.
    ///
    /// Bit-identical to [`advance_to`](Self::advance_to): the staged rows
    /// are exactly the hot-list products `rail.voltage * load.current` (the
    /// first multiply `advance_to` forms) and the span's `dt` is the same
    /// `duration_since(now).as_seconds()` value, so the batch's
    /// `watts * dt` / `energy += delta` replay performs the identical f64
    /// operations in the identical order. Grouping many ledgers into one
    /// pass adds no cross-ledger arithmetic — each span integrates on its
    /// own accumulators.
    ///
    /// The ledger's clock does **not** move until the commit; between stage
    /// and commit the ledger must not be touched (currents, voltages, or
    /// further advances), which the commit's debug assertions police.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the ledger's current time (same
    /// contract as `advance_to`).
    pub fn stage_sleep(&mut self, t: SimTime, batch: &mut SleepBatch) -> usize {
        debug_assert!(
            !batch.integrated,
            "stage_sleep after integrate: clear the batch between passes"
        );
        let dt: Seconds = t.duration_since(self.now).as_seconds();
        let first = batch.watts.len();
        if dt.value() > 0.0 {
            if self.hot_dirty {
                self.rebuild_hot();
            }
            for &(ri, li) in &self.hot {
                let Some(rail) = self.rails.get(ri) else {
                    continue;
                };
                let Some(load) = rail.loads.get(li) else {
                    continue;
                };
                batch.watts.push((rail.voltage * load.current).value());
                batch.energy.push(load.energy.value());
            }
        }
        batch.spans.push(SleepSpan {
            first,
            rows: batch.watts.len() - first,
            dt: dt.value(),
            end: t,
            total: self.integrated_total.value(),
        });
        batch.spans.len() - 1
    }

    /// Writes an integrated [`SleepBatch`] span back into this ledger:
    /// per-load energies, the grand total, and the clock. Must be called on
    /// the same ledger that staged `span`, with the hot list untouched
    /// since; a stale or foreign handle is a driver bug and trips the
    /// sanitizer (release builds write back whatever was staged).
    pub fn commit_sleep(&mut self, batch: &SleepBatch, span: usize) {
        let Some(span) = batch.spans.get(span) else {
            debug_assert!(false, "commit_sleep: span handle out of range");
            return;
        };
        debug_assert!(
            batch.integrated,
            "commit_sleep before SleepBatch::integrate"
        );
        if span.rows > 0 {
            debug_assert!(
                !self.hot_dirty && self.hot.len() == span.rows,
                "ledger mutated between stage_sleep and commit_sleep"
            );
            let energies = batch.energy.iter().skip(span.first).take(span.rows);
            for (&(ri, li), &e) in self.hot.iter().zip(energies) {
                if let Some(load) = self.rails.get_mut(ri).and_then(|r| r.loads.get_mut(li)) {
                    load.energy = Joules::new(e);
                }
            }
        }
        self.integrated_total = Joules::new(span.total);
        self.now = span.end;
        self.debug_check_balance();
    }

    /// Debug-build sanitizer: the per-rail energy integrals must sum to the
    /// independently accumulated grand total. A mismatch means some path
    /// mutated a load's energy without going through
    /// [`advance_to`](Self::advance_to) — a bookkeeping bug in the ledger,
    /// never a legitimate model outcome. Compiled out in release builds.
    fn debug_check_balance(&self) {
        if cfg!(debug_assertions) {
            let per_load: f64 = self
                .rails
                .iter()
                .flat_map(|r| r.loads.iter())
                .map(|l| l.energy.value())
                .sum();
            let total = self.integrated_total.value();
            // Summation order differs between the two accumulators, so allow
            // a relative float tolerance.
            let tolerance = 1e-9 * per_load.abs().max(total.abs()).max(1e-12);
            debug_assert!(
                (per_load - total).abs() <= tolerance,
                "power ledger unbalanced: per-load sum {per_load} J != integrated total {total} J"
            );
        }
    }

    /// Test-only fault injection: bumps one load's integral without touching
    /// the grand total, unbalancing the ledger for sanitizer regression
    /// tests.
    #[cfg(test)]
    fn unbalance_load_energy(&mut self, load: LoadId, delta: Joules) {
        if let Some(l) = self
            .rails
            .get_mut(load.rail)
            .and_then(|r| r.loads.get_mut(load.load))
        {
            l.energy += delta;
        }
    }

    /// Integrates all loads forward by `dt`.
    pub fn advance_by(&mut self, dt: SimDuration) {
        self.advance_to(self.now + dt);
    }

    /// Total energy consumed from `rail` so far.
    pub fn rail_energy(&self, rail: RailId) -> Result<Joules, LedgerError> {
        Ok(self.rail_slot(rail)?.loads.iter().map(|l| l.energy).sum())
    }

    /// Energy consumed by one load so far.
    pub fn load_energy(&self, load: LoadId) -> Result<Joules, LedgerError> {
        Ok(self.load_slot(load)?.energy)
    }

    /// Total energy consumed across all rails so far.
    pub fn total_energy(&self) -> Joules {
        // Same per-rail visit and accumulation order as summing
        // `rail_energy` over every issued handle.
        self.rails
            .iter()
            .map(|r| r.loads.iter().map(|l| l.energy).sum::<Joules>())
            .sum()
    }

    /// Average power since simulation start (total energy / elapsed time).
    /// Returns zero before any time has elapsed.
    pub fn average_power(&self) -> Watts {
        let t = self.now.as_seconds();
        if t.value() <= 0.0 {
            Watts::ZERO
        } else {
            self.total_energy() / t
        }
    }

    /// Exports the ledger's accumulated energy accounting into a metric
    /// registry: one accumulating gauge per rail
    /// (`power.rail.<rail>.uj`), one per load
    /// (`power.load.<rail>.<load>.uj`) and the grand total
    /// (`power.total.uj`), all in microjoules. Gauges merge by addition,
    /// so fleet-merged registries carry per-rail totals across nodes.
    pub fn export_metrics(&self, metrics: &mut picocube_telemetry::Metrics) {
        use picocube_telemetry::keys;
        for rail in &self.rails {
            metrics.add(
                &keys::power_rail_uj(&rail.name),
                rail.loads.iter().map(|l| l.energy.micro()).sum(),
            );
            for load in &rail.loads {
                metrics.add(
                    &keys::power_load_uj(&rail.name, &load.name),
                    load.energy.micro(),
                );
            }
        }
        metrics.add(keys::POWER_TOTAL_UJ, self.total_energy().micro());
    }

    /// Produces a structured per-rail, per-load energy report.
    pub fn report(&self) -> PowerReport {
        PowerReport {
            elapsed: self.now.as_seconds(),
            total_energy: self.total_energy(),
            average_power: self.average_power(),
            rails: self
                .rails
                .iter()
                .map(|r| RailReport {
                    name: r.name.clone(),
                    voltage: r.voltage,
                    energy: r.loads.iter().map(|l| l.energy).sum(),
                    loads: r.loads.iter().map(|l| (l.name.clone(), l.energy)).collect(),
                })
                .collect(),
        }
    }
}

impl Default for PowerLedger {
    fn default() -> Self {
        Self::new()
    }
}

/// One ledger's staged sleep span inside a [`SleepBatch`].
#[derive(Debug, Clone, Copy)]
struct SleepSpan {
    /// First row of this span in the batch's flat arrays.
    first: usize,
    /// Hot-load rows staged (zero when the span's `dt` was zero).
    rows: usize,
    /// Elapsed seconds, exactly as `advance_to` would have formed it.
    dt: f64,
    /// The ledger clock after the commit.
    end: SimTime,
    /// The ledger's grand total: staged value before
    /// [`SleepBatch::integrate`], final value after.
    total: f64,
}

/// Struct-of-arrays batch integrator for a fleet's sleep path.
///
/// Many ledgers stage their pending sleep advance
/// ([`PowerLedger::stage_sleep`]) into one pair of flat `watts`/`energy`
/// arrays; [`integrate`](Self::integrate) then runs the whole group's
/// energy accumulation as a single tight loop over those arrays, and each
/// ledger copies its span back with [`PowerLedger::commit_sleep`]. Every
/// span's arithmetic is bit-identical to that ledger calling
/// [`PowerLedger::advance_to`] by itself — same operand values, same
/// operations, same accumulation order, no cross-ledger math — so batching
/// is purely a memory-layout optimization: one cache-friendly pass instead
/// of a pointer-chasing walk per node.
#[derive(Debug, Default)]
pub struct SleepBatch {
    watts: Vec<f64>,
    energy: Vec<f64>,
    spans: Vec<SleepSpan>,
    /// Set once [`integrate`](Self::integrate) has run; staging is only
    /// legal before, committing only after.
    integrated: bool,
}

impl SleepBatch {
    /// Creates an empty batch. Reuse one per worker: `clear` keeps the
    /// allocations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all staged spans, keeping capacity for the next round.
    pub fn clear(&mut self) {
        self.watts.clear();
        self.energy.clear();
        self.spans.clear();
        self.integrated = false;
    }

    /// Number of spans staged this round.
    pub fn spans(&self) -> usize {
        self.spans.len()
    }

    /// The grouped integration pass: for every staged span, accumulates
    /// `energy += watts * dt` per row and folds the same deltas into the
    /// span's grand total — the exact f64 sequence `advance_to` performs
    /// per ledger, laid out as one linear sweep.
    pub fn integrate(&mut self) {
        for span in &mut self.spans {
            let mut total = span.total;
            let rows = self
                .energy
                .iter_mut()
                .skip(span.first)
                .take(span.rows)
                .zip(self.watts.iter().skip(span.first));
            for (e, &w) in rows {
                let delta = w * span.dt;
                *e += delta;
                total += delta;
            }
            span.total = total;
        }
        self.integrated = true;
    }
}

/// Per-rail slice of a [`PowerReport`].
#[derive(Debug, Clone)]
pub struct RailReport {
    /// Rail name as registered.
    pub name: String,
    /// Rail voltage at report time.
    pub voltage: Volts,
    /// Total energy drawn from this rail.
    pub energy: Joules,
    /// `(load name, energy)` pairs in registration order.
    pub loads: Vec<(String, Joules)>,
}

/// Snapshot of a [`PowerLedger`]'s accumulated energy accounting.
#[derive(Debug, Clone)]
pub struct PowerReport {
    /// Simulated time covered by the report.
    pub elapsed: Seconds,
    /// Total energy drawn across all rails.
    pub total_energy: Joules,
    /// `total_energy / elapsed`.
    pub average_power: Watts,
    /// Per-rail breakdowns.
    pub rails: Vec<RailReport>,
}

impl core::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "power report: {:.3} over {:.3} (avg {:.3})",
            self.total_energy, self.elapsed, self.average_power
        )?;
        for rail in &self.rails {
            writeln!(
                f,
                "  rail {:<18} {:>7.3}: {:.6}",
                rail.name, rail.voltage, rail.energy
            )?;
            for (name, energy) in &rail.loads {
                writeln!(f, "    {:<20} {:.9}", name, energy)?;
            }
        }
        Ok(())
    }
}

impl ToJson for RailReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("voltage".into(), self.voltage.to_json()),
            ("energy".into(), self.energy.to_json()),
            ("loads".into(), self.loads.to_json()),
        ])
    }
}

impl FromJson for RailReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: FromJson::from_json(field(value, "name")?)?,
            voltage: FromJson::from_json(field(value, "voltage")?)?,
            energy: FromJson::from_json(field(value, "energy")?)?,
            loads: FromJson::from_json(field(value, "loads")?)?,
        })
    }
}

impl ToJson for PowerReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("elapsed".into(), self.elapsed.to_json()),
            ("total_energy".into(), self.total_energy.to_json()),
            ("average_power".into(), self.average_power.to_json()),
            ("rails".into(), self.rails.to_json()),
        ])
    }
}

impl FromJson for PowerReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            elapsed: FromJson::from_json(field(value, "elapsed")?)?,
            total_energy: FromJson::from_json(field(value, "total_energy")?)?,
            average_power: FromJson::from_json(field(value, "average_power")?)?,
            rails: FromJson::from_json(field(value, "rails")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_piecewise_constant_current() {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VBAT", Volts::new(1.2));
        let load = ledger.register_load(rail, "radio").unwrap();

        ledger
            .set_load_current(load, Amps::from_milli(1.0))
            .unwrap();
        ledger.advance_to(SimTime::from_millis(10));
        ledger.set_load_current(load, Amps::ZERO).unwrap();
        ledger.advance_to(SimTime::from_secs(10));

        // 1.2 V * 1 mA * 10 ms = 12 µJ
        assert!((ledger.total_energy().micro() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn per_load_breakdown() {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VDD", Volts::new(2.0));
        let a = ledger.register_load(rail, "a").unwrap();
        let b = ledger.register_load(rail, "b").unwrap();
        ledger.set_load_current(a, Amps::from_micro(1.0)).unwrap();
        ledger.set_load_current(b, Amps::from_micro(3.0)).unwrap();
        ledger.advance_to(SimTime::from_secs(1));
        assert!((ledger.load_energy(a).unwrap().micro() - 2.0).abs() < 1e-9);
        assert!((ledger.load_energy(b).unwrap().micro() - 6.0).abs() < 1e-9);
        assert!((ledger.rail_energy(rail).unwrap().micro() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rail_voltage_change_applies_forward() {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VBAT", Volts::new(1.2));
        let load = ledger.register_load(rail, "mcu").unwrap();
        ledger.set_load_current(load, Amps::new(1.0)).unwrap();
        ledger.advance_to(SimTime::from_secs(1)); // 1.2 J
        ledger.set_rail_voltage(rail, Volts::new(1.0)).unwrap();
        ledger.advance_to(SimTime::from_secs(2)); // +1.0 J
        assert!((ledger.total_energy().value() - 2.2).abs() < 1e-9);
    }

    #[test]
    fn average_power_matches_energy_over_time() {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VDD", Volts::new(3.0));
        let load = ledger.register_load(rail, "x").unwrap();
        ledger
            .set_load_current(load, Amps::from_micro(2.0))
            .unwrap();
        ledger.advance_to(SimTime::from_secs(100));
        assert!((ledger.average_power().micro() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn average_power_is_zero_at_t0() {
        let ledger = PowerLedger::new();
        assert_eq!(ledger.average_power(), Watts::ZERO);
    }

    #[test]
    fn instantaneous_power_sums_rails() {
        let mut ledger = PowerLedger::new();
        let r1 = ledger.add_rail("a", Volts::new(1.0));
        let r2 = ledger.add_rail("b", Volts::new(2.0));
        let l1 = ledger.register_load(r1, "x").unwrap();
        let l2 = ledger.register_load(r2, "y").unwrap();
        ledger.set_load_current(l1, Amps::new(1.0)).unwrap();
        ledger.set_load_current(l2, Amps::new(1.0)).unwrap();
        assert!((ledger.total_power().value() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn advancing_backwards_panics() {
        let mut ledger = PowerLedger::new();
        ledger.advance_to(SimTime::from_secs(2));
        ledger.advance_to(SimTime::from_secs(1));
    }

    /// Builds a small ledger with an irrationally odd operating point so
    /// any deviation from `advance_to`'s float sequence shows up in the
    /// low bits.
    fn odd_ledger(scale: f64) -> (PowerLedger, LoadId, LoadId) {
        let mut ledger = PowerLedger::new();
        let vbat = ledger.add_rail("VBAT", Volts::new(1.217 * scale));
        let vdd = ledger.add_rail("VDD", Volts::new(2.393));
        let a = ledger.register_load(vbat, "a").unwrap();
        let b = ledger.register_load(vdd, "b").unwrap();
        let z = ledger.register_load(vdd, "gated off").unwrap();
        ledger
            .set_load_current(a, Amps::new(1.0e-3 / 3.0 * scale))
            .unwrap();
        ledger.set_load_current(b, Amps::new(7.7e-6 / 9.0)).unwrap();
        ledger.set_load_current(z, Amps::ZERO).unwrap();
        (ledger, a, b)
    }

    #[test]
    fn sleep_batch_matches_advance_to_bit_for_bit() {
        // Three ledgers at different operating points and span lengths,
        // staged into one batch; a clone of each advances alone. Every
        // energy integral, total, and clock must agree exactly — the
        // batch's contract is bit-identity, not tolerance.
        let mut group: Vec<PowerLedger> = (1..=3)
            .map(|k| {
                let (mut l, _, _) = odd_ledger(k as f64);
                l.advance_to(SimTime::from_nanos(12_345 * k));
                l
            })
            .collect();
        let mut solo = group.clone();
        let ends = [
            SimTime::from_nanos(7_777_777),
            SimTime::from_nanos(12_345 * 2), // dt == 0: clock-only commit
            SimTime::from_secs(3),
        ];

        let mut batch = SleepBatch::new();
        let handles: Vec<usize> = group
            .iter_mut()
            .zip(ends)
            .map(|(ledger, end)| ledger.stage_sleep(end, &mut batch))
            .collect();
        batch.integrate();
        for (ledger, span) in group.iter_mut().zip(handles) {
            ledger.commit_sleep(&batch, span);
        }

        for (ledger, end) in solo.iter_mut().zip(ends) {
            ledger.advance_to(end);
        }
        for (batched, alone) in group.iter().zip(&solo) {
            assert_eq!(batched.now(), alone.now());
            assert_eq!(
                batched.total_energy().value().to_bits(),
                alone.total_energy().value().to_bits(),
                "grand totals must be bit-identical"
            );
            let (br, ar) = (batched.report(), alone.report());
            for (b, a) in br.rails.iter().zip(&ar.rails) {
                for ((_, be), (_, ae)) in b.loads.iter().zip(&a.loads) {
                    assert_eq!(be.value().to_bits(), ae.value().to_bits());
                }
            }
        }
    }

    #[test]
    fn sleep_batch_reuse_after_clear() {
        let (mut ledger, _, _) = odd_ledger(1.0);
        let mut solo = ledger.clone();
        let mut batch = SleepBatch::new();
        for round in 1..=4u64 {
            batch.clear();
            let end = SimTime::from_millis(round * 13);
            let span = ledger.stage_sleep(end, &mut batch);
            assert_eq!(batch.spans(), 1);
            batch.integrate();
            ledger.commit_sleep(&batch, span);
            solo.advance_to(end);
            assert_eq!(
                ledger.total_energy().value().to_bits(),
                solo.total_energy().value().to_bits()
            );
        }
    }

    #[test]
    fn export_metrics_breaks_energy_out_per_rail_and_load() {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VBAT", Volts::new(1.0));
        let a = ledger.register_load(rail, "mcu").unwrap();
        let b = ledger.register_load(rail, "radio").unwrap();
        ledger.set_load_current(a, Amps::from_micro(1.0)).unwrap();
        ledger.set_load_current(b, Amps::from_micro(3.0)).unwrap();
        ledger.advance_to(SimTime::from_secs(2));

        let mut metrics = picocube_telemetry::Metrics::new();
        ledger.export_metrics(&mut metrics);
        assert!((metrics.gauge("power.load.VBAT.mcu.uj") - 2.0).abs() < 1e-9);
        assert!((metrics.gauge("power.load.VBAT.radio.uj") - 6.0).abs() < 1e-9);
        assert!((metrics.gauge("power.rail.VBAT.uj") - 8.0).abs() < 1e-9);
        assert!((metrics.gauge("power.total.uj") - 8.0).abs() < 1e-9);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "sanitizer compiles away in release")]
    #[should_panic(expected = "power ledger unbalanced")]
    fn unbalanced_ledger_trips_the_sanitizer() {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VBAT", Volts::new(1.2));
        let load = ledger.register_load(rail, "radio").unwrap();
        ledger
            .set_load_current(load, Amps::from_milli(1.0))
            .unwrap();
        ledger.advance_to(SimTime::from_secs(1));
        // Corrupt one integral behind the ledger's back; the next advance
        // must catch the imbalance.
        ledger.unbalance_load_energy(load, Joules::new(1.0));
        ledger.advance_to(SimTime::from_secs(2));
    }

    #[test]
    fn sanitizer_accepts_a_balanced_ledger() {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VDD", Volts::new(3.0));
        let a = ledger.register_load(rail, "mcu").unwrap();
        let b = ledger.register_load(rail, "sensor").unwrap();
        for step in 1..=1_000u64 {
            ledger
                .set_load_current(a, Amps::from_micro(step as f64))
                .unwrap();
            ledger
                .set_load_current(b, Amps::from_micro(1_000.0 - step as f64))
                .unwrap();
            ledger.advance_to(SimTime::from_millis(step));
        }
        // 1 mA aggregate at 3 V for 1 s = 3 mJ; the two accumulators agree.
        assert!((ledger.total_energy().value() - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn foreign_handles_are_rejected_not_panicked() {
        // Handles minted by one ledger must be refused (not panic) when
        // presented to another, emptier ledger.
        let mut big = PowerLedger::new();
        let r0 = big.add_rail("a", Volts::new(1.0));
        let r1 = big.add_rail("b", Volts::new(1.0));
        let l0 = big.register_load(r0, "w").unwrap();
        let l1 = big.register_load(r1, "x").unwrap();

        let mut small = PowerLedger::new();
        small.add_rail("only", Volts::new(1.0));
        assert_eq!(
            small.register_load(r1, "y").unwrap_err(),
            LedgerError::UnknownRail
        );
        assert_eq!(
            small.rail_voltage(r1).unwrap_err(),
            LedgerError::UnknownRail
        );
        assert_eq!(small.rail_power(r1).unwrap_err(), LedgerError::UnknownRail);
        assert_eq!(small.rail_energy(r1).unwrap_err(), LedgerError::UnknownRail);
        assert_eq!(
            small.set_rail_voltage(r1, Volts::new(2.0)).unwrap_err(),
            LedgerError::UnknownRail
        );
        assert_eq!(
            small.load_current(l1).unwrap_err(),
            LedgerError::UnknownLoad
        );
        assert_eq!(small.load_energy(l1).unwrap_err(), LedgerError::UnknownLoad);
        assert_eq!(
            small.set_load_current(l1, Amps::ZERO).unwrap_err(),
            LedgerError::UnknownLoad
        );
        // A valid rail with an out-of-range load slot is an unknown load.
        assert!(small.rail_voltage(r0).is_ok());
        assert_eq!(
            small.load_current(l0).unwrap_err(),
            LedgerError::UnknownLoad
        );
    }

    #[test]
    fn report_contains_all_loads() {
        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VDD", Volts::new(3.0));
        ledger.register_load(rail, "mcu").unwrap();
        ledger.register_load(rail, "sensor").unwrap();
        let report = ledger.report();
        assert_eq!(report.rails.len(), 1);
        assert_eq!(report.rails[0].loads.len(), 2);
        assert_eq!(report.rails[0].loads[0].0, "mcu");
        let shown = format!("{report}");
        assert!(shown.contains("mcu") && shown.contains("sensor"));
    }
}
